#!/usr/bin/env bash
# Full reproduction pipeline: tests, benchmarks, report, figures.
# Usage: tools/run_full_reproduction.sh [output_dir]
set -euo pipefail

OUT="${1:-reproduction_output}"
mkdir -p "$OUT"

echo "== 1/4 correctness suite =="
python -m pytest tests/ -q 2>&1 | tee "$OUT/test_output.txt" | tail -2

echo "== 2/4 table/figure benchmarks =="
python -m pytest benchmarks/ --benchmark-only -q 2>&1 \
  | tee "$OUT/bench_output.txt" | tail -2
cp -r benchmarks/results "$OUT/bench_artifacts"

echo "== 3/4 reproduction report =="
python -m repro report --output "$OUT/report.md" --svg-dir "$OUT/figures"

echo "== 4/4 quick physics validation =="
python -m repro validate --fast | tee "$OUT/validate.txt"

echo
echo "done: see $OUT/ (report.md, figures/, bench_artifacts/)"
