#!/usr/bin/env bash
# Run every example script; fail fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

for ex in examples/*.py; do
    echo "=== $ex ==="
    python "$ex"
    echo
done
echo "all examples passed"
