#!/usr/bin/env python
"""Link-and-anchor checker for the repository's markdown documentation.

Walks ``README.md`` and everything under ``docs/``, extracts markdown
links, and verifies that

* relative file targets exist (resolved against the containing file);
* ``#anchor`` fragments match a heading in the target file, using
  GitHub's slug rules (lowercase, punctuation stripped, spaces to
  hyphens, ``-1``/``-2`` suffixes for duplicates);
* bare intra-file fragments (``[...](#section)``) resolve in the file
  that contains them.

External links (``http(s)://``, ``mailto:``) are not fetched — CI must
not flake on someone else's server. Exit code 0 means every internal
link resolves; 1 lists the broken ones.

Run from the repository root (CI does)::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ATX headings; setext headings do not occur in this repo's docs.
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
#: Fenced code blocks must not contribute headings or links.
_FENCE = re.compile(r"^(```|~~~)")


def doc_files() -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = [ROOT / "README.md"]
    files += sorted((ROOT / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def _strip_fences(text: str) -> list[str]:
    """The lines of ``text`` outside fenced code blocks."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return out


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading (before dedup suffixes)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # drop code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)                  # punctuation out
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors of a markdown file, duplicate-suffixed."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Broken-link messages for one markdown file."""
    problems = []
    text = "\n".join(_strip_fences(path.read_text(encoding="utf-8")))
    for target in _LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):      # http:, mailto:, ...
            continue
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        rel = target if not file_part else file_part
        if not dest.exists():
            problems.append(f"{path.relative_to(ROOT)}: missing target {rel}")
            continue
        if fragment:
            if dest.suffix.lower() != ".md":
                continue                                  # no anchors to check
            anchors = anchor_cache.setdefault(dest, anchors_of(dest))
            if fragment.lower() not in anchors:
                problems.append(
                    f"{path.relative_to(ROOT)}: no anchor "
                    f"#{fragment} in {dest.relative_to(ROOT)}")
    return problems


def main() -> int:
    """Check every doc file; print a report and return the exit code."""
    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    files = doc_files()
    for path in files:
        problems += check_file(path, anchor_cache)
    if problems:
        print(f"{len(problems)} broken link(s) across {len(files)} files:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"OK: all internal links resolve across {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
