"""Non-Newtonian (power-law) flows via locally adaptive relaxation.

Generalized Newtonian fluids set the apparent viscosity from the local
shear rate, ``nu(gamma) = K gamma^(n-1)`` (n < 1 shear-thinning, n > 1
shear-thickening). In LBM this means a per-node, per-step relaxation time
— and the moment representation is the natural home for it: the shear
rate comes *for free* from the stored second moment,

.. math::
   \\dot\\gamma = \\sqrt{2 S : S}, \\qquad
   S = -\\frac{\\Pi^{neq}}{2 \\rho c_s^2 \\tau},

with no velocity gradients and no extra memory traffic (the standard
explicit linearization evaluates ``S`` with the previous effective
``tau``, here seeded by the Newtonian value and iterated once per step —
the usual practice, exact at steady state).

Validated against the analytic power-law Poiseuille profile
``u(y) = u_max (1 - |2 y / H|^{1 + 1/n})`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..core.moments import f_from_moments, split_moments
from ..lattice import LatticeDescriptor
from .moment import MRPSolver

__all__ = ["PowerLawMRPSolver", "power_law_poiseuille_profile",
           "power_law_force"]


class PowerLawMRPSolver(MRPSolver):
    """MR-P solver with a power-law (Ostwald-de Waele) viscosity.

    Parameters beyond :class:`MRPSolver`:

    consistency:
        The consistency index ``K`` (lattice units); the apparent
        kinematic viscosity is ``nu = K gamma^(n-1)``.
    exponent:
        The flow-behaviour index ``n``; ``n = 1`` recovers a Newtonian
        fluid of viscosity ``K`` exactly.
    nu_bounds:
        Clamp on the apparent viscosity (stability guard near
        ``gamma -> 0`` for shear-thinning fluids, where the power law
        diverges); defaults to ``(K/50, K*50)``.

    The constructor's ``tau`` sets only the *initial* relaxation field.
    """

    name = "MR-P-PL"
    #: Fast-path opt-in (see :mod:`repro.accel`): MR-P kernels with the
    #: per-node ``tau_field`` collision path.
    accel_caps = {"family": "mr", "scheme": "MR-P", "variable_tau": True}

    def __init__(self, *args, consistency: float = 0.1, exponent: float = 1.0,
                 nu_bounds: tuple[float, float] | None = None, **kwargs):
        if consistency <= 0:
            raise ValueError(f"consistency K must be positive, got {consistency}")
        if exponent <= 0:
            raise ValueError(f"flow index n must be positive, got {exponent}")
        self.consistency = float(consistency)
        self.exponent = float(exponent)
        if nu_bounds is None:
            nu_bounds = (consistency / 50.0, consistency * 50.0)
        if not 0 < nu_bounds[0] <= nu_bounds[1]:
            raise ValueError(f"invalid viscosity bounds {nu_bounds}")
        self.nu_bounds = (float(nu_bounds[0]), float(nu_bounds[1]))
        super().__init__(*args, **kwargs)
        self.tau_field = np.full(self.domain.shape, self.tau)
        # Scratch buffers for the per-step relaxation update; this runs on
        # every node every step (in both the reference and the fused
        # backend), so it is written allocation-free.
        self._gamma_buf = np.empty(self.domain.shape)
        self._pair_buf = np.empty(self.domain.shape)
        self._inv_buf = np.empty(self.domain.shape)
        self._tau_next = np.empty(self.domain.shape)

    def _shear_rate(self) -> np.ndarray:
        """``gamma = sqrt(2 S:S)`` from the stored moments, using the
        current relaxation field (explicit linearization).

        Returns the internal ``gamma`` scratch buffer — callers must not
        hold it across steps.
        """
        lat = self.lat
        rho, j, pi_cols = split_moments(lat, self.m)
        if self.force is None:
            u = j / rho
        else:
            from ..core.forcing import half_force_velocity

            u = half_force_velocity(lat, rho, j, self.force)
        # s_ab = pi_neq / (-2 rho cs2 tau)  =>  accumulate
        # s_sq += mult * pi_neq^2 * inv  with  inv = 1 / denom^2
        # (one division for the whole field instead of one per pair).
        inv = self._inv_buf
        np.multiply(rho, self.tau_field, out=inv)
        inv *= 2.0 * lat.cs2
        inv *= inv
        np.divide(1.0, inv, out=inv)
        s_sq = self._gamma_buf
        s_sq[:] = 0.0
        tmp = self._pair_buf
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(u[a], u[b], out=tmp)
            tmp *= rho
            np.subtract(pi_cols[k], tmp, out=tmp)   # pi_neq
            tmp *= tmp
            tmp *= inv                              # s_ab^2
            if a != b:
                tmp *= 2.0
            s_sq += tmp
        s_sq *= 2.0
        return np.sqrt(s_sq, out=s_sq)

    def _update_relaxation(self) -> None:
        """Refresh ``tau_field`` from the power-law of the shear rate."""
        gamma = self._shear_rate()
        tau = self._tau_next
        if self.exponent == 1.0:
            tau[:] = self.consistency / self.lat.cs2 + 0.5
        else:
            still = gamma == 0.0
            # inf ** (n-1 < 0) -> 0; the resting-node values are replaced
            # by the stability bound below either way.
            gamma[still] = np.inf
            np.power(gamma, self.exponent - 1.0, out=gamma)
            gamma *= self.consistency
            gamma[still] = (self.nu_bounds[1] if self.exponent < 1.0
                            else self.nu_bounds[0])
            np.clip(gamma, *self.nu_bounds, out=gamma)
            np.divide(gamma, self.lat.cs2, out=tau)
            tau += 0.5
        tau[self.domain.solid_mask] = self.tau
        # Swap rather than copy: previous field becomes next step's scratch.
        self.tau_field, self._tau_next = tau, self.tau_field

    def _post_collision_f(self) -> np.ndarray:
        """Variable-τ Eq. 10 collision then reconstruction to f-space."""
        self._update_relaxation()
        m_star = _collide_variable_tau(self.lat, self.m, self.tau_field,
                                       force=self.force)
        return f_from_moments(self.lat, m_star)

    def apparent_viscosity(self) -> np.ndarray:
        """Current apparent kinematic viscosity field (NaN inside solids).

        The relaxation field carries the Newtonian seed value inside
        walls (a numerical placeholder, not a fluid property), so solid
        nodes are masked out rather than reported as viscosity.
        """
        nu = self.lat.cs2 * (self.tau_field - 0.5)
        nu[self.domain.solid_mask] = np.nan
        return nu


def _collide_variable_tau(lat: LatticeDescriptor, m: np.ndarray,
                          tau_field: np.ndarray,
                          force: np.ndarray | None = None) -> np.ndarray:
    """Projective moment-space collision with a per-node relaxation time."""
    rho, j, pi_cols = split_moments(lat, m)
    if force is None:
        u = j / rho
    else:
        from ..core.forcing import half_force_velocity

        u = half_force_velocity(lat, rho, j, force)
    keep = 1.0 - 1.0 / tau_field
    m_star = m.copy()
    for k, (a, b) in enumerate(lat.pair_tuples):
        pi_eq = rho * u[a] * u[b]
        m_star[1 + lat.d + k] = pi_eq + keep * (pi_cols[k] - pi_eq)
    if force is not None:
        m_star[1:1 + lat.d] += force
        pref = 1.0 - 0.5 / tau_field
        for k, (a, b) in enumerate(lat.pair_tuples):
            m_star[1 + lat.d + k] += pref * (u[a] * force[b] + u[b] * force[a])
    return m_star


def power_law_poiseuille_profile(n_nodes: int, u_max: float,
                                 exponent: float) -> np.ndarray:
    """Analytic steady profile of a force-driven power-law channel flow.

    ``u(y) = u_max (1 - |2 yhat / H|^{(n+1)/n})`` with the walls at the
    half-way positions of an ``n_nodes`` cross-section. ``exponent = 1``
    recovers the Newtonian parabola.
    """
    y = np.arange(n_nodes, dtype=np.float64)
    y0, y1 = 0.5, n_nodes - 1.5
    h = (y1 - y0) / 2.0
    y_hat = np.abs(y - (y0 + y1) / 2.0) / h
    u = u_max * (1.0 - np.minimum(y_hat, 1.0) ** ((exponent + 1.0) / exponent))
    u[0] = 0.0
    u[-1] = 0.0
    return u


def power_law_force(u_max: float, width: float, consistency: float,
                    exponent: float) -> float:
    """Body force driving a power-law channel flow of peak ``u_max``.

    From ``F = K (du/dy)^n`` integrated across the half-channel:
    ``F = K ((n+1)/n * u_max)^n / h^(n+1) * h`` ... explicitly
    ``F h = K (u_max (n+1)/(n h))^n``, with ``h`` the half-width.
    """
    h = width / 2.0
    gamma_wall = u_max * (exponent + 1.0) / (exponent * h)
    return consistency * gamma_wall ** exponent / h
