"""ST — the standard two-lattice distribution-representation solver.

Reference implementation of paper Algorithm 1: *pull* configuration
(stream, then collide), two distribution lattices ``f1``/``f2`` swapped
each step, BGK collision. This is the baseline every MR result is compared
against, and the ground truth for the virtual-GPU ST kernel.
"""

from __future__ import annotations

import numpy as np

from ..core.collision import BGKCollision, CollisionOperator
from ..core.streaming import stream_pull
from .base import Solver

__all__ = ["STSolver"]


class STSolver(Solver):
    """Standard distribution-representation LBM (Algorithm 1).

    ``collision`` may be overridden (e.g. with a regularized operator) to
    study regularization *without* the moment-representation propagation
    pattern; the default is BGK as in the paper's ST baseline.
    """

    name = "ST"
    #: Fast-path opt-in (see :mod:`repro.accel`). The kernels hard-code
    #: plain BGK; non-BGK collisions are caught by ``validate_backend``.
    #: ``batched`` additionally certifies lockstep ensemble execution
    #: (:class:`repro.ensemble.EnsembleRunner`).
    accel_caps = {"family": "st", "batched": True}

    def __init__(self, *args, collision: CollisionOperator | None = None, **kwargs):
        self._collision_override = collision
        super().__init__(*args, **kwargs)
        self.collision = collision if collision is not None else BGKCollision(self.tau)
        if abs(self.collision.tau - self.tau) > 1e-12:
            raise ValueError("collision operator tau must match solver tau")
        from ..core.collision import TRTCollision

        if self.force is not None and not isinstance(
                self.collision, (BGKCollision, TRTCollision)):
            raise ValueError(
                "body forcing in the ST solver is implemented for the BGK "
                "(classical Guo) and TRT (parity-split Guo) collisions; "
                "use MR-P/MR-R for regularized forced collisions"
            )
        # The base constructor validated before ``collision`` existed;
        # re-check now that the operator is known (still construction
        # time, so non-BGK + fast backend fails here, not mid-run).
        if self.backend != "reference":
            from ..accel import validate_backend

            validate_backend(self)

    def _initialize(self, rho: np.ndarray, u: np.ndarray) -> None:
        """Fill the lattice(s) with the equilibrium of ``(rho, u)``."""
        feq, _ = self._equilibrium_state(rho, u)
        self.f = feq                        # current (post-collision) lattice
        # The single-lattice and compact-state backends keep only ``f``
        # as persistent dense state (any scratch they need is owned by
        # their cores).
        self._f_streamed = (None if self.backend in ("aa", "sparse")
                            else np.empty_like(feq))

    def _aa_layout_is_shifted(self) -> bool:
        """True when ``self.f`` is stored in the component-shifted AA layout.

        Only the lean (boundary-free) single-lattice path pre-streams the
        state, and only at odd times; every other configuration keeps the
        natural layout at all times.
        """
        return (self.backend == "aa" and not self.boundaries
                and self.time % 2 == 1)

    def _natural_f(self) -> np.ndarray:
        """The natural-layout lattice regardless of backend and parity.

        Returns ``self.f`` itself when it is already natural; at odd lean
        AA parity it un-streams into a fresh array (pure — the solver
        state is not touched).
        """
        if self._aa_layout_is_shifted():
            from ..accel.inplace import aa_to_natural

            return aa_to_natural(self.lat, self.f)
        return self.f

    def _checkpoint_state(self) -> np.ndarray:
        """Persistent state in the backend-independent natural layout."""
        return self._natural_f()

    def _restore_state(self, f: np.ndarray) -> None:
        """Adopt a natural-layout checkpoint payload (``self.time`` is set)."""
        if self._aa_layout_is_shifted():
            from ..accel.inplace import natural_to_aa

            self.f[...] = natural_to_aa(self.lat, np.asarray(f))
        else:
            self.f[...] = f

    def _step_reference(self) -> None:
        """One Algorithm 1 step: pull-stream, boundaries, collide, swap."""
        tel = self.telemetry
        # Streaming (pull): gather post-collision values from neighbours.
        with tel.phase("stream"):
            stream_pull(self.lat, self.f, out=self._f_streamed)
        with tel.phase("boundary"):
            self._apply_post_stream(self._f_streamed, self.f)
        # Collision into the second lattice (reuse the old buffer).
        with tel.phase("collide"):
            if self.force is None:
                f_star = self.collision(self.lat, self._f_streamed)
            else:
                f_star = self._forced_collision(self._f_streamed)
            # Keep solid nodes pinned at rest equilibrium so garbage can
            # never propagate out of unused regions. Done before the
            # post-collide hook so full-way bounce-back may still overwrite
            # solid nodes.
            solid = self.domain.solid_mask
            if solid.any():
                f_star[:, solid] = self.lat.w[:, None]
        with tel.phase("boundary"):
            self._apply_post_collide(f_star, self._f_streamed)
        self.f, self._f_streamed = f_star, self.f

    def _forced_collision(self, f: np.ndarray) -> np.ndarray:
        """Guo forcing with the half-force velocity shift.

        BGK applies the classical ``(1 - 1/(2 tau))`` prefactor; TRT splits
        the raw source into even/odd parity halves and scales each with its
        own ``1 - omega/2``.
        """
        from ..core.collision import TRTCollision
        from ..core.equilibrium import equilibrium
        from ..core.forcing import guo_source, half_force_velocity

        lat = self.lat
        rho = f.sum(axis=0)
        j = np.einsum("qa,q...->a...", lat.c.astype(np.float64), f)
        u = half_force_velocity(lat, rho, j, self.force)
        feq = equilibrium(lat, rho, u)
        if isinstance(self.collision, TRTCollision):
            op = self.collision
            opp = lat.opposite
            neq = f - feq
            neq_plus = 0.5 * (neq + neq[opp])
            neq_minus = 0.5 * (neq - neq[opp])
            s_raw = guo_source(lat, u, self.force, tau=None)
            s_plus = 0.5 * (s_raw + s_raw[opp])
            s_minus = 0.5 * (s_raw - s_raw[opp])
            return (f - op.omega * neq_plus - op.omega_minus * neq_minus
                    + (1.0 - 0.5 * op.omega) * s_plus
                    + (1.0 - 0.5 * op.omega_minus) * s_minus)
        omega = 1.0 / self.tau
        return (f + omega * (feq - f)
                + guo_source(lat, u, self.force, self.tau))

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rho, u)`` from the natural-layout lattice (half-force aware)."""
        from ..core.moments import macroscopic

        f = self._natural_f()
        if self.force is None:
            return macroscopic(self.lat, f)
        from ..core.forcing import half_force_velocity

        rho = f.sum(axis=0)
        j = np.einsum("qa,q...->a...", self.lat.c.astype(np.float64), f)
        return rho, half_force_velocity(self.lat, rho, j, self.force)

    @property
    def state_values_per_node(self) -> int:
        """``2Q`` doubles per node, or ``Q`` under ``"aa"``/``"sparse"``."""
        # Two lattices for the classical scheme; the single-lattice
        # ``"aa"`` and compact-state ``"sparse"`` backends persist only
        # ``f`` as dense state (sparse scratch scales with the fluid
        # count — see docs/ALGORITHMS.md for the footprint/traffic
        # models).
        if self.backend in ("aa", "sparse"):
            return self.lat.q
        return 2 * self.lat.q
