"""Solver base class and shared plumbing.

A solver owns the simulation state (distribution lattices for ST, a moment
field for MR-P/MR-R), the bound boundary conditions, and a step method
implementing one full lattice Boltzmann update. All three paper schemes
share this interface, so examples, validation and the benchmark harness are
scheme-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from ..boundary import Boundary
from ..core.equilibrium import equilibrium, equilibrium_moments
from ..geometry import Domain
from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY

__all__ = ["Solver", "SolverDiagnostics"]


class SolverDiagnostics:
    """Lightweight macroscopic diagnostics over the fluid region."""

    def __init__(self, solver: "Solver"):
        self._solver = solver

    def mass(self) -> float:
        """Total density summed over the fluid nodes."""
        rho, _ = self._solver.macroscopic()
        return float(rho[self._solver.domain.fluid_mask].sum())

    def momentum(self) -> np.ndarray:
        """Total momentum vector ``sum(rho * u)`` over the fluid nodes."""
        rho, u = self._solver.macroscopic()
        mask = self._solver.domain.fluid_mask
        return np.array([(rho * u[a])[mask].sum() for a in range(u.shape[0])])

    def max_speed(self) -> float:
        """Maximum velocity magnitude over the fluid nodes."""
        _, u = self._solver.macroscopic()
        speed = np.sqrt(np.einsum("a...,a...->...", u, u))
        return float(speed[self._solver.domain.fluid_mask].max())


class Solver(ABC):
    """Common driver for the ST / MR-P / MR-R schemes.

    Parameters
    ----------
    lat:
        Lattice descriptor (e.g. ``get_lattice("D2Q9")``).
    domain:
        Node classification; shape defines the grid.
    tau:
        BGK relaxation time (``tau > 1/2``).
    boundaries:
        Boundary condition objects; bound to ``(lat, domain, tau)`` here
        and applied in list order after each streaming step.
    rho0, u0:
        Initial density (scalar or ``grid``-shaped) and velocity
        (``None`` for rest, or ``(D, *grid)``). The initial state is the
        corresponding equilibrium.
    backend:
        Execution backend for :meth:`step`: ``"reference"`` (the
        scheme's own step method), ``"fused"`` (pure-NumPy fused
        kernels) or ``"numba"`` (JIT kernels, optional extra). Fast
        backends reproduce the reference trajectory to machine
        precision; see :mod:`repro.accel`. Both the backend name and
        the solver/feature compatibility matrix are checked eagerly at
        construction time (:func:`repro.accel.validate_backend`), so an
        unsupported combination never fails mid-run.
    """

    #: short scheme label used by benchmarks ("ST", "MR-P", "MR-R")
    name: str = "?"

    def __init__(self, lat: LatticeDescriptor, domain: Domain, tau: float,
                 boundaries: Sequence[Boundary] = (),
                 rho0: float | np.ndarray = 1.0,
                 u0: np.ndarray | None = None,
                 force: np.ndarray | None = None,
                 backend: str = "reference"):
        from ..accel import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend
        self._stepper = None
        if domain.ndim != lat.d:
            raise ValueError(
                f"domain dimension {domain.ndim} does not match lattice D={lat.d}"
            )
        if tau <= 0.5:
            raise ValueError(f"tau must exceed 1/2, got {tau}")
        if domain.solid_mask.any() and np.abs(lat.c).max() > 1:
            raise ValueError(
                f"{lat.name} is a multi-speed lattice (|c| up to "
                f"{np.abs(lat.c).max()}): populations would jump across "
                f"one-node walls; only periodic (solid-free) domains are "
                f"supported for multi-speed lattices"
            )
        self.lat = lat
        self.domain = domain
        self.tau = float(tau)
        self.boundaries = [b.bind(lat, domain, tau) for b in boundaries]
        self.time = 0
        self.diagnostics = SolverDiagnostics(self)
        #: telemetry registry; the disabled singleton by default, so the
        #: instrumented hot loop costs nothing unless one is attached.
        self.telemetry = NULL_TELEMETRY
        if force is None:
            self.force = None
        else:
            from ..core.forcing import normalize_force

            self.force = normalize_force(lat, force, domain.shape)
            # No body force inside walls.
            self.force[:, domain.solid_mask] = 0.0

        rho_init = np.broadcast_to(np.asarray(rho0, dtype=np.float64), domain.shape)
        if u0 is None:
            u_init = np.zeros((lat.d, *domain.shape))
        else:
            u_init = np.asarray(u0, dtype=np.float64)
            if u_init.shape != (lat.d, *domain.shape):
                raise ValueError(
                    f"u0 must have shape {(lat.d, *domain.shape)}, got {u_init.shape}"
                )
        # Solid nodes start (and are kept) at rest equilibrium so that no
        # NaN/Inf can ever leak out of unused regions.
        solid = domain.solid_mask
        rho_init = np.array(rho_init)
        rho_init[solid] = 1.0
        u_init = np.array(u_init)
        u_init[:, solid] = 0.0
        self._initialize(rho_init, u_init)
        # Fail fast: check the solver/backend feature matrix now, not on
        # the first step. Subclasses that finish configuring themselves
        # after this constructor (e.g. STSolver's collision operator)
        # re-validate once configured — still construction time.
        if self.backend != "reference":
            from ..accel import validate_backend

            validate_backend(self)

    # -- scheme-specific ------------------------------------------------
    @abstractmethod
    def _initialize(self, rho: np.ndarray, u: np.ndarray) -> None:
        """Set the internal state to the equilibrium of (rho, u)."""

    @abstractmethod
    def _step_reference(self) -> None:
        """One timestep of the scheme's reference implementation."""

    def step(self) -> None:
        """Advance one timestep via the selected execution backend.

        The fast-path stepper object is built lazily on the first step,
        but the solver/backend compatibility matrix was already checked
        at construction time, so building it cannot fail for a solver
        that constructed successfully.
        """
        if self.backend == "reference":
            self._step_reference()
            return
        if self._stepper is None:
            from ..accel import make_stepper

            self._stepper = make_stepper(self)
        self._stepper.step(self)

    @abstractmethod
    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(rho, u)`` fields."""

    @property
    @abstractmethod
    def state_values_per_node(self) -> int:
        """Number of doubles of *global* state per lattice node — ``2Q`` for
        the two-lattice ST scheme, ``2M`` for the moment representation
        (paper Table 2 footprint model)."""

    # -- generic driver ---------------------------------------------------
    def attach_telemetry(self, telemetry) -> "Solver":
        """Attach a :class:`~repro.obs.Telemetry` registry (pass ``None``
        to restore the zero-overhead disabled default). Returns ``self``."""
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        return self

    def run(self, n_steps: int,
            callback: Callable[["Solver"], None] | None = None,
            callback_interval: int = 1) -> "Solver":
        """Advance ``n_steps`` steps, optionally invoking a callback.

        If the callback exposes a ``flush(solver)`` method (monitors
        do), it is invoked once after the final step, so the end state
        is observed even when ``n_steps`` is not a multiple of the
        callback's own cadence.
        """
        tel = self.telemetry
        completed = 0
        try:
            for _ in range(int(n_steps)):
                with tel.phase("step"):
                    self.step()
                self.time += 1
                completed += 1
                if callback is not None and self.time % callback_interval == 0:
                    callback(self)
            if callback is not None:
                flush = getattr(callback, "flush", None)
                if flush is not None:
                    flush(self)
        finally:
            if tel.enabled and completed:
                tel.count("steps", completed)
        return self

    def run_to_steady_state(self, tol: float = 1e-8, check_interval: int = 50,
                            max_steps: int = 200_000,
                            callback: Callable[["Solver"], None] | None = None,
                            callback_interval: int = 1) -> int:
        """Step until the max nodal velocity change over ``check_interval``
        steps drops below ``tol``. Returns the number of steps taken.

        ``callback``/``callback_interval`` are forwarded to :meth:`run`, so
        monitors, watchdogs and telemetry consumers observe steady-state
        runs exactly as they observe fixed-length ones.
        """
        _, u_prev = self.macroscopic()
        steps = 0
        while steps < max_steps:
            self.run(check_interval, callback=callback,
                     callback_interval=callback_interval)
            steps += check_interval
            _, u = self.macroscopic()
            delta = np.abs(u - u_prev)[:, self.domain.fluid_mask].max()
            if delta < tol:
                return steps
            u_prev = u
        raise RuntimeError(
            f"no steady state within {max_steps} steps (last delta above {tol})"
        )

    def set_force(self, force) -> None:
        """Update the body force (vector or field) between steps.

        Enables time-dependent driving (e.g. pulsatile/Womersley flows):
        call before each step with the instantaneous force. Solid nodes
        are automatically zeroed. The solver must have been constructed
        with a force (the schemes select their forced code paths at
        construction time).
        """
        if self.force is None:
            raise ValueError(
                "solver was built without forcing; construct it with "
                "force=... to enable time-dependent forces"
            )
        from ..core.forcing import normalize_force

        new = normalize_force(self.lat, force, self.domain.shape)
        new[:, self.domain.solid_mask] = 0.0
        self.force[...] = new

    def velocity(self) -> np.ndarray:
        """The current velocity field ``u`` of shape ``(D, *grid)``."""
        return self.macroscopic()[1]

    def density(self) -> np.ndarray:
        """The current density field ``rho`` of shape ``grid``."""
        return self.macroscopic()[0]

    # -- helpers for subclasses ------------------------------------------
    def _apply_post_stream(self, f_new: np.ndarray, f_source: np.ndarray) -> None:
        """Apply every bound boundary's post-stream rule, in list order."""
        for b in self.boundaries:
            b.post_stream(self.lat, f_new, f_source)

    def _apply_post_collide(self, f_star: np.ndarray, f_post_stream: np.ndarray) -> None:
        """Apply every bound boundary's post-collide rule, in list order."""
        for b in self.boundaries:
            b.post_collide(self.lat, f_star, f_post_stream)

    def _equilibrium_state(self, rho: np.ndarray, u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The ``(f_eq, m_eq)`` equilibrium pair for the given fields."""
        return equilibrium(self.lat, rho, u), equilibrium_moments(self.lat, rho, u)
