"""MR — moment-representation solvers (projective and recursive).

Reference implementations of the paper's moment representation (Section
3.2, Algorithm 2) at the *algorithmic* level: the persistent simulation
state is only the M-vector field (6 values per node in 2D, 10 in 3D), and
each step performs

1. collision in moment space (Eq. 10, plus Eqs. 12-13 for MR-R),
2. mapping to distribution space (Eq. 11 / Eq. 14),
3. exact streaming (Eq. 7) and boundary conditions,
4. re-projection to moments (Eqs. 1-3) — the only data that persists.

This matches the *push* configuration of Algorithm 2. The distribution
field here is a full temporary array; the GPU realization in
:mod:`repro.gpu` keeps it in per-column shared memory instead, which is the
paper's central optimization, and is tested to produce identical states.
"""

from __future__ import annotations

import numpy as np

from ..core.collision import collide_moments_projective, collide_moments_recursive
from ..core.moments import f_from_moments, moments_from_f, velocity_from_moments
from ..core.streaming import stream_push
from .base import Solver

__all__ = ["MRPSolver", "MRRSolver"]


class _MomentSolver(Solver):
    """Shared state handling for the two MR schemes."""

    def _initialize(self, rho: np.ndarray, u: np.ndarray) -> None:
        """Set the moment field to the equilibrium of ``(rho, u)``."""
        _, m_eq = self._equilibrium_state(rho, u)
        self.m = m_eq
        # The single-lattice backend's core owns its own (single)
        # distribution buffer, and the compact-state sparse core never
        # materializes a dense one; every other path shares this scratch.
        self._f_scratch = (None if self.backend in ("aa", "sparse")
                           else np.empty((self.lat.q, *self.domain.shape)))

    def _post_collision_f(self) -> np.ndarray:
        """Post-collision distribution reconstructed from moments."""
        raise NotImplementedError

    def _step_reference(self) -> None:
        """One MR step: collide in m-space, push-stream, re-project."""
        tel = self.telemetry
        with tel.phase("collide"):
            f_star = self._post_collision_f()
        with tel.phase("stream"):
            f_new = stream_push(self.lat, f_star, out=self._f_scratch)
        with tel.phase("boundary"):
            self._apply_post_stream(f_new, f_star)
        with tel.phase("macroscopic"):
            self.m = moments_from_f(self.lat, f_new)
            # Pin solid nodes at rest so their (physically meaningless)
            # moments stay finite.
            solid = self.domain.solid_mask
            if solid.any():
                self.m[:, solid] = 0.0
                self.m[0, solid] = 1.0
        # f_star becomes the scratch buffer for the next step.
        self._f_scratch = f_star

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rho, u)`` straight from the moment field (no projection)."""
        if self.force is None:
            return self.m[0], velocity_from_moments(self.lat, self.m)
        from ..core.forcing import half_force_velocity

        rho = self.m[0]
        j = self.m[1:1 + self.lat.d]
        return rho, half_force_velocity(self.lat, rho, j, self.force)

    @property
    def state_values_per_node(self) -> int:
        """``2M`` doubles per node (paper Table 2 footprint model)."""
        return 2 * self.lat.n_moments


class MRPSolver(_MomentSolver):
    """Moment representation with projective regularization (MR-P).

    Collision: Eq. 10 in moment space; reconstruction: Eq. 11 (a single
    linear map, precomputed on the lattice descriptor). Body forces use
    the projected Guo coupling of :mod:`repro.core.forcing`. An optional
    ``tau_bulk`` relaxes the trace of ``Pi_neq`` at its own rate (bulk
    viscosity control; see
    :class:`repro.core.collision.ProjectiveRegularizedCollision`).
    """

    name = "MR-P"
    #: Fast-path opt-in (see :mod:`repro.accel`); ``batched`` certifies
    #: lockstep ensembles (:class:`repro.ensemble.EnsembleRunner`).
    accel_caps = {"family": "mr", "scheme": "MR-P", "batched": True}

    def __init__(self, *args, tau_bulk: float | None = None, **kwargs):
        self.tau_bulk = tau_bulk
        super().__init__(*args, **kwargs)

    def _post_collision_f(self) -> np.ndarray:
        """Eq. 10 collision then Eq. 11 reconstruction to f-space."""
        m_star = collide_moments_projective(self.lat, self.m, self.tau,
                                            force=self.force,
                                            tau_bulk=self.tau_bulk)
        return f_from_moments(self.lat, m_star)


class MRRSolver(_MomentSolver):
    """Moment representation with recursive regularization (MR-R).

    Collision: Eqs. 10 + 12-13 with the Malaspinas recursions for the
    non-equilibrium third/fourth-order coefficients; reconstruction: Eq. 14.
    Body forces use the projected Guo coupling.
    """

    name = "MR-R"
    #: Fast-path opt-in (see :mod:`repro.accel`); ``batched`` certifies
    #: lockstep ensembles (:class:`repro.ensemble.EnsembleRunner`).
    accel_caps = {"family": "mr", "scheme": "MR-R", "batched": True}

    def _post_collision_f(self) -> np.ndarray:
        """Eqs. 10 + 12-13 collision then Eq. 14 reconstruction."""
        return collide_moments_recursive(self.lat, self.m, self.tau,
                                         force=self.force)
