"""AA-pattern solver: the in-place single-lattice distribution scheme.

Bailey et al. (2009) showed the two-lattice requirement of the standard
representation can be dropped by alternating two kernel flavours on a
*single* distribution array:

* **even step** — read the node's own populations, collide, write each
  post-collision component back into the *opposite* slot of the same node
  (no streaming; purely local swap);
* **odd step** — for node ``x``, component ``i`` of the time-``t+1`` state
  lives at slot ``(x - c_i, ibar)``; read those, collide, and write the
  results to slots ``(x + c_i, i)`` — which are exactly the locations this
  node's read set came from, so the update is race-free in place.

After every *pair* of steps the array again holds plain pre-collision
populations, and the trajectory is identical to the standard two-lattice
solver (tested to machine precision).

Why it matters here: AA halves the ST footprint (``Q`` instead of ``2Q``
doubles per node) while still moving ``2Q`` doubles per update — so it
fixes the *capacity* problem the paper's Section 4.1 quantifies, but not
the *bandwidth* problem; the moment representation fixes both (``2M``
moved, ``2M`` stored). The footprint bench places all three side by side.

Restrictions of this reference implementation: periodic domains, BGK
collision, no body force (the parity bookkeeping of fused boundaries is
out of scope — the paper's comparison baseline is the two-lattice ST).
"""

from __future__ import annotations

import numpy as np

from ..core.collision import BGKCollision
from ..core.equilibrium import equilibrium
from ..core.moments import macroscopic
from .base import Solver

__all__ = ["AASolver"]


class AASolver(Solver):
    """Single-lattice AA-pattern LBM (periodic domains, BGK)."""

    name = "AA"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self.domain.solid_mask.any() or self.boundaries:
            raise ValueError(
                "the AA reference solver supports periodic solid-free "
                "domains only (boundary parity bookkeeping not implemented)"
            )
        if self.force is not None:
            raise ValueError("the AA reference solver does not support forcing")

    def _initialize(self, rho: np.ndarray, u: np.ndarray) -> None:
        """Fill the single lattice with the equilibrium of ``(rho, u)``."""
        self.f = equilibrium(self.lat, rho, u)
        self._collision = BGKCollision(self.tau)

    # ------------------------------------------------------------------
    def _gathered_state(self) -> np.ndarray:
        """The true pre-collision populations at the current time."""
        lat = self.lat
        if self.time % 2 == 0:
            return self.f
        # Odd parity: F_i(x) is stored at slot (x - c_i, ibar).
        out = np.empty_like(self.f)
        grid_axes = tuple(range(self.f.ndim - 1))
        for i in range(lat.q):
            out[i] = np.roll(self.f[lat.opposite[i]], shift=tuple(lat.c[i]),
                             axis=grid_axes)
        return out

    def _step_reference(self) -> None:
        """One AA update: the even or odd kernel flavour, by parity."""
        lat = self.lat
        tel = self.telemetry
        grid_axes = tuple(range(self.f.ndim - 1))
        if self.time % 2 == 0:
            # Even: collide in place, components swapped into opposite slots.
            with tel.phase("collide"):
                f_star = self._collision(lat, self.f)
                self.f = f_star[lat.opposite]
        else:
            # Odd: gather the swapped-and-shifted state, collide, scatter
            # back to the very slots the reads came from. The two memory
            # passes are distinct sub-phases (entering one "stream" phase
            # twice per step would double its call count and let profile
            # summaries misattribute stream vs collide time).
            with tel.phase("stream:gather"):
                state = self._gathered_state()
            with tel.phase("collide"):
                f_star = self._collision(lat, state)
            with tel.phase("stream:scatter"):
                out = np.empty_like(self.f)
                for i in range(lat.q):
                    # F*_i(x) -> slot (x + c_i, i).
                    out[i] = np.roll(f_star[i], shift=tuple(lat.c[i]),
                                     axis=grid_axes)
                self.f = out

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rho, u)`` from the parity-resolved pre-collision state."""
        return macroscopic(self.lat, self._gathered_state())

    @property
    def state_values_per_node(self) -> int:
        """A single lattice: Q doubles per node — half of ST's 2Q."""
        return self.lat.q
