"""Preset problem setups mirroring the paper's proxy applications.

The paper's performance proxy apps "simulate flow in a rectangular 2D or 3D
channel, using bounceback boundary conditions at the channel walls and
finite difference boundary conditions at the inlet and outlet" (Section 4).
:func:`channel_problem` assembles exactly that: geometry, Poiseuille inlet
profile, pressure outlet, wall bounce-back, and an initial condition, for
any of the three schemes.
"""

from __future__ import annotations

import numpy as np

from ..boundary import HalfwayBounceBack, Plane, PressureOutlet, VelocityInlet
from ..geometry import Domain, channel_2d, channel_3d
from ..lattice import LatticeDescriptor, get_lattice
from ..validation.analytic import duct_profile, poiseuille_profile
from .base import Solver
from .moment import MRPSolver, MRRSolver
from .standard import STSolver

__all__ = ["SCHEMES", "make_solver", "channel_problem", "periodic_problem",
           "forced_channel_problem", "cylinder_channel_problem",
           "porous_channel_problem", "channel_body_force",
           "cylinder_channel_domain"]

SCHEMES: dict[str, type[Solver]] = {
    "ST": STSolver,
    "MR-P": MRPSolver,
    "MR-R": MRRSolver,
}


def make_solver(scheme: str, lat: LatticeDescriptor, domain: Domain, tau: float,
                **kwargs) -> Solver:
    """Instantiate a solver by paper scheme name (``ST``/``MR-P``/``MR-R``)."""
    key = scheme.upper().replace("_", "-")
    if key not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {sorted(SCHEMES)}")
    return SCHEMES[key](lat, domain, tau, **kwargs)


def channel_inlet_profile(lat: LatticeDescriptor, shape: tuple[int, ...],
                          u_max: float) -> np.ndarray:
    """Inlet velocity profile for the rectangular channel.

    2D: plane Poiseuille parabola over the ``ny`` cross-section.
    3D: exact rectangular-duct profile over the ``ny x nz`` cross-section.
    Returns ``(D, *cross_section_shape)``.
    """
    if lat.d == 2:
        prof = poiseuille_profile(shape[1], u_max)
        u = np.zeros((2, shape[1]))
        u[0] = prof
        return u
    prof = duct_profile(shape[1], shape[2], u_max)
    u = np.zeros((3, shape[1], shape[2]))
    u[0] = prof
    return u


def channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                    shape: tuple[int, ...], tau: float = 0.8,
                    u_max: float = 0.05, bc_method: str = "regularized-fd",
                    start_from_profile: bool = True,
                    outlet_tangential: str = "extrapolate",
                    backend: str = "reference") -> Solver:
    """Build a ready-to-run rectangular channel flow (the paper's proxy app).

    Parameters
    ----------
    scheme:
        ``"ST"``, ``"MR-P"`` or ``"MR-R"``.
    lattice:
        Lattice name or descriptor; its dimension must match ``len(shape)``.
    shape:
        Grid shape including the one-node solid rim on the walls.
    tau, u_max:
        Relaxation time and peak inlet velocity (lattice units).
    bc_method:
        Inlet/outlet reconstruction, ``"regularized-fd"`` (the paper's
        finite-difference boundaries) or ``"nebb"``.
    start_from_profile:
        Initialize the whole channel with the inlet profile (fast
        convergence) instead of fluid at rest.
    backend:
        Execution backend (see :mod:`repro.accel`).
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    if lat.d == 2:
        domain = channel_2d(*shape)
    else:
        domain = channel_3d(*shape)

    u_in = channel_inlet_profile(lat, shape, u_max)
    # Bounce-back first so the inlet/outlet reconstructions see the
    # reflected wall-link populations — this matches the fused order of the
    # virtual-GPU kernels (reflection at scatter time, reconstruction at
    # finalize time) and is also the physically consistent choice.
    boundaries = [
        HalfwayBounceBack(),
        VelocityInlet(Plane(axis=0, side=0), u_in, method=bc_method),
        PressureOutlet(Plane(axis=0, side=-1), rho_out=1.0, method=bc_method,
                       tangential=outlet_tangential),
    ]
    u0 = None
    if start_from_profile:
        u0 = np.zeros((lat.d, *shape))
        u0[:] = u_in[(slice(None), None) + (slice(None),) * (lat.d - 1)]
    return make_solver(scheme, lat, domain, tau, boundaries=boundaries, u0=u0,
                       backend=backend)


def forced_channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                           shape: tuple[int, ...], tau: float = 0.8,
                           u_max: float = 0.05,
                           backend: str = "reference") -> Solver:
    """Body-force-driven channel: periodic streamwise, bounce-back walls.

    The force magnitude is chosen so the steady plane-Poiseuille (2D) or
    duct (3D) flow peaks near ``u_max``:
    ``F = 8 nu u_max / H^2`` with ``H`` the wall-to-wall width (for the 3D
    duct this slightly overshoots the plane-channel formula, as expected).
    Uses the projected Guo forcing for MR schemes and classical Guo for ST.
    ``backend`` selects the execution backend (see :mod:`repro.accel`);
    the fused kernels fold the Guo source into the collide stage.
    """
    import numpy as np

    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    if lat.d == 2:
        domain = channel_2d(*shape, with_io=False)
    else:
        domain = channel_3d(*shape, with_io=False)
    h = shape[1] - 2
    nu = lat.viscosity(tau)
    force = np.zeros(lat.d)
    force[0] = 8.0 * nu * u_max / (h * h)
    return make_solver(scheme, lat, domain, tau,
                       boundaries=[HalfwayBounceBack()], force=force,
                       backend=backend)


def channel_body_force(lat: LatticeDescriptor, shape: tuple[int, ...],
                       tau: float, u_max: float) -> np.ndarray:
    """Streamwise body force driving a channel to peak near ``u_max``.

    The plane-Poiseuille sizing ``F = 8 nu u_max / H^2`` with ``H`` the
    wall-to-wall width — shared by every force-driven preset (forced
    channel, cylinder, distributed variants) so single-domain and
    distributed builders stay bit-identical.
    """
    h = shape[1] - 2
    nu = lat.viscosity(tau)
    force = np.zeros(lat.d)
    force[0] = 8.0 * nu * u_max / (h * h)
    return force


def cylinder_channel_domain(lat: LatticeDescriptor, shape: tuple[int, ...],
                            radius: float | None = None) -> Domain:
    """Walled channel (no I/O planes) with a cylinder obstacle.

    The cylinder sits at ``x = nx/4`` on the channel centreline with
    default radius ``max(2, ny/8)``; in 3D its axis spans ``z``. The
    deterministic placement means a :class:`~repro.parallel.RunSpec`
    rebuilds the identical mask on every rank.
    """
    from ..geometry.domain import SOLID

    if len(shape) != lat.d:
        raise ValueError(
            f"shape {shape} does not match lattice dimension {lat.d}")
    base = (channel_2d(*shape, with_io=False) if lat.d == 2
            else channel_3d(*shape, with_io=False))
    nt = np.array(base.node_type)
    cx, cy = shape[0] / 4.0, (shape[1] - 1) / 2.0
    if radius is None:
        radius = max(2.0, shape[1] / 8.0)
    x, y = np.meshgrid(np.arange(shape[0]), np.arange(shape[1]),
                       indexing="ij")
    disk = (x - cx) ** 2 + (y - cy) ** 2 <= float(radius) ** 2
    nt[disk if lat.d == 2 else disk[..., None] & np.ones(shape, bool)] = SOLID
    return Domain(nt)


def cylinder_channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                             shape: tuple[int, ...], tau: float = 0.8,
                             u_max: float = 0.05,
                             radius: float | None = None,
                             backend: str = "reference") -> Solver:
    """Force-driven channel with a staircase cylinder obstacle.

    Periodic streamwise with half-way bounce-back on the walls *and* the
    cylinder staircase — the masked-geometry workload the ``sparse``
    backend folds into its gather tables (see ``mrlbm profile --accel
    compare --problem cylinder``), now a first-class problem kind shared
    by the CLI, the distributed runtime and the job server.
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    domain = cylinder_channel_domain(lat, shape, radius)
    force = channel_body_force(lat, shape, tau, u_max)
    return make_solver(scheme, lat, domain, tau,
                       boundaries=[HalfwayBounceBack()], force=force,
                       backend=backend)


def porous_channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                           shape: tuple[int, ...], tau: float = 0.8,
                           solid_fraction: float = 0.85, seed: int = 0,
                           force_x: float = 1e-6,
                           backend: str = "reference") -> Solver:
    """Force-driven flow through a seeded random porous medium.

    Mirrors the benchmark suite's ``porous`` cells: each node is solid
    with probability ``solid_fraction`` (seeded, so every rank and every
    resubmission rebuilds the identical microstructure), driven by a
    uniform streamwise body force ``force_x`` against half-way
    bounce-back — the ~15%-fluid regime where the ``sparse`` backend's
    compact state pays off.
    """
    from ..geometry import porous_medium

    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(
            f"shape {shape} does not match lattice dimension {lat.d}")
    domain = porous_medium(shape, solid_fraction=float(solid_fraction),
                           seed=int(seed))
    force = np.zeros(lat.d)
    force[0] = float(force_x)
    return make_solver(scheme, lat, domain, tau,
                       boundaries=[HalfwayBounceBack()], force=force,
                       backend=backend)


def periodic_problem(scheme: str, lattice: str | LatticeDescriptor,
                     shape: tuple[int, ...], tau: float = 0.8,
                     rho0: np.ndarray | float = 1.0,
                     u0: np.ndarray | None = None,
                     force: np.ndarray | None = None,
                     backend: str = "reference") -> Solver:
    """Fully periodic box (no boundaries) — e.g. for Taylor-Green vortices."""
    from ..geometry import periodic_box

    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    return make_solver(scheme, lat, periodic_box(shape), tau, rho0=rho0, u0=u0,
                       force=force, backend=backend)
