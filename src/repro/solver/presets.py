"""Preset problem setups mirroring the paper's proxy applications.

The paper's performance proxy apps "simulate flow in a rectangular 2D or 3D
channel, using bounceback boundary conditions at the channel walls and
finite difference boundary conditions at the inlet and outlet" (Section 4).
:func:`channel_problem` assembles exactly that: geometry, Poiseuille inlet
profile, pressure outlet, wall bounce-back, and an initial condition, for
any of the three schemes.
"""

from __future__ import annotations

import numpy as np

from ..boundary import HalfwayBounceBack, Plane, PressureOutlet, VelocityInlet
from ..geometry import Domain, channel_2d, channel_3d
from ..lattice import LatticeDescriptor, get_lattice
from ..validation.analytic import duct_profile, poiseuille_profile
from .base import Solver
from .moment import MRPSolver, MRRSolver
from .standard import STSolver

__all__ = ["SCHEMES", "make_solver", "channel_problem", "periodic_problem",
           "forced_channel_problem"]

SCHEMES: dict[str, type[Solver]] = {
    "ST": STSolver,
    "MR-P": MRPSolver,
    "MR-R": MRRSolver,
}


def make_solver(scheme: str, lat: LatticeDescriptor, domain: Domain, tau: float,
                **kwargs) -> Solver:
    """Instantiate a solver by paper scheme name (``ST``/``MR-P``/``MR-R``)."""
    key = scheme.upper().replace("_", "-")
    if key not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {sorted(SCHEMES)}")
    return SCHEMES[key](lat, domain, tau, **kwargs)


def channel_inlet_profile(lat: LatticeDescriptor, shape: tuple[int, ...],
                          u_max: float) -> np.ndarray:
    """Inlet velocity profile for the rectangular channel.

    2D: plane Poiseuille parabola over the ``ny`` cross-section.
    3D: exact rectangular-duct profile over the ``ny x nz`` cross-section.
    Returns ``(D, *cross_section_shape)``.
    """
    if lat.d == 2:
        prof = poiseuille_profile(shape[1], u_max)
        u = np.zeros((2, shape[1]))
        u[0] = prof
        return u
    prof = duct_profile(shape[1], shape[2], u_max)
    u = np.zeros((3, shape[1], shape[2]))
    u[0] = prof
    return u


def channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                    shape: tuple[int, ...], tau: float = 0.8,
                    u_max: float = 0.05, bc_method: str = "regularized-fd",
                    start_from_profile: bool = True,
                    outlet_tangential: str = "extrapolate",
                    backend: str = "reference") -> Solver:
    """Build a ready-to-run rectangular channel flow (the paper's proxy app).

    Parameters
    ----------
    scheme:
        ``"ST"``, ``"MR-P"`` or ``"MR-R"``.
    lattice:
        Lattice name or descriptor; its dimension must match ``len(shape)``.
    shape:
        Grid shape including the one-node solid rim on the walls.
    tau, u_max:
        Relaxation time and peak inlet velocity (lattice units).
    bc_method:
        Inlet/outlet reconstruction, ``"regularized-fd"`` (the paper's
        finite-difference boundaries) or ``"nebb"``.
    start_from_profile:
        Initialize the whole channel with the inlet profile (fast
        convergence) instead of fluid at rest.
    backend:
        Execution backend (see :mod:`repro.accel`).
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    if lat.d == 2:
        domain = channel_2d(*shape)
    else:
        domain = channel_3d(*shape)

    u_in = channel_inlet_profile(lat, shape, u_max)
    # Bounce-back first so the inlet/outlet reconstructions see the
    # reflected wall-link populations — this matches the fused order of the
    # virtual-GPU kernels (reflection at scatter time, reconstruction at
    # finalize time) and is also the physically consistent choice.
    boundaries = [
        HalfwayBounceBack(),
        VelocityInlet(Plane(axis=0, side=0), u_in, method=bc_method),
        PressureOutlet(Plane(axis=0, side=-1), rho_out=1.0, method=bc_method,
                       tangential=outlet_tangential),
    ]
    u0 = None
    if start_from_profile:
        u0 = np.zeros((lat.d, *shape))
        u0[:] = u_in[(slice(None), None) + (slice(None),) * (lat.d - 1)]
    return make_solver(scheme, lat, domain, tau, boundaries=boundaries, u0=u0,
                       backend=backend)


def forced_channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                           shape: tuple[int, ...], tau: float = 0.8,
                           u_max: float = 0.05,
                           backend: str = "reference") -> Solver:
    """Body-force-driven channel: periodic streamwise, bounce-back walls.

    The force magnitude is chosen so the steady plane-Poiseuille (2D) or
    duct (3D) flow peaks near ``u_max``:
    ``F = 8 nu u_max / H^2`` with ``H`` the wall-to-wall width (for the 3D
    duct this slightly overshoots the plane-channel formula, as expected).
    Uses the projected Guo forcing for MR schemes and classical Guo for ST.
    ``backend`` selects the execution backend (see :mod:`repro.accel`);
    the fused kernels fold the Guo source into the collide stage.
    """
    import numpy as np

    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    if lat.d == 2:
        domain = channel_2d(*shape, with_io=False)
    else:
        domain = channel_3d(*shape, with_io=False)
    h = shape[1] - 2
    nu = lat.viscosity(tau)
    force = np.zeros(lat.d)
    force[0] = 8.0 * nu * u_max / (h * h)
    return make_solver(scheme, lat, domain, tau,
                       boundaries=[HalfwayBounceBack()], force=force,
                       backend=backend)


def periodic_problem(scheme: str, lattice: str | LatticeDescriptor,
                     shape: tuple[int, ...], tau: float = 0.8,
                     rho0: np.ndarray | float = 1.0,
                     u0: np.ndarray | None = None,
                     force: np.ndarray | None = None,
                     backend: str = "reference") -> Solver:
    """Fully periodic box (no boundaries) — e.g. for Taylor-Green vortices."""
    from ..geometry import periodic_box

    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    return make_solver(scheme, lat, periodic_box(shape), tau, rho0=rho0, u0=u0,
                       force=force, backend=backend)
