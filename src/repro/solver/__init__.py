"""Reference solvers for the three paper schemes (ST, MR-P, MR-R)."""

from .aa import AASolver
from .base import Solver, SolverDiagnostics
from .moment import MRPSolver, MRRSolver
from .non_newtonian import (
    PowerLawMRPSolver,
    power_law_force,
    power_law_poiseuille_profile,
)
from .monitors import (
    ConvergenceMonitor,
    EnergyMonitor,
    EnstrophyMonitor,
    ForceMonitor,
    Monitor,
    Monitors,
    ProbeMonitor,
)
from .presets import (
    SCHEMES,
    channel_problem,
    cylinder_channel_problem,
    forced_channel_problem,
    porous_channel_problem,
    make_solver,
    periodic_problem,
)
from .standard import STSolver

__all__ = [
    "Solver",
    "SolverDiagnostics",
    "STSolver",
    "AASolver",
    "MRPSolver",
    "MRRSolver",
    "PowerLawMRPSolver",
    "power_law_force",
    "power_law_poiseuille_profile",
    "SCHEMES",
    "make_solver",
    "channel_problem",
    "periodic_problem",
    "forced_channel_problem",
    "cylinder_channel_problem",
    "porous_channel_problem",
    "Monitor",
    "Monitors",
    "EnergyMonitor",
    "EnstrophyMonitor",
    "ProbeMonitor",
    "ForceMonitor",
    "ConvergenceMonitor",
]
