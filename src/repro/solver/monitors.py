"""Run-time monitors: time-series collection during a simulation.

Monitors are callbacks for :meth:`repro.solver.Solver.run` that sample
diagnostics on a fixed cadence — kinetic energy, enstrophy, body forces,
probe velocities — and keep the history for post-processing. They compose:

    energy = EnergyMonitor(every=50)
    probe = ProbeMonitor((nx//2, ny//2), every=10)
    solver.run(5000, callback=Monitors(energy, probe))
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..validation.norms import kinetic_energy

__all__ = [
    "Monitor",
    "Monitors",
    "EnergyMonitor",
    "EnstrophyMonitor",
    "ProbeMonitor",
    "ForceMonitor",
    "ConvergenceMonitor",
]


class Monitor:
    """Base class: samples every ``every`` steps into ``times``/``values``."""

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self.every = int(every)
        self.times: list[int] = []
        self.values: list = []

    def sample(self, solver) -> object:
        """One observation of the solver; subclasses define the quantity."""
        raise NotImplementedError

    def __call__(self, solver) -> None:
        """Sample the solver if its time matches the cadence."""
        if solver.time % self.every == 0:
            self.times.append(solver.time)
            self.values.append(self.sample(solver))

    def flush(self, solver) -> None:
        """Record the current state if the cadence has not just done so.

        :meth:`repro.solver.Solver.run` calls this once after its final
        step, so a run whose length is not a multiple of ``every`` still
        records the end state (previously that final sample was silently
        dropped).
        """
        if not self.times or self.times[-1] != solver.time:
            self.times.append(solver.time)
            self.values.append(self.sample(solver))

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) as arrays.

        Vector-valued samples are stacked explicitly along a leading time
        axis, so probe/force monitors always yield a dense ``(n, d)`` float
        array (never a ragged ``object`` array) regardless of how the
        sampling cadence interacted with an early stop.
        """
        times = np.asarray(self.times)
        if not self.values:
            return times, np.empty(0)
        if isinstance(self.values[0], np.ndarray):
            return times, np.stack([np.asarray(v) for v in self.values])
        return times, np.asarray(self.values)


class Monitors:
    """Compose several monitors into one callback."""

    def __init__(self, *monitors: Monitor):
        self.monitors = list(monitors)

    def __call__(self, solver) -> None:
        for m in self.monitors:
            m(solver)

    def flush(self, solver) -> None:
        """Forward the end-of-run flush to every composed monitor."""
        for m in self.monitors:
            flush = getattr(m, "flush", None)
            if flush is not None:
                flush(solver)


class EnergyMonitor(Monitor):
    """Total kinetic energy over the fluid region."""

    def sample(self, solver) -> float:
        """Kinetic energy ``sum(rho |u|^2 / 2)`` over the fluid mask."""
        rho, u = solver.macroscopic()
        return kinetic_energy(rho, u, solver.domain.fluid_mask)


class EnstrophyMonitor(Monitor):
    """Total enstrophy (periodic gradient stencil by default)."""

    def __init__(self, every: int = 1, periodic: bool = True):
        super().__init__(every)
        self.periodic = periodic

    def sample(self, solver) -> float:
        """Enstrophy of the current velocity field over the fluid mask."""
        from ..analysis import enstrophy

        _, u = solver.macroscopic()
        return enstrophy(u, periodic=self.periodic,
                         mask=solver.domain.fluid_mask)


class ProbeMonitor(Monitor):
    """Velocity vector at a fixed lattice node."""

    def __init__(self, position: Sequence[int], every: int = 1):
        super().__init__(every)
        self.position = tuple(int(p) for p in position)

    def sample(self, solver) -> np.ndarray:
        """The velocity vector at the probe position (copied)."""
        _, u = solver.macroscopic()
        return u[(slice(None), *self.position)].copy()


class ForceMonitor(Monitor):
    """Momentum-exchange force on a solid body."""

    def __init__(self, solver, body_mask=None, every: int = 1):
        from ..analysis.forces import MomentumExchangeForce

        super().__init__(every)
        self._evaluator = MomentumExchangeForce(solver, body_mask)

    def sample(self, solver) -> np.ndarray:
        """The instantaneous momentum-exchange force on the body."""
        return self._evaluator.force()


class ConvergenceMonitor(Monitor):
    """Max nodal velocity change per sampling interval (steady-state gauge).

    The very first visit only records the velocity baseline — it appends
    no sample, so the series never starts with an ``inf`` sentinel that
    would poison plots and ``series()`` statistics.
    """

    def __init__(self, every: int = 50):
        super().__init__(every)
        self._last_u: np.ndarray | None = None

    def __call__(self, solver) -> None:
        if solver.time % self.every != 0:
            return
        if self._last_u is None:
            _, u = solver.macroscopic()
            self._last_u = u.copy()
            return
        self.times.append(solver.time)
        self.values.append(self.sample(solver))

    def flush(self, solver) -> None:
        """End-of-run flush: record the final delta against the baseline.

        Without a baseline yet (flush before the first cadence visit)
        only the baseline is recorded — the series never contains the
        ``inf`` sentinel.
        """
        if self._last_u is None:
            _, u = solver.macroscopic()
            self._last_u = u.copy()
            return
        if not self.times or self.times[-1] != solver.time:
            self.times.append(solver.time)
            self.values.append(self.sample(solver))

    def sample(self, solver) -> float:
        """Max abs velocity change since the last sample (updates it)."""
        _, u = solver.macroscopic()
        if self._last_u is None:
            self._last_u = u.copy()
            return np.inf
        delta = float(
            np.abs(u - self._last_u)[:, solver.domain.fluid_mask].max()
        )
        self._last_u = u.copy()
        return delta

    @property
    def converged(self) -> bool:
        """Whether the most recent velocity delta dropped below 1e-8."""
        return bool(self.values) and self.values[-1] < 1e-8
