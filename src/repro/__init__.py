"""repro — Moment representation of regularized lattice Boltzmann methods.

Reproduction of Valero-Lara, Vetter, Gounley & Randles, *Moment
Representation of Regularized Lattice Boltzmann Methods on NVIDIA and AMD
GPUs* (SC 2023).

Top-level re-exports cover the most common entry points; see the
subpackages for the full API:

* :mod:`repro.lattice` — velocity sets, Hermite tensors, moment metadata.
* :mod:`repro.core` — moment algebra, equilibria, collision operators,
  streaming.
* :mod:`repro.boundary` — bounce-back, Zou-He and regularized
  finite-difference velocity boundaries.
* :mod:`repro.geometry` — channels, cavities, node-type masks.
* :mod:`repro.solver` — ST / MR-P / MR-R reference solvers.
* :mod:`repro.gpu` — virtual-GPU substrate (devices, memory tracking,
  block executor, ST and MR kernels).
* :mod:`repro.perf` — roofline, footprint and MFLUPS performance models.
* :mod:`repro.obs` — telemetry, exporters, run manifests, stability
  watchdog and the profiling harness.
* :mod:`repro.parallel` — distributed slab decomposition.
* :mod:`repro.analysis` — observables, forces, stability margins.
* :mod:`repro.refinement` — two-level grid refinement.
* :mod:`repro.validation` — analytic solutions and error norms.
* :mod:`repro.bench` — paper table/figure regeneration harness.
"""

from .lattice import D2Q9, D3Q19, D3Q27, D3Q39, get_lattice

__version__ = "1.0.0"

__all__ = ["get_lattice", "D2Q9", "D3Q19", "D3Q27", "D3Q39", "__version__"]
