"""Benchmark harness regenerating every table and figure of the paper."""

from .figures import (
    SIZES_2D,
    SIZES_3D,
    FigureSeries,
    figure2_d2q9,
    figure3_d3q19,
    figure_data,
    render_figure_text,
)
from .measure import TrafficMeasurement, measure_channel_traffic, measurement_shape
from .plot import figure_to_csv, figure_to_svg
from .report import build_report, write_report
from .summary import footprint_summary, intensity_summary, speedup_summary
from .tables import (
    render_table,
    table1_devices,
    table2_bytes_per_flup,
    table3_roofline,
    table4_bandwidth,
)

__all__ = [
    "TrafficMeasurement",
    "measure_channel_traffic",
    "measurement_shape",
    "table1_devices",
    "table2_bytes_per_flup",
    "table3_roofline",
    "table4_bandwidth",
    "render_table",
    "FigureSeries",
    "figure_data",
    "figure2_d2q9",
    "figure3_d3q19",
    "render_figure_text",
    "SIZES_2D",
    "SIZES_3D",
    "footprint_summary",
    "speedup_summary",
    "intensity_summary",
    "figure_to_csv",
    "figure_to_svg",
    "build_report",
    "write_report",
]
