"""Regeneration of the paper's figures (E5, E6): MFLUPS vs problem size.

Figure 2: D2Q9 on V100 and MI100; Figure 3: D3Q19. Each figure shows the
ST, MR-P and MR-R series over a range of problem sizes together with the
ST and MR roofline lines. Series are produced by the calibrated model fed
with kernel-measured traffic; the rising-then-flat shape comes from the
resident-block saturation and launch-overhead terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import MI100, V100, GPUDevice
from ..lattice import get_lattice
from ..perf import PerformanceModel, roofline_mflups
from .measure import measure_channel_traffic

__all__ = ["FigureSeries", "figure_data", "figure2_d2q9", "figure3_d3q19",
           "SIZES_2D", "SIZES_3D", "render_figure_text"]

#: Problem-size sweeps (grid shapes; ~0.5M to ~33M lattice nodes).
SIZES_2D: tuple[tuple[int, int], ...] = (
    (768, 768), (1024, 1024), (1536, 1536), (2048, 2048),
    (3072, 2048), (3072, 3072), (4096, 3072), (4096, 4096),
    (5120, 4096), (5760, 5760),
)
SIZES_3D: tuple[tuple[int, int, int], ...] = (
    (96, 96, 96), (128, 128, 96), (128, 128, 128), (192, 128, 128),
    (192, 192, 192), (256, 192, 192), (256, 256, 256), (320, 320, 320),
)

_SCHEMES = ("ST", "MR-P", "MR-R")


@dataclass
class FigureSeries:
    """One device's panel of a figure."""

    device: str
    lattice: str
    sizes: list[int] = field(default_factory=list)          # nodes per point
    series: dict[str, list[float]] = field(default_factory=dict)
    rooflines: dict[str, float] = field(default_factory=dict)


def _mr_tile(ndim: int) -> tuple[tuple[int, ...], int]:
    """Paper-style MR launch: 16-wide, 8-high tiles in 2D; 8x8x1 in 3D."""
    return ((16,), 8) if ndim == 2 else ((8, 8), 1)


def figure_data(lattice: str, sizes, devices: tuple[GPUDevice, ...] = (V100, MI100)
                ) -> list[FigureSeries]:
    """Model the ST/MR-P/MR-R series over problem sizes for both devices."""
    lat = get_lattice(lattice)
    tile, w_t = _mr_tile(lat.d)
    panels = []
    for dev in devices:
        pm = PerformanceModel(dev)
        panel = FigureSeries(device=dev.name, lattice=lat.name)
        panel.sizes = [int(_prod(s)) for s in sizes]
        for scheme in _SCHEMES:
            meas = measure_channel_traffic(scheme, lattice, dev.name)
            vals = []
            for shape in sizes:
                pred = pm.predict_shape(
                    lat, scheme, shape,
                    tile_cross=tile if scheme != "ST" else None,
                    w_t=w_t if scheme != "ST" else 1,
                    bytes_per_node=meas.dram_bytes_per_node,
                )
                vals.append(pred.mflups)
            panel.series[scheme] = vals
        panel.rooflines = {
            "ST": roofline_mflups(dev, lat, "ST"),
            "MR": roofline_mflups(dev, lat, "MR"),
        }
        panels.append(panel)
    return panels


def figure2_d2q9() -> list[FigureSeries]:
    """Paper Figure 2: D2Q9 performance on V100 (left) and MI100 (right)."""
    return figure_data("D2Q9", SIZES_2D)


def figure3_d3q19() -> list[FigureSeries]:
    """Paper Figure 3: D3Q19 performance on V100 (left) and MI100 (right)."""
    return figure_data("D3Q19", SIZES_3D)


def render_figure_text(panels: list[FigureSeries]) -> str:
    """Plain-text rendering of a figure (one block per device)."""
    blocks = []
    for p in panels:
        lines = [f"{p.lattice} on {p.device}  "
                 f"(rooflines: ST {p.rooflines['ST']:,.0f}, MR {p.rooflines['MR']:,.0f} MFLUPS)"]
        header = f"{'nodes':>12s}" + "".join(f"{s:>10s}" for s in _SCHEMES)
        lines.append(header)
        for k, n in enumerate(p.sizes):
            row = f"{n:12,d}" + "".join(
                f"{p.series[s][k]:10,.0f}" for s in _SCHEMES
            )
            lines.append(row)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _prod(shape) -> int:
    out = 1
    for s in shape:
        out *= s
    return out
