"""Dependency-free figure export: CSV series and SVG line charts.

Renders the regenerated Figures 2-3 as standalone SVG files (one panel
per device, ST/MR-P/MR-R series plus dashed roofline lines), matching the
layout of the paper's figures, without requiring matplotlib.
"""

from __future__ import annotations

import io

from .figures import FigureSeries

__all__ = ["figure_to_csv", "figure_to_svg"]

_COLORS = {"ST": "#355e8d", "MR-P": "#b3432b", "MR-R": "#3b7d54"}
_ROOF_COLORS = {"ST": "#9bb4cc", "MR": "#d9a79b"}


def figure_to_csv(panels: list[FigureSeries]) -> str:
    """One CSV block per device panel: nodes, per-scheme MFLUPS, rooflines."""
    buf = io.StringIO()
    for p in panels:
        schemes = sorted(p.series)
        buf.write(f"# {p.lattice} on {p.device}; rooflines: "
                  + ", ".join(f"{k}={v:.0f}" for k, v in p.rooflines.items())
                  + "\n")
        buf.write("nodes," + ",".join(schemes) + "\n")
        for k, n in enumerate(p.sizes):
            buf.write(str(n) + ","
                      + ",".join(f"{p.series[s][k]:.1f}" for s in schemes)
                      + "\n")
        buf.write("\n")
    return buf.getvalue()


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    import math

    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9 * step:
        if t >= lo - 1e-9 * step:
            ticks.append(t)
        t += step
    return ticks


def figure_to_svg(panels: list[FigureSeries], title: str = "",
                  width: int = 460, height: int = 360) -> str:
    """Side-by-side SVG panels (V100 left, MI100 right), paper-style."""
    pad_l, pad_r, pad_t, pad_b = 64, 16, 48, 46
    total_w = width * len(panels)
    out = io.StringIO()
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{height}" font-family="Helvetica, Arial, sans-serif">\n'
    )
    out.write(f'<rect width="{total_w}" height="{height}" fill="white"/>\n')
    if title:
        out.write(f'<text x="{total_w / 2}" y="18" text-anchor="middle" '
                  f'font-size="14" font-weight="bold">{title}</text>\n')

    for pi, p in enumerate(panels):
        x0 = pi * width + pad_l
        y0 = pad_t
        plot_w = width - pad_l - pad_r
        plot_h = height - pad_t - pad_b
        x_max = max(p.sizes)
        y_max = 1.05 * max(max(p.rooflines.values()),
                           max(max(v) for v in p.series.values()))

        def sx(n):
            return x0 + plot_w * n / x_max

        def sy(v):
            return y0 + plot_h * (1.0 - v / y_max)

        # Frame and panel caption.
        out.write(f'<rect x="{x0}" y="{y0}" width="{plot_w}" '
                  f'height="{plot_h}" fill="none" stroke="#444"/>\n')
        out.write(f'<text x="{x0 + plot_w / 2}" y="{y0 - 8}" '
                  f'text-anchor="middle" font-size="12">'
                  f'{p.lattice} on {p.device}</text>\n')

        # Axis ticks.
        for t in _ticks(0, x_max, 5):
            px = sx(t)
            out.write(f'<line x1="{px:.1f}" y1="{y0 + plot_h}" '
                      f'x2="{px:.1f}" y2="{y0 + plot_h + 4}" stroke="#444"/>\n')
            label = f"{t / 1e6:.0f}M" if x_max > 2e6 else f"{t:.0f}"
            out.write(f'<text x="{px:.1f}" y="{y0 + plot_h + 16}" '
                      f'text-anchor="middle" font-size="10">{label}</text>\n')
        for t in _ticks(0, y_max, 6):
            py = sy(t)
            out.write(f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" '
                      f'y2="{py:.1f}" stroke="#444"/>\n')
            out.write(f'<text x="{x0 - 7}" y="{py + 3:.1f}" '
                      f'text-anchor="end" font-size="10">{t:,.0f}</text>\n')
        out.write(f'<text x="{x0 + plot_w / 2}" y="{height - 8}" '
                  f'text-anchor="middle" font-size="11">'
                  f'problem size (lattice nodes)</text>\n')
        out.write(f'<text x="{pi * width + 14}" y="{y0 + plot_h / 2}" '
                  f'font-size="11" text-anchor="middle" '
                  f'transform="rotate(-90 {pi * width + 14} '
                  f'{y0 + plot_h / 2})">MFLUPS</text>\n')

        # Roofline dashed lines.
        for name, roof in p.rooflines.items():
            if roof > y_max:
                continue
            py = sy(roof)
            out.write(f'<line x1="{x0}" y1="{py:.1f}" x2="{x0 + plot_w}" '
                      f'y2="{py:.1f}" stroke="{_ROOF_COLORS[name]}" '
                      f'stroke-dasharray="6 4" stroke-width="1.3"/>\n')
            out.write(f'<text x="{x0 + plot_w - 4}" y="{py - 4:.1f}" '
                      f'text-anchor="end" font-size="9" '
                      f'fill="{_ROOF_COLORS[name]}">{name} roofline</text>\n')

        # Data series.
        for scheme, vals in p.series.items():
            color = _COLORS.get(scheme, "#555")
            pts = " ".join(f"{sx(n):.1f},{sy(v):.1f}"
                           for n, v in zip(p.sizes, vals))
            out.write(f'<polyline points="{pts}" fill="none" '
                      f'stroke="{color}" stroke-width="2"/>\n')
            for n, v in zip(p.sizes, vals):
                out.write(f'<circle cx="{sx(n):.1f}" cy="{sy(v):.1f}" '
                          f'r="2.6" fill="{color}"/>\n')

        # Legend.
        lx, ly = x0 + 10, y0 + 12
        for k, scheme in enumerate(p.series):
            color = _COLORS.get(scheme, "#555")
            yk = ly + 14 * k
            out.write(f'<line x1="{lx}" y1="{yk - 4}" x2="{lx + 18}" '
                      f'y2="{yk - 4}" stroke="{color}" stroke-width="2"/>\n')
            out.write(f'<text x="{lx + 23}" y="{yk}" font-size="10">'
                      f'{scheme}</text>\n')

    out.write("</svg>\n")
    return out.getvalue()
