"""Kernel traffic measurement used by the table/figure regeneration.

Bytes moved per node are size-independent once the grid exceeds the cache
(the tracker flushes its L2 model every step precisely to emulate the
paper's >> L2 working sets), so traffic is measured once on a reduced grid
by actually executing the virtual-GPU kernels, then combined with the
calibrated performance model at any problem size.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path


from ..gpu import KernelProblem, MemoryTracker, MRKernel, STKernel
from ..gpu.device import get_device
from ..lattice import get_lattice
from ..solver.presets import channel_inlet_profile

__all__ = ["TrafficMeasurement", "measure_channel_traffic",
           "measurement_shape", "publish_measurement"]


@dataclass(frozen=True)
class TrafficMeasurement:
    """DRAM traffic measured from a real kernel execution."""

    scheme: str
    lattice: str
    device: str
    shape: tuple[int, ...]
    dram_bytes_per_node: float
    dram_read_per_node: float
    dram_write_per_node: float
    logical_bytes_per_node: float     # requested bytes (no cache filtering)
    n_nodes: int


def measurement_shape(ndim: int) -> tuple[int, ...]:
    """Reduced channel grid for traffic measurement (B/node is
    size-independent beyond cache scale). Chosen so the wall fraction is
    small (<~3%), since the paper's B/F is per *fluid* lattice update."""
    return (256, 258) if ndim == 2 else (32, 128, 128)


def _cache_file() -> Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(root) / "repro-lbm" / "traffic-cache.json"


def _cache_key(*parts) -> str:
    return "|".join(str(p) for p in parts)


def _load_cache() -> dict:
    try:
        return json.loads(_cache_file().read_text())
    except (OSError, ValueError):
        return {}


def _store_cache(cache: dict) -> None:
    try:
        path = _cache_file()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(cache, indent=1, sort_keys=True))
    except OSError:  # pragma: no cover - cache is best-effort
        pass


@lru_cache(maxsize=None)
def measure_channel_traffic(scheme: str, lattice: str, device: str = "V100",
                            shape: tuple[int, ...] | None = None,
                            tile_cross: tuple[int, ...] | None = None,
                            w_t: int = 1, u_max: float = 0.04,
                            tau: float = 0.8) -> TrafficMeasurement:
    """Run the channel proxy app on the virtual GPU and measure traffic.

    One warm-up step, then one measured step (the first step is identical
    in traffic but kept separate for hygiene). Measurements are
    deterministic, so results are memoized in-process and persisted to a
    small JSON cache under ``$XDG_CACHE_HOME/repro-lbm/``.
    """
    key = _cache_key(scheme.upper(), lattice, device, shape, tile_cross, w_t,
                     u_max, tau)
    cache = _load_cache()
    if key in cache:
        entry = dict(cache[key])
        entry["shape"] = tuple(entry["shape"])
        return TrafficMeasurement(**entry)
    meas = _measure_channel_traffic(scheme, lattice, device, shape,
                                    tile_cross, w_t, u_max, tau)
    cache[key] = asdict(meas)
    _store_cache(cache)
    return meas


def publish_measurement(telemetry, meas: TrafficMeasurement,
                        prefix: str = "traffic") -> None:
    """Publish a traffic measurement into a telemetry registry as gauges,
    namespaced ``traffic.<SCHEME>.<lattice>.*`` so multi-scheme bench runs
    coexist in one registry."""
    if not telemetry.enabled:
        return
    ns = f"{prefix}.{meas.scheme}.{meas.lattice}"
    telemetry.gauge(f"{ns}.dram_bytes_per_node", meas.dram_bytes_per_node)
    telemetry.gauge(f"{ns}.dram_read_per_node", meas.dram_read_per_node)
    telemetry.gauge(f"{ns}.dram_write_per_node", meas.dram_write_per_node)
    telemetry.gauge(f"{ns}.logical_bytes_per_node", meas.logical_bytes_per_node)


def _measure_channel_traffic(scheme, lattice, device, shape, tile_cross,
                             w_t, u_max, tau) -> TrafficMeasurement:
    """Uncached measurement (see :func:`measure_channel_traffic`)."""
    lat = get_lattice(lattice)
    dev = get_device(device)
    if shape is None:
        shape = measurement_shape(lat.d)
    u_in = channel_inlet_profile(lat, shape, u_max)
    prob = KernelProblem(lat, shape, tau, mode="channel", u_inlet=u_in,
                         outlet_tangential="zero")
    tracker = MemoryTracker(l2_bytes=int(dev.l2_kb * 1024))
    if scheme.upper() == "ST":
        kernel = STKernel(prob, dev, tracker=tracker)
    else:
        kernel = MRKernel(prob, dev, scheme=scheme.upper(),
                          tile_cross=tile_cross, w_t=w_t, tracker=tracker)
    kernel.step()
    stats = kernel.step()
    t = stats.traffic
    n = stats.n_nodes
    return TrafficMeasurement(
        scheme=scheme.upper(),
        lattice=lat.name,
        device=dev.name,
        shape=tuple(shape),
        dram_bytes_per_node=t.sector_bytes_total / n,
        dram_read_per_node=t.sector_bytes_read / n,
        dram_write_per_node=t.sector_bytes_written / n,
        logical_bytes_per_node=t.total_bytes / n,
        n_nodes=n,
    )
