"""One-shot reproduction report: every table, figure and claim in one file.

``mrlbm report --output report.md`` regenerates the paper's full
evaluation section (with kernel-measured traffic and the calibrated
model), renders it as markdown with paper-vs-ours columns, and optionally
drops the SVG figures next to it.
"""

from __future__ import annotations

import io
from pathlib import Path

__all__ = ["build_report", "write_report"]

_PAPER_SPEEDUPS = {("V100", "D2Q9"): 1.32, ("MI100", "D2Q9"): 1.38,
                   ("V100", "D3Q19"): 1.46, ("MI100", "D3Q19"): 1.14}


def _md_table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def build_report(include_figures: bool = True) -> str:
    """Assemble the full markdown report (regenerates all measurements)."""
    from . import (
        figure2_d2q9,
        figure3_d3q19,
        footprint_summary,
        intensity_summary,
        speedup_summary,
        table1_devices,
        table2_bytes_per_flup,
        table3_roofline,
        table4_bandwidth,
    )

    buf = io.StringIO()
    w = buf.write
    w("# Reproduction report\n\n")
    w("*Moment Representation of Regularized Lattice Boltzmann Methods on "
      "NVIDIA and AMD GPUs* (Valero-Lara, Vetter, Gounley, Randles — SC 2023)\n\n")
    w("All traffic numbers below are measured by executing the paper's "
      "Algorithms 1-2 on the virtual-GPU substrate; throughput comes from "
      "the calibrated performance model (see docs/PERFMODEL.md for what is "
      "measured vs fitted).\n\n")

    # Table 1.
    t1 = table1_devices()
    w("## Table 1 — device features\n\n")
    w(_md_table(t1["headers"], t1["rows"]))
    w("\n\n")

    # Table 2.
    w("## Table 2 — bytes per fluid lattice update\n\n")
    rows = [[r["pattern"], r["formula"], r["D2Q9"],
             r["D2Q9_measured"], r["D3Q19"], r["D3Q19_measured"]]
            for r in table2_bytes_per_flup()["rows"]]
    w(_md_table(["Pattern", "B/F", "D2Q9 (paper)", "D2Q9 (measured)",
                 "D3Q19 (paper)", "D3Q19 (measured)"], rows))
    w("\n\n")

    # Table 3.
    w("## Table 3 — roofline MFLUPS (Eq. 15)\n\n")
    rows = [[r["pattern"]] + [f"{r[(d, l)]:,.0f}"
            for d in ("V100", "MI100") for l in ("D2Q9", "D3Q19")]
            for r in table3_roofline()["rows"]]
    w(_md_table(["Model", "V100 D2Q9", "V100 D3Q19",
                 "MI100 D2Q9", "MI100 D3Q19"], rows))
    w("\n\n")

    # Table 4.
    w("## Table 4 — sustained bandwidth\n\n")
    rows = [[r["device"], r["pattern"],
             f"{r['D2Q9']:.0f} GB/s ({r['D2Q9_fraction']:.0%})",
             f"{r['D3Q19']:.0f} GB/s ({r['D3Q19_fraction']:.0%})"]
            for r in table4_bandwidth()["rows"]]
    w(_md_table(["GPU", "Model", "D2Q9", "D3Q19"], rows))
    w("\n\n")

    # Figures.
    if include_figures:
        from .figures import render_figure_text

        for title, fn in (("Figure 2 — D2Q9", figure2_d2q9),
                          ("Figure 3 — D3Q19", figure3_d3q19)):
            w(f"## {title} (MFLUPS vs problem size)\n\n```\n")
            w(render_figure_text(fn()))
            w("\n```\n\n")

    # Footprint.
    w("## Memory footprint at 15M fluid nodes (Section 4.1)\n\n")
    rows = []
    for r in footprint_summary():
        if r["scheme"] == "reduction":
            rows.append([r["lattice"], "reduction", f"{r['gib']:.1%}",
                         f"~{r['paper_gb']:.0%}"])
        else:
            rows.append([r["lattice"], r["scheme"], f"{r['gib']:.2f} GiB",
                         f"~{r['paper_gb']} GB"])
    w(_md_table(["lattice", "scheme", "ours", "paper"], rows))
    w("\n\n")

    # Speedups.
    w("## Headline speedups (Section 5)\n\n")
    rows = [[r["device"], r["lattice"], f"{r['st_mflups']:,.0f}",
             f"{r['mrp_mflups']:,.0f}", f"{r['speedup']:.2f}x",
             f"{r['paper_speedup']}x"] for r in speedup_summary()]
    w(_md_table(["device", "lattice", "ST", "MR-P", "ours", "paper"], rows))
    w("\n\n")

    # MR-R cost.
    s = intensity_summary()
    w("## Recursive-regularization cost (Sections 4.2-4.3)\n\n")
    rows = [["D2Q9 arithmetic-intensity ratio MR-R/MR-P",
             f"{s['ai_ratio_d2q9']:.2f}", f"~{s['paper_ai_ratio']}"]]
    for dev, v in s["d3q19_penalties"].items():
        rows.append([f"{dev} D3Q19 MR-R penalty",
                     f"{v['penalty']:.0f} MFLUPS",
                     f"~{v['paper_penalty']:.0f} MFLUPS"])
    w(_md_table(["quantity", "ours", "paper"], rows))
    w("\n")
    return buf.getvalue()


def write_report(path: str | Path, svg_dir: str | Path | None = None) -> Path:
    """Write the markdown report; optionally drop the SVG figures too."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report())
    if svg_dir is not None:
        from . import figure2_d2q9, figure3_d3q19, figure_to_svg

        svg_dir = Path(svg_dir)
        svg_dir.mkdir(parents=True, exist_ok=True)
        (svg_dir / "figure2_d2q9.svg").write_text(
            figure_to_svg(figure2_d2q9(), "Figure 2 - D2Q9 performance"))
        (svg_dir / "figure3_d3q19.svg").write_text(
            figure_to_svg(figure3_d3q19(), "Figure 3 - D3Q19 performance"))
    return path
