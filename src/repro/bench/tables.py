"""Regeneration of the paper's tables (E1-E4 in DESIGN.md).

Each ``table*`` function returns the data as a structured dict and a
``render_*`` companion produces the formatted text matching the paper's
rows. The benchmark suite prints these and asserts the reproduction bands.
"""

from __future__ import annotations

from ..gpu.device import MI100, V100
from ..lattice import get_lattice
from ..perf import PerformanceModel, bytes_per_flup, roofline_mflups
from .measure import measure_channel_traffic

__all__ = [
    "table1_devices",
    "table2_bytes_per_flup",
    "table3_roofline",
    "table4_bandwidth",
    "render_table",
]

_DEVICES = (V100, MI100)
_LATTICES = ("D2Q9", "D3Q19")


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Minimal fixed-width table rendering for bench output."""
    cols = [headers] + [[str(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cols) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def table1_devices() -> dict:
    """Paper Table 1: main features of the two GPUs."""
    fields = [
        ("Frequency", lambda d: f"{d.frequency_mhz:,.0f} MHz"),
        ("CUDA/HIP Cores", lambda d: f"{d.cores:,}"),
        ("SM/CU counts", lambda d: str(d.sm_count)),
        ("Shared Mem.", lambda d: f"{d.shared_mem_per_sm_kb:.0f} KB per SM/CU"),
        ("L1", lambda d: f"{d.l1_kb:.0f} KB per SM/CU"),
        ("L2 (unified)", lambda d: f"{d.l2_kb:,.0f} KB"),
        ("Memory", lambda d: f"HBM2 {d.memory_gb:.0f} GB"),
        ("Bandwidth", lambda d: f"{d.bandwidth_gbs:,.2f} GB/s"),
        ("Compiler", lambda d: d.compiler),
    ]
    return {
        "headers": ["GPU Arch."] + [d.name for d in _DEVICES],
        "rows": [[label] + [fn(d) for d in _DEVICES] for label, fn in fields],
    }


def table2_bytes_per_flup() -> dict:
    """Paper Table 2: B/F per pattern and lattice, plus our kernel-measured
    DRAM bytes per node for comparison."""
    rows = []
    for pattern, formula in (("ST", "2Q*double"), ("MR", "2M*double")):
        row = {"pattern": pattern, "formula": formula}
        for lname in _LATTICES:
            lat = get_lattice(lname)
            row[lname] = bytes_per_flup(lat, pattern)
            scheme = "ST" if pattern == "ST" else "MR-P"
            meas = measure_channel_traffic(scheme, lname)
            row[f"{lname}_measured"] = round(meas.dram_bytes_per_node, 1)
        rows.append(row)
    return {"rows": rows}


def table3_roofline() -> dict:
    """Paper Table 3: roofline MFLUPS estimates (Eq. 15)."""
    rows = []
    for pattern in ("ST", "MR"):
        row = {"pattern": pattern}
        for dev in _DEVICES:
            for lname in _LATTICES:
                lat = get_lattice(lname)
                row[(dev.name, lname)] = roofline_mflups(dev, lat, pattern)
        rows.append(row)
    return {"rows": rows}


def table4_bandwidth() -> dict:
    """Paper Table 4 + Section 4 text: sustained bandwidth per pattern.

    Our sustained bandwidth = model MFLUPS x measured DRAM bytes/node; the
    paper's numbers come from nvprof/rocprof counters. Also reports the
    fraction of peak, the quantity the paper's narrative is built on.
    """
    rows = []
    for dev in _DEVICES:
        pm = PerformanceModel(dev)
        for pattern in ("ST", "MR"):
            scheme = "ST" if pattern == "ST" else "MR-P"
            row = {"device": dev.name, "pattern": pattern}
            for lname in _LATTICES:
                lat = get_lattice(lname)
                meas = measure_channel_traffic(scheme, lname, dev.name)
                shape = _plateau_shape(lat.d)
                pred = pm.predict_shape(
                    lat, scheme, shape,
                    bytes_per_node=meas.dram_bytes_per_node,
                )
                bw = pred.effective_bandwidth_gbs
                row[lname] = bw
                row[f"{lname}_fraction"] = bw / dev.bandwidth_gbs
            rows.append(row)
    return {"rows": rows}


def _plateau_shape(ndim: int) -> tuple[int, ...]:
    """A saturated problem size (right end of Figures 2-3)."""
    return (4096, 4096) if ndim == 2 else (256, 256, 256)
