"""Headline-claim regeneration (E7-E9): footprints, speedups, intensity.

* E7 — Section 4.1 footprint claim: 15M fluid points need ~2 GB (ST) vs
  ~1.3 GB (MR) for D2Q9 and ~4.2 GB vs ~2.23 GB for D3Q19 (1 GB = 2^30 B),
  i.e. reductions of ~35% (2D) and ~47% (3D).
* E8 — Section 5 speedups of MR-P over ST: 1.32x / 1.38x for D2Q9 and
  1.46x / 1.14x for D3Q19 on V100 / MI100.
* E9 — Section 4.2 arithmetic-intensity claim (MR-R ~60% above MR-P on
  V100 D2Q9) and the Section 4.3 MR-R penalties (~800 / ~700 MFLUPS on
  D3Q19).
"""

from __future__ import annotations

from ..gpu.device import MI100, V100
from ..lattice import get_lattice
from ..perf import (
    PerformanceModel,
    arithmetic_intensity,
    memory_reduction,
    state_gib,
)
from .figures import _mr_tile
from .measure import measure_channel_traffic

__all__ = ["footprint_summary", "speedup_summary", "intensity_summary"]

PAPER_FOOTPRINT = {
    ("D2Q9", "ST"): 2.0, ("D2Q9", "MR"): 1.3,
    ("D3Q19", "ST"): 4.2, ("D3Q19", "MR"): 2.23,
}
PAPER_SPEEDUP = {
    ("V100", "D2Q9"): 1.32, ("MI100", "D2Q9"): 1.38,
    ("V100", "D3Q19"): 1.46, ("MI100", "D3Q19"): 1.14,
}
PAPER_MRR_PENALTY = {"V100": 800.0, "MI100": 700.0}


def footprint_summary(n_nodes: int = 15_000_000) -> list[dict]:
    """E7: memory footprints at the paper's 15M-node example size."""
    rows = []
    for lname in ("D2Q9", "D3Q19"):
        lat = get_lattice(lname)
        for scheme in ("ST", "MR"):
            rows.append({
                "lattice": lname,
                "scheme": scheme,
                "gib": state_gib(lat, scheme, n_nodes),
                "paper_gb": PAPER_FOOTPRINT[(lname, scheme)],
            })
        rows.append({
            "lattice": lname,
            "scheme": "reduction",
            "gib": memory_reduction(lat),
            "paper_gb": 0.35 if lname == "D2Q9" else 0.47,
        })
    return rows


def _plateau_shape(ndim: int) -> tuple[int, ...]:
    return (4096, 4096) if ndim == 2 else (256, 256, 256)


def _plateau_mflups(device, lattice: str, scheme: str) -> float:
    lat = get_lattice(lattice)
    tile, w_t = _mr_tile(lat.d)
    pm = PerformanceModel(device)
    meas = measure_channel_traffic(scheme, lattice, device.name)
    pred = pm.predict_shape(
        lat, scheme, _plateau_shape(lat.d),
        tile_cross=tile if scheme != "ST" else None,
        w_t=w_t if scheme != "ST" else 1,
        bytes_per_node=meas.dram_bytes_per_node,
    )
    return pred.mflups


def speedup_summary() -> list[dict]:
    """E8: MR-P over ST speedups at saturated sizes, vs the paper's."""
    rows = []
    for dev in (V100, MI100):
        for lname in ("D2Q9", "D3Q19"):
            st = _plateau_mflups(dev, lname, "ST")
            mrp = _plateau_mflups(dev, lname, "MR-P")
            rows.append({
                "device": dev.name,
                "lattice": lname,
                "st_mflups": st,
                "mrp_mflups": mrp,
                "speedup": mrp / st,
                "paper_speedup": PAPER_SPEEDUP[(dev.name, lname)],
            })
    return rows


def intensity_summary() -> dict:
    """E9: arithmetic-intensity ratio (D2Q9) and MR-R penalties (D3Q19)."""
    d2 = get_lattice("D2Q9")
    tile2, _ = _mr_tile(2)
    ai_ratio = (arithmetic_intensity(d2, "MR-R", tile2)
                / arithmetic_intensity(d2, "MR-P", tile2))
    penalties = {}
    for dev in (V100, MI100):
        mrp = _plateau_mflups(dev, "D3Q19", "MR-P")
        mrr = _plateau_mflups(dev, "D3Q19", "MR-R")
        penalties[dev.name] = {
            "mrp": mrp,
            "mrr": mrr,
            "penalty": mrp - mrr,
            "paper_penalty": PAPER_MRR_PENALTY[dev.name],
        }
    return {
        "ai_ratio_d2q9": ai_ratio,
        "paper_ai_ratio": 1.6,   # "almost 60% higher"
        "d3q19_penalties": penalties,
    }
