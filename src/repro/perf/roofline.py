"""Roofline performance model (paper Section 4.1, Eq. 15, Tables 2-3).

LBM is bandwidth-bound on GPUs, so the roofline collapses to

.. math::  MFLUPS_{max} = B_{BW} / (10^6 \\times B/F)

with ``B/F`` the bytes moved per fluid lattice update: ``2 Q x 8`` for the
two-lattice ST pattern and ``2 M x 8`` for the moment representation
(read + write of the full per-node state; Table 2).
"""

from __future__ import annotations

from ..gpu.device import GPUDevice
from ..lattice import LatticeDescriptor

__all__ = [
    "values_per_update",
    "bytes_per_flup",
    "roofline_mflups",
    "roofline_bandwidth_table",
]

DOUBLE = 8


def _pattern_class(scheme: str) -> str:
    key = scheme.upper()
    if key in ("ST", "BGK", "STANDARD"):
        return "ST"
    if key in ("MR", "MR-P", "MR-R", "MRP", "MRR"):
        return "MR"
    raise ValueError(f"unknown scheme {scheme!r}")


def values_per_update(lat: LatticeDescriptor, scheme: str) -> int:
    """Doubles moved per lattice update: ``2Q`` (ST) or ``2M`` (MR)."""
    if _pattern_class(scheme) == "ST":
        return 2 * lat.q
    return 2 * lat.n_moments


def bytes_per_flup(lat: LatticeDescriptor, scheme: str) -> int:
    """The B/F of paper Table 2 (144/96 for D2Q9, 304/160 for D3Q19)."""
    return values_per_update(lat, scheme) * DOUBLE


def roofline_mflups(device: GPUDevice, lat: LatticeDescriptor, scheme: str) -> float:
    """Eq. 15: peak MFLUPS for a pattern on a device (paper Table 3)."""
    return device.bandwidth_bytes_per_s / (1e6 * bytes_per_flup(lat, scheme))


def roofline_bandwidth_table(device: GPUDevice, lattices, schemes=("ST", "MR")) -> dict:
    """Roofline estimates for a device over lattices x schemes.

    Returns ``{(lattice_name, scheme): mflups}`` — the content of paper
    Table 3 when called with (D2Q9, D3Q19) x (ST, MR).
    """
    out = {}
    for lat in lattices:
        for scheme in schemes:
            out[(lat.name, scheme)] = roofline_mflups(device, lat, scheme)
    return out
