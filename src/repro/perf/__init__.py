"""Performance models: roofline, footprint, flop counts, MFLUPS predictor."""

from .calibration import LAUNCH_OVERHEAD_S, bandwidth_efficiency, fp64_efficiency
from .flops import (
    arithmetic_intensity,
    flops_per_node,
    halo_factor,
    mrp_flops_per_node,
    mrr_flops_per_node,
    st_flops_per_node,
)
from .footprint import (
    circular_shift_state_bytes,
    max_problem_size,
    memory_reduction,
    state_bytes,
    state_gib,
    state_values_per_node,
)
from .model import PerformanceModel, Prediction, mr_launch_config, st_launch_config
from .sweep import TileCandidate, best_tile, enumerate_tiles, sweep_tiles
from .roofline import (
    bytes_per_flup,
    roofline_bandwidth_table,
    roofline_mflups,
    values_per_update,
)

__all__ = [
    "bandwidth_efficiency",
    "fp64_efficiency",
    "LAUNCH_OVERHEAD_S",
    "arithmetic_intensity",
    "flops_per_node",
    "halo_factor",
    "st_flops_per_node",
    "mrp_flops_per_node",
    "mrr_flops_per_node",
    "state_bytes",
    "state_gib",
    "state_values_per_node",
    "memory_reduction",
    "circular_shift_state_bytes",
    "max_problem_size",
    "PerformanceModel",
    "Prediction",
    "st_launch_config",
    "mr_launch_config",
    "bytes_per_flup",
    "values_per_update",
    "roofline_mflups",
    "roofline_bandwidth_table",
    "TileCandidate",
    "enumerate_tiles",
    "sweep_tiles",
    "best_tile",
]
