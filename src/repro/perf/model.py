"""MFLUPS predictor combining traffic, flops, occupancy and calibration.

For a given (device, scheme, lattice, problem size) the model computes

.. code::

    t_node = max( bytes_per_node / (peak_bw  * eff_bw),
                  flops_per_node / (peak_fp64 * eff_fp) )
    t_step = n_nodes * t_node / wave_utilization + launch_overhead
    MFLUPS = n_fluid / t_step / 1e6

* ``bytes_per_node`` defaults to the ideal ``2Q``/``2M`` doubles of paper
  Table 2, but callers should pass the value *measured* by the virtual-GPU
  kernels (the bench harness does), so boundary extras and halo residues
  are included.
* ``flops_per_node`` comes from :mod:`repro.perf.flops` and includes the
  MR halo recomputation.
* ``wave_utilization`` models device saturation: following the paper's
  tuning rule ("optimal performance is achieved with two or more thread
  blocks per SM", Section 3.2), the device is considered saturated once
  two blocks per SM are *resident*; launches with fewer resident blocks —
  small problems, or kernels whose shared-memory appetite limits
  occupancy to one block per SM — scale down proportionally. This,
  together with the fixed launch overhead, produces the rising-then-flat
  shape of Figures 2-3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.device import GPUDevice
from ..gpu.launch import LaunchConfig, Occupancy, occupancy
from ..lattice import LatticeDescriptor
from .calibration import LAUNCH_OVERHEAD_S, bandwidth_efficiency, fp64_efficiency
from .flops import flops_per_node as _flops_per_node
from .roofline import bytes_per_flup, roofline_mflups

__all__ = ["Prediction", "PerformanceModel", "st_launch_config", "mr_launch_config"]


@dataclass(frozen=True)
class Prediction:
    """Model output for one configuration."""

    mflups: float
    bound: str                  # "memory" | "compute"
    t_step_s: float
    bytes_per_node: float
    flops_per_node: float
    effective_bandwidth_gbs: float   # sustained DRAM bandwidth implied
    roofline_fraction: float         # mflups / roofline (ideal B/F)
    occupancy: Occupancy | None = None


def st_launch_config(n_nodes: int, block_size: int = 256) -> LaunchConfig:
    """One thread per node, 1D blocks (Algorithm 1)."""
    return LaunchConfig(blocks=math.ceil(n_nodes / block_size),
                        threads_per_block=block_size)


def mr_launch_config(lat: LatticeDescriptor, shape: tuple[int, ...],
                     tile_cross: tuple[int, ...], w_t: int = 1) -> LaunchConfig:
    """One block per column (Algorithm 2); shared size per Section 3.2."""
    blocks = 1
    for extent, t in zip(shape[:-1], tile_cross):
        blocks *= math.ceil(extent / t)
    threads = w_t
    for t in tile_cross:
        threads *= t + 2
    shared = int(math.prod(tile_cross)) * (w_t + 2) * lat.q * 8
    return LaunchConfig(blocks=blocks, threads_per_block=threads,
                        shared_bytes_per_block=shared)


class PerformanceModel:
    """Calibrated MFLUPS model for one device."""

    def __init__(self, device: GPUDevice):
        self.device = device

    def predict(self, lat: LatticeDescriptor, scheme: str, n_nodes: int,
                *, bytes_per_node: float | None = None,
                flops_per_node: float | None = None,
                tile_cross: tuple[int, ...] | None = None,
                launch: LaunchConfig | None = None,
                n_fluid: int | None = None) -> Prediction:
        """Predict throughput for a configuration.

        ``bytes_per_node`` and ``flops_per_node`` override the ideal-model
        defaults (pass kernel-measured traffic for the reproduction runs);
        ``launch`` enables the wave-utilization term.
        """
        dev = self.device
        if bytes_per_node is None:
            bytes_per_node = float(bytes_per_flup(lat, scheme))
        if flops_per_node is None:
            flops_per_node = _flops_per_node(lat, scheme, tile_cross)
        if n_fluid is None:
            n_fluid = n_nodes

        bw = dev.bandwidth_bytes_per_s * bandwidth_efficiency(dev, scheme, lat.d)
        fp = dev.fp64_flops_per_s * fp64_efficiency(dev)

        t_mem = bytes_per_node / bw
        t_comp = flops_per_node / fp
        t_node = max(t_mem, t_comp)
        bound = "memory" if t_mem >= t_comp else "compute"

        occ: Occupancy | None = None
        utilization = 1.0
        if launch is not None:
            occ = occupancy(dev, launch)
            saturation = 2 * dev.sm_count
            utilization = min(1.0, occ.active_blocks / saturation)

        t_step = n_nodes * t_node / utilization + LAUNCH_OVERHEAD_S
        mflups = n_fluid / t_step / 1e6
        return Prediction(
            mflups=mflups,
            bound=bound,
            t_step_s=t_step,
            bytes_per_node=bytes_per_node,
            flops_per_node=flops_per_node,
            effective_bandwidth_gbs=mflups * 1e6 * bytes_per_node / 1e9,
            roofline_fraction=mflups / roofline_mflups(dev, lat, scheme),
            occupancy=occ,
        )

    def predict_shape(self, lat: LatticeDescriptor, scheme: str,
                      shape: tuple[int, ...],
                      tile_cross: tuple[int, ...] | None = None,
                      w_t: int = 1, block_size: int = 256,
                      bytes_per_node: float | None = None,
                      n_fluid: int | None = None) -> Prediction:
        """Predict for a concrete grid, deriving the launch configuration."""
        n_nodes = math.prod(shape)
        if scheme.upper() in ("ST", "BGK", "STANDARD"):
            launch = st_launch_config(n_nodes, block_size)
            tile_cross = None
        else:
            if tile_cross is None:
                from ..gpu.kernels.moment import default_tile

                tile_cross = default_tile(shape)
            launch = mr_launch_config(lat, shape, tile_cross, w_t)
        return self.predict(
            lat, scheme, n_nodes,
            bytes_per_node=bytes_per_node,
            tile_cross=tile_cross,
            launch=launch,
            n_fluid=n_fluid,
        )
