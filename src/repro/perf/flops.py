"""Per-node floating-point operation counts for the three kernels.

The paper reports that recursive regularization raises arithmetic
intensity by "almost 60%" versus MR-P on the V100 for D2Q9, and that the
extra compute costs MR-R roughly 800/700 MFLUPS on the D3Q19 lattice
(Sections 4.2-4.3). To model the compute roof, we count double-precision
operations per lattice update from the *structure* of each kernel:

* matrix-like stages (moment projection, Eq. 11/14 reconstruction) cost
  two flops per non-zero of the corresponding operator, read off the
  lattice descriptor — this automatically captures lattice sparsity
  (e.g. H2_xy only touches the 8 diagonal velocities of D3Q19) and the
  fact that unsupported Hermite components (zero columns) cost nothing;
* scalar stages are counted term-by-term from the update formulas;
* divisions are weighted ``DIV_COST`` flops;
* the MR column kernel recomputes collision+reconstruction for its halo
  nodes, so those stages carry the tile's halo factor
  ``prod(t_c + 2) / prod(t_c)``.

Counts are estimates of the executed arithmetic, not instruction-exact;
the performance model pairs them with a calibrated effective FP64
throughput per device, so only their *ratios* across schemes and lattices
carry signal.
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = [
    "halo_factor",
    "st_flops_per_node",
    "mrp_flops_per_node",
    "mrr_flops_per_node",
    "flops_per_node",
    "arithmetic_intensity",
]

DIV_COST = 4.0


def _nnz(a: np.ndarray) -> int:
    return int(np.count_nonzero(a))


def halo_factor(tile_cross: tuple[int, ...]) -> float:
    """Ratio of tile+halo nodes to tile nodes for an MR column."""
    num = 1.0
    den = 1.0
    for t in tile_cross:
        num *= t + 2
        den *= t
    return num / den


def st_flops_per_node(lat: LatticeDescriptor) -> float:
    """Algorithm 1: moment sums, then the BGK update per component."""
    q, d = lat.q, lat.d
    moments = (q - 1) + sum(_nnz(lat.c[:, a]) for a in range(d))   # rho, j
    velocity = d * DIV_COST                                        # u = j/rho
    usq = 2 * d - 1
    per_comp = 0.0
    for i in range(q):
        nz = _nnz(lat.c[i])
        per_comp += max(2 * nz - 1, 0)      # c.u dot product
        per_comp += 7                       # w*rho*(1 + 3cu + 4.5cu^2 - 1.5u^2)
        per_comp += 3                       # relaxation blend
    return moments + velocity + usq + per_comp


def _projection_flops(lat: LatticeDescriptor) -> float:
    """Eqs. 1-3: recompute M moments from Q populations (2 flops/nnz)."""
    return 2.0 * _nnz(lat.moment_matrix)


def _reconstruction_flops(lat: LatticeDescriptor) -> float:
    """Eq. 11: map collided moments to Q populations (2 flops/nnz)."""
    return 2.0 * _nnz(lat.reconstruction_matrix)


def _moment_collision_flops(lat: LatticeDescriptor) -> float:
    """Eq. 10: u = j/rho, then relax each distinct Pi component."""
    return lat.d * DIV_COST + 5.0 * lat.n_pairs


def mrp_flops_per_node(lat: LatticeDescriptor,
                       tile_cross: tuple[int, ...] | None = None) -> float:
    """Algorithm 2 with projective regularization.

    Collision + reconstruction run for tile *and halo* nodes (factor
    ``halo_factor``); the moment recomputation runs once per node.
    """
    h = halo_factor(tile_cross) if tile_cross else 1.0
    return h * (_moment_collision_flops(lat) + _reconstruction_flops(lat)) \
        + _projection_flops(lat)


def _recursive_extra_flops(lat: LatticeDescriptor) -> float:
    """MR-R additions: Pi_neq, the a3/a4 recursions, their equilibria and
    relaxations, and the extra Eq. 14 reconstruction terms — counted over
    the lattice-supported (non-aliased) Hermite columns only, the basis
    the implementation actually evaluates."""
    t = lat.n_pairs
    sup3 = lat.h3_supported
    sup4 = lat.h4_supported
    total = 3.0 * t                                   # Pi_neq = Pi - rho u u
    total += 2.0 * t                                  # u_a u_b products (reused)
    total += 10.0 * len(sup3)                         # recursion+eq+relax per a3
    total += 16.0 * len(sup4)                         # recursion+eq+relax per a4
    total += 2.0 * _nnz(lat.h3_cols[:, sup3])         # Eq. 14 third-order terms
    total += 2.0 * _nnz(lat.h4_cols[:, sup4])         # Eq. 14 fourth-order terms
    return total


def mrr_flops_per_node(lat: LatticeDescriptor,
                       tile_cross: tuple[int, ...] | None = None) -> float:
    """Algorithm 2 with recursive regularization (Eqs. 10, 12-14)."""
    h = halo_factor(tile_cross) if tile_cross else 1.0
    return mrp_flops_per_node(lat, tile_cross) + h * _recursive_extra_flops(lat)


def flops_per_node(lat: LatticeDescriptor, scheme: str,
                   tile_cross: tuple[int, ...] | None = None) -> float:
    """Dispatch by paper scheme name."""
    key = scheme.upper()
    if key in ("ST", "BGK", "STANDARD"):
        return st_flops_per_node(lat)
    if key in ("MR-P", "MRP"):
        return mrp_flops_per_node(lat, tile_cross)
    if key in ("MR-R", "MRR"):
        return mrr_flops_per_node(lat, tile_cross)
    raise ValueError(f"unknown scheme {scheme!r}")


def arithmetic_intensity(lat: LatticeDescriptor, scheme: str,
                         tile_cross: tuple[int, ...] | None = None) -> float:
    """Flops per byte of ideal global traffic (the paper's AI metric)."""
    from .roofline import bytes_per_flup

    pattern = "ST" if scheme.upper() in ("ST", "BGK", "STANDARD") else "MR"
    return flops_per_node(lat, scheme, tile_cross) / bytes_per_flup(lat, pattern)
