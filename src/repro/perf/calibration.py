"""Calibration constants for the MFLUPS performance model.

Everything a first-principles simulator can produce — data movement,
occupancy, flop counts, crossover structure — comes from measurement
(:mod:`repro.gpu`) or algorithm analysis (:mod:`repro.perf.flops`). What
cannot be derived without the physical hardware is how efficiently each
vendor's memory controller and compute pipelines run a given access
pattern. Those scalars are taken from the paper's own profiler
measurements and are collected here, in one place, with their derivations.

Bandwidth efficiency ``eff_bw[device][pattern][ndim]``
------------------------------------------------------
Fraction of peak DRAM bandwidth sustained by each propagation pattern,
from Section 4.2/4.3 (e.g. "the reference ST propagation pattern reaches
about 790 GB/s, close to the 90% of the peak" on the V100; "only 42% of
expected performance" for MR-P D3Q19 on the MI100). Equivalently:
``eff = MFLUPS_paper * (B/F) / peak_bandwidth``:

===========  =======  ============  ==========================
device       pattern  2D / 3D       derivation (MFLUPS x B/F)
===========  =======  ============  ==========================
V100         ST       .848 / .878   5300x144 / 2600x304, /900 GB/s
V100         MR       .747 / .676   7000x96  / 3800x160, /900 GB/s
MI100        ST       .727 / .693   6200x144 / 2800x304, /1228.86 GB/s
MI100        MR       .672 / .417   8600x96  / 3200x160, /1228.86 GB/s
===========  =======  ============  ==========================

The paper's headline observations are encoded in these eight numbers: ST
sustains a higher fraction of peak than MR everywhere; the MI100 sustains
lower fractions than the V100, dramatically so for MR with D3Q19 (the
"more mixed" AMD result).

FP64 efficiency ``eff_fp[device]``
----------------------------------
Fraction of peak double-precision throughput sustained by the
compute-heavy MR-R collision. Derived from the paper's D3Q19 MR-R
penalties (3800-800=3000 MFLUPS on V100, 3200-700=2500 on MI100) and our
counted ~1252 flops/update for MR-R/D3Q19 with 8x8 tiles:
``3000e6 x 1252 / 7.8e12 = 0.48`` and ``2500e6 x 1252 / 11.5e12 = 0.27``.
With these, MR-R is compute-bound only in 3D — in 2D it ties MR-P, which
is exactly the paper's observation.

Launch overhead
---------------
A fixed per-launch cost (kernel launch + sweep start-up); only visible at
the small-problem end of Figures 2-3.
"""

from __future__ import annotations

from ..gpu.device import GPUDevice

__all__ = ["bandwidth_efficiency", "fp64_efficiency", "LAUNCH_OVERHEAD_S"]

_EFF_BW: dict[str, dict[str, dict[int, float]]] = {
    "V100": {
        "ST": {2: 0.848, 3: 0.878},
        "MR": {2: 0.747, 3: 0.676},
    },
    "MI100": {
        "ST": {2: 0.727, 3: 0.693},
        "MR": {2: 0.672, 3: 0.417},
    },
}

_EFF_FP: dict[str, float] = {
    "V100": 0.482,
    "MI100": 0.272,
}

#: Fixed cost per kernel launch (seconds).
LAUNCH_OVERHEAD_S = 4e-6


def _pattern_class(scheme: str) -> str:
    key = scheme.upper()
    if key in ("ST", "BGK", "STANDARD"):
        return "ST"
    if key in ("MR", "MR-P", "MR-R", "MRP", "MRR"):
        return "MR"
    raise ValueError(f"unknown scheme {scheme!r}")


def bandwidth_efficiency(device: GPUDevice, scheme: str, ndim: int) -> float:
    """Calibrated fraction of peak bandwidth for (device, pattern, D)."""
    try:
        per_device = _EFF_BW[device.name]
    except KeyError:
        raise ValueError(
            f"no bandwidth calibration for device {device.name!r}"
        ) from None
    pattern = _pattern_class(scheme)
    if ndim not in (2, 3):
        raise ValueError(f"calibration covers 2D and 3D lattices, got D={ndim}")
    return per_device[pattern][ndim]


def fp64_efficiency(device: GPUDevice) -> float:
    """Calibrated fraction of peak FP64 throughput for LBM collisions."""
    try:
        return _EFF_FP[device.name]
    except KeyError:
        raise ValueError(
            f"no FP64 calibration for device {device.name!r}"
        ) from None
