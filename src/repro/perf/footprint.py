"""Memory-footprint model (paper Section 4.1).

"The required memory by the ST models to simulate 15 million fluid points
is about 2GB for D2Q9 simulations and 4.2GB for D3Q19 simulations, against
the 1.3GB and 2.23GB required by the MR models ... reducing the memory
requirements in about a 35% and 47% respectively."

Both patterns keep two copies of the per-node state resident (two
distribution lattices for ST; the moment representation stores a single
array with a small circular-shift margin, but the roofline and footprint
accounting in the paper — and the double-buffered variant — use ``2M``).
The GiB figures reproduce with 1 GB = 2^30 bytes.
"""

from __future__ import annotations

from ..lattice import LatticeDescriptor
from .roofline import DOUBLE, values_per_update

__all__ = [
    "state_values_per_node",
    "state_bytes",
    "state_gib",
    "memory_reduction",
    "circular_shift_state_bytes",
    "max_problem_size",
]

GIB = 1024 ** 3


def state_values_per_node(lat: LatticeDescriptor, scheme: str) -> int:
    """Resident doubles per node: ``2Q`` (ST), ``Q`` (AA-pattern), ``2M`` (MR).

    The AA pattern (Bailey 2009, :class:`repro.solver.AASolver`) runs the
    distribution representation in place on a single lattice — half the ST
    footprint at unchanged 2Q traffic; the moment representation reduces
    both.
    """
    if scheme.upper() == "AA":
        return lat.q
    return values_per_update(lat, scheme)


def state_bytes(lat: LatticeDescriptor, scheme: str, n_nodes: int) -> int:
    """Resident simulation-state bytes for ``n_nodes`` fluid lattice points."""
    return state_values_per_node(lat, scheme) * DOUBLE * n_nodes


def state_gib(lat: LatticeDescriptor, scheme: str, n_nodes: int) -> float:
    """State size in GiB (the unit reproducing the paper's figures)."""
    return state_bytes(lat, scheme, n_nodes) / GIB


def memory_reduction(lat: LatticeDescriptor) -> float:
    """Fractional footprint reduction of MR vs ST: ``1 - M/Q``.

    ~0.33 for D2Q9 (paper rounds to 35%) and ~0.47 for D3Q19.
    """
    return 1.0 - lat.n_moments / lat.q


def circular_shift_state_bytes(lat: LatticeDescriptor, n_nodes: int,
                               margin_nodes: int) -> int:
    """Footprint of the single-array MR variant with a circular-shift margin
    (Dethier et al. 2011): ``M * (N + margin) * 8`` — roughly half the
    double-buffered figure for large N."""
    return lat.n_moments * (n_nodes + margin_nodes) * DOUBLE


def max_problem_size(lat: LatticeDescriptor, scheme: str, memory_bytes: int) -> int:
    """Largest node count fitting in a device memory of ``memory_bytes``."""
    return memory_bytes // (state_values_per_node(lat, scheme) * DOUBLE)
