"""Tile-configuration auto-tuning for the MR column kernel.

The paper tunes tile sizes by hand ("the targeted tile size and shared
memory usage per column must be adjusted" to keep two or more blocks per
SM, Section 3.2). This module automates the search: enumerate legal tile
configurations for a device/lattice/domain, score each with the calibrated
performance model (occupancy + halo-aware flop counts + traffic), and
return the ranking. The D3Q27-on-MI100 case shows why this matters: the
V100-optimal 8x8 tile is a performance cliff on the MI100's smaller LDS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import GPUDevice
from ..gpu.launch import occupancy, validate_launch
from ..lattice import LatticeDescriptor
from .model import PerformanceModel, Prediction, mr_launch_config
from .roofline import bytes_per_flup

__all__ = ["TileCandidate", "enumerate_tiles", "sweep_tiles", "best_tile"]


@dataclass(frozen=True)
class TileCandidate:
    """One scored tile configuration."""

    tile_cross: tuple[int, ...]
    w_t: int
    prediction: Prediction

    @property
    def mflups(self) -> float:
        return self.prediction.mflups


def _divisors(n: int, lo: int = 2, hi: int = 64) -> list[int]:
    """Divisors of ``n`` in ``[lo, min(hi, n)]``."""
    return [d for d in range(lo, min(hi, n) + 1) if n % d == 0]


def _cross_candidates(n: int, hi: int) -> list[int]:
    """Legal tile extents along one cross axis, never empty.

    The preferred candidates are the proper divisors in ``[2, hi]``; a
    prime extent above ``hi`` (e.g. 67) has none, which used to yield an
    empty candidate set and break ``sweep_tiles``/``best_tile`` on
    perfectly valid domains. The fallback keeps such axes tunable:
    extent-1 tiles are always legal (a degenerate but valid tiling), and
    the full extent is offered when it fits within ``hi`` bounds checked
    later by ``validate_launch``/``occupancy``.
    """
    divs = _divisors(n, hi=hi)
    if divs:
        return divs
    fallback = [1]
    if n != 1:
        fallback.append(n)
    return fallback


def enumerate_tiles(lat: LatticeDescriptor, shape: tuple[int, ...],
                    device: GPUDevice,
                    w_t_options: tuple[int, ...] = (1, 2, 4, 8)
                    ) -> list[tuple[tuple[int, ...], int]]:
    """All legal (tile_cross, w_t) combinations for a domain on a device.

    Legal means: extents divide the domain, the window height divides the
    window extent, and the launch satisfies the device's hard per-block
    limits (threads, shared memory). Axes whose extent has no divisor in
    the preferred range (prime extents above the cap) fall back to
    extent-1 and full-extent tiles, so awkward domains still enumerate
    (see :func:`_cross_candidates`); configurations the device cannot
    launch are filtered as usual.
    """
    cross = shape[:-1]
    r = shape[-1]
    if len(cross) == 1:
        cross_options = [(t,) for t in _cross_candidates(cross[0], hi=64)]
    else:
        cross_options = [(tx, ty)
                         for tx in _cross_candidates(cross[0], hi=32)
                         for ty in _cross_candidates(cross[1], hi=32)]
    out = []
    for tile in cross_options:
        for w_t in w_t_options:
            if r % w_t:
                continue
            cfg = mr_launch_config(lat, shape, tile, w_t)
            try:
                validate_launch(device, cfg)
                occupancy(device, cfg)
            except ValueError:
                continue
            out.append((tile, w_t))
    return out


def sweep_tiles(lat: LatticeDescriptor, shape: tuple[int, ...],
                device: GPUDevice, scheme: str = "MR-P",
                bytes_per_node: float | None = None,
                w_t_options: tuple[int, ...] = (1, 2, 4, 8),
                halo_traffic: bool = False) -> list[TileCandidate]:
    """Score every legal tile configuration, best first.

    ``halo_traffic`` adds the raw (un-cached) halo read amplification to
    the traffic estimate — pessimistic, useful to compare against the
    L2-absorbed default.
    """
    pm = PerformanceModel(device)
    candidates = []
    for tile, w_t in enumerate_tiles(lat, shape, device, w_t_options):
        bpn = bytes_per_node
        if bpn is None:
            bpn = float(bytes_per_flup(lat, scheme))
            if halo_traffic:
                from .flops import halo_factor

                read = bpn / 2.0
                bpn = read * halo_factor(tile) + bpn / 2.0
        pred = pm.predict_shape(lat, scheme, shape, tile_cross=tile,
                                w_t=w_t, bytes_per_node=bpn)
        candidates.append(TileCandidate(tile, w_t, pred))
    candidates.sort(key=lambda c: c.mflups, reverse=True)
    return candidates


def best_tile(lat: LatticeDescriptor, shape: tuple[int, ...],
              device: GPUDevice, scheme: str = "MR-P",
              **kwargs) -> TileCandidate:
    """The top-ranked configuration from :func:`sweep_tiles`."""
    ranking = sweep_tiles(lat, shape, device, scheme, **kwargs)
    if not ranking:
        raise ValueError(
            f"no legal tile configuration for {lat.name} on {device.name} "
            f"with domain {shape}"
        )
    return ranking[0]
