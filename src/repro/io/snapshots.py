"""Simulation snapshot output: compressed NumPy archives and legacy VTK.

The npz writer is the native round-trippable format (used by the
checkpoint machinery); the VTK legacy writer produces STRUCTURED_POINTS
files loadable by ParaView/VisIt for the examples.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

__all__ = ["save_fields", "load_fields", "write_vtk"]


def save_fields(path: str | Path, rho: np.ndarray, u: np.ndarray,
                time: int = 0, **extra: np.ndarray) -> Path:
    """Save macroscopic fields (plus arbitrary extras) to an ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, rho=rho, u=u, time=np.asarray(time), **extra)
    return path


def load_fields(path: str | Path) -> dict[str, np.ndarray]:
    """Load a snapshot written by :func:`save_fields`."""
    with np.load(Path(path)) as data:
        return {k: data[k] for k in data.files}


def write_vtk(path: str | Path, rho: np.ndarray, u: np.ndarray,
              title: str = "repro LBM snapshot") -> Path:
    """Write macroscopic fields as a legacy-VTK STRUCTURED_POINTS file.

    Handles 2D (written as a one-cell-thick 3D grid) and 3D fields; data
    are emitted in the x-fastest order VTK expects.
    """
    rho = np.asarray(rho)
    u = np.asarray(u)
    d = rho.ndim
    if d not in (2, 3):
        raise ValueError(f"rho must be 2D or 3D, got {d}D")
    if u.shape != (d, *rho.shape):
        raise ValueError(f"u must have shape {(d, *rho.shape)}, got {u.shape}")
    dims = rho.shape + (1,) * (3 - d)
    n = rho.size

    buf = io.StringIO()
    buf.write("# vtk DataFile Version 3.0\n")
    buf.write(title[:255] + "\n")
    buf.write("ASCII\nDATASET STRUCTURED_POINTS\n")
    buf.write(f"DIMENSIONS {dims[0]} {dims[1]} {dims[2]}\n")
    buf.write("ORIGIN 0 0 0\nSPACING 1 1 1\n")
    buf.write(f"POINT_DATA {n}\n")

    buf.write("SCALARS density double 1\nLOOKUP_TABLE default\n")
    for v in rho.ravel(order="F"):
        buf.write(f"{v:.10g}\n")

    buf.write("VECTORS velocity double\n")
    ux = u[0].ravel(order="F")
    uy = u[1].ravel(order="F")
    uz = u[2].ravel(order="F") if d == 3 else np.zeros(n)
    for a, b, c in zip(ux, uy, uz):
        buf.write(f"{a:.10g} {b:.10g} {c:.10g}\n")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buf.getvalue())
    return path
