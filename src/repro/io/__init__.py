"""Snapshot and checkpoint I/O.

Run manifests (reproducibility metadata written alongside outputs and
checkpoints) live in :mod:`repro.obs.manifest`; the common entry points
are re-exported here because they travel with the files this package
writes.
"""

from ..obs.manifest import (
    RunManifest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from .checkpoint import restore_checkpoint, save_checkpoint
from .snapshots import load_fields, save_fields, write_vtk

__all__ = [
    "save_fields",
    "load_fields",
    "write_vtk",
    "save_checkpoint",
    "restore_checkpoint",
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
]
