"""Snapshot and checkpoint I/O.

Run manifests (reproducibility metadata written alongside outputs and
checkpoints) live in :mod:`repro.obs.manifest`; the common entry points
are re-exported here because they travel with the files this package
writes.
"""

from ..obs.manifest import (
    RunManifest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from .checkpoint import (
    assemble_global_field,
    checkpoint_step,
    checkpoint_step_dir,
    latest_checkpoint,
    load_distributed_checkpoint,
    load_rank_slab,
    prune_checkpoints,
    reshard_field,
    restore_checkpoint,
    save_checkpoint,
    save_rank_slab,
    validate_checkpoint_manifest,
)
from .snapshots import load_fields, save_fields, write_vtk

__all__ = [
    "save_fields",
    "load_fields",
    "write_vtk",
    "save_checkpoint",
    "restore_checkpoint",
    "checkpoint_step_dir",
    "checkpoint_step",
    "save_rank_slab",
    "load_rank_slab",
    "latest_checkpoint",
    "prune_checkpoints",
    "load_distributed_checkpoint",
    "assemble_global_field",
    "reshard_field",
    "validate_checkpoint_manifest",
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
]
