"""Snapshot and checkpoint I/O."""

from .checkpoint import restore_checkpoint, save_checkpoint
from .snapshots import load_fields, save_fields, write_vtk

__all__ = [
    "save_fields",
    "load_fields",
    "write_vtk",
    "save_checkpoint",
    "restore_checkpoint",
]
