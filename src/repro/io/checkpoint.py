"""Checkpoint/restore for the reference solvers.

Checkpoints capture the minimal persistent state of each scheme: the
current distribution lattice for ST, the moment field for MR-P/MR-R —
which is itself a nice demonstration of the paper's compression claim
(an MR checkpoint of the same simulation is ``M/Q`` the size).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..solver import MRPSolver, MRRSolver, Solver, STSolver

__all__ = ["save_checkpoint", "restore_checkpoint"]


def save_checkpoint(path: str | Path, solver: Solver,
                    manifest: bool = False, seed: int | None = None) -> Path:
    """Write the solver's persistent state to an ``.npz`` checkpoint.

    With ``manifest=True`` a :class:`~repro.obs.RunManifest` JSON (scheme,
    lattice, shape, tau, seed, package version, platform) is written next
    to the checkpoint at :func:`~repro.obs.manifest_path_for`'s location.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if manifest:
        from ..obs.manifest import manifest_path_for, write_manifest

        write_manifest(manifest_path_for(path), solver, seed=seed,
                       artifact=path.name, kind="checkpoint")
    payload = {
        "scheme": np.asarray(solver.name),
        "lattice": np.asarray(solver.lat.name),
        "tau": np.asarray(solver.tau),
        "time": np.asarray(solver.time),
        "node_type": solver.domain.node_type,
    }
    if isinstance(solver, STSolver):
        payload["f"] = solver.f
    elif isinstance(solver, (MRPSolver, MRRSolver)):
        payload["m"] = solver.m
    else:  # pragma: no cover - future solvers
        raise TypeError(f"cannot checkpoint solver type {type(solver).__name__}")
    np.savez_compressed(path, **payload)
    return path


def restore_checkpoint(path: str | Path, solver: Solver) -> Solver:
    """Restore a checkpoint into a compatibly-constructed solver.

    The solver must have been built with the same scheme, lattice and
    domain (verified); tau and boundaries come from the constructor.
    """
    with np.load(Path(path)) as data:
        scheme = str(data["scheme"])
        lattice = str(data["lattice"])
        if scheme != solver.name:
            raise ValueError(f"checkpoint is for scheme {scheme}, solver is {solver.name}")
        if lattice != solver.lat.name:
            raise ValueError(f"checkpoint lattice {lattice} != solver {solver.lat.name}")
        if not np.array_equal(data["node_type"], solver.domain.node_type):
            raise ValueError("checkpoint domain does not match solver domain")
        solver.time = int(data["time"])
        if isinstance(solver, STSolver):
            solver.f[...] = data["f"]
        else:
            solver.m[...] = data["m"]
    return solver
