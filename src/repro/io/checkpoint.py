"""Checkpoint/restore for the reference and distributed solvers.

Checkpoints capture the minimal persistent state of each scheme: the
current distribution lattice for ST, the moment field for MR-P/MR-R —
which is itself a nice demonstration of the paper's compression claim
(an MR checkpoint of the same simulation is ``M/Q`` the size).

Single-domain checkpoints (:func:`save_checkpoint` /
:func:`restore_checkpoint`) are one ``.npz`` per run. Distributed runs
use a *per-run checkpoint directory* instead, written cooperatively by
the worker ranks of :mod:`repro.parallel.runtime` at barrier-aligned
steps::

    ckpt/
      step-00000040/
        rank0000.npz        # one interior slab per rank (f or m payload)
        rank0001.npz
        manifest.json       # RunManifest: scheme/lattice/shape/tau/step
        COMPLETE            # written last, by rank 0, after a barrier

A step directory without its ``COMPLETE`` marker is a torn checkpoint
(a rank died mid-write) and is never resumed from. Rank files hold the
*interior* planes only — ghost planes are reconstructed from the global
field on restore, and are overwritten by the first halo exchange of the
resumed run before any kernel reads them, so restarts are bit-exact for
any rank count: :func:`assemble_global_field` tiles the saved interiors
back into the global ``(C, *shape)`` array and :func:`reshard_field`
cuts it into the (possibly different) new decomposition's slabs.
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
from pathlib import Path

import numpy as np

from ..solver import MRPSolver, MRRSolver, Solver, STSolver

__all__ = [
    "save_checkpoint",
    "restore_checkpoint",
    "checkpoint_step_dir",
    "checkpoint_step",
    "save_rank_slab",
    "load_rank_slab",
    "mark_checkpoint_complete",
    "is_checkpoint_complete",
    "latest_checkpoint",
    "prune_checkpoints",
    "load_manifest_for_resume",
    "load_distributed_checkpoint",
    "assemble_global_field",
    "reshard_field",
    "validate_checkpoint_manifest",
]

#: Marker file whose presence declares a step directory fully written.
COMPLETE_MARKER = "COMPLETE"
_STEP_PREFIX = "step-"


def save_checkpoint(path: str | Path, solver: Solver,
                    manifest: bool = False, seed: int | None = None) -> Path:
    """Write the solver's persistent state to an ``.npz`` checkpoint.

    With ``manifest=True`` a :class:`~repro.obs.RunManifest` JSON (scheme,
    lattice, shape, tau, seed, package version, platform) is written next
    to the checkpoint at :func:`~repro.obs.manifest_path_for`'s location.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if manifest:
        from ..obs.manifest import manifest_path_for, write_manifest

        write_manifest(manifest_path_for(path), solver, seed=seed,
                       artifact=path.name, kind="checkpoint")
    payload = {
        "scheme": np.asarray(solver.name),
        "lattice": np.asarray(solver.lat.name),
        "tau": np.asarray(solver.tau),
        "time": np.asarray(solver.time),
        "node_type": solver.domain.node_type,
    }
    if isinstance(solver, STSolver):
        # Always written in the natural layout: at odd times the lean
        # single-lattice backend stores a component-shifted state, and
        # ``_checkpoint_state`` un-streams it, so checkpoints stay
        # loadable by any backend at any parity.
        payload["f"] = solver._checkpoint_state()
    elif isinstance(solver, (MRPSolver, MRRSolver)):
        payload["m"] = solver.m
    else:  # pragma: no cover - future solvers
        raise TypeError(f"cannot checkpoint solver type {type(solver).__name__}")
    np.savez_compressed(path, **payload)
    return path


def restore_checkpoint(path: str | Path, solver: Solver) -> Solver:
    """Restore a checkpoint into a compatibly-constructed solver.

    The solver must have been built with the same scheme, lattice and
    domain (verified); tau and boundaries come from the constructor.
    """
    with np.load(Path(path)) as data:
        scheme = str(data["scheme"])
        lattice = str(data["lattice"])
        if scheme != solver.name:
            raise ValueError(f"checkpoint is for scheme {scheme}, solver is {solver.name}")
        if lattice != solver.lat.name:
            raise ValueError(f"checkpoint lattice {lattice} != solver {solver.lat.name}")
        if not np.array_equal(data["node_type"], solver.domain.node_type):
            raise ValueError("checkpoint domain does not match solver domain")
        solver.time = int(data["time"])
        if isinstance(solver, STSolver):
            # ``_restore_state`` re-shifts the natural payload when the
            # target is the lean single-lattice backend at odd parity
            # (time has been set above, so the parity is known).
            solver._restore_state(data["f"])
        else:
            solver.m[...] = data["m"]
    return solver


# -- distributed checkpoints ----------------------------------------------

def checkpoint_step_dir(root: str | Path, step: int) -> Path:
    """Directory of the checkpoint taken after ``step`` steps."""
    return Path(root) / f"{_STEP_PREFIX}{int(step):08d}"


def checkpoint_step(step_dir: str | Path) -> int:
    """Step number encoded in a checkpoint step directory's name."""
    name = Path(step_dir).name
    if not name.startswith(_STEP_PREFIX):
        raise ValueError(f"{name!r} is not a checkpoint step directory")
    return int(name[len(_STEP_PREFIX):])


def save_rank_slab(step_dir: str | Path, rank: int, field: np.ndarray, *,
                   start: int, stop: int, step: int, scheme: str,
                   lattice: str) -> Path:
    """Atomically write one rank's interior slab into a step directory.

    ``field`` is the rank's ``(C, width, *rest)`` interior payload
    (populations for ST, moments for MR); ``[start, stop)`` are its
    global axis-0 bounds. Write-to-temp + ``os.replace`` keeps a crash
    mid-write from leaving a plausible-looking but torn rank file.
    """
    step_dir = Path(step_dir)
    step_dir.mkdir(parents=True, exist_ok=True)
    final = step_dir / f"rank{rank:04d}.npz"
    tmp = step_dir / f".rank{rank:04d}.tmp.npz"
    np.savez_compressed(
        tmp, field=field, start=np.asarray(start), stop=np.asarray(stop),
        rank=np.asarray(rank), step=np.asarray(step),
        scheme=np.asarray(scheme), lattice=np.asarray(lattice))
    os.replace(tmp, final)
    return final


def load_rank_slab(path: str | Path) -> dict:
    """Load one rank slab file back into a plain dict."""
    with np.load(Path(path)) as data:
        return {
            "field": np.array(data["field"]),
            "start": int(data["start"]),
            "stop": int(data["stop"]),
            "rank": int(data["rank"]),
            "step": int(data["step"]),
            "scheme": str(data["scheme"]),
            "lattice": str(data["lattice"]),
        }


def mark_checkpoint_complete(step_dir: str | Path) -> Path:
    """Drop the ``COMPLETE`` marker declaring a step directory usable."""
    marker = Path(step_dir) / COMPLETE_MARKER
    marker.write_text("ok\n", encoding="utf-8")
    return marker


def is_checkpoint_complete(step_dir: str | Path) -> bool:
    """Whether a step directory carries its ``COMPLETE`` marker."""
    return (Path(step_dir) / COMPLETE_MARKER).is_file()


def _step_dirs(root: Path) -> list[Path]:
    """Checkpoint step directories under ``root``, oldest first."""
    if not root.is_dir():
        return []
    out = []
    for entry in root.iterdir():
        if entry.is_dir() and entry.name.startswith(_STEP_PREFIX):
            try:
                checkpoint_step(entry)
            except ValueError:
                continue
            out.append(entry)
    return sorted(out, key=checkpoint_step)


def latest_checkpoint(root: str | Path) -> Path | None:
    """Newest *complete* step directory under a checkpoint root.

    ``root`` may also be a step directory itself (it is returned when
    complete) — so CLI users can pass either the run's checkpoint
    directory or one specific snapshot. Torn (marker-less) directories
    are skipped; returns ``None`` when nothing usable exists.
    """
    root = Path(root)
    if root.name.startswith(_STEP_PREFIX) and root.is_dir():
        return root if is_checkpoint_complete(root) else None
    for step_dir in reversed(_step_dirs(root)):
        if is_checkpoint_complete(step_dir):
            return step_dir
    return None


def prune_checkpoints(root: str | Path, keep: int = 2) -> list[Path]:
    """Delete all but the newest ``keep`` complete step directories.

    Torn directories older than the newest complete one are deleted too
    (they can never be resumed from). Returns the removed paths.
    """
    complete = [d for d in _step_dirs(Path(root)) if is_checkpoint_complete(d)]
    survivors = {d.name for d in complete[-max(int(keep), 1):]}
    newest = checkpoint_step(complete[-1]) if complete else -1
    removed = []
    for step_dir in _step_dirs(Path(root)):
        torn = not is_checkpoint_complete(step_dir)
        if step_dir.name in survivors or (torn and
                                          checkpoint_step(step_dir) >= newest):
            continue
        shutil.rmtree(step_dir, ignore_errors=True)
        removed.append(step_dir)
    return removed


def load_manifest_for_resume(step_dir: str | Path) -> dict:
    """Read just the manifest dict of a complete step directory.

    The cheap validation path: the parent checks compatibility from the
    manifest alone and leaves loading the (much larger) rank slabs to
    the worker processes.
    """
    step_dir = Path(step_dir)
    if not is_checkpoint_complete(step_dir):
        raise FileNotFoundError(
            f"{step_dir} is not a complete checkpoint (no "
            f"{COMPLETE_MARKER} marker)")
    return json.loads((step_dir / "manifest.json").read_text(encoding="utf-8"))


def load_distributed_checkpoint(step_dir: str | Path) -> tuple[dict, list[dict]]:
    """Load a complete step directory: ``(manifest dict, rank slabs)``.

    Raises ``FileNotFoundError`` for a missing/torn directory and
    ``ValueError`` when the rank files do not tile the global domain.
    """
    step_dir = Path(step_dir)
    if not is_checkpoint_complete(step_dir):
        raise FileNotFoundError(
            f"{step_dir} is not a complete checkpoint (no "
            f"{COMPLETE_MARKER} marker; the writing run may have died "
            "mid-checkpoint)")
    manifest = json.loads(
        (step_dir / "manifest.json").read_text(encoding="utf-8"))
    slabs = [load_rank_slab(p) for p in sorted(step_dir.glob("rank*.npz"))]
    if not slabs:
        raise ValueError(f"{step_dir} holds no rank slab files")
    slabs.sort(key=lambda s: s["rank"])
    stop = 0
    for s in slabs:
        if s["start"] != stop:
            raise ValueError(
                f"rank files in {step_dir} do not tile the domain: rank "
                f"{s['rank']} starts at {s['start']}, expected {stop}")
        stop = s["stop"]
    return manifest, slabs


def assemble_global_field(slabs: list[dict],
                          global_shape: tuple[int, ...]) -> np.ndarray:
    """Tile per-rank interior slabs back into the global ``(C, *shape)``."""
    c = slabs[0]["field"].shape[0]
    out = np.empty((c, *global_shape), dtype=np.float64)
    for s in slabs:
        out[:, s["start"]:s["stop"]] = s["field"]
    if slabs[-1]["stop"] != global_shape[0]:
        raise ValueError(
            f"rank files cover axis 0 up to {slabs[-1]['stop']}, global "
            f"extent is {global_shape[0]}")
    return out


def reshard_field(global_field: np.ndarray, decomp, rank: int) -> np.ndarray:
    """Cut one rank's slab (ghost planes included) out of a global field.

    ``decomp`` is a :class:`~repro.parallel.decomposition.SlabDecomposition`
    of the *resumed* run — it need not match the decomposition that wrote
    the checkpoint. Ghost planes are filled with the neighbours' edge
    values under periodic wrap; they are overwritten by the first halo
    exchange, but starting finite keeps watchdogs and diagnostics sane.
    """
    nx = global_field.shape[1]
    start, stop = decomp.bounds(rank)
    gl = 1 if decomp.has_left(rank) else 0
    gr = 1 if decomp.has_right(rank) else 0
    gsl = [(start - gl + k) % nx for k in range(stop - start + gl + gr)]
    return global_field[:, gsl].copy()


def validate_checkpoint_manifest(manifest: dict, *, scheme: str, lattice: str,
                                 shape: tuple[int, ...], tau: float,
                                 fingerprint: str | None = None,
                                 fingerprint_version: int | None = None
                                 ) -> None:
    """Check a checkpoint manifest against the run that wants to resume it.

    Lattice, global shape, scheme and tau must match exactly (they
    change the trajectory); the rank count may differ (the field is
    re-sharded). A mismatched problem ``fingerprint`` — covering the
    problem kind and preset options — is also rejected, but only when
    the checkpoint was written under the same fingerprint encoding:
    when ``fingerprint_version`` is given and differs from the
    manifest's recorded version (absent = version 1, the pre-fix
    encoding), the digests are not comparable, so the comparison is
    skipped with a :class:`UserWarning` instead of failing spuriously.
    The field-by-field checks above still guard the resume.
    """
    problems = []
    if manifest.get("scheme") != scheme:
        problems.append(
            f"scheme: checkpoint {manifest.get('scheme')!r} != run {scheme!r}")
    if manifest.get("lattice") != lattice:
        problems.append(f"lattice: checkpoint {manifest.get('lattice')!r} "
                        f"!= run {lattice!r}")
    if tuple(manifest.get("shape", ())) != tuple(shape):
        problems.append(f"shape: checkpoint {tuple(manifest.get('shape', ()))}"
                        f" != run {tuple(shape)}")
    if manifest.get("tau") is not None and \
            float(manifest["tau"]) != float(tau):
        problems.append(f"tau: checkpoint {manifest['tau']} != run {tau}")
    extra = manifest.get("extra", {})
    saved_fp = extra.get("fingerprint")
    saved_version = extra.get("fingerprint_version", 1)
    if fingerprint is not None and saved_fp is not None:
        if (fingerprint_version is not None
                and saved_version != fingerprint_version):
            warnings.warn(
                f"checkpoint was written under fingerprint encoding "
                f"v{saved_version}, this run uses v{fingerprint_version}; "
                "skipping the problem-fingerprint comparison (scheme/"
                "lattice/shape/tau still validated). Re-checkpointing "
                "will record the current version.", UserWarning,
                stacklevel=2)
        elif saved_fp != fingerprint:
            problems.append("problem fingerprint differs (kind/options "
                            "changed since the checkpoint was written)")
    if problems:
        raise ValueError("checkpoint is incompatible with this run:\n  "
                         + "\n  ".join(problems))
