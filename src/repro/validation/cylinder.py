"""Schäfer–Turek flow-past-a-cylinder validation cases.

The DFG benchmark (Schäfer & Turek 1996) fixes a circular cylinder of
diameter ``D`` in a plane channel of height ``4.1 D``, centered ``2 D``
downstream of the inlet and ``2 D`` above the bottom wall, with a
parabolic inlet of mean speed ``U = 2/3 U_max``:

* **Re = 20** (case 2D-1): steady flow with a recirculation bubble;
  reference drag coefficient ``C_D in [5.57, 5.59]``.
* **Re = 100** (case 2D-2): periodic Kármán vortex street; reference
  Strouhal number ``St in [0.295, 0.305]`` and peak drag
  ``C_D_max in [3.22, 3.24]``.

:func:`schafer_turek_case` builds the lattice realization at a chosen
resolution (``D`` in lattice cells): half-way bounce-back channel walls
(effective wall planes at the half-link positions), the finite-difference
velocity inlet / pressure outlet of the paper's channel proxy, and the
cylinder either as a staircase of solid nodes (half-way bounce-back) or
with the second-order interpolated Bouzidi boundary of
:mod:`repro.boundary.curved` layered on top. Forces come from the
momentum-exchange method — the staircase case through
:class:`repro.analysis.forces.MomentumExchangeForce`, the curved case
from the boundary's own link-consistent accumulator.

These cases power the cylinder validation test tier
(``tests/integration/test_cylinder_validation.py``) and the
``problem="cylinder"`` mode of :func:`repro.obs.profile.compare_backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..boundary import (HalfwayBounceBack, InterpolatedBounceBack, Plane,
                        PressureOutlet, VelocityInlet, circle_sdf)
from ..geometry import cylinder_in_channel
from ..lattice import get_lattice

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle with
    # repro.solver, whose monitors import this package's norms)
    from ..analysis.forces import MomentumExchangeForce
    from ..solver import Solver

__all__ = ["SCHAFER_TUREK", "CylinderCase", "schafer_turek_case",
           "strouhal_number"]

#: Reference bands of the DFG benchmark (Schäfer & Turek 1996).
SCHAFER_TUREK = {
    20: {"c_d": (5.57, 5.59), "c_l": (0.0104, 0.0110)},
    100: {"c_d_max": (3.22, 3.24), "c_l_max": (0.99, 1.01),
          "strouhal": (0.295, 0.305)},
}


@dataclass
class CylinderCase:
    """A bound cylinder-flow benchmark: solver plus force instrumentation."""

    solver: Solver
    diameter: float
    u_mean: float
    reynolds: float
    cylinder_mask: np.ndarray
    curved_bc: InterpolatedBounceBack | None = None
    force_meter: MomentumExchangeForce = field(default=None)  # type: ignore[assignment]

    def force(self) -> np.ndarray:
        """Instantaneous momentum-exchange force on the cylinder.

        The curved case reads the Bouzidi boundary's link-consistent
        accumulator (valid after at least one step); the staircase case
        evaluates the classical half-way momentum exchange.
        """
        if self.curved_bc is not None:
            return np.array(self.curved_bc.last_force)
        return self.force_meter.force()

    def coefficients(self) -> tuple[float, float]:
        """Current ``(C_D, C_L)`` using the benchmark normalization."""
        from ..analysis.forces import drag_lift_coefficients

        return drag_lift_coefficients(self.force(), 1.0, self.u_mean,
                                      self.diameter)


def schafer_turek_case(re: float = 20.0, d: float = 10.0,
                       u_max: float = 0.1, scheme: str = "MR-R",
                       backend: str = "sparse",
                       curved: bool = False) -> CylinderCase:
    """Build a Schäfer–Turek cylinder case at resolution ``d`` cells/diameter.

    Parameters
    ----------
    re:
        Reynolds number ``U_mean D / nu`` (20 for the steady case, 100
        for the vortex street).
    d:
        Cylinder diameter in lattice cells — the resolution knob; the
        channel is ``22 d`` long and ``4.1 d`` high (between the
        half-way wall planes), cylinder center at ``(2 d, 2 d)`` from
        the inlet / bottom wall as in the benchmark.
    u_max:
        Peak inlet velocity (lattice units); the mean is ``2/3 u_max``
        and the viscosity follows from ``re``.
    scheme, backend:
        Solver scheme and execution backend; the regularized MR schemes
        stay stable at the low ``tau`` of the Re=100 case.
    curved:
        Staircase cylinder (half-way bounce-back) when false; layer the
        second-order interpolated Bouzidi boundary over the cylinder
        surface when true.
    """
    from ..analysis.forces import MomentumExchangeForce
    from ..solver.presets import make_solver

    lat = get_lattice("D2Q9")
    nx = int(round(22.0 * d))
    ny = int(round(4.1 * d)) + 2           # walls at the half-way planes
    cx = 2.0 * d
    cy = 0.5 + 2.0 * d                     # 2 d above the bottom wall plane
    radius = 0.5 * d
    domain = cylinder_in_channel(nx, ny, cx, cy, radius, with_io=True)
    cyl_mask = np.zeros(domain.shape, dtype=bool)
    x, y = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    cyl_mask[(x - cx) ** 2 + (y - cy) ** 2 <= radius ** 2] = True

    u_mean = 2.0 * u_max / 3.0
    nu = u_mean * d / re
    tau = nu / lat.cs2 + 0.5

    from ..solver.presets import channel_inlet_profile

    u_in = channel_inlet_profile(lat, (nx, ny), u_max)
    boundaries: list = [HalfwayBounceBack()]
    curved_bc = None
    if curved:
        curved_bc = InterpolatedBounceBack(circle_sdf(cx, cy, radius),
                                           body_mask=cyl_mask)
        boundaries.append(curved_bc)
    boundaries += [
        VelocityInlet(Plane(axis=0, side=0), u_in),
        PressureOutlet(Plane(axis=0, side=-1), rho_out=1.0),
    ]
    u0 = np.zeros((lat.d, nx, ny))
    u0[:] = u_in[:, None, :]
    u0[:, cyl_mask] = 0.0
    solver = make_solver(scheme, lat, domain, tau, boundaries=boundaries,
                         u0=u0, backend=backend)
    meter = MomentumExchangeForce(solver, body_mask=cyl_mask)
    return CylinderCase(solver=solver, diameter=float(d), u_mean=u_mean,
                        reynolds=float(re), cylinder_mask=cyl_mask,
                        curved_bc=curved_bc, force_meter=meter)


def strouhal_number(lift_series: np.ndarray, u_mean: float, diameter: float,
                    sample_interval: float = 1.0) -> float:
    """Shedding Strouhal number ``f D / U`` from a lift-coefficient series.

    The dominant frequency comes from the peak of the Hann-windowed
    spectrum, refined by a parabolic fit through the three bins around
    the peak (series of ~20 shedding periods resolve ``St`` to well
    under a percent).
    """
    x = np.asarray(lift_series, dtype=np.float64)
    if x.size < 16:
        raise ValueError(f"need at least 16 samples, got {x.size}")
    x = x - x.mean()
    window = np.hanning(x.size)
    amp = np.abs(np.fft.rfft(x * window))
    freqs = np.fft.rfftfreq(x.size, d=sample_interval)
    amp[0] = 0.0
    k = int(np.argmax(amp))
    if amp[k] == 0.0:
        raise ValueError("lift series has no oscillatory content")
    f = freqs[k]
    if 0 < k < amp.size - 1:
        # Parabolic (quadratic-interpolation) peak refinement.
        a, b, c = amp[k - 1], amp[k], amp[k + 1]
        denom = a - 2.0 * b + c
        if denom != 0.0:
            f = freqs[k] + 0.5 * (a - c) / denom * (freqs[1] - freqs[0])
    return float(f * diameter / u_mean)
