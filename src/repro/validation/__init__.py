"""Analytic solutions, error norms and benchmark cases for validation."""

from .cylinder import (
    SCHAFER_TUREK,
    CylinderCase,
    schafer_turek_case,
    strouhal_number,
)
from .analytic import (
    couette_profile,
    duct_profile,
    poiseuille_pressure_gradient,
    poiseuille_profile,
    taylor_green_decay_rate,
    taylor_green_fields,
    womersley_number,
    womersley_profile,
)
from .norms import kinetic_energy, l2_error, linf_error, relative_l2_error

__all__ = [
    "poiseuille_profile",
    "couette_profile",
    "womersley_profile",
    "womersley_number",
    "duct_profile",
    "poiseuille_pressure_gradient",
    "taylor_green_fields",
    "taylor_green_decay_rate",
    "l2_error",
    "linf_error",
    "relative_l2_error",
    "kinetic_energy",
    "SCHAFER_TUREK",
    "CylinderCase",
    "schafer_turek_case",
    "strouhal_number",
]
