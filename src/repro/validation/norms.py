"""Error norms for comparing simulated and analytic fields."""

from __future__ import annotations

import numpy as np

__all__ = ["l2_error", "linf_error", "relative_l2_error", "kinetic_energy"]


def l2_error(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Root-mean-square difference, optionally restricted to a mask."""
    diff = np.asarray(a) - np.asarray(b)
    if mask is not None:
        diff = diff[..., mask]
    return float(np.sqrt(np.mean(diff * diff)))


def linf_error(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Maximum absolute difference, optionally restricted to a mask."""
    diff = np.abs(np.asarray(a) - np.asarray(b))
    if mask is not None:
        diff = diff[..., mask]
    return float(diff.max())


def relative_l2_error(a: np.ndarray, ref: np.ndarray, mask: np.ndarray | None = None) -> float:
    """L2 error normalized by the L2 norm of the reference field."""
    a = np.asarray(a)
    ref = np.asarray(ref)
    if mask is not None:
        a = a[..., mask]
        ref = ref[..., mask]
    denom = np.sqrt(np.sum(ref * ref))
    if denom == 0.0:
        raise ValueError("reference field has zero norm")
    return float(np.sqrt(np.sum((a - ref) ** 2)) / denom)


def kinetic_energy(rho: np.ndarray, u: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Total kinetic energy ``sum 1/2 rho |u|^2`` over the (masked) grid."""
    e = 0.5 * rho * np.einsum("a...,a...->...", u, u)
    if mask is not None:
        e = e[mask]
    return float(e.sum())
