"""Analytic reference solutions for validation.

All coordinates are in lattice units. With half-way bounce-back the
physical wall sits half a lattice spacing beyond the outermost fluid node,
so a channel whose grid has ``n`` nodes across (including the two solid
wall nodes) has walls at ``y = 0.5`` and ``y = n - 1.5`` and width
``H = n - 2``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "poiseuille_profile",
    "couette_profile",
    "womersley_profile",
    "womersley_number",
    "duct_profile",
    "taylor_green_fields",
    "taylor_green_decay_rate",
    "poiseuille_pressure_gradient",
]


def poiseuille_profile(n: int, u_max: float, include_walls: bool = True) -> np.ndarray:
    """Plane-Poiseuille velocity profile across a channel of ``n`` grid nodes.

    ``n`` counts all nodes across the channel including the two wall
    (solid) nodes when ``include_walls`` is true; entries at the wall nodes
    are zero. The parabola vanishes at the half-way wall locations.
    """
    y = np.arange(n, dtype=np.float64)
    if include_walls:
        y0, y1 = 0.5, n - 1.5
    else:
        y0, y1 = -0.5, n - 0.5
    h = y1 - y0
    u = 4.0 * u_max * (y - y0) * (y1 - y) / (h * h)
    if include_walls:
        u[0] = 0.0
        u[-1] = 0.0
    return np.clip(u, 0.0, None) * (u > 0)


def couette_profile(n: int, u_wall: float) -> np.ndarray:
    """Plane-Couette profile: linear from 0 (bottom wall) to ``u_wall``.

    ``n`` counts all nodes across the gap including the two wall nodes;
    with half-way bounce-back the walls sit at ``y = 0.5`` and
    ``y = n - 1.5``, so fluid node ``y`` moves at
    ``u_wall (y - 0.5) / (n - 2)``. Wall-node entries are zero.
    """
    y = np.arange(n, dtype=np.float64)
    u = u_wall * (y - 0.5) / (n - 2.0)
    u[0] = 0.0
    u[-1] = 0.0
    return u


def duct_profile(ny: int, nz: int, u_max: float, n_terms: int = 41) -> np.ndarray:
    """Exact laminar profile of a rectangular duct, normalized to ``u_max``.

    Fourier-series solution of ``-lap u = const`` with no-slip on the
    rectangle boundary (walls at the half-way locations of an
    ``ny x nz``-node cross-section that includes one solid rim node on each
    side). Returns a ``(ny, nz)`` array, zero on the rim.
    """
    y = np.arange(ny, dtype=np.float64) - 0.5          # wall at y=0.5 -> eta=0
    z = np.arange(nz, dtype=np.float64) - 0.5
    a = ny - 2.0                                       # duct height
    b = nz - 2.0                                       # duct width
    yy, zz = np.meshgrid(y, z, indexing="ij")
    u = np.zeros((ny, nz))
    # u(eta, zeta) = sum_{odd n} A_n sin(n pi eta / a) * (1 - cosh(...)/cosh(...))
    for n in range(1, n_terms + 1, 2):
        k = n * np.pi / a
        term = (
            (4.0 / (np.pi * n)) ** 1
            * np.sin(k * yy)
            * (1.0 - np.cosh(k * (zz - b / 2.0)) / np.cosh(k * b / 2.0))
            / n ** 2
        )
        u += term
    inside = (yy > 0) & (yy < a) & (zz > 0) & (zz < b)
    u[~inside] = 0.0
    peak = u.max()
    if peak > 0:
        u *= u_max / peak
    return u


def womersley_profile(n: int, t: float, amplitude: float, omega: float,
                      nu: float) -> np.ndarray:
    """Oscillatory channel (Womersley-type) flow profile at time ``t``.

    Analytic solution of ``du/dt = A cos(omega t) + nu d2u/dy2`` with
    no-slip walls — a plane channel driven by an oscillating body force
    (equivalently, pressure gradient) of amplitude ``A`` per unit mass.
    With ``k = sqrt(i omega / nu)`` and the walls at the half-way
    positions of an ``n``-node cross-section,

    .. math::
       u(y, t) = \\Re\\left[ \\frac{A}{i\\omega}
           \\left(1 - \\frac{\\cosh(k \\hat y)}{\\cosh(k h)}\\right)
           e^{i\\omega t} \\right]

    where ``\\hat y`` is measured from the channel centre and ``h`` is the
    half-width. The Womersley number is ``alpha = h sqrt(omega/nu)``:
    small ``alpha`` gives quasi-steady parabolas, large ``alpha`` the
    flattened annular-overshoot profiles.
    """
    if omega <= 0 or nu <= 0:
        raise ValueError("omega and nu must be positive")
    y = np.arange(n, dtype=np.float64)
    y0, y1 = 0.5, n - 1.5                      # half-way wall positions
    h = (y1 - y0) / 2.0
    y_hat = y - (y0 + y1) / 2.0                # centred coordinate
    k = np.sqrt(1j * omega / nu)
    u_hat = (amplitude / (1j * omega)) * (
        1.0 - np.cosh(k * y_hat) / np.cosh(k * h)
    )
    u = np.real(u_hat * np.exp(1j * omega * t))
    u[0] = 0.0
    u[-1] = 0.0
    return u


def womersley_number(n: int, omega: float, nu: float) -> float:
    """``alpha = h sqrt(omega / nu)`` for an ``n``-node cross-section."""
    h = (n - 2.0) / 2.0
    return h * np.sqrt(omega / nu)


def poiseuille_pressure_gradient(u_max: float, width: float, nu: float) -> float:
    """dp/dx driving a plane Poiseuille flow of peak ``u_max``:
    ``dp/dx = -8 nu rho u_max / H^2`` (with rho = 1)."""
    return -8.0 * nu * u_max / (width * width)


def taylor_green_fields(shape: tuple[int, int], t: float, nu: float, u0: float,
                        rho0: float = 1.0, cs2: float = 1.0 / 3.0
                        ) -> tuple[np.ndarray, np.ndarray]:
    """2D Taylor-Green vortex (periodic) at time ``t``.

    ``u = u0 e^{-t/td} [ cos(kx x) sin(ky y), -(kx/ky) sin(kx x) cos(ky y)]``
    with ``1/td = nu (kx^2 + ky^2)``, plus the compatible weakly
    compressible density field. Returns ``(rho, u)`` with shapes
    ``shape`` and ``(2, *shape)``.
    """
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    x = np.arange(nx)[:, None]
    y = np.arange(ny)[None, :]
    decay = np.exp(-nu * (kx * kx + ky * ky) * t)
    u = np.empty((2, nx, ny))
    u[0] = -u0 * np.sqrt(ky / kx) * np.cos(kx * x) * np.sin(ky * y) * decay
    u[1] = u0 * np.sqrt(kx / ky) * np.sin(kx * x) * np.cos(ky * y) * decay
    p = (
        -0.25
        * rho0
        * u0 * u0
        * ((ky / kx) * np.cos(2 * kx * x) + (kx / ky) * np.cos(2 * ky * y))
        * decay
        * decay
    )
    rho = rho0 + p / cs2
    return rho, u


def taylor_green_decay_rate(shape: tuple[int, int], nu: float) -> float:
    """Kinetic-energy decay rate ``2 nu (kx^2 + ky^2)`` of the 2D TGV."""
    kx = 2.0 * np.pi / shape[0]
    ky = 2.0 * np.pi / shape[1]
    return 2.0 * nu * (kx * kx + ky * ky)
