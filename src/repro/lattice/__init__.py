"""Lattice velocity sets, Hermite tensors and moment-space metadata."""

from .descriptor import LatticeDescriptor, build_descriptor
from .hermite import (
    distinct_index_tuples,
    distinct_tensor_columns,
    hermite_tensors,
    index_multiplicity,
    symmetric_contraction_weights,
)
from .sets import (
    D1Q3,
    D2Q9,
    D3Q15,
    D3Q19,
    D3Q27,
    D3Q39,
    available_lattices,
    get_lattice,
)

__all__ = [
    "LatticeDescriptor",
    "build_descriptor",
    "hermite_tensors",
    "distinct_index_tuples",
    "distinct_tensor_columns",
    "index_multiplicity",
    "symmetric_contraction_weights",
    "get_lattice",
    "available_lattices",
    "D1Q3",
    "D2Q9",
    "D3Q15",
    "D3Q19",
    "D3Q27",
    "D3Q39",
]
