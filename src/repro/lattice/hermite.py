"""Discrete Hermite polynomial tensors on lattice velocity sets.

The lattice Boltzmann moment machinery in the paper is phrased in terms of
(discrete) Hermite polynomial tensors :math:`\\mathcal{H}^{(n)}` evaluated at
the lattice velocities :math:`\\mathbf{c}_i` (paper Eqs. 1-3, 8, 11, 14).
This module builds those tensors for arbitrary dimension and order with the
standard recurrence

.. math::

    \\mathcal{H}^{(n+1)}_{\\alpha a_1..a_n}
        = c_\\alpha \\mathcal{H}^{(n)}_{a_1..a_n}
        - c_s^2 \\sum_{k=1}^{n} \\delta_{\\alpha a_k}
              \\mathcal{H}^{(n-1)}_{a_1..\\hat{a}_k..a_n},

which yields, explicitly,

* ``H0 = 1``
* ``H1_a = c_a``
* ``H2_ab = c_a c_b - cs2 δ_ab``
* ``H3_abc = c_a c_b c_c - cs2 (c_a δ_bc + c_b δ_ac + c_c δ_ab)``
* ``H4_abcd = c_a c_b c_c c_d - cs2 (six δ-contracted terms)
  + cs2^2 (δ_ab δ_cd + δ_ac δ_bd + δ_ad δ_bc)``.

Because symmetric tensors are fully described by their distinct index
multi-sets, the module also provides the distinct-component bookkeeping
(multi-sets, multinomial multiplicities) used to store third/fourth-order
moments compactly in the recursive-regularization code paths.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

import numpy as np

__all__ = [
    "hermite_tensors",
    "distinct_index_tuples",
    "index_multiplicity",
    "distinct_tensor_columns",
    "symmetric_contraction_weights",
]


def hermite_tensors(c: np.ndarray, cs2: float, max_order: int) -> list[np.ndarray]:
    """Build discrete Hermite tensors ``H0..H<max_order>`` for velocities ``c``.

    Parameters
    ----------
    c:
        Integer (or float) array of shape ``(Q, D)`` with one discrete
        velocity per row.
    cs2:
        Squared lattice speed of sound (``1/3`` for the standard
        single-speed lattices used in the paper).
    max_order:
        Highest tensor order to build (the paper needs 4 for recursive
        regularization, Eq. 14).

    Returns
    -------
    list of ndarray
        ``tensors[n]`` has shape ``(Q,) + (D,)*n`` and holds
        :math:`\\mathcal{H}^{(n)}` evaluated at every velocity.
    """
    c = np.asarray(c, dtype=np.float64)
    if c.ndim != 2:
        raise ValueError(f"velocity array must be 2D (Q, D), got shape {c.shape}")
    if max_order < 0:
        raise ValueError(f"max_order must be >= 0, got {max_order}")
    q, d = c.shape
    eye = np.eye(d)

    tensors: list[np.ndarray] = [np.ones(q)]
    if max_order == 0:
        return tensors
    tensors.append(c.copy())

    for n in range(1, max_order):
        prev = tensors[n]          # (Q, D^n)
        prev2 = tensors[n - 1]     # (Q, D^(n-1))
        # c_alpha * H^(n): new leading axis alpha.
        nxt = np.einsum("qa,q...->qa...", c, prev)
        # Subtract cs2 * sum_k delta(alpha, a_k) H^(n-1) without index a_k.
        for k in range(n):
            # prev2 axes correspond to (a_1..a_{k}..a_{n-1}) after removing
            # a_k from (a_1..a_n); re-insert a delta on (alpha, a_k).
            # Build term with axes (q, alpha, a_1, ..., a_n).
            # prev2 has axes (q, b_1..b_{n-1}); we map b_j -> a_j for j<k and
            # b_j -> a_{j+1} for j>=k, then multiply by delta(alpha, a_k).
            term = np.einsum("q...,ax->qa...x", prev2, eye)
            # term axes: (q, alpha, b_1..b_{n-1}, a_k). Move a_k into slot k.
            term = np.moveaxis(term, -1, 2 + k)
            nxt = nxt - cs2 * term
        tensors.append(nxt)
    return tensors


def distinct_index_tuples(d: int, order: int) -> list[tuple[int, ...]]:
    """Sorted distinct index multi-sets of a symmetric tensor.

    For ``d=2, order=2`` this returns ``[(0,0), (0,1), (1,1)]`` — i.e. the
    (xx, xy, yy) layout used for the second-order moment block of the
    moment vector throughout the package.
    """
    if order == 0:
        return [()]
    return list(itertools.combinations_with_replacement(range(d), order))


def index_multiplicity(idx: Sequence[int]) -> int:
    """Number of distinct permutations of the index multi-set ``idx``.

    This is the multinomial coefficient ``n! / prod(counts!)``; it converts
    sums over distinct components into full symmetric-tensor contractions
    (e.g. the factor 3 on ``a_xxy`` terms and 6 on ``a_xyz`` in Eq. 14).
    """
    n = len(idx)
    counts: dict[int, int] = {}
    for i in idx:
        counts[i] = counts.get(i, 0) + 1
    mult = math.factorial(n)
    for cnt in counts.values():
        mult //= math.factorial(cnt)
    return mult


def distinct_tensor_columns(tensor: np.ndarray) -> tuple[np.ndarray, list[tuple[int, ...]], np.ndarray]:
    """Compress a symmetric ``(Q, D, .., D)`` tensor to distinct columns.

    Returns
    -------
    cols:
        Array of shape ``(Q, n_distinct)`` with one column per distinct
        index multi-set (sorted, combinations-with-replacement order).
    idx_tuples:
        The multi-sets, in column order.
    mults:
        Integer multiplicities (permutation counts) per column.
    """
    if tensor.ndim < 1:
        raise ValueError("tensor must have at least the Q axis")
    order = tensor.ndim - 1
    if order == 0:
        return tensor.reshape(-1, 1), [()], np.array([1])
    d = tensor.shape[1]
    tuples = distinct_index_tuples(d, order)
    cols = np.stack([tensor[(slice(None), *t)] for t in tuples], axis=1)
    mults = np.array([index_multiplicity(t) for t in tuples], dtype=np.int64)
    return cols, tuples, mults


def symmetric_contraction_weights(d: int, order: int) -> np.ndarray:
    """Multiplicity weights so that a full symmetric contraction
    ``sum_{a1..an} A B`` equals ``sum_{distinct} w * A B``."""
    return np.array(
        [index_multiplicity(t) for t in distinct_index_tuples(d, order)],
        dtype=np.float64,
    )
