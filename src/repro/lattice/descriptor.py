"""Lattice descriptors: velocity sets plus all derived moment machinery.

A :class:`LatticeDescriptor` bundles everything the solvers and the
virtual-GPU kernels need about a ``DdQq`` lattice:

* the discrete velocities ``c`` (shape ``(Q, D)``), weights ``w`` and the
  squared speed of sound ``cs2``;
* opposite-velocity indices (for bounce-back boundaries);
* discrete Hermite tensors up to fourth order (paper Eqs. 1-3, 14);
* the *moment-space* metadata of the paper's moment representation:
  ``M = 1 + D + D(D+1)/2`` moments (Section 2.2), laid out as
  ``[rho, j_x..j_D, Pi_xx, Pi_xy, ..., Pi_DD]`` with the second-order block
  in combinations-with-replacement order;
* the linear projection matrix ``moment_matrix`` (f -> M, Eqs. 1-3) and the
  linear reconstruction matrix ``reconstruction_matrix`` (collided moments
  -> f*, Eq. 11), plus the compressed third/fourth-order Hermite columns
  used by recursive regularization (Eq. 14).

Descriptors are immutable value objects; all arrays are set non-writeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .hermite import distinct_tensor_columns, hermite_tensors

__all__ = ["LatticeDescriptor", "build_descriptor"]


def _freeze(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a)
    a.setflags(write=False)
    return a


@dataclass(frozen=True)
class LatticeDescriptor:
    """Immutable description of a ``DdQq`` lattice and its moment space."""

    name: str
    c: np.ndarray                 # (Q, D) int velocities
    w: np.ndarray                 # (Q,) weights
    cs2: float                    # squared speed of sound

    # Derived fields (filled by build_descriptor).
    opposite: np.ndarray = field(default=None)          # (Q,) int
    h: tuple[np.ndarray, ...] = field(default=None)     # Hermite tensors 0..4
    pair_tuples: tuple[tuple[int, int], ...] = field(default=None)
    pair_mult: np.ndarray = field(default=None)         # (T,) int
    triple_tuples: tuple[tuple[int, ...], ...] = field(default=None)
    triple_mult: np.ndarray = field(default=None)
    quad_tuples: tuple[tuple[int, ...], ...] = field(default=None)
    quad_mult: np.ndarray = field(default=None)
    h2_cols: np.ndarray = field(default=None)           # (Q, T)
    h3_cols: np.ndarray = field(default=None)           # (Q, n3)
    h4_cols: np.ndarray = field(default=None)           # (Q, n4)
    # Indices of third/fourth-order columns that are *supported* by the
    # lattice: not identically zero AND not aliased onto lower-order
    # polynomials (e.g. H4_xxxx = -H2_xx on D2Q9). Only these participate
    # in the recursive-regularization reconstruction (Eq. 14), matching
    # the minimal Hermite basis of Malaspinas (2015).
    h3_supported: np.ndarray = field(default=None)
    h4_supported: np.ndarray = field(default=None)
    # Regularization columns: the supported higher-order Hermite columns,
    # Gram-Schmidt-orthogonalized against the lower-order basis under the
    # lattice-weight inner product. On fully fourth-order lattices (D2Q9,
    # D3Q27) these equal the raw columns; on D3Q15/D3Q19 the fourth-order
    # columns acquire small lower-order corrections so that the Eq. 14
    # reconstruction terms cannot pollute the conserved moments or Pi.
    h3_reg_cols: np.ndarray = field(default=None)
    h4_reg_cols: np.ndarray = field(default=None)
    moment_matrix: np.ndarray = field(default=None)     # (M, Q)
    reconstruction_matrix: np.ndarray = field(default=None)  # (Q, M)

    # ------------------------------------------------------------------
    # Basic sizes
    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """Number of discrete velocities (the `Q` in DdQq)."""
        return self.c.shape[0]

    @property
    def d(self) -> int:
        """Spatial dimension (the `D` in DdQq)."""
        return self.c.shape[1]

    @property
    def n_pairs(self) -> int:
        """Number of distinct second-order components, ``D(D+1)/2``."""
        return self.d * (self.d + 1) // 2

    @property
    def n_moments(self) -> int:
        """Size of the paper's moment space, ``M = 1 + D + D(D+1)/2``.

        6 for 2D lattices and 10 for 3D lattices (Section 2.2).
        """
        return 1 + self.d + self.n_pairs

    @property
    def cs4(self) -> float:
        return self.cs2 * self.cs2

    @property
    def cs6(self) -> float:
        return self.cs2 ** 3

    @property
    def cs8(self) -> float:
        return self.cs2 ** 4

    # ------------------------------------------------------------------
    # Moment-vector layout helpers
    # ------------------------------------------------------------------
    def pair_index(self, a: int, b: int) -> int:
        """Column of component ``(a, b)`` within the second-order block."""
        if a > b:
            a, b = b, a
        return self.pair_tuples.index((a, b))

    def moment_slot(self, kind: str, *idx: int) -> int:
        """Absolute slot of a moment in the ``M``-vector layout.

        ``kind`` is one of ``"rho"``, ``"j"`` (momentum component) or
        ``"pi"`` (second-order component).
        """
        if kind == "rho":
            return 0
        if kind == "j":
            (a,) = idx
            if not 0 <= a < self.d:
                raise ValueError(f"momentum component {a} out of range for D={self.d}")
            return 1 + a
        if kind == "pi":
            a, b = idx
            return 1 + self.d + self.pair_index(a, b)
        raise ValueError(f"unknown moment kind {kind!r}")

    # ------------------------------------------------------------------
    # Convenience physics
    # ------------------------------------------------------------------
    def viscosity(self, tau: float) -> float:
        """Kinematic viscosity of the BGK/regularized model, ``cs2 (tau-1/2)``."""
        return self.cs2 * (tau - 0.5)

    def tau_for_viscosity(self, nu: float) -> float:
        """Relaxation time giving kinematic viscosity ``nu``."""
        return nu / self.cs2 + 0.5

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatticeDescriptor({self.name}, D={self.d}, Q={self.q}, M={self.n_moments})"


def _find_opposites(c: np.ndarray) -> np.ndarray:
    q = c.shape[0]
    opp = np.full(q, -1, dtype=np.int64)
    for i in range(q):
        matches = np.where((c == -c[i]).all(axis=1))[0]
        if matches.size != 1:
            raise ValueError(f"velocity set is not symmetric at index {i}")
        opp[i] = matches[0]
    return opp


def _validate_weights(c: np.ndarray, w: np.ndarray, cs2: float) -> None:
    """Check the isotropy/normalization conditions that the single-speed
    lattices must satisfy up to the order the solvers rely on."""
    if not np.isclose(w.sum(), 1.0):
        raise ValueError(f"weights sum to {w.sum()}, expected 1")
    if np.any(w <= 0):
        raise ValueError("all lattice weights must be positive")
    d = c.shape[1]
    # First moment zero.
    if not np.allclose(np.einsum("q,qa->a", w, c), 0.0):
        raise ValueError("weighted first moment of velocities is nonzero")
    # Second moment cs2 * delta.
    second = np.einsum("q,qa,qb->ab", w, c, c)
    if not np.allclose(second, cs2 * np.eye(d)):
        raise ValueError("second velocity moment is not cs2 * identity")
    # Third moment zero (parity).
    third = np.einsum("q,qa,qb,qc->abc", w, c, c, c)
    if not np.allclose(third, 0.0):
        raise ValueError("third velocity moment is nonzero")


def _supported_columns(cols: np.ndarray, lower: np.ndarray,
                       w: np.ndarray, tol: float = 1e-10) -> np.ndarray:
    """Indices of columns that are non-zero and not aliased onto ``lower``.

    Aliasing is tested with a weighted least-squares projection: a column
    whose residual against the span of the lower-order basis (under the
    lattice-weight inner product) vanishes contributes nothing new on this
    velocity set (e.g. H3_xxx == 0 and H4_xxxx == -H2_xx on D2Q9).
    """
    sw = np.sqrt(w)[:, None]
    basis = lower * sw
    keep = []
    for k in range(cols.shape[1]):
        col = cols[:, k:k + 1] * sw
        norm = np.linalg.norm(col)
        if norm < tol:
            continue
        coef, *_ = np.linalg.lstsq(basis, col, rcond=None)
        residual = np.linalg.norm(col - basis @ coef)
        if residual > tol * max(1.0, norm):
            keep.append(k)
    return np.array(keep, dtype=np.int64)


def _orthogonalize_columns(cols: np.ndarray, supported: np.ndarray,
                           lower: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Project the lower-order basis out of the supported columns.

    Weighted least-squares projection under the lattice-weight inner
    product ``<f, g> = sum_i w_i f_i g_i``; the returned array matches
    ``cols`` in shape, with only the supported columns modified. This
    guarantees that reconstruction terms built from these columns carry no
    density, momentum or second-moment content on *any* lattice.
    """
    out = np.array(cols)
    if supported.size == 0:
        return out
    sw = np.sqrt(w)[:, None]
    basis = lower * sw
    for k in supported:
        col = cols[:, k:k + 1] * sw
        coef, *_ = np.linalg.lstsq(basis, col, rcond=None)
        out[:, k] = ((col - basis @ coef) / sw).ravel()
    return out


def build_descriptor(name: str, c: Sequence[Sequence[int]], w: Sequence[float],
                     cs2: float = 1.0 / 3.0) -> LatticeDescriptor:
    """Construct a fully-derived :class:`LatticeDescriptor`.

    Builds Hermite tensors to fourth order, the distinct-component
    compressions, and the moment projection / reconstruction matrices used
    by the moment-representation solvers and GPU kernels.
    """
    c_arr = np.asarray(c, dtype=np.int64)
    w_arr = np.asarray(w, dtype=np.float64)
    if c_arr.ndim != 2:
        raise ValueError("velocities must be a (Q, D) array")
    if w_arr.shape != (c_arr.shape[0],):
        raise ValueError("weights must have one entry per velocity")
    _validate_weights(c_arr, w_arr, cs2)

    opp = _find_opposites(c_arr)
    tensors = hermite_tensors(c_arr, cs2, max_order=4)
    d = c_arr.shape[1]
    q = c_arr.shape[0]

    h2_cols, pair_tuples, pair_mult = distinct_tensor_columns(tensors[2])
    h3_cols, triple_tuples, triple_mult = distinct_tensor_columns(tensors[3])
    h4_cols, quad_tuples, quad_mult = distinct_tensor_columns(tensors[4])

    # Lower-order basis (weighted) for alias detection: a higher-order
    # column that lies in the span of lower-order columns carries no new
    # information on this lattice and is excluded from Eq. 14.
    lower2 = np.column_stack(
        [np.ones(q), c_arr.astype(np.float64), h2_cols]
    )
    h3_supported = _supported_columns(h3_cols, lower2, w_arr)
    lower3 = np.column_stack([lower2, h3_cols[:, h3_supported]]) \
        if h3_supported.size else lower2
    h4_supported = _supported_columns(h4_cols, lower3, w_arr)

    h3_reg = _orthogonalize_columns(h3_cols, h3_supported, lower2, w_arr)
    h4_reg = _orthogonalize_columns(h4_cols, h4_supported, lower3, w_arr)

    # Projection: M_vec = moment_matrix @ f, rows [H0; H1_a; H2_(ab distinct)].
    n_m = 1 + d + len(pair_tuples)
    moment_matrix = np.empty((n_m, q), dtype=np.float64)
    moment_matrix[0, :] = 1.0
    moment_matrix[1:1 + d, :] = c_arr.T.astype(np.float64)
    moment_matrix[1 + d:, :] = h2_cols.T

    # Reconstruction (Eq. 11): f_i = w_i (rho + H1.j / cs2
    #   + sum_distinct mult * H2 * Pi / (2 cs4)).
    recon = np.empty((q, n_m), dtype=np.float64)
    recon[:, 0] = 1.0
    recon[:, 1:1 + d] = c_arr.astype(np.float64) / cs2
    recon[:, 1 + d:] = h2_cols * (pair_mult[None, :] / (2.0 * cs2 * cs2))
    recon *= w_arr[:, None]

    return LatticeDescriptor(
        name=name,
        c=_freeze(c_arr),
        w=_freeze(w_arr),
        cs2=float(cs2),
        opposite=_freeze(opp),
        h=tuple(_freeze(t) for t in tensors),
        pair_tuples=tuple(pair_tuples),
        pair_mult=_freeze(pair_mult),
        triple_tuples=tuple(triple_tuples),
        triple_mult=_freeze(triple_mult),
        quad_tuples=tuple(quad_tuples),
        quad_mult=_freeze(quad_mult),
        h2_cols=_freeze(h2_cols),
        h3_cols=_freeze(h3_cols),
        h4_cols=_freeze(h4_cols),
        h3_supported=_freeze(h3_supported),
        h4_supported=_freeze(h4_supported),
        h3_reg_cols=_freeze(h3_reg),
        h4_reg_cols=_freeze(h4_reg),
        moment_matrix=_freeze(moment_matrix),
        reconstruction_matrix=_freeze(recon),
    )
