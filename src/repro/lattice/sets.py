"""Standard single-speed lattice velocity sets.

The paper evaluates the two most common single-speed lattices, D2Q9 and
D3Q19 (Section 4), and names single-speed D3Q27 as future work (Section 5).
We provide all of these plus D1Q3 (useful for unit tests) and D3Q15, each
with the classical Qian-d'Humieres-Lallemand weights and ``cs2 = 1/3``.

Velocity ordering convention: rest velocity first, then axis velocities,
then diagonals — grouped by speed shell. Within a shell the ordering is
lexicographic; bounce-back code uses the ``opposite`` table rather than any
positional convention, so the ordering is an implementation detail.
"""

from __future__ import annotations

import itertools
from functools import lru_cache


from .descriptor import LatticeDescriptor, build_descriptor

__all__ = ["get_lattice", "available_lattices", "D2Q9", "D3Q19", "D3Q27",
           "D3Q15", "D1Q3", "D3Q39"]


def _shells(d: int, shells: dict[int, float], keep=None) -> tuple[list[list[int]], list[float]]:
    """Enumerate velocities by squared-speed shell with per-shell weights."""
    velocities: list[list[int]] = []
    weights: list[float] = []
    for speed2 in sorted(shells):
        for v in itertools.product((0, 1, -1), repeat=d):
            if sum(x * x for x in v) == speed2 and (keep is None or keep(v)):
                velocities.append(list(v))
                weights.append(shells[speed2])
    return velocities, weights


def _build_d1q3() -> LatticeDescriptor:
    c = [[0], [1], [-1]]
    w = [2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]
    return build_descriptor("D1Q3", c, w)


def _build_d2q9() -> LatticeDescriptor:
    c, w = _shells(2, {0: 4.0 / 9.0, 1: 1.0 / 9.0, 2: 1.0 / 36.0})
    return build_descriptor("D2Q9", c, w)


def _build_d3q15() -> LatticeDescriptor:
    c, w = _shells(3, {0: 2.0 / 9.0, 1: 1.0 / 9.0, 3: 1.0 / 72.0})
    return build_descriptor("D3Q15", c, w)


def _build_d3q19() -> LatticeDescriptor:
    c, w = _shells(3, {0: 1.0 / 3.0, 1: 1.0 / 18.0, 2: 1.0 / 36.0})
    return build_descriptor("D3Q19", c, w)


def _build_d3q27() -> LatticeDescriptor:
    c, w = _shells(3, {0: 8.0 / 27.0, 1: 2.0 / 27.0, 2: 1.0 / 54.0, 3: 1.0 / 216.0})
    return build_descriptor("D3Q27", c, w)


def _build_d3q39() -> LatticeDescriptor:
    """Multi-speed D3Q39 (Shan-Yuan-Chen 2006), cs2 = 2/3.

    Shells: rest; (1,0,0); (1,1,1); (2,0,0); (2,2,0); (3,0,0). The paper's
    Section 5 names multi-speed lattices like D3Q39 as future work because
    their B/F is usually prohibitive — which is exactly where the moment
    representation helps most (B/F drops from 2*39*8 to 2*10*8).
    """
    velocities: list[list[int]] = [[0, 0, 0]]
    weights: list[float] = [1.0 / 12.0]
    shells = [
        (1, (1, 0, 0), 1.0 / 12.0),
        (3, (1, 1, 1), 1.0 / 27.0),
        (4, (2, 0, 0), 2.0 / 135.0),
        (8, (2, 2, 0), 1.0 / 432.0),
        (9, (3, 0, 0), 1.0 / 1620.0),
    ]
    for speed2, proto, w in shells:
        shape = sorted(abs(x) for x in proto)
        for v in itertools.product((0, 1, -1, 2, -2, 3, -3), repeat=3):
            if (sum(x * x for x in v) == speed2
                    and sorted(abs(x) for x in v) == shape):
                velocities.append(list(v))
                weights.append(w)
    return build_descriptor("D3Q39", velocities, weights, cs2=2.0 / 3.0)


_BUILDERS = {
    "D1Q3": _build_d1q3,
    "D2Q9": _build_d2q9,
    "D3Q15": _build_d3q15,
    "D3Q19": _build_d3q19,
    "D3Q27": _build_d3q27,
    "D3Q39": _build_d3q39,
}


@lru_cache(maxsize=None)
def _cached_build(key: str) -> LatticeDescriptor:
    return _BUILDERS[key]()


def get_lattice(name: str) -> LatticeDescriptor:
    """Return the (cached, immutable) descriptor for a named lattice.

    Lookup is case-insensitive and always returns the same singleton.

    >>> lat = get_lattice("D2Q9")
    >>> lat.q, lat.d, lat.n_moments
    (9, 2, 6)
    """
    key = name.upper()
    try:
        return _cached_build(key)
    except KeyError:
        raise ValueError(
            f"unknown lattice {name!r}; available: {sorted(_BUILDERS)}"
        ) from None


def available_lattices() -> list[str]:
    """Names of all built-in lattices."""
    return sorted(_BUILDERS)


# Eagerly-built module-level singletons for the common lattices.
D1Q3 = get_lattice("D1Q3")
D2Q9 = get_lattice("D2Q9")
D3Q15 = get_lattice("D3Q15")
D3Q19 = get_lattice("D3Q19")
D3Q27 = get_lattice("D3Q27")
D3Q39 = get_lattice("D3Q39")
