"""Merging per-rank telemetry into one distributed-run report.

The multiprocess runtime (:mod:`repro.parallel.runtime`) gives every
worker its own :class:`~repro.obs.telemetry.Telemetry` registry; after a
run the parent holds one summary dict per rank. :func:`merge_rank_reports`
folds them into a single report: phase statistics aggregate across ranks
(calls and totals add, min/max widen), counters add, communication
accounting adds bytes and messages while keeping the lock-step ``steps``,
and MLUPS is derived both per rank and for the whole cohort (total
interior fluid nodes x steps over the slowest rank's wall time — the
barrier makes the slowest rank the cohort's pace).

The merged report is what ``mrlbm run --backend process`` prints and what
``--metrics`` exports; ``docs/PARALLEL.md`` documents how to read it.
"""

from __future__ import annotations

__all__ = ["merge_rank_reports"]


def _merge_phases(summaries: list[dict]) -> dict:
    """Aggregate per-path phase statistics across rank summaries."""
    merged: dict[str, dict] = {}
    for summary in summaries:
        for path, stats in summary.get("phases", {}).items():
            agg = merged.setdefault(path, {
                "calls": 0, "total_s": 0.0, "min_s": float("inf"),
                "max_s": 0.0})
            agg["calls"] += stats.get("calls", 0)
            agg["total_s"] += stats.get("total_s", 0.0)
            agg["min_s"] = min(agg["min_s"], stats.get("min_s", float("inf")))
            agg["max_s"] = max(agg["max_s"], stats.get("max_s", 0.0))
    for agg in merged.values():
        calls = agg["calls"]
        agg["mean_s"] = agg["total_s"] / calls if calls else 0.0
        if agg["min_s"] == float("inf"):
            agg["min_s"] = 0.0
    return merged


def merge_rank_reports(per_rank: list[dict],
                       wall_s: float | None = None) -> dict:
    """Merge the per-rank worker reports of one distributed run.

    Parameters
    ----------
    per_rank:
        One dict per rank as posted by the runtime worker: keys
        ``rank``, ``steps``, ``n_fluid``, ``wall_s``, ``comm`` (a
        :meth:`~repro.parallel.decomposition.CommunicationReport.to_dict`
        snapshot) and ``summary`` (a
        :meth:`~repro.obs.telemetry.Telemetry.summary` snapshot).
    wall_s:
        Parent-measured wall time of the whole run (startup included);
        kept alongside the in-loop timings when given.

    Returns
    -------
    dict
        JSON-serializable report with aggregated ``phases``,
        ``counters``, ``comm``, per-rank and cohort ``mlups``, and the
        original ``per_rank`` records for drill-down.
    """
    reports = sorted(per_rank, key=lambda rep: rep.get("rank", 0))
    steps = max((rep.get("steps", 0) for rep in reports), default=0)
    n_fluid_total = sum(rep.get("n_fluid", 0) for rep in reports)
    slowest = max((rep.get("wall_s", 0.0) for rep in reports), default=0.0)

    counters: dict[str, float] = {}
    for rep in reports:
        for name, value in rep.get("summary", {}).get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value

    comm = {"bytes_sent": 0, "messages": 0, "steps": 0}
    for rep in reports:
        c = rep.get("comm", {})
        comm["bytes_sent"] += c.get("bytes_sent", 0)
        comm["messages"] += c.get("messages", 0)
        comm["steps"] = max(comm["steps"], c.get("steps", 0))
    comm["bytes_per_step"] = comm["bytes_sent"] / max(comm["steps"], 1)

    mlups_per_rank = [
        {
            "rank": rep.get("rank"),
            "n_fluid": rep.get("n_fluid", 0),
            "wall_s": rep.get("wall_s", 0.0),
            "mlups": (rep.get("n_fluid", 0) * rep.get("steps", 0)
                      / rep["wall_s"] / 1e6 if rep.get("wall_s") else 0.0),
        }
        for rep in reports
    ]
    aggregate_mlups = (n_fluid_total * steps / slowest / 1e6
                       if slowest > 0 else 0.0)

    return {
        "n_ranks": len(reports),
        "steps": steps,
        "n_fluid": n_fluid_total,
        "wall_s": wall_s if wall_s is not None else slowest,
        "wall_s_slowest_rank": slowest,
        "mlups": aggregate_mlups,
        "mlups_per_rank": mlups_per_rank,
        "comm": comm,
        "phases": _merge_phases([rep.get("summary", {}) for rep in reports]),
        "counters": counters,
        "per_rank": reports,
    }
