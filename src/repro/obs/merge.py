"""Merging per-rank telemetry into one distributed-run report.

The multiprocess runtime (:mod:`repro.parallel.runtime`) gives every
worker its own :class:`~repro.obs.telemetry.Telemetry` registry; after a
run the parent holds one summary dict per rank. :func:`merge_rank_reports`
folds them into a single report: phase statistics aggregate across ranks
(calls and totals add, min/max widen), counters add, communication
accounting adds bytes and messages while keeping the lock-step ``steps``,
and MLUPS is derived both per rank and for the whole cohort (total
interior fluid nodes x steps over the slowest rank's wall time — the
barrier makes the slowest rank the cohort's pace).

The merged report also attributes *where the cohort's time went*
(``report["imbalance"]``): per-rank halo-exchange wait time (the barrier
phases of the SPMD loop), the share of each rank's step time spent
waiting, and the load-imbalance ratio (slowest rank wall time over the
mean). A high wait share with a ratio near 1 means the exchange itself is
expensive; a high wait share with a high ratio means one rank is the
straggler and the others wait for it at every barrier.

The merged report is what ``mrlbm run --backend process`` prints and what
``--metrics`` exports; ``docs/PARALLEL.md`` documents how to read it.
"""

from __future__ import annotations

__all__ = ["merge_rank_reports"]


def _merge_phases(summaries: list[dict]) -> dict:
    """Aggregate per-path phase statistics across rank summaries."""
    merged: dict[str, dict] = {}
    for summary in summaries:
        for path, stats in summary.get("phases", {}).items():
            agg = merged.setdefault(path, {
                "calls": 0, "total_s": 0.0, "min_s": float("inf"),
                "max_s": 0.0})
            agg["calls"] += stats.get("calls", 0)
            agg["total_s"] += stats.get("total_s", 0.0)
            agg["min_s"] = min(agg["min_s"], stats.get("min_s", float("inf")))
            agg["max_s"] = max(agg["max_s"], stats.get("max_s", 0.0))
    for agg in merged.values():
        calls = agg["calls"]
        agg["mean_s"] = agg["total_s"] / calls if calls else 0.0
        if agg["min_s"] == float("inf"):
            agg["min_s"] = 0.0
    return merged


def _rank_wait_s(rep: dict) -> float:
    """Halo-exchange wait seconds of one rank.

    Prefers the worker's explicit ``exchange_wait_s`` field; falls back
    to the ``step/barrier`` phase total in the rank's telemetry summary
    (the two barrier waits of the SPMD step are exactly the time this
    rank spent blocked on its siblings).
    """
    if "exchange_wait_s" in rep:
        return float(rep["exchange_wait_s"] or 0.0)
    phases = rep.get("summary", {}).get("phases", {})
    return float(phases.get("step/barrier", {}).get("total_s", 0.0))


def _imbalance(reports: list[dict]) -> dict:
    """Load-imbalance and exchange-wait attribution across ranks.

    All ratios degrade to 0/1 sentinels (never a ZeroDivisionError) on
    empty cohorts, missing ``wall_s`` or zero-step ranks.
    """
    walls = [float(rep.get("wall_s") or 0.0) for rep in reports]
    waits = [_rank_wait_s(rep) for rep in reports]
    total_wall = sum(walls)
    mean_wall = total_wall / len(walls) if walls else 0.0
    slowest = max(walls, default=0.0)
    per_rank = [
        {
            "rank": rep.get("rank"),
            "wall_s": wall,
            "exchange_wait_s": wait,
            "exchange_wait_share": (wait / wall) if wall > 0 else 0.0,
        }
        for rep, wall, wait in zip(reports, walls, waits)
    ]
    slowest_rank = None
    if walls and slowest > 0:
        slowest_rank = reports[walls.index(slowest)].get("rank")
    return {
        "wall_s_mean": mean_wall,
        "wall_s_slowest": slowest,
        "slowest_rank": slowest_rank,
        # slowest/mean: 1.0 is perfectly balanced; the barrier makes the
        # whole cohort pay (ratio - 1) of the mean step time every step.
        "imbalance_ratio": (slowest / mean_wall) if mean_wall > 0 else 1.0,
        "exchange_wait_s": sum(waits),
        "exchange_wait_share": (sum(waits) / total_wall)
        if total_wall > 0 else 0.0,
        "per_rank": per_rank,
    }


def merge_rank_reports(per_rank: list[dict],
                       wall_s: float | None = None) -> dict:
    """Merge the per-rank worker reports of one distributed run.

    Parameters
    ----------
    per_rank:
        One dict per rank as posted by the runtime worker: keys
        ``rank``, ``steps``, ``n_fluid``, ``wall_s``, ``comm`` (a
        :meth:`~repro.parallel.decomposition.CommunicationReport.to_dict`
        snapshot) and ``summary`` (a
        :meth:`~repro.obs.telemetry.Telemetry.summary` snapshot).
        Missing keys degrade to zeros — a partial cohort (or an empty
        list) still merges into a well-formed report.
    wall_s:
        Parent-measured wall time of the whole run (startup included);
        kept alongside the in-loop timings when given.

    Returns
    -------
    dict
        JSON-serializable report with aggregated ``phases``,
        ``counters``, ``comm``, per-rank and cohort ``mlups``, the
        ``imbalance`` attribution block (see :func:`_imbalance`), and
        the original ``per_rank`` records for drill-down.
    """
    reports = sorted(per_rank, key=lambda rep: rep.get("rank") or 0)
    steps = max((rep.get("steps") or 0 for rep in reports), default=0)
    n_fluid_total = sum(rep.get("n_fluid") or 0 for rep in reports)
    slowest = max((float(rep.get("wall_s") or 0.0) for rep in reports),
                  default=0.0)

    counters: dict[str, float] = {}
    for rep in reports:
        for name, value in rep.get("summary", {}).get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value

    comm = {"bytes_sent": 0, "messages": 0, "steps": 0}
    for rep in reports:
        c = rep.get("comm", {})
        comm["bytes_sent"] += c.get("bytes_sent", 0)
        comm["messages"] += c.get("messages", 0)
        comm["steps"] = max(comm["steps"], c.get("steps", 0))
    comm["bytes_per_step"] = comm["bytes_sent"] / max(comm["steps"], 1)

    mlups_per_rank = [
        {
            "rank": rep.get("rank"),
            "n_fluid": rep.get("n_fluid") or 0,
            "wall_s": float(rep.get("wall_s") or 0.0),
            "mlups": ((rep.get("n_fluid") or 0) * (rep.get("steps") or 0)
                      / float(rep["wall_s"]) / 1e6
                      if rep.get("wall_s") else 0.0),
        }
        for rep in reports
    ]
    aggregate_mlups = (n_fluid_total * steps / slowest / 1e6
                       if slowest > 0 else 0.0)

    return {
        "n_ranks": len(reports),
        "steps": steps,
        "n_fluid": n_fluid_total,
        "wall_s": wall_s if wall_s is not None else slowest,
        "wall_s_slowest_rank": slowest,
        "mlups": aggregate_mlups,
        "mlups_per_rank": mlups_per_rank,
        "comm": comm,
        "imbalance": _imbalance(reports),
        "phases": _merge_phases([rep.get("summary", {}) for rep in reports]),
        "counters": counters,
        "per_rank": reports,
    }
