"""Benchmark trajectory + regression sentinel behind ``mrlbm bench``.

The repo measured performance as one-off text artifacts; this module
turns every measurement into a **versioned record** appended to a
repo-root trajectory file (``BENCH_<suite>.json``), so performance has a
history a comparator can judge new numbers against:

* :class:`BenchCell` — one configuration of the standard matrix
  (scheme x lattice x backend x problem x shape x ranks);
* :class:`BenchRecord` — one measurement of one cell: MLUPS from
  min-of-k timing (the noise-robust estimator), the model bytes/FLUP,
  the implied effective GB/s, the roofline attainment join
  (:mod:`repro.obs.attain`), git revision and timestamp;
* :func:`append_records` / :func:`load_trajectory` — the append-only
  trajectory file, schema-validated on both ends;
* :func:`compare_to_baseline` — the noise-aware regression sentinel:
  each new record is compared against the median of the most recent
  baseline measurements of the *same cell*, with a relative threshold
  that widens to the baseline's own observed spread, and every verdict
  carries the roofline attribution so "code got slower" is
  distinguishable from "this cell is overhead-bound anyway".

``mrlbm bench`` runs the matrix, appends, compares and exits non-zero on
regression (``--report-only`` downgrades to a warning — the CI smoke
mode); ``docs/observability.md`` documents the schema and workflow.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .attain import attain_cell, attainment_note, measure_host_bandwidth

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "BenchRecord",
    "git_rev",
    "default_suite",
    "run_cell",
    "run_suite",
    "trajectory_path",
    "load_trajectory",
    "append_records",
    "validate_record",
    "validate_trajectory",
    "compare_to_baseline",
    "ONE_SAMPLE_THRESHOLD_FLOOR",
    "records_from_comparison",
    "format_records",
    "format_comparison",
]

#: Version stamped into every record and trajectory file; bump on any
#: incompatible schema change so old trajectories are rejected loudly
#: instead of compared nonsensically.
BENCH_SCHEMA_VERSION = 1

#: Required record fields and their JSON types, the validation contract
#: for everything that enters a trajectory file.
RECORD_SCHEMA: dict[str, tuple] = {
    "schema_version": (int,),
    "suite": (str,),
    "scheme": (str,),
    "lattice": (str,),
    "backend": (str,),
    "problem": (str,),
    "shape": (list, tuple),
    "ranks": (int,),
    "tau": (float, int),
    "steps": (int,),
    "repeats": (int,),
    "n_fluid": (int,),
    "wall_s": (float, int),
    "mlups": (float, int),
    "bytes_per_flup": (float, int),
    "effective_gbs": (float, int),
    "attainment": (float, int),
    "model_mlups": (float, int),
    "model_device": (str,),
    "git_rev": (str,),
    "timestamp": (float, int),
}


def git_rev(repo_dir: str | Path | None = None) -> str:
    """Short git revision of the working tree (``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass(frozen=True)
class BenchCell:
    """One configuration of the benchmark matrix.

    ``batch > 1`` makes the cell a **batched-ensemble** measurement:
    ``batch`` same-configuration members (``backend="fused"`` each) run
    in lockstep through one :class:`repro.ensemble.EnsembleRunner` and
    the cell reports *aggregate* MLUPS over all members. Batched cells
    conventionally use ``backend="batched"`` so their trajectory history
    never mixes with single-simulation cells of the same problem.
    """

    scheme: str
    lattice: str
    backend: str = "reference"
    problem: str = "periodic"
    shape: tuple[int, ...] = (64, 64)
    steps: int = 10
    repeats: int = 3
    ranks: int = 1
    tau: float = 0.8
    batch: int = 1

    def key(self) -> tuple:
        """Identity of the cell for baseline matching across records."""
        return (self.scheme, self.lattice, self.backend, self.problem,
                tuple(self.shape), self.ranks)


def _record_key(rec: dict) -> tuple:
    """The :meth:`BenchCell.key` of a record dict."""
    return (rec["scheme"], rec["lattice"], rec["backend"], rec["problem"],
            tuple(rec["shape"]), rec["ranks"])


@dataclass
class BenchRecord:
    """One measurement of one cell (see module docstring)."""

    suite: str
    scheme: str
    lattice: str
    backend: str
    problem: str
    shape: tuple[int, ...]
    ranks: int
    tau: float
    steps: int
    repeats: int
    n_fluid: int
    wall_s: float
    mlups: float
    bytes_per_flup: float
    effective_gbs: float
    attainment: float
    model_mlups: float
    model_device: str
    git_rev: str
    timestamp: float
    schema_version: int = BENCH_SCHEMA_VERSION
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (tuples become lists)."""
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "BenchRecord":
        """Rebuild a record from its JSON form (validates first)."""
        validate_record(d)
        known = set(cls.__dataclass_fields__)
        kwargs = {k: v for k, v in d.items() if k in known}
        kwargs["shape"] = tuple(d["shape"])
        return cls(**kwargs)


def validate_record(d: dict) -> dict:
    """Validate one record dict against :data:`RECORD_SCHEMA`.

    Raises ``ValueError`` listing every violation; returns the record
    unchanged when it conforms.
    """
    problems = []
    for name, types in RECORD_SCHEMA.items():
        if name not in d:
            problems.append(f"missing field {name!r}")
        elif not isinstance(d[name], types) or isinstance(d[name], bool):
            problems.append(
                f"field {name!r} has type {type(d[name]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}")
    if not problems:
        if d["schema_version"] != BENCH_SCHEMA_VERSION:
            problems.append(
                f"schema_version {d['schema_version']} != "
                f"{BENCH_SCHEMA_VERSION}")
        for name in ("mlups", "wall_s", "bytes_per_flup", "effective_gbs"):
            if d[name] < 0:
                problems.append(f"field {name!r} is negative")
    if problems:
        raise ValueError("invalid bench record: " + "; ".join(problems))
    return d


# -- measurement -----------------------------------------------------------

def _build_cell_solver(cell: BenchCell):
    """Construct the single-domain solver a cell describes."""
    from ..solver import (channel_problem, forced_channel_problem,
                          periodic_problem)

    shape = tuple(cell.shape)
    if cell.problem == "channel":
        return channel_problem(cell.scheme, cell.lattice, shape,
                               tau=cell.tau, backend=cell.backend)
    if cell.problem == "forced-channel":
        return forced_channel_problem(cell.scheme, cell.lattice, shape,
                                      tau=cell.tau, backend=cell.backend)
    if cell.problem == "periodic":
        return periodic_problem(cell.scheme, cell.lattice, shape,
                                tau=cell.tau, backend=cell.backend)
    if cell.problem == "porous":
        # Force-driven seeded random porous medium at 85% solid — the
        # ~15%-fluid regime where the sparse backend's compact state
        # pays off; dense backends run the same cell for the crossover.
        import numpy as np

        from ..boundary import HalfwayBounceBack
        from ..geometry import porous_medium
        from ..lattice import get_lattice
        from ..solver.presets import make_solver

        lat = get_lattice(cell.lattice)
        force = np.zeros(lat.d)
        force[0] = 1e-6
        return make_solver(cell.scheme, lat,
                           porous_medium(shape, solid_fraction=0.85),
                           cell.tau, boundaries=[HalfwayBounceBack()],
                           force=force, backend=cell.backend)
    raise ValueError(f"unknown bench problem {cell.problem!r}")


def _time_single(cell: BenchCell, warmup: int) -> tuple[float, int]:
    """Min-of-k wall time of ``cell.steps`` on one rank: ``(best_s, n_fluid)``."""
    solver = _build_cell_solver(cell)
    if warmup > 0:
        solver.run(warmup)
    best = float("inf")
    for _ in range(max(cell.repeats, 1)):
        t0 = time.perf_counter()
        solver.run(cell.steps)
        best = min(best, time.perf_counter() - t0)
    return best, int(solver.domain.n_fluid)


def _time_batched(cell: BenchCell, warmup: int) -> tuple[float, int]:
    """Min-of-k wall time of a ``batch``-member lockstep ensemble.

    Builds ``cell.batch`` members of the cell's problem on the fused
    backend, enrolls them in an :class:`repro.ensemble.EnsembleRunner`
    and times ``cell.steps`` lockstep steps. Returns ``(best_s,
    total_fluid_nodes)`` — the MLUPS computed from it is the ensemble
    *aggregate* throughput.
    """
    from dataclasses import replace

    from ..ensemble import EnsembleRunner

    member_cell = replace(cell, backend="fused", batch=1)
    members = [_build_cell_solver(member_cell) for _ in range(cell.batch)]
    runner = EnsembleRunner(members)
    if warmup > 0:
        runner.run(warmup)
    best = float("inf")
    for _ in range(max(cell.repeats, 1)):
        t0 = time.perf_counter()
        runner.run(cell.steps)
        best = min(best, time.perf_counter() - t0)
    return best, sum(runner.member_fluid_nodes())


def _time_distributed(cell: BenchCell, warmup: int) -> tuple[float, int]:
    """Min-of-k slowest-rank wall time over the process runtime."""
    from ..parallel import RunSpec, run_process

    kind = "periodic" if cell.problem == "periodic" else cell.problem
    accel = (cell.backend if cell.backend in ("reference", "fused", "aa")
             else "reference")
    spec = RunSpec(kind, cell.scheme, cell.lattice, tuple(cell.shape),
                   cell.ranks, tau=cell.tau, accel=accel)
    best = float("inf")
    n_fluid = 0
    for _ in range(max(cell.repeats, 1)):
        result = run_process(spec, warmup + cell.steps)
        # the barrier makes the slowest rank the cohort pace; scale the
        # in-loop wall down to the timed window (warmup steps included
        # in the same loop share the same per-step cost)
        total = warmup + cell.steps
        wall = result.report["wall_s_slowest_rank"] * cell.steps / total
        best = min(best, wall)
        n_fluid = result.report["n_fluid"]
    return best, int(n_fluid)


def run_cell(cell: BenchCell, suite: str = "default", device: str = "V100",
             warmup: int = 2, host_gbs: float | None = None) -> BenchRecord:
    """Measure one cell and return its :class:`BenchRecord`.

    Timing is min-of-``repeats`` over ``cell.steps`` (after ``warmup``
    untimed steps), the standard noise-robust throughput estimator; the
    roofline join (:func:`repro.obs.attain.attain_cell`) fills the
    model columns.
    """
    if cell.batch > 1:
        best, n_fluid = _time_batched(cell, warmup)
    elif cell.ranks > 1:
        best, n_fluid = _time_distributed(cell, warmup)
    else:
        best, n_fluid = _time_single(cell, warmup)
    mlups = n_fluid * cell.steps / best / 1e6 if best > 0 else 0.0
    att = attain_cell(mlups, cell.scheme, cell.lattice, device=device,
                      host_gbs=host_gbs)
    extra = {"host_gbs": att["host_gbs"], "bound": att["bound"]}
    if cell.batch > 1:
        # Recorded in ``extra`` so the strict RECORD_SCHEMA is untouched;
        # mlups/n_fluid are ensemble aggregates over all members.
        extra["batch"] = cell.batch
    return BenchRecord(
        suite=suite, scheme=cell.scheme, lattice=cell.lattice,
        backend=cell.backend, problem=cell.problem,
        shape=tuple(cell.shape), ranks=cell.ranks, tau=cell.tau,
        steps=cell.steps, repeats=cell.repeats, n_fluid=n_fluid,
        wall_s=best, mlups=mlups,
        bytes_per_flup=att["bytes_per_flup"],
        effective_gbs=att["effective_gbs"],
        attainment=att["attainment"],
        model_mlups=att["model_mlups"],
        model_device=att["model_device"],
        git_rev=git_rev(), timestamp=time.time(),
        extra=extra,
    )


def default_suite(quick: bool = False) -> list[BenchCell]:
    """The standard cell matrix of ``mrlbm bench``.

    The full matrix covers both lattices, both pattern classes and the
    host backends (reference, fused two-lattice, single-lattice ``aa``)
    on domains large enough to stream from DRAM; the
    ``--quick`` matrix is the CI smoke variant — same cells, shrunk
    shapes and counts, a few seconds total.
    """
    if quick:
        return [
            BenchCell("ST", "D2Q9", "reference", "periodic", (48, 48),
                      steps=4, repeats=2),
            BenchCell("ST", "D2Q9", "fused", "periodic", (48, 48),
                      steps=4, repeats=2),
            BenchCell("ST", "D2Q9", "aa", "periodic", (48, 48),
                      steps=4, repeats=2),
            BenchCell("MR-P", "D2Q9", "reference", "channel", (48, 26),
                      steps=4, repeats=2),
            BenchCell("MR-P", "D2Q9", "fused", "channel", (48, 26),
                      steps=4, repeats=2),
            BenchCell("MR-P", "D2Q9", "aa", "periodic", (48, 48),
                      steps=4, repeats=2),
            BenchCell("MR-P", "D2Q9", "batched", "periodic", (32, 32),
                      steps=4, repeats=2, batch=8),
            BenchCell("MR-P", "D2Q9", "fused", "porous", (96, 96),
                      steps=4, repeats=2),
            BenchCell("MR-P", "D2Q9", "sparse", "porous", (96, 96),
                      steps=4, repeats=2),
        ]
    return [
        BenchCell("ST", "D2Q9", "reference", "periodic", (192, 192),
                  steps=10, repeats=3),
        BenchCell("ST", "D2Q9", "fused", "periodic", (192, 192),
                  steps=10, repeats=3),
        BenchCell("ST", "D2Q9", "aa", "periodic", (192, 192),
                  steps=10, repeats=3),
        BenchCell("MR-P", "D2Q9", "reference", "channel", (192, 130),
                  steps=10, repeats=3),
        BenchCell("MR-P", "D2Q9", "fused", "channel", (192, 130),
                  steps=10, repeats=3),
        BenchCell("MR-R", "D2Q9", "fused", "channel", (192, 130),
                  steps=10, repeats=3),
        BenchCell("ST", "D3Q19", "fused", "periodic", (48, 48, 48),
                  steps=8, repeats=3),
        BenchCell("ST", "D3Q19", "aa", "periodic", (48, 48, 48),
                  steps=8, repeats=3),
        BenchCell("MR-P", "D3Q19", "reference", "periodic", (48, 48, 48),
                  steps=8, repeats=3),
        BenchCell("MR-P", "D3Q19", "fused", "periodic", (48, 48, 48),
                  steps=8, repeats=3),
        BenchCell("MR-P", "D3Q19", "aa", "periodic", (48, 48, 48),
                  steps=8, repeats=3),
        BenchCell("MR-P", "D2Q9", "fused", "forced-channel", (192, 130),
                  steps=10, repeats=3),
        BenchCell("MR-P", "D2Q9", "fused", "periodic", (128, 128),
                  steps=8, repeats=3, ranks=2),
        BenchCell("MR-P", "D2Q9", "batched", "periodic", (32, 32),
                  steps=10, repeats=3, batch=16),
        BenchCell("MR-P", "D2Q9", "fused", "porous", (192, 192),
                  steps=10, repeats=3),
        BenchCell("MR-P", "D2Q9", "sparse", "porous", (192, 192),
                  steps=10, repeats=3),
        BenchCell("MR-P", "D3Q19", "sparse", "porous", (48, 48, 48),
                  steps=8, repeats=3),
    ]


def run_suite(cells: list[BenchCell], suite: str = "default",
              device: str = "V100", warmup: int = 2,
              progress=None) -> list[BenchRecord]:
    """Measure every cell; ``progress`` (if given) is called per record."""
    host_gbs = measure_host_bandwidth()
    records = []
    for cell in cells:
        record = run_cell(cell, suite=suite, device=device, warmup=warmup,
                          host_gbs=host_gbs)
        records.append(record)
        if progress is not None:
            progress(record)
    return records


# -- trajectory file -------------------------------------------------------

def trajectory_path(suite: str = "default",
                    root: str | Path | None = None) -> Path:
    """Conventional repo-root trajectory location: ``BENCH_<suite>.json``."""
    name = f"BENCH_{suite}.json"
    return Path(root) / name if root else Path(name)


def validate_trajectory(doc: dict) -> dict:
    """Validate a trajectory document (schema version + every record)."""
    if not isinstance(doc, dict) or "records" not in doc:
        raise ValueError("trajectory must be an object with a 'records' list")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"trajectory schema_version {doc.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}")
    for i, rec in enumerate(doc["records"]):
        try:
            validate_record(rec)
        except ValueError as err:
            raise ValueError(f"record {i}: {err}") from None
    return doc


def load_trajectory(path: str | Path) -> dict:
    """Load and validate a trajectory file; empty skeleton if absent."""
    path = Path(path)
    if not path.exists():
        return {"schema_version": BENCH_SCHEMA_VERSION, "suite": None,
                "records": []}
    doc = json.loads(path.read_text(encoding="utf-8"))
    return validate_trajectory(doc)


def append_records(path: str | Path, records) -> dict:
    """Append records to the trajectory at ``path`` (atomic rewrite).

    Creates the file on first use; validates both the existing document
    and every new record, so a corrupt trajectory or a malformed record
    fails loudly before anything is written. Returns the new document.
    """
    path = Path(path)
    doc = load_trajectory(path)
    new = [r.to_dict() if isinstance(r, BenchRecord) else dict(r)
           for r in records]
    for rec in new:
        validate_record(rec)
        if doc["suite"] is None:
            doc["suite"] = rec["suite"]
    doc["records"].extend(new)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return doc


# -- regression sentinel ---------------------------------------------------

#: Threshold floor applied when the baseline holds a single sample: one
#: measurement carries no spread information (its observed spread is
#: identically zero), so the band widens to this floor instead of
#: trusting one possibly-noisy number at the default ``rel_threshold``.
ONE_SAMPLE_THRESHOLD_FLOOR = 0.25


def compare_to_baseline(baseline_records, new_records,
                        rel_threshold: float = 0.15,
                        baseline_window: int = 5) -> dict:
    """Judge new records against the stored trajectory, cell by cell.

    For each new record the baseline is the **median MLUPS of the most
    recent ``baseline_window`` records of the same cell** (same scheme,
    lattice, backend, problem, shape and ranks). The effective threshold
    is noise-aware: it widens from ``rel_threshold`` to the baseline's
    own relative spread (max-min over median) when the machine is noisy,
    so a cell whose history already wobbles 20% cannot be flagged at
    15%. Verdicts:

    ``"new"``        no prior record of this cell;
    ``"regression"`` new MLUPS below ``baseline x (1 - threshold)``;
    ``"improved"``   new MLUPS above ``baseline x (1 + threshold)``;
    ``"ok"``         within the band.

    Short-history edge cases are handled conservatively, never as false
    regressions: a **first-ever cell** is always ``"new"`` (it cannot
    regress against nothing); a **one-sample baseline** has no spread
    estimate, so its threshold floor widens to
    :data:`ONE_SAMPLE_THRESHOLD_FLOOR`; a history shorter than
    ``baseline_window`` simply uses what exists (median of 1-4); and a
    **non-positive baseline median** (degenerate records from a failed
    or zero-timed prior run) makes the cell uncomparable — status
    ``"ok"`` with ``ratio=None`` — rather than dividing by zero or
    flagging everything.

    Every verdict carries the record's roofline attainment and its
    :func:`~repro.obs.attain.attainment_note`, so a red cell can be read
    as "real lost bandwidth" vs "overhead-bound, expect noise".
    """
    history: dict[tuple, list[dict]] = {}
    for rec in baseline_records:
        rec = rec.to_dict() if isinstance(rec, BenchRecord) else rec
        history.setdefault(_record_key(rec), []).append(rec)

    verdicts = []
    regressions = 0
    for rec in new_records:
        rec = rec.to_dict() if isinstance(rec, BenchRecord) else rec
        prior = history.get(_record_key(rec), [])[-baseline_window:]
        verdict = {
            "scheme": rec["scheme"], "lattice": rec["lattice"],
            "backend": rec["backend"], "problem": rec["problem"],
            "shape": list(rec["shape"]), "ranks": rec["ranks"],
            "mlups": rec["mlups"],
            "attainment": rec.get("attainment", 0.0),
            "note": attainment_note(rec.get("attainment", 0.0)),
            "n_baseline": len(prior),
        }
        if not prior:
            verdict.update(status="new", baseline_mlups=None, ratio=None,
                           threshold=rel_threshold)
        else:
            series = [p["mlups"] for p in prior]
            baseline = statistics.median(series)
            if baseline <= 0:
                # Degenerate history (zero/negative throughput records):
                # there is nothing meaningful to compare against, and a
                # division would either blow up or flag every healthy
                # run — report uncomparable, never a regression.
                verdict.update(status="ok", baseline_mlups=baseline,
                               ratio=None, threshold=rel_threshold)
                verdicts.append(verdict)
                continue
            spread = (max(series) - min(series)) / baseline
            threshold = max(rel_threshold, spread)
            if len(series) < 2:
                threshold = max(threshold, ONE_SAMPLE_THRESHOLD_FLOOR)
            ratio = rec["mlups"] / baseline
            if ratio < 1.0 - threshold:
                status = "regression"
                regressions += 1
            elif ratio > 1.0 + threshold:
                status = "improved"
            else:
                status = "ok"
            verdict.update(status=status, baseline_mlups=baseline,
                           ratio=ratio, threshold=threshold)
        verdicts.append(verdict)
    return {
        "verdicts": verdicts,
        "regressions": regressions,
        "rel_threshold": rel_threshold,
        "baseline_window": baseline_window,
    }


# -- interop + rendering ---------------------------------------------------

def records_from_comparison(result: dict, suite: str = "paper-bench",
                            device: str = "V100",
                            host_gbs: float | None = None) -> list[dict]:
    """Convert a :func:`repro.obs.profile.compare_backends` result into
    schema-valid record dicts (one per backend row).

    This is how the paper-table benchmarks under ``benchmarks/`` feed
    the same trajectory schema as ``mrlbm bench`` — their ``.txt``
    artifacts gain a machine-readable sibling.
    """
    if host_gbs is None:
        host_gbs = measure_host_bandwidth()
    rev = git_rev()
    now = time.time()
    records = []
    for row in result["backends"]:
        mlups = float(row["mlups"])
        att = attain_cell(mlups, result["scheme"], result["lattice"],
                          device=device, host_gbs=host_gbs)
        wall = float(row.get("phases", {}).get("step", {}).get("total_s", 0.0))
        records.append(validate_record({
            "schema_version": BENCH_SCHEMA_VERSION,
            "suite": suite,
            "scheme": result["scheme"],
            "lattice": result["lattice"],
            "backend": row["backend"],
            "problem": result.get("problem", "periodic"),
            "shape": list(result["shape"]),
            "ranks": 1,
            "tau": float(result["tau"]),
            "steps": int(result["steps"]),
            "repeats": 1,
            "n_fluid": int(round(mlups * 1e6 * wall / result["steps"]))
            if wall > 0 else 0,
            "wall_s": wall,
            "mlups": mlups,
            "bytes_per_flup": att["bytes_per_flup"],
            "effective_gbs": att["effective_gbs"],
            "attainment": att["attainment"],
            "model_mlups": att["model_mlups"],
            "model_device": att["model_device"],
            "git_rev": rev,
            "timestamp": now,
            "extra": {"max_abs_diff": row.get("max_abs_diff"),
                      "speedup": row.get("speedup"),
                      "host_gbs": host_gbs},
        }))
    return records


def _cell_label(rec: dict) -> str:
    shape = "x".join(str(s) for s in rec["shape"])
    label = (f"{rec['scheme']}/{rec['lattice']}/{rec['backend']} "
             f"{rec['problem']} {shape}")
    if rec.get("ranks", 1) > 1:
        label += f" x{rec['ranks']}r"
    batch = rec.get("extra", {}).get("batch")
    if batch:
        label += f" x{batch}b"
    return label


def format_records(records) -> str:
    """Fixed-width table of measured records with the roofline join."""
    lines = [f"  {'cell':<44s} {'MLUPS':>9s} {'GB/s':>7s} {'B/F':>6s} "
             f"{'attain':>7s} {'bound':>10s}"]
    for rec in records:
        rec = rec.to_dict() if isinstance(rec, BenchRecord) else rec
        bound = rec.get("extra", {}).get("bound", "")
        lines.append(
            f"  {_cell_label(rec):<44s} {rec['mlups']:9.2f} "
            f"{rec['effective_gbs']:7.2f} {rec['bytes_per_flup']:6.0f} "
            f"{rec['attainment']:6.1%} {bound:>10s}")
    return "\n".join(lines)


def format_comparison(result: dict) -> str:
    """Fixed-width rendering of a :func:`compare_to_baseline` result."""
    lines = [f"  {'cell':<44s} {'status':>11s} {'vs base':>8s} "
             f"{'band':>7s} {'attain':>7s}"]
    for v in result["verdicts"]:
        ratio = f"{v['ratio']:.2f}x" if v["ratio"] is not None else "-"
        lines.append(
            f"  {_cell_label(v):<44s} {v['status']:>11s} {ratio:>8s} "
            f"±{v['threshold']:5.0%} {v['attainment']:6.1%}")
    n = result["regressions"]
    lines.append("")
    lines.append(f"  {n} regression(s) against the stored baseline"
                 if n else "  no regressions against the stored baseline")
    return "\n".join(lines)
