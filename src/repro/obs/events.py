"""Per-rank run event streams: an append-only JSONL bus + tail/watch.

A distributed run is invisible while in flight: telemetry is merged
only after the cohort finishes. This module gives every rank a
cadence-driven, append-only event stream in the run directory —
``events-rank0000.jsonl``, one JSON object per line, flushed per event —
so a live (or finished, or crashed) run can be tailed at any time with
``mrlbm watch <run-dir>``, and the ROADMAP's job server has a telemetry
substrate to stream from.

Event vocabulary (the ``kind`` field):

``start``       worker came up: pid, scheme, lattice, accel, step range;
``heartbeat``   cadence sample: step, wall seconds, running MLUPS;
``progress``    fraction complete (rides on the heartbeat cadence);
``phase``       phase-time snapshot (step/compute/barrier/... totals);
``checkpoint``  a distributed checkpoint was written at this step;
``watchdog``    a divergence check ran (ok or failing);
``end``         rank finished cleanly;
``error``       rank failed: exception type + message.

Every event carries ``ts`` (unix seconds), ``rank`` and ``attempt`` (the
supervised-retry attempt, so a restarted cohort appends to the same
files without ambiguity). Writers only append and readers only scan
forward, so tailing a live run never races the workers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "EVENT_KINDS",
    "EventStream",
    "RunEventEmitter",
    "event_files",
    "read_events",
    "iter_event_lines",
    "iter_events",
    "follow_events",
    "summarize_events",
    "format_watch",
]

#: The event vocabulary written by the runtime (see module docstring).
EVENT_KINDS = ("start", "heartbeat", "progress", "phase", "checkpoint",
               "watchdog", "end", "error")

_FILE_PREFIX = "events-rank"


def _rank_file(run_dir: Path, rank: int) -> Path:
    return run_dir / f"{_FILE_PREFIX}{rank:04d}.jsonl"


class EventStream:
    """Append-only JSONL event writer for one rank of one run.

    Opens ``<run_dir>/events-rank<NNNN>.jsonl`` in append mode (restarted
    attempts continue the same file) and flushes after every event so a
    reader never waits on a buffer.
    """

    def __init__(self, run_dir: str | Path, rank: int = 0,
                 attempt: int = 0, clock=time.time):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.rank = int(rank)
        self.attempt = int(attempt)
        self._clock = clock
        self.path = _rank_file(self.run_dir, self.rank)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, kind: str, step: int | None = None, **payload) -> dict:
        """Append one event line and flush; returns the event dict."""
        event = {"ts": self._clock(), "rank": self.rank,
                 "attempt": self.attempt, "kind": kind}
        if step is not None:
            event["step"] = int(step)
        event.update(payload)
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        return event

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class RunEventEmitter:
    """Cadence logic between a stepping loop and an :class:`EventStream`.

    The worker calls :meth:`maybe` once per completed step; every
    ``every`` steps (and on the final step) it emits a ``heartbeat``
    (wall seconds + running MLUPS from the attached telemetry), a
    ``progress`` fraction and a ``phase`` snapshot. Checkpoint and
    watchdog hooks emit their own kinds outside the cadence.
    """

    def __init__(self, stream: EventStream, every: int = 25,
                 n_steps: int = 0, start_step: int = 0,
                 telemetry=None, n_fluid: int = 0):
        self.stream = stream
        self.every = max(int(every), 1)
        self.n_steps = int(n_steps)
        self.start_step = int(start_step)
        self.telemetry = telemetry
        self.n_fluid = int(n_fluid)

    def start(self, **info) -> None:
        """Emit the ``start`` event (worker identity + step range)."""
        self.stream.emit("start", step=self.start_step,
                         n_steps=self.n_steps, **info)

    def _throughput(self) -> tuple[float, float]:
        tel = self.telemetry
        if tel is None:
            return 0.0, 0.0
        wall = tel.phase_total("step")
        return wall, tel.mlups(self.n_fluid)

    def maybe(self, step: int) -> None:
        """Emit the cadence events when ``step`` (1-based) is due."""
        if step % self.every and step != self.n_steps:
            return
        wall, mlups = self._throughput()
        self.stream.emit("heartbeat", step=step, wall_s=wall, mlups=mlups)
        if self.n_steps > 0:
            self.stream.emit("progress", step=step,
                             fraction=step / self.n_steps)
        if self.telemetry is not None:
            phases = {path: stats.total for path, stats
                      in self.telemetry.phases.items()}
            self.stream.emit("phase", step=step, totals_s=phases)

    def checkpoint(self, step: int, path: str | Path | None = None) -> None:
        """Emit a ``checkpoint`` event."""
        self.stream.emit("checkpoint", step=step,
                         path=str(path) if path is not None else None)

    def watchdog(self, step: int, ok: bool = True, **detail) -> None:
        """Emit a ``watchdog`` event (a check ran; ``ok=False`` = diverged)."""
        self.stream.emit("watchdog", step=step, ok=bool(ok), **detail)

    def end(self, step: int, **info) -> None:
        """Emit the ``end`` event."""
        wall, mlups = self._throughput()
        self.stream.emit("end", step=step, wall_s=wall, mlups=mlups, **info)

    def error(self, step: int | None, exc_type: str, message: str) -> None:
        """Emit the ``error`` event (best effort — never raises)."""
        try:
            self.stream.emit("error", step=step, exc_type=exc_type,
                             message=message)
        except Exception:
            pass


# -- reading / tailing -----------------------------------------------------

def event_files(run_dir: str | Path) -> list[Path]:
    """The per-rank event files of a run directory, in rank order."""
    return sorted(Path(run_dir).glob(f"{_FILE_PREFIX}*.jsonl"))


def read_events(run_dir: str | Path) -> list[dict]:
    """All events of a run, merged across ranks and sorted by timestamp."""
    events = []
    for path in event_files(run_dir):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def iter_event_lines(run_dir: str | Path, offsets: dict | None = None):
    """Yield raw JSONL lines appended since ``offsets`` (byte positions).

    The undecoded sibling of :func:`iter_events`, for relays that only
    forward the bus — the job server's ``/jobs/<id>/events`` endpoint
    streams these lines verbatim instead of decode/re-encode round
    trips. ``offsets`` (per-file byte positions, keyed by file name) is
    mutated in place, so successive calls with the same dict implement
    an incremental tail that also picks up rank files created after the
    first call. Partial trailing lines (a writer mid-append) are left
    for the next call. Yielded lines are stripped and non-empty.
    """
    if offsets is None:
        offsets = {}
    for path in event_files(run_dir):
        pos = offsets.get(path.name, 0)
        try:
            with open(path, encoding="utf-8") as fh:
                fh.seek(pos)
                chunk = fh.read()
        except OSError:
            continue
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break                       # torn tail; retry next poll
            consumed += len(line)
            line = line.strip()
            if line:
                yield line
        offsets[path.name] = pos + consumed


def iter_events(run_dir: str | Path, offsets: dict | None = None):
    """Yield events appended since ``offsets`` (per-file byte positions).

    ``offsets`` is mutated in place, so successive calls with the same
    dict implement an incremental tail that also picks up rank files
    created after the first call. Partial trailing lines (a writer
    mid-append) are left for the next call.
    """
    for line in iter_event_lines(run_dir, offsets):
        yield json.loads(line)


def follow_events(run_dir: str | Path, poll_s: float = 0.5,
                  timeout_s: float | None = None,
                  stop_when_done: bool = True):
    """Generator tailing a run directory until it finishes (or times out).

    Yields events in arrival order across all rank files. With
    ``stop_when_done`` the tail ends once every rank that emitted
    ``start`` has emitted a terminal ``end``/``error`` event; a timeout
    (seconds of wall clock, ``None`` = forever) bounds the wait on runs
    that never finish.
    """
    offsets: dict = {}
    started: set[int] = set()
    done: set[int] = set()
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    while True:
        got = False
        for event in iter_events(run_dir, offsets):
            got = True
            rank = event.get("rank", 0)
            if event.get("kind") == "start":
                started.add(rank)
            elif event.get("kind") in ("end", "error"):
                done.add(rank)
            yield event
        if stop_when_done and started and started <= done:
            return
        if deadline is not None and time.monotonic() > deadline:
            return
        if not got:
            time.sleep(poll_s)


def summarize_events(events) -> dict:
    """Fold an event list into per-rank latest state.

    Returns ``{"ranks": {rank: state}, "n_ranks": N, "all_done": bool}``
    where each state carries the latest step, progress fraction, MLUPS,
    phase totals, checkpoint/watchdog history counts, the step of the
    most recent checkpoint (``last_checkpoint_step`` — the rank's resume
    point) and a terminal status (``running``/``done``/``error``).
    """
    ranks: dict[int, dict] = {}
    for event in events:
        state = ranks.setdefault(event.get("rank", 0), {
            "status": "running", "step": 0, "fraction": None,
            "mlups": 0.0, "wall_s": 0.0, "n_steps": None,
            "checkpoints": 0, "last_checkpoint_step": None,
            "watchdog_checks": 0, "last_ts": 0.0,
            "phases_s": {}, "error": None,
        })
        kind = event.get("kind")
        state["last_ts"] = max(state["last_ts"], event.get("ts", 0.0))
        if "step" in event and event["step"] is not None:
            state["step"] = max(state["step"], event["step"])
        if kind == "start":
            state["n_steps"] = event.get("n_steps")
        elif kind in ("heartbeat", "end"):
            state["mlups"] = event.get("mlups", state["mlups"])
            state["wall_s"] = event.get("wall_s", state["wall_s"])
        elif kind == "progress":
            state["fraction"] = event.get("fraction")
        elif kind == "phase":
            state["phases_s"] = event.get("totals_s", {})
        elif kind == "checkpoint":
            state["checkpoints"] += 1
            if event.get("step") is not None:
                state["last_checkpoint_step"] = event["step"]
        elif kind == "watchdog":
            state["watchdog_checks"] += 1
        if kind == "end":
            state["status"] = "done"
        elif kind == "error":
            state["status"] = "error"
            state["error"] = (f"{event.get('exc_type', 'Exception')}: "
                              f"{event.get('message', '')}")
    return {
        "ranks": ranks,
        "n_ranks": len(ranks),
        "all_done": bool(ranks) and all(
            s["status"] != "running" for s in ranks.values()),
    }


def format_watch(summary: dict) -> str:
    """Fixed-width per-rank table of a :func:`summarize_events` summary.

    The ``ckpt`` column shows the step of the rank's most recent
    checkpoint event (its resume point), or ``-`` if none was written.
    """
    lines = [f"  {'rank':>4s} {'status':>8s} {'step':>8s} {'done':>6s} "
             f"{'MLUPS':>8s} {'wall s':>8s} {'wait %':>7s} {'ckpt':>8s}"]
    for rank in sorted(summary["ranks"]):
        s = summary["ranks"][rank]
        frac = f"{s['fraction']:.0%}" if s["fraction"] is not None else "-"
        wall = s.get("wall_s", 0.0)
        wait = s.get("phases_s", {}).get("step/barrier", 0.0)
        wait_pct = f"{wait / wall:6.1%}" if wall > 0 else "     -"
        last_ckpt = s.get("last_checkpoint_step")
        ckpt = f"{last_ckpt:8d}" if last_ckpt is not None else f"{'-':>8s}"
        lines.append(f"  {rank:4d} {s['status']:>8s} {s['step']:8d} "
                     f"{frac:>6s} {s['mlups']:8.2f} {wall:8.2f} "
                     f"{wait_pct:>7s} {ckpt}")
        if s["error"]:
            lines.append(f"       {s['error']}")
    return "\n".join(lines)
