"""Roofline attribution: join measured throughput to the model ceiling.

A measured MLUPS number by itself cannot distinguish "the code got
slower" from "this cell was never bandwidth-bound to begin with" — the
distinction Wittmann et al.'s performance-engineering methodology makes
by comparing every measurement against a bandwidth model. This module
performs that join for the bench harness (:mod:`repro.obs.bench`):

* the **bytes-per-FLUP model** comes from :func:`repro.perf.bytes_per_flup`
  (paper Table 2: ``2Q x 8`` for ST, ``2M x 8`` for MR);
* the **effective bandwidth** of a measured cell is
  ``MLUPS x bytes_per_flup`` — what a DRAM profiler would report if the
  host run were the device run;
* the **host ceiling** is a measured (and cached) large-array copy
  bandwidth probe, so "attainment" is the fraction of what *this
  machine's* memory system can actually move;
* the **device roofline** (:func:`repro.perf.roofline_mflups`) is kept
  alongside for comparison with the paper's V100/MI100 tables.

An attainment near 1 means the cell is genuinely memory-bound — a
regression there is real lost bandwidth. A low attainment means the cell
is dominated by latency/overhead (small domains, Python dispatch), where
MLUPS is expected to be noisy and a model-aware comparator should judge
it more leniently.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = [
    "measure_host_bandwidth",
    "attain_cell",
    "attainment_note",
]

#: Attainment above this fraction of the host copy bandwidth is treated
#: as "memory-bound" when classifying a cell (see :func:`attainment_note`).
BANDWIDTH_BOUND_ATTAINMENT = 0.5

#: Module-level cache of the measured host copy bandwidth (GB/s), so one
#: bench invocation probes the memory system exactly once.
_HOST_GBS: float | None = None


def measure_host_bandwidth(nbytes: int = 32 * 2**20, repeats: int = 3,
                           refresh: bool = False) -> float:
    """Measured host memory copy bandwidth in GB/s (cached).

    Times ``b[:] = a`` over ``nbytes``-sized float64 arrays — one read
    plus one write stream, the same access structure as the two-lattice
    LBM step — and takes the best of ``repeats`` passes (minimum time,
    the standard noise-robust estimator for bandwidth probes). The first
    call measures; later calls return the cached value unless
    ``refresh`` is set.
    """
    global _HOST_GBS
    if _HOST_GBS is not None and not refresh:
        return _HOST_GBS
    n = max(int(nbytes) // 8, 1)
    a = np.ones(n, dtype=np.float64)
    b = np.empty_like(a)
    b[:] = a                                  # warm both pages
    best = float("inf")
    for _ in range(max(int(repeats), 1)):
        t0 = time.perf_counter()
        b[:] = a
        dt = time.perf_counter() - t0
        best = min(best, dt)
    # read + write of n doubles
    _HOST_GBS = 2 * n * 8 / best / 1e9 if best > 0 else 0.0
    return _HOST_GBS


def _model_scheme(scheme: str) -> str:
    """Map a bench scheme label onto the ST/MR pattern classes.

    The power-law solver is MR-P based (``MR-P-PL``), so it shares the
    MR byte model.
    """
    key = scheme.upper()
    if key.startswith("MR"):
        return "MR"
    return "ST"


def attain_cell(mlups: float, scheme: str, lattice: str,
                device: str = "V100",
                host_gbs: float | None = None) -> dict:
    """Join one measured cell against the roofline/byte model.

    Parameters
    ----------
    mlups:
        Measured million lattice updates per second (host run).
    scheme, lattice:
        What was measured; selects the B/F byte model (paper Table 2).
    device:
        Modelled GPU for the device-roofline column (paper Table 3).
    host_gbs:
        Host memory bandwidth ceiling; measured via
        :func:`measure_host_bandwidth` when omitted.

    Returns
    -------
    dict
        ``bytes_per_flup`` (model B/F), ``effective_gbs`` (measured
        MLUPS x B/F), ``host_gbs`` (the ceiling used),
        ``attainment`` (effective/host, the %-of-ceiling number),
        ``host_roofline_mlups`` (host ceiling over B/F),
        ``model_mlups`` (device roofline) and ``bound`` — the
        classification used by the regression comparator.
    """
    from ..gpu.device import get_device
    from ..lattice import get_lattice
    from ..perf import bytes_per_flup, roofline_mflups

    lat = get_lattice(lattice)
    pattern = _model_scheme(scheme)
    bf = float(bytes_per_flup(lat, pattern))
    if host_gbs is None:
        host_gbs = measure_host_bandwidth()
    effective_gbs = mlups * 1e6 * bf / 1e9
    attainment = effective_gbs / host_gbs if host_gbs > 0 else 0.0
    dev = get_device(device)
    return {
        "pattern": pattern,
        "bytes_per_flup": bf,
        "effective_gbs": effective_gbs,
        "host_gbs": float(host_gbs),
        "attainment": attainment,
        "host_roofline_mlups": (host_gbs * 1e9 / bf / 1e6
                                if bf > 0 else 0.0),
        "model_device": dev.name,
        "model_mlups": roofline_mflups(dev, lat, pattern),
        "bound": ("bandwidth" if attainment >= BANDWIDTH_BOUND_ATTAINMENT
                  else "overhead"),
    }


def attainment_note(attainment: float) -> str:
    """One-line interpretation of an attainment fraction.

    Used by the bench comparator to annotate verdicts: a regression in a
    bandwidth-bound cell is lost bandwidth; in an overhead-bound cell it
    is more likely dispatch/latency noise the model says to expect.
    """
    if attainment >= BANDWIDTH_BOUND_ATTAINMENT:
        return (f"bandwidth-bound ({attainment:.0%} of host ceiling): "
                "a slowdown here is real lost bandwidth")
    return (f"overhead-bound ({attainment:.0%} of host ceiling): "
            "model says this cell is latency/dispatch dominated; "
            "expect noise")
