"""Telemetry exporters: JSON-lines metrics, CSV summaries, Chrome traces.

Three complementary views of one :class:`~repro.obs.telemetry.Telemetry`
registry:

* :class:`JsonLinesExporter` — an append-only ``.jsonl`` stream of metric
  records, one JSON object per line (easy to ``jq``/pandas, safe to tail
  while a run is in progress);
* :func:`write_csv_summary` — a flat ``kind,name,...`` CSV of final
  counters, gauges and phase statistics for spreadsheets;
* :func:`write_chrome_trace` — Chrome trace-event JSON (complete ``"X"``
  events) loadable in ``chrome://tracing`` / Perfetto for span-level
  inspection of the ``step/collide``/``step/stream`` hierarchy.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .telemetry import Telemetry

__all__ = [
    "JsonLinesExporter",
    "read_jsonl",
    "write_csv_summary",
    "write_chrome_trace",
]


class JsonLinesExporter:
    """Append metric records to a JSON-lines file.

    Usable as a context manager; each :meth:`write` emits one line and
    flushes, so partially-written runs remain loadable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        """Serialize one record as a JSON line and flush."""
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSON-lines file back into a list of records."""
    records = []
    with open(Path(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_csv_summary(telemetry: Telemetry, path: str | Path) -> Path:
    """Write final counters/gauges/phase statistics as a flat CSV.

    Rows carry a ``kind`` discriminator: phase rows fill the timing
    columns, counter/gauge rows only ``value``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        w.writerow(["kind", "name", "value", "calls",
                    "total_s", "mean_s", "min_s", "max_s"])
        for name, stats in sorted(telemetry.phases.items()):
            d = stats.to_dict()
            w.writerow(["phase", name, "", d["calls"], f"{d['total_s']:.9f}",
                        f"{d['mean_s']:.9f}", f"{d['min_s']:.9f}",
                        f"{d['max_s']:.9f}"])
        for name, value in sorted(telemetry.counters.items()):
            w.writerow(["counter", name, repr(value), "", "", "", "", ""])
        for name, value in sorted(telemetry.gauges.items()):
            w.writerow(["gauge", name, repr(value), "", "", "", "", ""])
    return path


def _normalize_registries(telemetry, pid: int, tid: int) -> list[tuple]:
    """Normalize the ``telemetry`` argument of :func:`write_chrome_trace`.

    Returns ``[(pid, tid, label, registry), ...]``. Accepts one registry
    (back-compatible single-process trace), a sequence of registries
    (index = rank), or a mapping ``{rank: registry}``.
    """
    if isinstance(telemetry, Telemetry):
        return [(pid, tid, None, telemetry)]
    if isinstance(telemetry, dict):
        items = sorted(telemetry.items(), key=lambda kv: str(kv[0]))
        out = []
        for i, (rank, reg) in enumerate(items):
            row_pid = rank if isinstance(rank, int) else i
            out.append((row_pid, 0, f"rank {rank}", reg))
        return out
    return [(rank, 0, f"rank {rank}", reg)
            for rank, reg in enumerate(telemetry)]


def write_chrome_trace(telemetry, path: str | Path,
                       pid: int = 0, tid: int = 0) -> Path:
    """Write recorded spans as a Chrome trace-event file.

    The output is the standard ``{"traceEvents": [...]}`` JSON object with
    complete (``"ph": "X"``) events in microseconds, which
    ``chrome://tracing`` and https://ui.perfetto.dev load directly. Span
    nesting is reconstructed by the viewer from timestamps; the full
    hierarchical path is kept in ``args.path``.

    ``telemetry`` is either one :class:`Telemetry` registry (a
    single-process trace on ``pid``/``tid``), or the per-rank registries
    of a distributed run — a sequence (index = rank) or a mapping
    ``{rank: registry}``. Multi-rank traces emit one ``pid`` row per rank
    plus ``process_name`` metadata, so Perfetto shows the ranks stacked
    and the exchange/barrier spans aligned across the cohort.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = _normalize_registries(telemetry, pid, tid)
    events = []
    other: dict = {"counters": {}, "gauges": {}}
    for row_pid, row_tid, label, registry in rows:
        if label is not None:
            events.append({
                "name": "process_name", "ph": "M", "pid": row_pid,
                "tid": row_tid, "args": {"name": label},
            })
        for span in registry.spans:
            events.append({
                "name": span.name.rpartition("/")[2],
                "cat": "phase",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": row_pid,
                "tid": row_tid,
                "args": {"path": span.name, "depth": span.depth},
            })
        if label is None:
            other["counters"] = dict(registry.counters)
            other["gauges"] = dict(registry.gauges)
        else:
            other["counters"][label] = dict(registry.counters)
            other["gauges"][label] = dict(registry.gauges)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path
