"""Telemetry exporters: JSON-lines metrics, CSV summaries, Chrome traces.

Three complementary views of one :class:`~repro.obs.telemetry.Telemetry`
registry:

* :class:`JsonLinesExporter` — an append-only ``.jsonl`` stream of metric
  records, one JSON object per line (easy to ``jq``/pandas, safe to tail
  while a run is in progress);
* :func:`write_csv_summary` — a flat ``kind,name,...`` CSV of final
  counters, gauges and phase statistics for spreadsheets;
* :func:`write_chrome_trace` — Chrome trace-event JSON (complete ``"X"``
  events) loadable in ``chrome://tracing`` / Perfetto for span-level
  inspection of the ``step/collide``/``step/stream`` hierarchy.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .telemetry import Telemetry

__all__ = [
    "JsonLinesExporter",
    "read_jsonl",
    "write_csv_summary",
    "write_chrome_trace",
]


class JsonLinesExporter:
    """Append metric records to a JSON-lines file.

    Usable as a context manager; each :meth:`write` emits one line and
    flushes, so partially-written runs remain loadable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        """Serialize one record as a JSON line and flush."""
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSON-lines file back into a list of records."""
    records = []
    with open(Path(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_csv_summary(telemetry: Telemetry, path: str | Path) -> Path:
    """Write final counters/gauges/phase statistics as a flat CSV.

    Rows carry a ``kind`` discriminator: phase rows fill the timing
    columns, counter/gauge rows only ``value``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        w.writerow(["kind", "name", "value", "calls",
                    "total_s", "mean_s", "min_s", "max_s"])
        for name, stats in sorted(telemetry.phases.items()):
            d = stats.to_dict()
            w.writerow(["phase", name, "", d["calls"], f"{d['total_s']:.9f}",
                        f"{d['mean_s']:.9f}", f"{d['min_s']:.9f}",
                        f"{d['max_s']:.9f}"])
        for name, value in sorted(telemetry.counters.items()):
            w.writerow(["counter", name, repr(value), "", "", "", "", ""])
        for name, value in sorted(telemetry.gauges.items()):
            w.writerow(["gauge", name, repr(value), "", "", "", "", ""])
    return path


def write_chrome_trace(telemetry: Telemetry, path: str | Path,
                       pid: int = 0, tid: int = 0) -> Path:
    """Write recorded spans as a Chrome trace-event file.

    The output is the standard ``{"traceEvents": [...]}`` JSON object with
    complete (``"ph": "X"``) events in microseconds, which
    ``chrome://tracing`` and https://ui.perfetto.dev load directly. Span
    nesting is reconstructed by the viewer from timestamps; the full
    hierarchical path is kept in ``args.path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events = []
    for span in telemetry.spans:
        events.append({
            "name": span.name.rpartition("/")[2],
            "cat": "phase",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"path": span.name, "depth": span.depth},
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(telemetry.counters),
            "gauges": dict(telemetry.gauges),
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path
