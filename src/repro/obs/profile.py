"""Profiling harness behind ``mrlbm profile``.

Runs a short channel (or periodic, for AA) workload per scheme with a
live :class:`~repro.obs.telemetry.Telemetry` attached, and pairs the
host-side per-phase wall-clock breakdown with the DRAM traffic the
virtual-GPU kernels measure through
:class:`~repro.gpu.memory.MemoryTracker` — the same 32-byte-sector
counting the paper's ``nvprof``/``rocprof`` Table 4 numbers come from.
Reported throughputs:

* **host MLUPS** — fluid-node updates per second of the reference run;
* **effective host GB/s** — sector bytes per node × host update rate
  (what a DRAM profiler would see if the host run were the device run);
* **modelled device MLUPS** — the bandwidth roofline
  ``BW_peak / bytes-per-node`` on the chosen device.
"""

from __future__ import annotations

from .telemetry import Telemetry

__all__ = ["profile_scheme", "format_profile", "compare_backends",
           "format_backend_comparison", "PROFILE_SCHEMES"]

PROFILE_SCHEMES = ("ST", "MR-P", "MR-R", "AA")


def _default_shape(ndim: int) -> tuple[int, ...]:
    return (96, 50) if ndim == 2 else (24, 14, 14)


def _build_solver(scheme: str, lattice: str, shape: tuple[int, ...],
                  tau: float, u_max: float, accel: str = "reference"):
    from ..solver import channel_problem, periodic_problem
    from ..solver.aa import AASolver
    from ..geometry.domain import periodic_box
    from ..lattice import get_lattice
    from ..validation import taylor_green_fields

    if scheme.upper() == "AA":
        if accel != "reference":
            raise ValueError(
                "the AA scheme is the reference single-lattice solver; "
                "its fast path is the 'aa' *backend* — profile "
                "--scheme ST/MR-P/MR-R with --accel aa instead"
            )
        lat = get_lattice(lattice)
        if lat.d != 2:
            solver = AASolver(lat, periodic_box(shape), tau)
        else:
            nu = lat.viscosity(tau)
            rho0, u0 = taylor_green_fields(shape, 0.0, nu, u_max)
            solver = AASolver(lat, periodic_box(shape), tau,
                              rho0=rho0, u0=u0)
        return solver
    if scheme.upper() in ("ST", "MR-P", "MR-R"):
        return channel_problem(scheme, lattice, shape, tau=tau, u_max=u_max,
                               backend=accel)
    return periodic_problem(scheme, lattice, shape, tau, backend=accel)


def profile_scheme(scheme: str = "MR-P", lattice: str = "D2Q9",
                   shape: tuple[int, ...] | None = None, steps: int = 40,
                   tau: float = 0.8, u_max: float = 0.05,
                   device: str = "V100",
                   measure_traffic: bool = True,
                   accel: str = "reference") -> dict:
    """Profile one scheme; returns a JSON-serializable result dict.

    The per-phase timings come from a telemetry-instrumented run of the
    selected execution backend (``accel``, see :mod:`repro.accel`); the
    traffic columns execute the corresponding virtual-GPU kernel
    under a :class:`~repro.gpu.memory.MemoryTracker` (cached — see
    :func:`repro.bench.measure.measure_channel_traffic`).
    """
    from ..gpu.device import get_device
    from ..lattice import get_lattice

    lat = get_lattice(lattice)
    if shape is None:
        shape = _default_shape(lat.d)
    solver = _build_solver(scheme, lattice, shape, tau, u_max, accel=accel)
    tel = Telemetry()
    solver.attach_telemetry(tel)
    solver.run(int(steps))

    n_fluid = solver.domain.n_fluid
    step_total = tel.phase_total("step")
    host_mlups = tel.mlups(n_fluid)

    phases = []
    for path, stats in sorted(tel.phases.items(),
                              key=lambda kv: -kv[1].total):
        phases.append({
            "phase": path,
            "calls": stats.calls,
            "total_s": stats.total,
            "mean_us": stats.mean * 1e6,
            "share": (stats.total / step_total) if step_total > 0 else 0.0,
        })

    result = {
        "scheme": scheme.upper(),
        "backend": accel,
        "lattice": lat.name,
        "shape": list(shape),
        "tau": tau,
        "steps": int(steps),
        "n_fluid": int(n_fluid),
        "host_seconds": step_total,
        "host_mlups": host_mlups,
        "phases": phases,
        "device": device,
        "traffic": None,
    }

    if measure_traffic and scheme.upper() in ("ST", "MR-P", "MR-R"):
        from ..bench.measure import measure_channel_traffic
        dev = get_device(device)
        meas = measure_channel_traffic(scheme, lat.name, device)
        dram = meas.dram_bytes_per_node
        result["traffic"] = {
            "measured_shape": list(meas.shape),
            "dram_bytes_per_node": dram,
            "dram_read_per_node": meas.dram_read_per_node,
            "dram_write_per_node": meas.dram_write_per_node,
            "logical_bytes_per_node": meas.logical_bytes_per_node,
            "effective_host_gbs": dram * host_mlups * 1e6 / 1e9,
            "device_roofline_mlups": dev.bandwidth_gbs * 1e9 / dram / 1e6,
            "device_bandwidth_gbs": dev.bandwidth_gbs,
        }
    return result


def format_profile(result: dict) -> str:
    """Render one :func:`profile_scheme` result as a fixed-width report."""
    lines = []
    shape = "x".join(str(s) for s in result["shape"])
    backend = result.get("backend", "reference")
    lines.append(
        f"{result['scheme']} / {result['lattice']} on {shape} "
        f"({result['n_fluid']:,} fluid nodes), tau = {result['tau']}, "
        f"backend = {backend}, "
        f"{result['steps']} steps in {result['host_seconds']:.3f} s"
    )
    lines.append("")
    lines.append(f"  {'phase':<24s} {'calls':>7s} {'total ms':>10s} "
                 f"{'mean us':>10s} {'share':>7s}")
    for p in result["phases"]:
        lines.append(
            f"  {p['phase']:<24s} {p['calls']:7d} "
            f"{p['total_s'] * 1e3:10.2f} {p['mean_us']:10.1f} "
            f"{p['share']:6.1%}"
        )
    lines.append("")
    lines.append(f"  host throughput: {result['host_mlups']:.3f} MLUPS")
    t = result.get("traffic")
    if t:
        lines.append(
            f"  DRAM traffic (MemoryTracker, 32 B sectors, "
            f"{'x'.join(str(s) for s in t['measured_shape'])} proxy): "
            f"{t['dram_bytes_per_node']:.1f} B/node "
            f"(read {t['dram_read_per_node']:.1f} + "
            f"write {t['dram_write_per_node']:.1f}; "
            f"logical {t['logical_bytes_per_node']:.1f})"
        )
        lines.append(
            f"  effective host bandwidth: {t['effective_host_gbs']:.4f} GB/s"
        )
        lines.append(
            f"  {result['device']} roofline at this B/node: "
            f"{t['device_roofline_mlups']:,.0f} MLUPS "
            f"(peak {t['device_bandwidth_gbs']:.0f} GB/s)"
        )
    else:
        lines.append("  DRAM traffic: n/a (no virtual-GPU kernel for this "
                     "scheme/problem)")
    return "\n".join(lines)


def _power_law_channel(lattice: str, shape: tuple[int, ...], tau: float,
                       u_max: float, backend: str):
    """Force-driven power-law channel for the backend comparison."""
    from ..boundary import HalfwayBounceBack
    from ..geometry import channel_2d, channel_3d
    from ..lattice import get_lattice
    from ..solver.non_newtonian import PowerLawMRPSolver, power_law_force

    import numpy as np

    lat = get_lattice(lattice)
    domain = (channel_2d(*shape, with_io=False) if lat.d == 2
              else channel_3d(*shape, with_io=False))
    consistency = lat.viscosity(tau)
    exponent = 0.8
    force = np.zeros(lat.d)
    force[0] = power_law_force(u_max, shape[1] - 2, consistency, exponent)
    return PowerLawMRPSolver(lat, domain, tau,
                             boundaries=[HalfwayBounceBack()], force=force,
                             consistency=consistency, exponent=exponent,
                             backend=backend)


def compare_backends(scheme: str = "MR-P", lattice: str = "D3Q19",
                     shape: tuple[int, ...] | None = None, steps: int = 20,
                     tau: float = 0.8, u_max: float = 0.05,
                     backends: tuple[str, ...] | None = None,
                     problem: str = "periodic",
                     warmup_steps: int = 2) -> dict:
    """Run every requested backend on one problem, side by side.

    ``problem`` selects the workload:

    ``"periodic"``
        A fully periodic box, so *all* backends (including the
        boundary-free numba JIT path) run the identical problem.
    ``"forced-channel"``
        The body-force-driven bounce-back channel
        (:func:`repro.solver.presets.forced_channel_problem`) —
        exercises the fused Guo-source path.
    ``"power-law"``
        A force-driven power-law (variable-tau) channel stepping
        :class:`~repro.solver.non_newtonian.PowerLawMRPSolver` —
        exercises the fused per-node ``tau_field`` collision. The
        ``scheme`` argument is ignored (the solver is MR-P based).
    ``"cylinder"``
        A force-driven channel with a staircase cylinder obstacle
        (:func:`repro.solver.presets.cylinder_channel_problem`) — a
        masked geometry, so the comparison covers the ``sparse``
        backend's compact indirect addressing on its home turf while
        the dense backends pay for the solid nodes.
    ``"porous"``
        Force-driven flow through a seeded random porous medium
        (:func:`repro.solver.presets.porous_channel_problem`) — the
        ~15%-fluid regime where the ``sparse`` backend's compact state
        dominates.

    Each backend's MLUPS comes from its own telemetry registry, and each
    fast backend's end state is compared against the reference run — the
    ``max_abs_diff`` column is the measured parity, expected at machine
    precision.

    ``backends=None`` selects every backend available in this
    environment (:func:`repro.accel.available_backends`); the walled
    problems drop ``"numba"`` from that default (the JIT kernels are
    periodic-only).

    Every backend first advances ``warmup_steps`` untimed steps (page
    faults, lazy buffer allocation, cache fill) so the MLUPS column
    reflects steady-state throughput; the parity column still compares
    identical total step counts.
    """
    import numpy as np

    from ..accel import available_backends
    from ..lattice import get_lattice
    from ..solver import (
        cylinder_channel_problem,
        forced_channel_problem,
        periodic_problem,
        porous_channel_problem,
    )
    from ..validation import taylor_green_fields

    if problem not in ("periodic", "forced-channel", "power-law", "cylinder",
                       "porous"):
        raise ValueError(
            f"problem must be 'periodic', 'forced-channel', 'power-law', "
            f"'cylinder' or 'porous', got {problem!r}")
    lat = get_lattice(lattice)
    if shape is None:
        shape = _default_shape(lat.d)
    if backends is None:
        backends = available_backends()
        if problem != "periodic":
            backends = tuple(b for b in backends if b != "numba")

    rho0 = u0 = None
    if problem == "periodic":
        if lat.d == 2:
            nu = lat.viscosity(tau)
            rho0, u0 = taylor_green_fields(shape, 0.0, nu, u_max)
        else:
            # Smooth deterministic shear field so the run is not a trivial
            # rest state (throughput is data-independent, parity is not).
            x = [np.linspace(0.0, 2.0 * np.pi, s, endpoint=False)
                 for s in shape]
            mesh = np.meshgrid(*x, indexing="ij")
            rho0 = 1.0
            u0 = np.zeros((lat.d, *shape))
            for a in range(lat.d):
                u0[a] = u_max * np.sin(mesh[(a + 1) % lat.d])

    def build(backend):
        """Construct the selected problem on one backend."""
        if problem == "periodic":
            return periodic_problem(scheme, lattice, shape, tau,
                                    rho0=rho0, u0=u0, backend=backend)
        if problem == "forced-channel":
            return forced_channel_problem(scheme, lattice, shape, tau=tau,
                                          u_max=u_max, backend=backend)
        if problem == "cylinder":
            return cylinder_channel_problem(scheme, lattice, shape, tau=tau,
                                            u_max=u_max, backend=backend)
        if problem == "porous":
            return porous_channel_problem(scheme, lattice, shape, tau=tau,
                                          backend=backend)
        return _power_law_channel(lattice, shape, tau, u_max, backend)

    rows = []
    reference_state = None
    reference_mlups = None
    for backend in backends:
        solver = build(backend)
        if warmup_steps > 0:
            solver.run(int(warmup_steps))
        tel = Telemetry(record_spans=False)
        solver.attach_telemetry(tel)
        solver.run(int(steps))
        rho, u = solver.macroscopic()
        state = np.concatenate([rho[None], u])
        mlups = tel.mlups(solver.domain.n_fluid)
        if backend == "reference":
            reference_state = state
            reference_mlups = mlups
        diff = (float(np.abs(state - reference_state).max())
                if reference_state is not None else float("nan"))
        rows.append({
            "backend": backend,
            "mlups": mlups,
            "speedup": (mlups / reference_mlups)
            if reference_mlups else float("nan"),
            "max_abs_diff": diff,
            "phases": {k: v.to_dict() for k, v in sorted(tel.phases.items())},
        })

    return {
        "scheme": "MR-P-PL" if problem == "power-law" else scheme.upper(),
        "problem": problem,
        "lattice": lat.name,
        "shape": list(shape),
        "tau": tau,
        "steps": int(steps),
        "backends": rows,
    }


def format_backend_comparison(result: dict) -> str:
    """Render one :func:`compare_backends` result as a fixed-width table."""
    shape = "x".join(str(s) for s in result["shape"])
    problem = result.get("problem", "periodic")
    lines = [
        f"{result['scheme']} / {result['lattice']} on {shape} ({problem}), "
        f"tau = {result['tau']}, {result['steps']} steps per backend",
        "",
        f"  {'backend':<12s} {'MLUPS':>10s} {'speedup':>9s} "
        f"{'max |diff| vs reference':>25s}",
    ]
    for row in result["backends"]:
        lines.append(
            f"  {row['backend']:<12s} {row['mlups']:10.3f} "
            f"{row['speedup']:8.2f}x {row['max_abs_diff']:25.3e}"
        )
    return "\n".join(lines)
