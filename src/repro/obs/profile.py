"""Profiling harness behind ``mrlbm profile``.

Runs a short channel (or periodic, for AA) workload per scheme with a
live :class:`~repro.obs.telemetry.Telemetry` attached, and pairs the
host-side per-phase wall-clock breakdown with the DRAM traffic the
virtual-GPU kernels measure through
:class:`~repro.gpu.memory.MemoryTracker` — the same 32-byte-sector
counting the paper's ``nvprof``/``rocprof`` Table 4 numbers come from.
Reported throughputs:

* **host MLUPS** — fluid-node updates per second of the reference run;
* **effective host GB/s** — sector bytes per node × host update rate
  (what a DRAM profiler would see if the host run were the device run);
* **modelled device MLUPS** — the bandwidth roofline
  ``BW_peak / bytes-per-node`` on the chosen device.
"""

from __future__ import annotations

from .telemetry import Telemetry

__all__ = ["profile_scheme", "format_profile", "PROFILE_SCHEMES"]

PROFILE_SCHEMES = ("ST", "MR-P", "MR-R", "AA")


def _default_shape(ndim: int) -> tuple[int, ...]:
    return (96, 50) if ndim == 2 else (24, 14, 14)


def _build_solver(scheme: str, lattice: str, shape: tuple[int, ...],
                  tau: float, u_max: float):
    from ..solver import channel_problem, periodic_problem
    from ..solver.aa import AASolver
    from ..geometry.domain import periodic_box
    from ..lattice import get_lattice
    from ..validation import taylor_green_fields

    if scheme.upper() == "AA":
        lat = get_lattice(lattice)
        if lat.d != 2:
            solver = AASolver(lat, periodic_box(shape), tau)
        else:
            nu = lat.viscosity(tau)
            rho0, u0 = taylor_green_fields(shape, 0.0, nu, u_max)
            solver = AASolver(lat, periodic_box(shape), tau,
                              rho0=rho0, u0=u0)
        return solver
    if scheme.upper() in ("ST", "MR-P", "MR-R"):
        return channel_problem(scheme, lattice, shape, tau=tau, u_max=u_max)
    return periodic_problem(scheme, lattice, shape, tau)


def profile_scheme(scheme: str = "MR-P", lattice: str = "D2Q9",
                   shape: tuple[int, ...] | None = None, steps: int = 40,
                   tau: float = 0.8, u_max: float = 0.05,
                   device: str = "V100",
                   measure_traffic: bool = True) -> dict:
    """Profile one scheme; returns a JSON-serializable result dict.

    The per-phase timings come from a telemetry-instrumented reference
    run; the traffic columns execute the corresponding virtual-GPU kernel
    under a :class:`~repro.gpu.memory.MemoryTracker` (cached — see
    :func:`repro.bench.measure.measure_channel_traffic`).
    """
    from ..gpu.device import get_device
    from ..lattice import get_lattice

    lat = get_lattice(lattice)
    if shape is None:
        shape = _default_shape(lat.d)
    solver = _build_solver(scheme, lattice, shape, tau, u_max)
    tel = Telemetry()
    solver.attach_telemetry(tel)
    solver.run(int(steps))

    n_fluid = solver.domain.n_fluid
    step_total = tel.phase_total("step")
    host_mlups = tel.mlups(n_fluid)

    phases = []
    for path, stats in sorted(tel.phases.items(),
                              key=lambda kv: -kv[1].total):
        phases.append({
            "phase": path,
            "calls": stats.calls,
            "total_s": stats.total,
            "mean_us": stats.mean * 1e6,
            "share": (stats.total / step_total) if step_total > 0 else 0.0,
        })

    result = {
        "scheme": scheme.upper(),
        "lattice": lat.name,
        "shape": list(shape),
        "tau": tau,
        "steps": int(steps),
        "n_fluid": int(n_fluid),
        "host_seconds": step_total,
        "host_mlups": host_mlups,
        "phases": phases,
        "device": device,
        "traffic": None,
    }

    if measure_traffic and scheme.upper() in ("ST", "MR-P", "MR-R"):
        from ..bench.measure import measure_channel_traffic
        dev = get_device(device)
        meas = measure_channel_traffic(scheme, lat.name, device)
        dram = meas.dram_bytes_per_node
        result["traffic"] = {
            "measured_shape": list(meas.shape),
            "dram_bytes_per_node": dram,
            "dram_read_per_node": meas.dram_read_per_node,
            "dram_write_per_node": meas.dram_write_per_node,
            "logical_bytes_per_node": meas.logical_bytes_per_node,
            "effective_host_gbs": dram * host_mlups * 1e6 / 1e9,
            "device_roofline_mlups": dev.bandwidth_gbs * 1e9 / dram / 1e6,
            "device_bandwidth_gbs": dev.bandwidth_gbs,
        }
    return result


def format_profile(result: dict) -> str:
    """Render one :func:`profile_scheme` result as a fixed-width report."""
    lines = []
    shape = "x".join(str(s) for s in result["shape"])
    lines.append(
        f"{result['scheme']} / {result['lattice']} on {shape} "
        f"({result['n_fluid']:,} fluid nodes), tau = {result['tau']}, "
        f"{result['steps']} steps in {result['host_seconds']:.3f} s"
    )
    lines.append("")
    lines.append(f"  {'phase':<24s} {'calls':>7s} {'total ms':>10s} "
                 f"{'mean us':>10s} {'share':>7s}")
    for p in result["phases"]:
        lines.append(
            f"  {p['phase']:<24s} {p['calls']:7d} "
            f"{p['total_s'] * 1e3:10.2f} {p['mean_us']:10.1f} "
            f"{p['share']:6.1%}"
        )
    lines.append("")
    lines.append(f"  host throughput: {result['host_mlups']:.3f} MLUPS")
    t = result.get("traffic")
    if t:
        lines.append(
            f"  DRAM traffic (MemoryTracker, 32 B sectors, "
            f"{'x'.join(str(s) for s in t['measured_shape'])} proxy): "
            f"{t['dram_bytes_per_node']:.1f} B/node "
            f"(read {t['dram_read_per_node']:.1f} + "
            f"write {t['dram_write_per_node']:.1f}; "
            f"logical {t['logical_bytes_per_node']:.1f})"
        )
        lines.append(
            f"  effective host bandwidth: {t['effective_host_gbs']:.4f} GB/s"
        )
        lines.append(
            f"  {result['device']} roofline at this B/node: "
            f"{t['device_roofline_mlups']:,.0f} MLUPS "
            f"(peak {t['device_bandwidth_gbs']:.0f} GB/s)"
        )
    else:
        lines.append("  DRAM traffic: n/a (no virtual-GPU kernel for this "
                     "scheme/problem)")
    return "\n".join(lines)
