"""Telemetry registry: counters, gauges and hierarchical phase timers.

The paper's argument is quantitative — bytes per fluid lattice update,
sector-level DRAM traffic, MLUPS — so the repo needs a measurement
substrate that every layer (reference solvers, virtual-GPU kernels, bench
harness, CLI) can feed. A :class:`Telemetry` object collects

* **counters** — monotonically accumulated values (steps, launches, bytes),
* **gauges** — last-written values (current max speed, effective GB/s),
* **phase timers** — hierarchical wall-clock spans (``step/collide``,
  ``step/stream``, …) aggregated into per-path statistics and optionally
  kept as individual spans for Chrome trace export.

Instrumented code is written against the telemetry *interface* and holds a
:data:`NULL_TELEMETRY` singleton by default: the disabled path allocates
nothing per step (``phase()`` returns one shared no-op context manager) and
never touches the clock, so hot loops pay only an attribute lookup and an
empty ``with`` block.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "PhaseStats",
    "Span",
]


@dataclass
class Span:
    """One completed phase span (times in seconds since the registry epoch)."""

    name: str          # full hierarchical path, e.g. "step/collide"
    start: float
    duration: float
    depth: int         # nesting depth at the time the span was open


@dataclass
class PhaseStats:
    """Aggregated statistics for one phase path."""

    calls: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0

    def add(self, dt: float) -> None:
        """Fold one span duration into the statistics."""
        self.calls += 1
        self.total += dt
        if dt < self.min:
            self.min = dt
        if dt > self.max:
            self.max = dt

    @property
    def mean(self) -> float:
        """Mean span duration in seconds (0 before any call)."""
        return self.total / self.calls if self.calls else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the aggregate."""
        return {
            "calls": self.calls,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.calls else 0.0,
            "max_s": self.max,
        }


class _NullPhase:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullTelemetry:
    """Disabled telemetry: every hook is a free no-op.

    ``phase()`` hands back one process-wide context manager and the
    counter/gauge hooks return immediately, so instrumented hot loops add
    no per-step allocations and never read the clock.
    """

    __slots__ = ()
    enabled = False

    def phase(self, name: str) -> _NullPhase:
        """Hand back the shared no-op context manager."""
        return _NULL_PHASE

    def count(self, name: str, value: float = 1) -> None:
        """Discard a counter increment."""
        return None

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge write."""
        return None

    def add_span(self, name: str, start: float, duration: float,
                 depth: int = 0) -> None:
        """Discard an externally-timed span."""
        return None

    def record_traffic(self, report, seconds: float | None = None,
                       prefix: str = "gpu") -> None:
        """Discard a traffic report."""
        return None


#: Process-wide disabled registry; the default for all instrumented objects.
NULL_TELEMETRY = NullTelemetry()


class _PhaseSpan:
    """Reentrant-safe context manager produced by :meth:`Telemetry.phase`."""

    __slots__ = ("_tel", "_name", "_path", "_start")

    def __init__(self, tel: "Telemetry", name: str):
        self._tel = tel
        self._name = name

    def __enter__(self) -> "_PhaseSpan":
        tel = self._tel
        tel._stack.append(self._name)
        self._path = "/".join(tel._stack)
        self._start = tel._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tel = self._tel
        dt = tel._clock() - self._start
        stats = tel.phases.get(self._path)
        if stats is None:
            stats = tel.phases[self._path] = PhaseStats()
        stats.add(dt)
        depth = len(tel._stack) - 1
        tel._stack.pop()
        if tel.record_spans:
            tel._append_span(Span(self._path, self._start - tel._epoch,
                                  dt, depth))
        return False


class Telemetry:
    """Live metrics registry (see module docstring).

    Parameters
    ----------
    record_spans:
        Keep individual :class:`Span` objects (needed for Chrome trace
        export). Aggregated :class:`PhaseStats` are always kept.
    max_spans:
        Hard cap on retained spans; once exceeded, further spans are
        dropped (counted in ``counters["telemetry.spans_dropped"]``) so
        long runs cannot exhaust memory.
    clock:
        Monotonic clock, injectable for tests.
    """

    enabled = True

    def __init__(self, record_spans: bool = True, max_spans: int = 200_000,
                 clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.phases: dict[str, PhaseStats] = {}
        self.spans: list[Span] = []
        self.record_spans = bool(record_spans)
        self.max_spans = int(max_spans)
        self._stack: list[str] = []

    # -- collection hooks -------------------------------------------------
    def phase(self, name: str) -> _PhaseSpan:
        """Context manager timing a (possibly nested) phase."""
        return _PhaseSpan(self, name)

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        self.gauges[name] = float(value)

    def add_span(self, name: str, start: float, duration: float,
                 depth: int = 0) -> None:
        """Record an externally-timed span (``start`` on this registry's
        clock, i.e. a ``clock()`` reading).

        ``depth`` is the nesting depth the span should carry in Chrome
        trace export; externally-timed spans (merged per-rank reports,
        wrapped library calls) pass the depth of the hierarchical path
        they belong to so they nest correctly alongside natively-timed
        phases.
        """
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats()
        stats.add(duration)
        if self.record_spans:
            self._append_span(Span(name, start - self._epoch, duration,
                                   int(depth)))

    def _append_span(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.count("telemetry.spans_dropped")

    def record_traffic(self, report, seconds: float | None = None,
                       prefix: str = "gpu") -> None:
        """Accumulate a :class:`~repro.gpu.memory.TrafficReport`.

        Counts both logical bytes and 32-byte sector (DRAM) bytes; with
        ``seconds`` given, also publishes the effective DRAM bandwidth
        gauge — the quantity paper Table 4 compares against peak.
        """
        self.count(f"{prefix}.bytes.logical", report.total_bytes)
        self.count(f"{prefix}.bytes.sector", report.sector_bytes_total)
        self.count(f"{prefix}.transactions.read", report.read_transactions)
        self.count(f"{prefix}.transactions.write", report.write_transactions)
        if seconds is not None and seconds > 0:
            self.gauge(f"{prefix}.effective_gbs",
                       report.sector_bytes_total / seconds / 1e9)

    # -- derived metrics --------------------------------------------------
    def phase_total(self, name: str) -> float:
        """Total seconds accumulated under a phase path (0 if unseen)."""
        stats = self.phases.get(name)
        return stats.total if stats is not None else 0.0

    def mlups(self, n_nodes: int, phase: str = "step",
              steps_counter: str = "steps") -> float:
        """Million lattice updates per second over the recorded run.

        ``n_nodes`` is the number of fluid nodes updated per step; the
        step count comes from ``counters[steps_counter]`` and the wall
        time from the ``phase`` timer.
        """
        steps = self.counters.get(steps_counter, 0)
        total = self.phase_total(phase)
        if steps <= 0 or total <= 0.0:
            return 0.0
        return n_nodes * steps / total / 1e6

    def effective_gbs(self, phase: str = "gpu.step",
                      bytes_counter: str = "gpu.bytes.sector") -> float:
        """Sector-level DRAM GB/s over the accumulated phase time."""
        total = self.phase_total(phase)
        nbytes = self.counters.get(bytes_counter, 0)
        if total <= 0.0:
            return 0.0
        return nbytes / total / 1e9

    def summary(self) -> dict:
        """JSON-serializable snapshot of counters, gauges and phases."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "phases": {k: v.to_dict() for k, v in sorted(self.phases.items())},
            "n_spans": len(self.spans),
        }
