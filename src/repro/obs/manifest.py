"""Run manifests: reproducibility metadata written alongside outputs.

A :class:`RunManifest` captures everything needed to re-run (or audit) a
simulation whose fields/checkpoint live next to it on disk: scheme,
lattice, grid shape, relaxation time, RNG seed, package version and the
host platform. Manifests are plain JSON so any tool can read them, and
are written by the CLI (``mrlbm run --manifest``) and the checkpoint
writer (``save_checkpoint(..., manifest=True)``).
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["RunManifest", "write_manifest", "load_manifest", "manifest_path_for"]


def _platform_info() -> dict:
    import numpy as np

    return {
        "python": sys.version.split()[0],
        "implementation": _platform.python_implementation(),
        "system": _platform.system(),
        "machine": _platform.machine(),
        "numpy": np.__version__,
    }


@dataclass
class RunManifest:
    """Reproducibility metadata for one simulation run."""

    scheme: str
    lattice: str
    shape: tuple[int, ...]
    tau: float
    seed: int | None = None
    steps: int | None = None
    version: str = ""
    platform: dict = field(default_factory=dict)
    created_unix: float = 0.0
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_solver(cls, solver, seed: int | None = None,
                    **extra) -> "RunManifest":
        """Build a manifest from a live solver (duck-typed: needs ``name``
        or ``scheme``, ``lat``, ``domain`` or ``global_domain``, ``tau``,
        ``time`` — so distributed solvers work too)."""
        from .. import __version__

        domain = getattr(solver, "domain", None)
        if domain is None:
            domain = solver.global_domain
        return cls(
            scheme=getattr(solver, "name", None) or solver.scheme,
            lattice=solver.lat.name,
            shape=tuple(domain.shape),
            tau=float(solver.tau),
            seed=seed,
            steps=int(solver.time),
            version=__version__,
            platform=_platform_info(),
            created_unix=time.time(),
            extra=dict(extra),
        )

    @classmethod
    def from_run_spec(cls, spec, step: int, **extra) -> "RunManifest":
        """Build a manifest straight from a distributed ``RunSpec``.

        Used by the checkpoint writer of the multiprocess runtime: the
        spec alone (no RNG, no live solver) determines the problem, so a
        resumed run can rebuild and validate against this manifest.
        ``extra`` entries (problem kind, rank count, fingerprint, ...)
        land in :attr:`extra`.
        """
        from .. import __version__

        return cls(
            scheme=spec.scheme,
            lattice=spec.lattice,
            shape=tuple(spec.shape),
            tau=float(spec.tau),
            steps=int(step),
            version=__version__,
            platform=_platform_info(),
            created_unix=time.time(),
            extra=dict(extra),
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (tuples become lists)."""
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        return path


def manifest_path_for(output_path: str | Path) -> Path:
    """Conventional manifest location next to an output file:
    ``flow.npz`` → ``flow.manifest.json``."""
    p = Path(output_path)
    return p.with_name(p.stem + ".manifest.json")


def write_manifest(path: str | Path, solver, seed: int | None = None,
                   **extra) -> Path:
    """Write a manifest for ``solver`` to ``path`` (returns the path)."""
    return RunManifest.from_solver(solver, seed=seed, **extra).write(path)


def load_manifest(path: str | Path) -> RunManifest:
    """Load a manifest JSON back into a :class:`RunManifest`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    data["shape"] = tuple(data.get("shape", ()))
    known = {f for f in RunManifest.__dataclass_fields__}
    kwargs = {k: v for k, v in data.items() if k in known}
    return RunManifest(**kwargs)
