"""Stability watchdog: abort diverging runs with a structured report.

LBM divergence is silent by default — NaNs appear in a corner, spread for
thousands of steps, and the run "completes" producing garbage. The
:class:`StabilityWatchdog` is a run callback that samples the macroscopic
fields on a cadence and raises :class:`StabilityError` the moment it sees

* non-finite density or velocity on a fluid node,
* non-positive density, or
* speeds beyond a limit (default: the lattice sound speed
  ``c_s = 1/sqrt(3)``, past which the low-Mach expansion is meaningless).

The raised error carries a machine-readable ``report`` dict (step, scheme,
offending-node counts, worst values) so harnesses can log exactly *when*
and *how* a run died instead of inspecting corrupted output.
"""

from __future__ import annotations

import math

import numpy as np

from .telemetry import NULL_TELEMETRY

__all__ = ["StabilityWatchdog", "StabilityError", "SOUND_SPEED",
           "check_fields"]

#: Lattice sound speed in lattice units (all paper lattices share it).
SOUND_SPEED = 1.0 / math.sqrt(3.0)


def check_fields(rho: np.ndarray, u: np.ndarray,
                 fluid_mask: np.ndarray | None = None, *,
                 u_limit: float | None = None, rho_min: float = 0.0,
                 context: dict | None = None) -> dict:
    """Divergence check on bare ``(rho, u)`` arrays; no solver needed.

    The workhorse behind :meth:`StabilityWatchdog.check`, exposed
    separately so contexts without a solver object — the per-rank
    watchdog of the multiprocess runtime checks its slab fields directly
    — share the same detection rules and report schema. ``context``
    entries (e.g. ``step``, ``scheme``, ``rank``) are folded into the
    report. Raises :class:`StabilityError` on divergence, otherwise
    returns the healthy report.
    """
    u_limit = float(u_limit) if u_limit is not None else SOUND_SPEED
    rho_f = rho[fluid_mask] if fluid_mask is not None else rho.ravel()
    u_f = (u[:, fluid_mask] if fluid_mask is not None
           else u.reshape(u.shape[0], -1))
    with np.errstate(invalid="ignore", over="ignore"):
        speed2 = np.einsum("an,an->n", u_f, u_f)
    finite_rho = np.isfinite(rho_f)
    finite_u = np.isfinite(speed2)
    n_nonfinite_rho = int((~finite_rho).sum())
    n_nonfinite_u = int((~finite_u).sum())
    n_nonpositive = int((rho_f[finite_rho] <= rho_min).sum())
    speed_ok = speed2[finite_u]
    max_speed = float(np.sqrt(speed_ok.max())) if speed_ok.size else 0.0
    n_super = int((speed_ok > u_limit ** 2).sum())
    min_rho = (float(rho_f[finite_rho].min())
               if finite_rho.any() else float("nan"))

    report = {
        **(context or {}),
        "n_fluid": int(rho_f.size),
        "nonfinite_rho": n_nonfinite_rho,
        "nonfinite_u": n_nonfinite_u,
        "nonpositive_rho": n_nonpositive,
        "supersonic": n_super,
        "max_speed": max_speed,
        "min_density": min_rho,
        "u_limit": u_limit,
    }
    if n_nonfinite_rho or n_nonfinite_u or n_nonpositive or n_super:
        where = " ".join(f"{k}={v}" for k, v in (context or {}).items())
        raise StabilityError(
            f"fields diverged ({where}): "
            f"{n_nonfinite_rho + n_nonfinite_u} non-finite, "
            f"{n_nonpositive} non-positive-density, {n_super} over-speed "
            f"(> {u_limit:.3f}) fluid nodes (max |u| = {max_speed:.3g})",
            report,
        )
    return report


class StabilityError(RuntimeError):
    """Raised by the watchdog; ``report`` holds the structured diagnosis."""

    def __init__(self, message: str, report: dict):
        super().__init__(message)
        self.report = report


class StabilityWatchdog:
    """Run callback that samples for divergence every ``every`` steps.

    Parameters
    ----------
    every:
        Sampling cadence in steps (checked against ``solver.time``, so it
        composes with ``run(..., callback_interval=1)``).
    u_limit:
        Maximum tolerated speed; defaults to :data:`SOUND_SPEED`.
    rho_min:
        Densities at or below this value count as divergence.
    telemetry:
        Optional registry; the watchdog publishes ``watchdog.max_speed`` /
        ``watchdog.min_density`` gauges and counts its checks.
    """

    def __init__(self, every: int = 50, u_limit: float | None = None,
                 rho_min: float = 0.0, telemetry=None):
        if every < 1:
            raise ValueError("sampling cadence must be >= 1")
        self.every = int(every)
        self.u_limit = float(u_limit) if u_limit is not None else SOUND_SPEED
        self.rho_min = float(rho_min)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.last_report: dict | None = None

    def __call__(self, solver) -> None:
        if solver.time % self.every == 0:
            self.check(solver)

    def check(self, solver) -> dict:
        """Inspect the solver now; raises :class:`StabilityError` on
        divergence, otherwise returns the healthy report."""
        context = {
            "step": int(solver.time),
            "scheme": solver.name,
            "lattice": solver.lat.name,
            "shape": list(solver.domain.shape),
        }
        with self.telemetry.phase("watchdog"):
            rho, u = solver.macroscopic()
            try:
                report = check_fields(rho, u, solver.domain.fluid_mask,
                                      u_limit=self.u_limit,
                                      rho_min=self.rho_min, context=context)
                failure = None
            except StabilityError as err:
                report, failure = err.report, err

        self.last_report = report
        tel = self.telemetry
        tel.count("watchdog.checks")
        tel.gauge("watchdog.max_speed", report["max_speed"])
        if math.isfinite(report["min_density"]):
            tel.gauge("watchdog.min_density", report["min_density"])

        if failure is not None:
            tel.count("watchdog.aborts")
            raise StabilityError(
                f"{solver.name}/{solver.lat.name} diverged at step "
                f"{solver.time}: "
                f"{report['nonfinite_rho'] + report['nonfinite_u']} "
                f"non-finite, {report['nonpositive_rho']} "
                f"non-positive-density, {report['supersonic']} "
                f"over-speed (> {self.u_limit:.3f}) fluid nodes "
                f"(max |u| = {report['max_speed']:.3g})",
                report,
            )
        return report
