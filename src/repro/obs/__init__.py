"""Observability layer: telemetry, exporters, manifests, watchdog, profiling.

A unified measurement substrate shared by the reference solvers, the
virtual-GPU kernels, the bench harness and the CLI (see
``docs/observability.md``):

* :class:`Telemetry` — counters, gauges, hierarchical phase timers and
  derived throughput (MLUPS, effective sector GB/s);
* :data:`NULL_TELEMETRY` — the zero-overhead disabled default;
* :class:`JsonLinesExporter` / :func:`write_csv_summary` /
  :func:`write_chrome_trace` — metric and span exporters;
* :class:`RunManifest` — reproducibility metadata written alongside
  outputs and checkpoints;
* :class:`StabilityWatchdog` — cadence-sampled NaN/Inf/over-speed abort
  with a structured report;
* :func:`profile_scheme` — the harness behind ``mrlbm profile``;
* :class:`BenchRecord` / :func:`run_suite` / :func:`compare_to_baseline`
  — the benchmark trajectory + regression sentinel behind
  ``mrlbm bench``;
* :func:`attain_cell` — the roofline attribution join (% of
  model-predicted ceiling per measured cell);
* :class:`EventStream` / :func:`follow_events` — the per-rank JSONL
  event bus behind ``mrlbm watch``.
"""

from .attain import attain_cell, attainment_note, measure_host_bandwidth
from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    BenchRecord,
    append_records,
    compare_to_baseline,
    default_suite,
    format_comparison,
    format_records,
    load_trajectory,
    records_from_comparison,
    run_cell,
    run_suite,
    trajectory_path,
    validate_record,
    validate_trajectory,
)
from .events import (
    EventStream,
    RunEventEmitter,
    event_files,
    follow_events,
    format_watch,
    iter_event_lines,
    iter_events,
    read_events,
    summarize_events,
)
from .exporters import (
    JsonLinesExporter,
    read_jsonl,
    write_chrome_trace,
    write_csv_summary,
)
from .manifest import RunManifest, load_manifest, manifest_path_for, write_manifest
from .merge import merge_rank_reports
from .profile import (PROFILE_SCHEMES, compare_backends,
                      format_backend_comparison, format_profile,
                      profile_scheme)
from .telemetry import NULL_TELEMETRY, NullTelemetry, PhaseStats, Span, Telemetry
from .watchdog import SOUND_SPEED, StabilityError, StabilityWatchdog, check_fields

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "PhaseStats",
    "Span",
    "JsonLinesExporter",
    "read_jsonl",
    "write_csv_summary",
    "write_chrome_trace",
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "StabilityWatchdog",
    "StabilityError",
    "SOUND_SPEED",
    "check_fields",
    "profile_scheme",
    "format_profile",
    "compare_backends",
    "format_backend_comparison",
    "PROFILE_SCHEMES",
    "merge_rank_reports",
    # bench trajectory + regression sentinel
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "BenchRecord",
    "append_records",
    "compare_to_baseline",
    "default_suite",
    "format_comparison",
    "format_records",
    "load_trajectory",
    "records_from_comparison",
    "run_cell",
    "run_suite",
    "trajectory_path",
    "validate_record",
    "validate_trajectory",
    # roofline attribution
    "attain_cell",
    "attainment_note",
    "measure_host_bandwidth",
    # live run event streams
    "EventStream",
    "RunEventEmitter",
    "event_files",
    "follow_events",
    "iter_event_lines",
    "iter_events",
    "format_watch",
    "read_events",
    "summarize_events",
]
