"""Two-level grid refinement for the moment representation (2D).

Grid refinement is a recurring theme of the paper's lineage (references
[17]-[19] are the authors' own multi-domain/refinement work). This module
implements the classical two-level coupling (Dupuis & Chopard 2003 /
Lagrava et al.) for a fine *band* embedded in a periodic coarse domain —
and it does so in *moment space*, which is exactly where the moment
representation shines: since the MR state is ``{rho, u, Pi}``, grid
transfer needs no population rescaling at all, only

* ``rho`` and ``u`` copied (acoustic scaling: identical lattice values),
* the non-equilibrium second moment rescaled by
  ``Pi_neq_f = (tau_f / (2 tau_c)) Pi_neq_c`` (and its inverse on
  restriction), because ``Pi_neq ~ -2 rho cs2 tau_latt S_latt`` with the
  lattice strain rate halving on the fine grid,

followed by the ordinary Eq. 11 reconstruction — the same lossless
machinery the GPU kernels use.

Setup: coarse spacing ``dx_c = dt_c = 1``; the fine band spans
``x in [x_lo, x_hi]`` (full width in y) at ``dx_f = dt_f = 1/2`` with
``tau_f = 2 tau_c - 1/2`` (equal physical viscosity). One coarse step
drives two fine substeps; fine ghost columns at ``x_lo - 1/2`` and
``x_hi + 1/2`` are filled from space- and time-interpolated coarse
moments, and the coarse nodes strictly inside the band are restricted
from the fine solution each step.
"""

from __future__ import annotations

import numpy as np

from ..core.collision import collide_moments_projective
from ..core.equilibrium import equilibrium_moments
from ..core.moments import f_from_moments, moments_from_f
from ..core.streaming import stream_push
from ..lattice import get_lattice

__all__ = ["RefinedTaylorGreen2D", "RefinedSimulation2D", "fine_tau",
           "pi_neq_scale"]


def fine_tau(tau_coarse: float) -> float:
    """Fine-grid relaxation time for equal physical viscosity:
    ``tau_f - 1/2 = 2 (tau_c - 1/2)``."""
    return 2.0 * tau_coarse - 0.5


def pi_neq_scale(tau_coarse: float) -> float:
    """Coarse -> fine rescaling of the non-equilibrium second moment."""
    return fine_tau(tau_coarse) / (2.0 * tau_coarse)


class RefinedSimulation2D:
    """Coarse periodic D2Q9 domain with one refined band (MR-P dynamics).

    Parameters
    ----------
    shape:
        Coarse grid shape ``(nx, ny)`` (fully periodic).
    band:
        ``(x_lo, x_hi)`` coarse coordinates of the refined band,
        ``0 < x_lo < x_hi < nx - 1``.
    tau:
        Coarse relaxation time.
    rho0, u0:
        Initial fields on the coarse grid; the fine band is initialized by
        interpolating them.
    """

    def __init__(self, shape: tuple[int, int], band: tuple[int, int],
                 tau: float, rho0=1.0, u0: np.ndarray | None = None,
                 scheme: str = "MR-P"):
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be MR-P or MR-R, got {scheme!r}")
        self.scheme = scheme
        self.lat = get_lattice("D2Q9")
        lat = self.lat
        nx, ny = shape
        x_lo, x_hi = band
        if not (0 < x_lo < x_hi < nx - 1):
            raise ValueError(f"band {band} must lie strictly inside (0, {nx - 1})")
        self.shape = (nx, ny)
        self.band = (x_lo, x_hi)
        self.tau_c = float(tau)
        self.tau_f = fine_tau(tau)
        if self.tau_c <= 0.5:
            raise ValueError("tau must exceed 1/2")
        self.scale = pi_neq_scale(tau)
        self.time = 0

        rho = np.broadcast_to(np.asarray(rho0, dtype=np.float64), shape)
        u = np.zeros((2, nx, ny)) if u0 is None else np.asarray(u0, float)

        # Coarse state: M-vector field.
        self.m_c = equilibrium_moments(lat, rho, u)

        # Fine band: columns at x_phys = x_lo - 1 + k/2. The ghost columns
        # (k = 0 and k = nfx-1) sit exactly on the coarse nodes x_lo - 1
        # and x_hi + 1, so filling them needs no x-interpolation — only
        # the y-midpoints and the temporal midpoint are interpolated
        # (Lagrava-style interface placement).
        self.nfx = 2 * (x_hi - x_lo) + 5
        self.nfy = 2 * ny
        fx = x_lo - 1.0 + 0.5 * np.arange(self.nfx)
        fy = 0.5 * np.arange(self.nfy)
        self._fine_x_phys = fx
        rho_f, u_f = self._sample_coarse(self.m_c, fx, fy)[:2]
        self.m_f = equilibrium_moments(lat, rho_f, u_f)
        # Non-equilibrium part of the initial coarse field, rescaled.
        pi_neq = self._sample_coarse(self.m_c, fx, fy)[2]
        self.m_f[1 + lat.d:] += self.scale * pi_neq

    # ------------------------------------------------------------------
    # Coarse <-> fine transfer
    # ------------------------------------------------------------------
    def _sample_coarse(self, m_c: np.ndarray, fx: np.ndarray, fy: np.ndarray):
        """Sample (rho, u, Pi_neq) at fine coordinates.

        ``fx`` must be node-aligned (integer coarse coordinates — the
        ghost-column placement guarantees it); along ``y`` the midpoints
        use centred *cubic* interpolation. Lagrava et al. showed linear
        interface interpolation injects a secular error at the refinement
        boundary; with the cubic stencil the refined Taylor-Green error
        matches the unrefined solver (verified in the tests).
        """
        lat = self.lat
        nx, ny = self.shape
        cubic_w = np.array([-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0])
        cubic_o = np.array([-1, 0, 1, 2])

        jx = np.round(2 * fx).astype(int)
        jy = np.round(2 * fy).astype(int)
        even_x = jx % 2 == 0
        even_y = jy % 2 == 0
        x_node = (jx // 2) % nx
        y_node = (jy // 2) % ny

        def interp(field):
            # x pass: node columns exact, midpoint columns cubic.
            line = np.empty((len(fx), ny))
            line[even_x] = field[x_node[even_x]]
            if (~even_x).any():
                xb = x_node[~even_x]
                acc = 0.0
                for off, w in zip(cubic_o, cubic_w):
                    acc = acc + w * field[(xb + off) % nx]
                line[~even_x] = acc
            # y pass.
            out = np.empty((len(fx), len(fy)))
            out[:, even_y] = line[:, y_node[even_y]]
            if (~even_y).any():
                yb = y_node[~even_y]
                acc = 0.0
                for off, w in zip(cubic_o, cubic_w):
                    acc = acc + w * line[:, (yb + off) % ny]
                out[:, ~even_y] = acc
            return out

        rho_c = m_c[0]
        u_c = m_c[1:3] / rho_c
        pi_eq_c = np.stack([rho_c * u_c[a] * u_c[b]
                            for a, b in lat.pair_tuples])
        pi_neq_c = m_c[3:] - pi_eq_c

        rho = interp(rho_c)
        u = np.stack([interp(u_c[a]) for a in range(2)])
        pi_neq = np.stack([interp(pi_neq_c[k]) for k in range(lat.n_pairs)])
        return rho, u, pi_neq

    def _fill_ghosts(self, m_interp: np.ndarray) -> None:
        """Write interpolated coarse moments into the fine ghost columns."""
        lat = self.lat
        fy = 0.5 * np.arange(self.nfy)
        for k in (0, self.nfx - 1):
            fx = self._fine_x_phys[k:k + 1]
            rho, u, pi_neq = self._sample_coarse(m_interp, fx, fy)
            m_ghost = equilibrium_moments(lat, rho, u)
            m_ghost[1 + lat.d:] += self.scale * pi_neq
            self.m_f[:, k, :] = m_ghost[:, 0, :]

    def _restrict(self) -> None:
        """Copy fine solution onto coarse nodes strictly inside the band."""
        lat = self.lat
        x_lo, x_hi = self.band
        xs = np.arange(x_lo, x_hi + 1)
        # Fine index of coarse x: fx = x_lo - 1 + k/2 = x  ->  k = 2(x-x_lo)+2.
        kx = 2 * (xs - x_lo) + 2
        ky = 2 * np.arange(self.shape[1])
        m_f = self.m_f[:, kx[:, None], ky[None, :]]
        rho = m_f[0]
        u = m_f[1:3] / rho
        pi_eq = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples])
        pi_neq = (m_f[3:] - pi_eq) / self.scale
        self.m_c[0, xs] = rho
        self.m_c[1:3, xs] = m_f[1:3]
        self.m_c[3:, xs] = pi_eq + pi_neq

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _advance(self, m: np.ndarray, tau: float) -> np.ndarray:
        lat = self.lat
        if self.scheme == "MR-P":
            f_star = f_from_moments(lat,
                                    collide_moments_projective(lat, m, tau))
        else:
            from ..core.collision import collide_moments_recursive

            f_star = collide_moments_recursive(lat, m, tau)
        return moments_from_f(lat, stream_push(lat, f_star))

    def step(self) -> None:
        """One coarse step = one coarse update + two fine substeps."""
        m_c_old = self.m_c.copy()
        self.m_c = self._advance(self.m_c, self.tau_c)

        # Fine substep 1: ghosts at time t.
        self._fill_ghosts(m_c_old)
        self.m_f = self._advance(self.m_f, self.tau_f)
        # Fine substep 2: ghosts at time t + 1/2 (temporal interpolation).
        self._fill_ghosts(0.5 * (m_c_old + self.m_c))
        self.m_f = self._advance(self.m_f, self.tau_f)

        self._restrict()
        self.time += 1

    def run(self, n_steps: int) -> "RefinedSimulation2D":
        for _ in range(int(n_steps)):
            self.step()
        return self

    # ------------------------------------------------------------------
    def coarse_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.m_c[0], self.m_c[1:3] / self.m_c[0]

    def fine_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """(rho, u) on the fine band (including ghost columns)."""
        return self.m_f[0], self.m_f[1:3] / self.m_f[0]

    def fine_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """Physical (coarse-unit) coordinates of the fine nodes."""
        return self._fine_x_phys, 0.5 * np.arange(self.nfy)


class RefinedTaylorGreen2D(RefinedSimulation2D):
    """Convenience: a Taylor-Green vortex with a refined band."""

    def __init__(self, shape=(64, 64), band=(24, 40), tau: float = 0.8,
                 u0: float = 0.03):
        from ..validation import taylor_green_fields

        nu = (tau - 0.5) / 3.0
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
        self.nu = nu
        self.u0_amp = u0
        super().__init__(shape, band, tau, rho0=rho_i, u0=u_i)
