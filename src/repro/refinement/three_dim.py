"""Two-level grid refinement in 3D (D3Q19, refined x-band).

The 3D counterpart of :mod:`repro.refinement.two_level`: a band
``x in [x_lo, x_hi]`` of a periodic (nx, ny, nz) domain refined 2x in
space and time, moment-space level coupling (copy ``rho, u``; rescale
``Pi_neq``), node-aligned ghost planes and separable cubic interpolation
on the y/z midpoints.
"""

from __future__ import annotations

import numpy as np

from ..core.collision import (
    collide_moments_projective,
    collide_moments_recursive,
)
from ..core.equilibrium import equilibrium_moments
from ..core.moments import f_from_moments, moments_from_f
from ..core.streaming import stream_push
from ..lattice import get_lattice
from .two_level import fine_tau, pi_neq_scale

__all__ = ["RefinedSimulation3D"]

_CUBIC_W = np.array([-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0])
_CUBIC_O = np.array([-1, 0, 1, 2])


class RefinedSimulation3D:
    """Periodic D3Q19 domain with one 2x-refined x-band (MR dynamics)."""

    def __init__(self, shape: tuple[int, int, int], band: tuple[int, int],
                 tau: float, rho0=1.0, u0: np.ndarray | None = None,
                 scheme: str = "MR-P"):
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be MR-P or MR-R, got {scheme!r}")
        self.scheme = scheme
        self.lat = get_lattice("D3Q19")
        lat = self.lat
        nx, ny, nz = shape
        x_lo, x_hi = band
        if not (0 < x_lo < x_hi < nx - 1):
            raise ValueError(f"band {band} must lie strictly inside (0, {nx - 1})")
        if tau <= 0.5:
            raise ValueError("tau must exceed 1/2")
        self.shape = (nx, ny, nz)
        self.band = (x_lo, x_hi)
        self.tau_c = float(tau)
        self.tau_f = fine_tau(tau)
        self.scale = pi_neq_scale(tau)
        self.time = 0

        rho = np.broadcast_to(np.asarray(rho0, dtype=np.float64), shape)
        u = np.zeros((3, *shape)) if u0 is None else np.asarray(u0, float)
        self.m_c = equilibrium_moments(lat, rho, u)

        # Fine band: x_phys = x_lo - 1 + k/2 (ghost planes k=0, nfx-1 sit
        # on the coarse nodes x_lo-1 and x_hi+1).
        self.nfx = 2 * (x_hi - x_lo) + 5
        self.nfy = 2 * ny
        self.nfz = 2 * nz
        self._fine_x_phys = x_lo - 1.0 + 0.5 * np.arange(self.nfx)
        rho_f, u_f, pi_neq = self._sample_coarse(self.m_c, self._fine_x_phys)
        self.m_f = equilibrium_moments(lat, rho_f, u_f)
        self.m_f[1 + lat.d:] += self.scale * pi_neq

    # ------------------------------------------------------------------
    def _interp_axis(self, field: np.ndarray, axis: int) -> np.ndarray:
        """Refine one periodic axis 2x: nodes exact, midpoints cubic."""
        n = field.shape[axis]
        out_shape = list(field.shape)
        out_shape[axis] = 2 * n
        out = np.empty(out_shape)
        node = [slice(None)] * field.ndim
        node[axis] = slice(0, 2 * n, 2)
        out[tuple(node)] = field
        mid = 0.0
        for off, w in zip(_CUBIC_O, _CUBIC_W):
            mid = mid + w * np.roll(field, -off, axis=axis)
        mids = [slice(None)] * field.ndim
        mids[axis] = slice(1, 2 * n, 2)
        out[tuple(mids)] = mid
        return out

    def _sample_coarse(self, m_c: np.ndarray, fx: np.ndarray):
        """(rho, u, Pi_neq) at fine positions: node-aligned / midpoint x
        planes, full 2x refinement in y and z."""
        lat = self.lat
        nx = self.shape[0]
        jx = np.round(2 * fx).astype(int)
        even_x = jx % 2 == 0
        x_node = (jx // 2) % nx

        rho_c = m_c[0]
        u_c = m_c[1:4] / rho_c
        pi_eq_c = np.stack([rho_c * u_c[a] * u_c[b]
                            for a, b in lat.pair_tuples])
        pi_neq_c = m_c[4:] - pi_eq_c

        def interp(field):
            # x pass.
            line = np.empty((len(fx), *field.shape[1:]))
            line[even_x] = field[x_node[even_x]]
            if (~even_x).any():
                xb = x_node[~even_x]
                acc = 0.0
                for off, w in zip(_CUBIC_O, _CUBIC_W):
                    acc = acc + w * field[(xb + off) % nx]
                line[~even_x] = acc
            # y and z passes (full refinement).
            line = self._interp_axis(line, axis=1)
            line = self._interp_axis(line, axis=2)
            return line

        rho = interp(rho_c)
        u = np.stack([interp(u_c[a]) for a in range(3)])
        pi_neq = np.stack([interp(pi_neq_c[k]) for k in range(lat.n_pairs)])
        return rho, u, pi_neq

    def _fill_ghosts(self, m_interp: np.ndarray) -> None:
        lat = self.lat
        for k in (0, self.nfx - 1):
            fx = self._fine_x_phys[k:k + 1]
            rho, u, pi_neq = self._sample_coarse(m_interp, fx)
            m_ghost = equilibrium_moments(lat, rho, u)
            m_ghost[1 + lat.d:] += self.scale * pi_neq
            self.m_f[:, k] = m_ghost[:, 0]

    def _restrict(self) -> None:
        lat = self.lat
        x_lo, x_hi = self.band
        xs = np.arange(x_lo, x_hi + 1)
        kx = 2 * (xs - x_lo) + 2
        m_f = self.m_f[:, kx][:, :, ::2, ::2]
        rho = m_f[0]
        u = m_f[1:4] / rho
        pi_eq = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples])
        pi_neq = (m_f[4:] - pi_eq) / self.scale
        self.m_c[0, xs] = rho
        self.m_c[1:4, xs] = m_f[1:4]
        self.m_c[4:, xs] = pi_eq + pi_neq

    # ------------------------------------------------------------------
    def _advance(self, m: np.ndarray, tau: float) -> np.ndarray:
        lat = self.lat
        if self.scheme == "MR-P":
            f_star = f_from_moments(lat,
                                    collide_moments_projective(lat, m, tau))
        else:
            f_star = collide_moments_recursive(lat, m, tau)
        return moments_from_f(lat, stream_push(lat, f_star))

    def step(self) -> None:
        m_c_old = self.m_c.copy()
        self.m_c = self._advance(self.m_c, self.tau_c)
        self._fill_ghosts(m_c_old)
        self.m_f = self._advance(self.m_f, self.tau_f)
        self._fill_ghosts(0.5 * (m_c_old + self.m_c))
        self.m_f = self._advance(self.m_f, self.tau_f)
        self._restrict()
        self.time += 1

    def run(self, n_steps: int) -> "RefinedSimulation3D":
        for _ in range(int(n_steps)):
            self.step()
        return self

    def coarse_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.m_c[0], self.m_c[1:4] / self.m_c[0]

    def fine_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.m_f[0], self.m_f[1:4] / self.m_f[0]
