"""Two-level grid refinement in moment space (paper refs [17]-[19])."""

from .three_dim import RefinedSimulation3D
from .two_level import (
    RefinedSimulation2D,
    RefinedTaylorGreen2D,
    fine_tau,
    pi_neq_scale,
)

__all__ = [
    "RefinedSimulation2D",
    "RefinedSimulation3D",
    "RefinedTaylorGreen2D",
    "fine_tau",
    "pi_neq_scale",
]
