"""Virtual-GPU kernel for the AA propagation pattern (Bailey 2009).

A single SoA distribution lattice updated in place by two alternating
kernel flavours (see :class:`repro.solver.AASolver` for the algebra):

* **even**: each thread reads its node's Q populations and writes the
  collided results back to the *same addresses* with components swapped —
  fully coalesced in both directions;
* **odd**: each thread gathers component ``i`` from slot
  ``(x - c_i, ibar)`` and scatters the collided result to
  ``(x + c_i, i)`` — the identical address set, so the update is
  race-free in place, but *both* the reads and the writes inherit the
  neighbour displacement and its sector misalignment (the pull kernel
  misaligns only reads, the push kernel only writes).

Traffic: ``2 Q`` doubles per node per step — like ST — while the resident
state is a single lattice (``Q`` doubles per node): the AA pattern fixes
the capacity cost of the distribution representation but not its
bandwidth cost, which is exactly the gap the paper's moment representation
closes. Periodic domains only (boundary parity handling out of scope).
"""

from __future__ import annotations

import math

import numpy as np

from ...core.equilibrium import equilibrium
from ...core.moments import macroscopic
from ...obs.telemetry import NULL_TELEMETRY
from ..device import GPUDevice
from ..launch import LaunchConfig, LaunchStats, publish_launch, validate_launch
from ..memory import GlobalArray, MemoryTracker
from .problem import KernelProblem

__all__ = ["AAKernel"]


class AAKernel:
    """One-thread-per-node in-place AA kernel on a single SoA lattice."""

    name = "AA"

    def __init__(self, problem: KernelProblem, device: GPUDevice,
                 tracker: MemoryTracker | None = None, block_size: int = 256,
                 rho0: np.ndarray | float = 1.0, u0: np.ndarray | None = None,
                 telemetry=None):
        if problem.mode != "periodic":
            raise ValueError("the AA kernel supports periodic domains only")
        self.problem = problem
        self.device = device
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        lat = problem.lat
        self.n = problem.n_nodes
        self.shape = problem.shape
        self.config = LaunchConfig(
            blocks=math.ceil(self.n / block_size),
            threads_per_block=block_size,
        )
        validate_launch(device, self.config)

        rho = np.broadcast_to(np.asarray(rho0, dtype=np.float64), self.shape)
        u = np.zeros((lat.d, *self.shape)) if u0 is None else np.asarray(u0, float)
        feq = equilibrium(lat, rho, u)
        init = np.concatenate([feq[i].ravel(order="F") for i in range(lat.q)])
        self.f = GlobalArray("f", lat.q * self.n, self.tracker, init=init)
        self.time = 0

    # -- indexing ---------------------------------------------------------
    def _coords(self, idx: np.ndarray) -> tuple[np.ndarray, ...]:
        coords = []
        rem = idx
        for extent in self.shape:
            coords.append(rem % extent)
            rem = rem // extent
        return tuple(coords)

    def _linear(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        idx = np.zeros(np.shape(coords[0]), dtype=np.int64)
        stride = 1
        for axis, extent in enumerate(self.shape):
            idx = idx + (coords[axis] % extent) * stride
            stride *= extent
        return idx

    # -- stepping -----------------------------------------------------------
    def step(self) -> LaunchStats:
        lat = self.problem.lat
        bs = self.config.threads_per_block
        self.tracker.flush_cache()
        saved = self.tracker.report
        self.tracker.report = type(saved)()

        even = self.time % 2 == 0
        with self.telemetry.phase("gpu.step"):
            for b in range(self.config.blocks):
                idx = np.arange(b * bs, min((b + 1) * bs, self.n),
                                dtype=np.int64)
                if even:
                    self._even_block(idx)
                else:
                    self._odd_block(idx)

        traffic = self.tracker.report
        self.tracker.report = saved + traffic
        self.time += 1
        stats = LaunchStats(
            config=self.config,
            traffic=traffic,
            n_nodes=self.n,
            kernel_name=f"AA-{'even' if even else 'odd'}/{lat.name}",
        )
        publish_launch(self.telemetry, stats)
        return stats

    def _collide(self, f_in: np.ndarray) -> np.ndarray:
        lat = self.problem.lat
        rho, u = macroscopic(lat, f_in)
        feq = equilibrium(lat, rho, u)
        omega = 1.0 / self.problem.tau
        return feq + (1.0 - omega) * (f_in - feq)

    def _even_block(self, idx: np.ndarray) -> None:
        lat = self.problem.lat
        f_in = np.empty((lat.q, idx.size))
        for i in range(lat.q):
            f_in[i] = self.f.read(i * self.n + idx)
        f_star = self._collide(f_in)
        for i in range(lat.q):
            # Same addresses, swapped components.
            self.f.write(lat.opposite[i] * self.n + idx, f_star[i])

    def _odd_block(self, idx: np.ndarray) -> None:
        lat = self.problem.lat
        coords = self._coords(idx)
        src_idx = []
        f_in = np.empty((lat.q, idx.size))
        for i in range(lat.q):
            src = tuple(coords[a] - lat.c[i, a] for a in range(lat.d))
            flat = self._linear(src)
            src_idx.append(flat)
            f_in[i] = self.f.read(lat.opposite[i] * self.n + flat)
        f_star = self._collide(f_in)
        for i in range(lat.q):
            dest = tuple(coords[a] + lat.c[i, a] for a in range(lat.d))
            self.f.write(i * self.n + self._linear(dest), f_star[i])

    # -- host access --------------------------------------------------------
    def distribution(self) -> np.ndarray:
        """True pre-collision populations at the current time."""
        lat = self.problem.lat
        flat = self.f.read_untracked()
        stored = np.stack(
            [flat[i * self.n:(i + 1) * self.n].reshape(self.shape, order="F")
             for i in range(lat.q)]
        )
        if self.time % 2 == 0:
            return stored
        grid_axes = tuple(range(lat.d))
        out = np.empty_like(stored)
        for i in range(lat.q):
            out[i] = np.roll(stored[lat.opposite[i]], shift=tuple(lat.c[i]),
                             axis=grid_axes)
        return out

    def macroscopic_fields(self) -> tuple[np.ndarray, np.ndarray]:
        return macroscopic(self.problem.lat, self.distribution())

    @property
    def global_state_bytes(self) -> int:
        """A single lattice — half the ST kernels' footprint."""
        return self.f.nbytes
