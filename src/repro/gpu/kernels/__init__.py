"""Virtual-GPU LBM kernels (ST pull kernel, MR column kernels)."""

from .aa import AAKernel
from .indirect import STIndirectKernel
from .moment import MRKernel, default_tile
from .problem import KernelProblem
from .standard import STKernel
from .standard_push import STPushKernel

__all__ = ["KernelProblem", "STKernel", "STPushKernel", "STIndirectKernel",
           "AAKernel", "MRKernel", "default_tile"]
