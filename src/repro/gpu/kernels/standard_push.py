"""Push-configuration ST kernel (collide, then scatter-stream).

The paper notes that the *pull* configuration "is considered the fastest
GPU implementation of the standard distribution representation"
(Section 3.1, citing Wellein 2006); this kernel implements the push
alternative so the claim can be tested in the traffic model: a push
kernel's streaming writes are shifted by ``c_i`` and therefore misaligned
with the 32-byte sectors, and — unlike the pull kernel's misaligned
*reads*, which the L2 absorbs — every written sector must drain to DRAM.

Boundary handling (channel mode) is fused the push way: wall-bound
components reflect into the node's own opposite slot at scatter time
(exactly like the MR column kernel), and the inlet/outlet reconstruction
runs as a post-scatter surface pass on the freshly streamed lattice.

State convention differs from :class:`STKernel`: ``f1`` holds the
*post-stream, post-boundary* (pre-collision) populations. After ``n``
steps, ``f1`` equals one stream+boundary application of the pull-solver
state after ``n`` steps (verified in the equivalence tests).
"""

from __future__ import annotations

import math

import numpy as np

from ...core.equilibrium import equilibrium
from ...core.moments import macroscopic
from ..device import GPUDevice
from ..launch import LaunchConfig, LaunchStats, validate_launch
from ..memory import GlobalArray, MemoryTracker
from .problem import KernelProblem

__all__ = ["STPushKernel"]


class STPushKernel:
    """One-thread-per-node push kernel over two SoA distribution lattices."""

    name = "ST-push"

    def __init__(self, problem: KernelProblem, device: GPUDevice,
                 tracker: MemoryTracker | None = None, block_size: int = 256,
                 rho0: np.ndarray | float = 1.0, u0: np.ndarray | None = None):
        self.problem = problem
        self.device = device
        self.tracker = tracker if tracker is not None else MemoryTracker()
        lat = problem.lat
        self.n = problem.n_nodes
        self.shape = problem.shape
        self.config = LaunchConfig(
            blocks=math.ceil(self.n / block_size),
            threads_per_block=block_size,
        )
        validate_launch(device, self.config)

        rho = np.broadcast_to(np.asarray(rho0, dtype=np.float64), self.shape)
        u = np.zeros((lat.d, *self.shape)) if u0 is None else np.asarray(u0, float)
        feq = equilibrium(lat, rho, u)
        init = np.concatenate([feq[i].ravel(order="F") for i in range(lat.q)])
        self.f1 = GlobalArray("f1", lat.q * self.n, self.tracker)
        self.f2 = GlobalArray("f2", lat.q * self.n, self.tracker, init=init)
        self.time = 0
        # State convention: f1 holds the post-stream, post-boundary field.
        # Align the initial equilibrium accordingly (host-side, untracked):
        # stream it once and run the boundary pass, so that step() produces
        # the same trajectory as the pull implementations.
        from ...core.streaming import stream_push as _stream

        streamed = _stream(lat, feq)
        # Half-way bounce-back on the initial streamed field.
        mesh = np.meshgrid(*[np.arange(s) for s in self.shape], indexing="ij")
        for i in range(lat.q):
            src = tuple(mesh[a] - lat.c[i, a] for a in range(lat.d))
            bb = problem.is_solid(src) & ~problem.is_solid(tuple(mesh))
            if bb.any():
                streamed[i][bb] = feq[lat.opposite[i]][bb]
        self.f2.data[:] = np.concatenate(
            [streamed[i].ravel(order="F") for i in range(lat.q)]
        )
        was_enabled = self.tracker.enabled
        self.tracker.enabled = False
        try:
            self._boundary_pass()
        finally:
            self.tracker.enabled = was_enabled
        self.f1, self.f2 = self.f2, self.f1

    # -- indexing helpers (same conventions as STKernel) -----------------
    def _coords(self, idx: np.ndarray) -> tuple[np.ndarray, ...]:
        coords = []
        rem = idx
        for extent in self.shape:
            coords.append(rem % extent)
            rem = rem // extent
        return tuple(coords)

    def _linear(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        idx = np.zeros(np.shape(coords[0]), dtype=np.int64)
        stride = 1
        for axis, extent in enumerate(self.shape):
            idx = idx + (coords[axis] % extent) * stride
            stride *= extent
        return idx

    def step(self) -> LaunchStats:
        lat = self.problem.lat
        bs = self.config.threads_per_block
        self.tracker.flush_cache()
        saved = self.tracker.report
        self.tracker.report = type(saved)()

        for b in range(self.config.blocks):
            idx = np.arange(b * bs, min((b + 1) * bs, self.n), dtype=np.int64)
            self._run_block(idx)
        self._boundary_pass()

        traffic = self.tracker.report
        self.tracker.report = saved + traffic
        self.f1, self.f2 = self.f2, self.f1
        self.time += 1
        return LaunchStats(
            config=self.config,
            traffic=traffic,
            n_nodes=self.n,
            kernel_name=f"ST-push/{lat.name}",
        )

    def _run_block(self, idx: np.ndarray) -> None:
        lat = self.problem.lat
        coords = self._coords(idx)
        solid = self.problem.is_solid(coords)
        fluid = ~solid

        if solid.any():
            # Pin solid nodes at rest (their slots receive no scatters).
            sidx = idx[solid]
            for i in range(lat.q):
                self.f2.write(i * self.n + sidx, np.full(sidx.size, lat.w[i]))
        if not fluid.any():
            return

        fidx = idx[fluid]
        fcoords = tuple(c[fluid] for c in coords)
        f = np.empty((lat.q, fidx.size))
        for i in range(lat.q):
            f[i] = self.f1.read(i * self.n + fidx)      # coalesced reads

        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        omega = 1.0 / self.problem.tau
        f_star = feq + (1.0 - omega) * (f - feq)

        # Scatter-stream with fused half-way bounce-back.
        for i in range(lat.q):
            dest = tuple(fcoords[a] + lat.c[i, a] for a in range(lat.d))
            dest_solid = self.problem.is_solid(dest)
            dest_ok = self.problem.in_domain(dest) & ~dest_solid
            if dest_ok.any():
                didx = self._linear(tuple(d[dest_ok] for d in dest))
                self.f2.write(i * self.n + didx, f_star[i, dest_ok])
            reflect = dest_solid
            if reflect.any():
                ibar = lat.opposite[i]
                self.f2.write(ibar * self.n + fidx[reflect],
                              f_star[i, reflect])

    def _boundary_pass(self) -> None:
        """Inlet/outlet reconstruction on the freshly streamed lattice."""
        if self.problem.mode != "channel":
            return
        lat = self.problem.lat
        nx = self.shape[0]
        for plane_x, apply_io in ((0, "inlet"), (nx - 1, "outlet")):
            cross_shapes = self.shape[1:]
            mesh = np.meshgrid(*[np.arange(s) for s in cross_shapes],
                               indexing="ij")
            cross = tuple(m.ravel() for m in mesh)
            coords = (np.full(cross[0].size, plane_x), *cross)
            fluid = ~self.problem.is_solid(coords)
            if not fluid.any():
                continue
            coords = tuple(c[fluid] for c in coords)
            nidx = self._linear(coords)
            f = np.empty((lat.q, nidx.size))
            for i in range(lat.q):
                f[i] = self.f2.read(i * self.n + nidx)
            if apply_io == "inlet":
                self.problem.apply_inlet_nebb(f, coords[1:])
            else:
                u_t = None
                if self.problem.outlet_tangential == "extrapolate":
                    ncoords = (coords[0] - 1, *coords[1:])
                    n2 = self._linear(ncoords)
                    f_nb = np.empty((lat.q, n2.size))
                    for i in range(lat.q):
                        f_nb[i] = self.f2.read(i * self.n + n2)
                    _, u_t = macroscopic(lat, f_nb)
                self.problem.apply_outlet_nebb(f, u_t)
            for i in range(lat.q):
                self.f2.write(i * self.n + nidx, f[i])

    # -- host accessors ---------------------------------------------------
    def distribution(self) -> np.ndarray:
        """Host copy: the post-stream, post-boundary (pre-collision) state."""
        lat = self.problem.lat
        flat = self.f1.read_untracked()
        return np.stack(
            [flat[i * self.n:(i + 1) * self.n].reshape(self.shape, order="F")
             for i in range(lat.q)]
        )

    def macroscopic_fields(self) -> tuple[np.ndarray, np.ndarray]:
        return macroscopic(self.problem.lat, self.distribution())

    @property
    def global_state_bytes(self) -> int:
        return self.f1.nbytes + self.f2.nbytes
