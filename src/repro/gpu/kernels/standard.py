"""Virtual-GPU kernel for the ST propagation pattern (paper Algorithm 1).

Pull configuration: each thread owns one lattice node, gathers the Q
populations from its neighbours' post-collision lattice ``f1``, applies
boundary fixes, computes the macroscopic moments, collides (BGK) and writes
the Q post-collision populations to the second lattice ``f2``. Both
lattices use the SoA layout (component-major, x fastest) for coalesced
access; the thread grid is 1D with one thread per node, as in the paper.

All global-memory accesses go through :class:`repro.gpu.memory.GlobalArray`
so the launch reports profiler-style traffic (bytes and 32B sectors):
``2 Q`` doubles per node plus the small boundary extras — the ST row of
paper Table 2.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.equilibrium import equilibrium
from ...core.moments import macroscopic
from ...obs.telemetry import NULL_TELEMETRY
from ..device import GPUDevice
from ..launch import LaunchConfig, LaunchStats, publish_launch, validate_launch
from ..memory import GlobalArray, MemoryTracker
from .problem import KernelProblem

__all__ = ["STKernel"]


class STKernel:
    """One-thread-per-node pull kernel over two SoA distribution lattices."""

    name = "ST"

    def __init__(self, problem: KernelProblem, device: GPUDevice,
                 tracker: MemoryTracker | None = None, block_size: int = 256,
                 rho0: np.ndarray | float = 1.0, u0: np.ndarray | None = None,
                 force: np.ndarray | None = None, telemetry=None):
        self.problem = problem
        self.device = device
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        lat = problem.lat
        self.n = problem.n_nodes
        self.shape = problem.shape
        # Optional constant body force (Guo coupling) — a compile-time
        # constant of the kernel, so it adds flops but no traffic.
        if force is None:
            self.force_flat = None
        else:
            from ...core.forcing import normalize_force

            field = normalize_force(lat, force, self.shape)
            mesh = np.meshgrid(*[np.arange(s) for s in self.shape],
                               indexing="ij")
            field[:, problem.is_solid(tuple(mesh))] = 0.0
            self.force_flat = np.stack(
                [field[a].ravel(order="F") for a in range(lat.d)]
            )
        self.config = LaunchConfig(
            blocks=math.ceil(self.n / block_size),
            threads_per_block=block_size,
            shared_bytes_per_block=0,
        )
        validate_launch(device, self.config)

        rho = np.array(np.broadcast_to(np.asarray(rho0, dtype=np.float64),
                                       self.shape))
        u = np.zeros((lat.d, *self.shape)) if u0 is None else np.array(u0, float)
        mesh = np.meshgrid(*[np.arange(s) for s in self.shape], indexing="ij")
        solid0 = problem.is_solid(tuple(mesh))
        rho[solid0] = 1.0
        u[:, solid0] = 0.0
        feq = equilibrium(lat, rho, u)
        init = np.concatenate([feq[i].ravel(order="F") for i in range(lat.q)])
        # Both lattices start initialized so solid nodes never need to be
        # rewritten: solid threads are masked out of the update entirely,
        # as real complex-geometry kernels do.
        self.f1 = GlobalArray("f1", lat.q * self.n, self.tracker, init=init)
        self.f2 = GlobalArray("f2", lat.q * self.n, self.tracker, init=init)
        # Complex geometries carry a uint8 node-type grid in global memory
        # whose per-step fetch is part of the measured traffic (paper
        # reference [4]).
        self.node_types: GlobalArray | None = None
        if problem.mode == "masked":
            self.node_types = GlobalArray(
                "node_type", self.n, self.tracker,
                init=problem.solid_mask.ravel(order="F").astype(np.float64),
                itemsize=1,
            )
        self.time = 0

    # ------------------------------------------------------------------
    def _coords(self, idx: np.ndarray) -> tuple[np.ndarray, ...]:
        coords = []
        rem = idx
        for extent in self.shape:
            coords.append(rem % extent)
            rem = rem // extent
        return tuple(coords)

    def _linear(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        idx = np.zeros(np.shape(coords[0]), dtype=np.int64)
        stride = 1
        for axis, extent in enumerate(self.shape):
            idx = idx + (coords[axis] % extent) * stride
            stride *= extent
        return idx

    def _post_stream_at(self, coords: tuple[np.ndarray, ...],
                        self_idx: np.ndarray) -> np.ndarray:
        """Gather the post-stream populations for a set of fluid nodes,
        including the bounce-back link fixes (shared by the bulk update and
        the outlet-neighbour recomputation)."""
        lat = self.problem.lat
        n_nodes = self_idx.size
        f = np.zeros((lat.q, n_nodes))
        for i in range(lat.q):
            src = tuple(coords[a] - lat.c[i, a] for a in range(lat.d))
            bb = self.problem.is_solid(src)
            plain = ~bb
            if plain.any():
                src_idx = self._linear(tuple(s[plain] for s in src))
                f[i, plain] = self.f1.read(i * self.n + src_idx)
            if bb.any():
                # Link from a wall: take the node's own opposite
                # post-collision population (half-way bounce-back).
                ibar = lat.opposite[i]
                f[i, bb] = self.f1.read(ibar * self.n + self_idx[bb])
        return f

    def step(self) -> LaunchStats:
        """One timestep = one kernel launch over all blocks."""
        lat = self.problem.lat
        bs = self.config.threads_per_block
        self.tracker.flush_cache()   # no inter-step reuse at paper scales
        start_traffic = self.tracker.report
        self.tracker.report = type(start_traffic)()

        with self.telemetry.phase("gpu.step"):
            for b in range(self.config.blocks):
                idx = np.arange(b * bs, min((b + 1) * bs, self.n),
                                dtype=np.int64)
                self._run_block(idx)

        traffic = self.tracker.report
        self.tracker.report = start_traffic + traffic
        self.f1, self.f2 = self.f2, self.f1
        self.time += 1
        stats = LaunchStats(
            config=self.config,
            traffic=traffic,
            n_nodes=self.n,
            kernel_name=f"ST/{lat.name}",
        )
        publish_launch(self.telemetry, stats)
        return stats

    def _run_block(self, idx: np.ndarray) -> None:
        lat = self.problem.lat
        coords = self._coords(idx)
        if self.node_types is not None:
            # Counted fetch of the geometry (each thread reads its type).
            solid = self.node_types.read(idx) > 0.5
        else:
            solid = self.problem.is_solid(coords)
        fluid = ~solid
        if not fluid.any():
            return                        # fully solid block: threads exit

        fcoords = tuple(c[fluid] for c in coords)
        fidx = idx[fluid]
        f = self._post_stream_at(fcoords, fidx)

        if self.problem.mode == "channel":
            self._apply_channel_io(f, fcoords)

        omega = 1.0 / self.problem.tau
        if self.force_flat is None:
            rho, u = macroscopic(lat, f)
            feq = equilibrium(lat, rho, u)
            out = feq + (1.0 - omega) * (f - feq)
        else:
            from ...core.forcing import guo_source, half_force_velocity

            force = self.force_flat[:, fidx]
            rho = f.sum(axis=0)
            j = np.einsum("qa,q...->a...", lat.c.astype(np.float64), f)
            u = half_force_velocity(lat, rho, j, force)
            feq = equilibrium(lat, rho, u)
            out = (feq + (1.0 - omega) * (f - feq)
                   + guo_source(lat, u, force, self.problem.tau))

        # Solid threads are masked out: their slots keep the rest-state
        # values both lattices were initialized with.
        for i in range(lat.q):
            self.f2.write(i * self.n + fidx, out[i])

    def _apply_channel_io(self, f: np.ndarray, coords: tuple[np.ndarray, ...]) -> None:
        """Inlet/outlet NEBB reconstruction for the channel proxy app."""
        x = coords[0]
        nx = self.shape[0]
        inlet = x == 0
        if inlet.any():
            cross = tuple(c[inlet] for c in coords[1:])
            f_in = f[:, inlet]
            self.problem.apply_inlet_nebb(f_in, cross)
            f[:, inlet] = f_in
        outlet = x == nx - 1
        if outlet.any():
            f_out = f[:, outlet]
            u_t = None
            if self.problem.outlet_tangential == "extrapolate":
                # Recompute the first interior plane's post-stream state to
                # extrapolate the tangential velocity (extra gathers,
                # counted as real traffic).
                ncoords = (x[outlet] - 1, *[c[outlet] for c in coords[1:]])
                nidx = self._linear(ncoords)
                f_nb = self._post_stream_at(ncoords, nidx)
                _, u_t = macroscopic(self.problem.lat, f_nb)
            self.problem.apply_outlet_nebb(f_out, u_t)
            f[:, outlet] = f_out

    # ------------------------------------------------------------------
    def distribution(self) -> np.ndarray:
        """Host copy of the current lattice as a ``(Q, *shape)`` field."""
        lat = self.problem.lat
        flat = self.f1.read_untracked()
        return np.stack(
            [flat[i * self.n:(i + 1) * self.n].reshape(self.shape, order="F")
             for i in range(lat.q)]
        )

    def macroscopic_fields(self) -> tuple[np.ndarray, np.ndarray]:
        lat = self.problem.lat
        f = self.distribution()
        if self.force_flat is None:
            return macroscopic(lat, f)
        from ...core.forcing import half_force_velocity

        rho = f.sum(axis=0)
        j = np.einsum("qa,q...->a...", lat.c.astype(np.float64), f)
        force = np.stack([self.force_flat[a].reshape(self.shape, order="F")
                          for a in range(lat.d)])
        return rho, half_force_velocity(lat, rho, j, force)

    @property
    def global_state_bytes(self) -> int:
        """Device-resident state (both lattices) — the paper's footprint
        model for ST."""
        return self.f1.nbytes + self.f2.nbytes
