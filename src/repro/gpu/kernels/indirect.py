"""Indirect-addressing ST kernel for sparse/complex geometries.

Direct (dense) addressing allocates and streams every lattice node, so
porous geometries waste bandwidth proportional to the solid fraction
(see `benchmarks/test_complex_geometry.py`). The alternative analysed by
Herschlag et al. (2021 — the paper's reference [4]) stores only the fluid
nodes, compacted into a list, and resolves streaming through a
precomputed adjacency table: one 32-bit index per (node, direction)
pointing at the pull source *slot* in the distribution array — with
fluid-solid links folded in by pointing the entry at the node's own
opposite-component slot (half-way bounce-back needs no branch at all).

Per-fluid-node traffic is therefore porosity-independent: ``2 Q x 8`` B
of populations plus ``4 Q`` B of adjacency reads (180 B for D2Q9, 380 B
for D3Q19), which loses to dense addressing on open domains but wins
below a crossover fluid fraction — the trade-off quantified in the E16
benchmark.

Periodic and masked problems only (the adjacency table encodes the
geometry; inlet/outlet reconstructions are dense-mode features).
"""

from __future__ import annotations

import math

import numpy as np

from ...core.equilibrium import equilibrium
from ...core.moments import macroscopic
from ..device import GPUDevice
from ..launch import LaunchConfig, LaunchStats, validate_launch
from ..memory import GlobalArray, MemoryTracker
from .problem import KernelProblem

__all__ = ["STIndirectKernel"]


class STIndirectKernel:
    """Fluid-list ST kernel with a flat adjacency table."""

    name = "ST-indirect"

    def __init__(self, problem: KernelProblem, device: GPUDevice,
                 tracker: MemoryTracker | None = None, block_size: int = 256,
                 rho0: np.ndarray | float = 1.0, u0: np.ndarray | None = None):
        if problem.mode not in ("periodic", "masked"):
            raise ValueError(
                "the indirect kernel supports periodic and masked problems"
            )
        self.problem = problem
        self.device = device
        self.tracker = tracker if tracker is not None else MemoryTracker()
        lat = problem.lat
        self.shape = problem.shape

        # Fluid compaction: grid -> slot mapping.
        mesh = np.meshgrid(*[np.arange(s) for s in self.shape], indexing="ij")
        solid = problem.is_solid(tuple(mesh))
        self.fluid_mask = ~solid
        self.n_fluid = int(self.fluid_mask.sum())
        if self.n_fluid == 0:
            raise ValueError("geometry has no fluid nodes")
        flat_fluid = self.fluid_mask.ravel(order="F")
        self.slot_of_node = np.full(flat_fluid.size, -1, dtype=np.int64)
        self.slot_of_node[flat_fluid] = np.arange(self.n_fluid)
        self.node_of_slot = np.nonzero(flat_fluid)[0]

        self.config = LaunchConfig(
            blocks=math.ceil(self.n_fluid / block_size),
            threads_per_block=block_size,
        )
        validate_launch(device, self.config)

        # Adjacency: flat index into the (Q * n_fluid) distribution array
        # of the value that becomes f_i(x) after streaming. Fluid-solid
        # links point at the node's own opposite slot (fused bounce-back).
        coords = self._slot_coords()
        adj = np.empty((lat.q, self.n_fluid), dtype=np.int64)
        for i in range(lat.q):
            src = tuple((coords[a] - lat.c[i, a]) % self.shape[a]
                        for a in range(lat.d))
            src_flat = self._linear(src)
            src_slot = self.slot_of_node[src_flat]
            from_solid = src_slot < 0
            regular = i * self.n_fluid + src_slot
            bounce = lat.opposite[i] * self.n_fluid + np.arange(self.n_fluid)
            adj[i] = np.where(from_solid, bounce, regular)
        self.adjacency = GlobalArray(
            "adjacency", lat.q * self.n_fluid, self.tracker,
            init=adj.ravel(), itemsize=4,
        )

        # Distributions on the fluid list only.
        rho = np.array(np.broadcast_to(np.asarray(rho0, dtype=np.float64),
                                       self.shape))
        u = np.zeros((lat.d, *self.shape)) if u0 is None else np.array(u0, float)
        rho[solid] = 1.0
        u[:, solid] = 0.0
        feq = equilibrium(lat, rho, u)
        init = np.concatenate(
            [feq[i].ravel(order="F")[self.node_of_slot] for i in range(lat.q)]
        )
        self.f1 = GlobalArray("f1", lat.q * self.n_fluid, self.tracker,
                              init=init)
        self.f2 = GlobalArray("f2", lat.q * self.n_fluid, self.tracker,
                              init=init)
        self.time = 0

    # ------------------------------------------------------------------
    def _slot_coords(self) -> tuple[np.ndarray, ...]:
        coords = []
        rem = self.node_of_slot
        for extent in self.shape:
            coords.append(rem % extent)
            rem = rem // extent
        return tuple(coords)

    def _linear(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        idx = np.zeros(np.shape(coords[0]), dtype=np.int64)
        stride = 1
        for axis, extent in enumerate(self.shape):
            idx = idx + (coords[axis] % extent) * stride
            stride *= extent
        return idx

    # ------------------------------------------------------------------
    def step(self) -> LaunchStats:
        lat = self.problem.lat
        bs = self.config.threads_per_block
        self.tracker.flush_cache()
        saved = self.tracker.report
        self.tracker.report = type(saved)()

        for b in range(self.config.blocks):
            slots = np.arange(b * bs, min((b + 1) * bs, self.n_fluid),
                              dtype=np.int64)
            self._run_block(slots)

        traffic = self.tracker.report
        self.tracker.report = saved + traffic
        self.f1, self.f2 = self.f2, self.f1
        self.time += 1
        return LaunchStats(
            config=self.config,
            traffic=traffic,
            n_nodes=self.n_fluid,
            kernel_name=f"ST-indirect/{lat.name}",
        )

    def _run_block(self, slots: np.ndarray) -> None:
        lat = self.problem.lat
        f = np.empty((lat.q, slots.size))
        for i in range(lat.q):
            # 4-byte adjacency fetch, then the (scattered) population pull.
            src = self.adjacency.read(i * self.n_fluid + slots).astype(np.int64)
            f[i] = self.f1.read(src)
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        omega = 1.0 / self.problem.tau
        out = feq + (1.0 - omega) * (f - feq)
        for i in range(lat.q):
            self.f2.write(i * self.n_fluid + slots, out[i])

    # ------------------------------------------------------------------
    def distribution(self) -> np.ndarray:
        """Dense host copy (rest values at solids), for comparisons."""
        lat = self.problem.lat
        flat = self.f1.read_untracked()
        dense = np.empty((lat.q, int(np.prod(self.shape))))
        dense[:] = lat.w[:, None]
        for i in range(lat.q):
            dense[i, self.node_of_slot] = flat[i * self.n_fluid:
                                               (i + 1) * self.n_fluid]
        return np.stack(
            [dense[i].reshape(self.shape, order="F") for i in range(lat.q)]
        )

    def macroscopic_fields(self) -> tuple[np.ndarray, np.ndarray]:
        return macroscopic(self.problem.lat, self.distribution())

    @property
    def global_state_bytes(self) -> int:
        """Fluid-only lattices + the 4-byte adjacency table."""
        return self.f1.nbytes + self.f2.nbytes + self.adjacency.nbytes
