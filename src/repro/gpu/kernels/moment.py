"""Virtual-GPU kernel for the MR propagation pattern (paper Algorithm 2).

The fluid domain is decomposed into *columns* parallel to the last axis
(y in 2D, z in 3D); each column maps to one thread block. Per sliding-
window iteration a block

1. reads the ``M`` moments of the current tile *plus a one-node halo in the
   non-axial (cross) directions* from global memory,
2. performs collision in moment space (Eq. 10; MR-R additionally
   reconstructs the higher-order coefficients, Eqs. 12-13),
3. maps the moments to the post-collision distribution (Eq. 11 / Eq. 14)
   and *streams into shared memory*: each component is written to the ring
   slot of the lattice site it is streaming to, with components leaving the
   column handled by the neighbouring columns' halos, and wall-bound
   components reflected in place (fused half-way bounce-back),
4. once a row of lattice sites has received all contributions, recomputes
   its moments (Eqs. 1-3) — applying the inlet/outlet reconstruction first
   where applicable — and writes them back to global memory at a
   circularly-shifted offset (Dethier et al. 2011) so that concurrent
   columns can never race on the moment array.

The shared-memory ring holds ``tile_cross x (w_t + 2) x Q`` doubles,
exactly the footprint stated in Section 3.2; the thread block size is
``(x_t + 2) * w_t`` in 2D and ``(x_t + 2)(y_t + 2) * w_t`` in 3D.

Blocks are executed in tile-lockstep (outer loop over window iterations,
inner loop over columns), mirroring the quasi-lockstep progress of equal-
work blocks on a real GPU — which is precisely the regime in which the
constant-shift scheme is race-free.

Periodic (and masked-geometry) domains additionally require the
wrap-around contributions of the first two rows; the kernel caches their
post-collision distributions in shared memory during the first window
iterations and replays them — plain deliveries and obstacle reflections
alike — in a short epilogue (the channel proxy app of the paper has walls
on the window axis and does not need this path).
"""

from __future__ import annotations

import math

import numpy as np

from ...core.collision import collide_moments_projective, collide_moments_recursive
from ...core.moments import f_from_moments, macroscopic
from ...obs.telemetry import NULL_TELEMETRY
from ..device import GPUDevice
from ..launch import (
    LaunchConfig,
    LaunchStats,
    occupancy,
    publish_launch,
    validate_launch,
)
from ..memory import GlobalArray, MemoryTracker
from .problem import KernelProblem

__all__ = ["MRKernel", "default_tile"]


def default_tile(shape: tuple[int, ...], target: int = 32) -> tuple[int, ...]:
    """Pick a cross-section tile: divisors of the cross extents close to
    ``target`` total nodes (16-wide in 2D — narrow enough that realistic
    domains yield >= 2 columns per SM; 8x8-ish in 3D, one node high in the
    window direction per the paper's tuning note)."""
    cross = shape[:-1]
    if len(cross) == 1:
        return (_largest_divisor(cross[0], target // 2),)
    tx = _largest_divisor(cross[0], int(round(math.sqrt(target * 2))))
    ty = _largest_divisor(cross[1], int(round(math.sqrt(target * 2))))
    return (tx, ty)


def _largest_divisor(n: int, at_most: int) -> int:
    for cand in range(min(at_most, n), 0, -1):
        if n % cand == 0:
            return cand
    return 1


class _ColumnGeometry:
    """Precomputed per-column index machinery (identical across window
    iterations; only the row coordinate varies)."""

    def __init__(self, kernel: "MRKernel", origin: tuple[int, ...]):
        prob = kernel.problem
        lat = prob.lat
        tile = kernel.tile_cross
        cross_shape = kernel.cross_shape
        ndim_c = len(tile)

        # Local cross coordinates of tile+halo nodes, halo = -1 .. tile.
        local_axes = [np.arange(-1, t + 1) for t in tile]
        mesh = np.meshgrid(*local_axes, indexing="ij")
        self.lc = [m.ravel() for m in mesh]                    # local coords
        n_th = self.lc[0].size

        # Global cross coordinates (may be out of range on non-periodic axes).
        gc_raw = [self.lc[a] + origin[a] for a in range(ndim_c)]
        self.in_domain = np.ones(n_th, dtype=bool)
        gc = []
        for a in range(ndim_c):
            if prob.axis_periodic(a):
                gc.append(gc_raw[a] % cross_shape[a])
            else:
                self.in_domain &= (gc_raw[a] >= 0) & (gc_raw[a] < cross_shape[a])
                gc.append(np.clip(gc_raw[a], 0, cross_shape[a] - 1))
        self.gc = gc
        # Flat cross index within a row (x fastest).
        flat = np.zeros(n_th, dtype=np.int64)
        stride = 1
        for a in range(ndim_c):
            flat += gc[a] * stride
            stride *= cross_shape[a]
        self.cross_flat = flat

        # Solidity of cross position (cross-axis walls, e.g. y walls in 3D).
        # Window-axis solidity is handled per row; masked geometries are
        # looked up per (cross, row) at run time instead.
        pad_rows = np.full(n_th, kernel.r_mid)   # a guaranteed-fluid row
        if prob.mode == "masked":
            self.cross_solid = ~self.in_domain
        else:
            self.cross_solid = prob.is_solid(self._full_coords(pad_rows))
            self.cross_solid |= ~self.in_domain  # out-of-domain: never scatter

        # In-tile mask and flat tile index of each tile+halo node.
        self.in_tile = np.ones(n_th, dtype=bool)
        tflat = np.zeros(n_th, dtype=np.int64)
        stride = 1
        for a in range(ndim_c):
            self.in_tile &= (self.lc[a] >= 0) & (self.lc[a] < tile[a])
            tflat += np.clip(self.lc[a], 0, tile[a] - 1) * stride
            stride *= tile[a]
        self.tile_flat_of_node = tflat
        self.n_tile = int(np.prod(tile))

        # Scatter tables per component: destination in-tile mask, flat tile
        # index, and destination cross solidity (or, for masked mode, the
        # destination global cross coordinates for run-time lookups).
        self.dest_in_tile = np.zeros((lat.q, n_th), dtype=bool)
        self.dest_tile_flat = np.zeros((lat.q, n_th), dtype=np.int64)
        self.dest_cross_solid = np.zeros((lat.q, n_th), dtype=bool)
        self.dest_leaves_domain = np.zeros((lat.q, n_th), dtype=bool)
        self.dest_gc: list[list[np.ndarray]] = []
        for i in range(lat.q):
            dl = [self.lc[a] + lat.c[i, a] for a in range(ndim_c)]
            ok = np.ones(n_th, dtype=bool)
            dflat = np.zeros(n_th, dtype=np.int64)
            stride = 1
            for a in range(ndim_c):
                ok &= (dl[a] >= 0) & (dl[a] < tile[a])
                dflat += np.clip(dl[a], 0, tile[a] - 1) * stride
                stride *= tile[a]
            self.dest_in_tile[i] = ok
            self.dest_tile_flat[i] = dflat
            dg_raw = [dl[a] + origin[a] for a in range(ndim_c)]
            leaves = np.zeros(n_th, dtype=bool)
            dg = []
            for a in range(ndim_c):
                if prob.axis_periodic(a):
                    dg.append(dg_raw[a] % cross_shape[a])
                else:
                    out = (dg_raw[a] < 0) | (dg_raw[a] >= cross_shape[a])
                    leaves |= out
                    dg.append(np.clip(dg_raw[a], 0, cross_shape[a] - 1))
            self.dest_gc.append(dg)
            if prob.mode != "masked":
                self.dest_cross_solid[i] = prob.is_solid(
                    kernel._coords_from_cross(dg, pad_rows)
                )
            self.dest_leaves_domain[i] = leaves

        # Tile nodes (no halo) in tile-flat order, for finalize.
        order = np.argsort(self.tile_flat_of_node[self.in_tile])
        sel = np.where(self.in_tile)[0][order]
        self.tile_sel = sel                       # tile+halo index -> sorted tile nodes
        self.tile_cross_flat = self.cross_flat[sel]
        self.tile_cross_solid = self.cross_solid[sel]
        self.tile_gc = [g[sel] for g in gc]

        # Inlet / outlet bookkeeping (channel mode): tile-node positions on
        # the global x extremes.
        if prob.mode == "channel":
            gx = self.tile_gc[0]
            self.inlet_nodes = np.where(gx == 0)[0]
            self.outlet_nodes = np.where(gx == cross_shape[0] - 1)[0]
            if self.outlet_nodes.size and tile[0] < 2:
                raise ValueError(
                    "outlet columns need a tile at least 2 nodes wide in x"
                )
        else:
            self.inlet_nodes = np.empty(0, dtype=np.int64)
            self.outlet_nodes = np.empty(0, dtype=np.int64)

    def _full_coords(self, rows: np.ndarray) -> tuple[np.ndarray, ...]:
        return (*self.gc, rows)


class _ColumnState:
    """Per-column mutable state for one timestep: the shared-memory ring
    (plus the wrap cache on periodic domains)."""

    def __init__(self, geo: _ColumnGeometry, w_t: int, q: int):
        self.ring = np.zeros((geo.n_tile, w_t + 2, q))
        self.wrap_cache: dict[int, np.ndarray] = {}


class MRKernel:
    """Column/tile moment-representation kernel (MR-P or MR-R)."""

    def __init__(self, problem: KernelProblem, device: GPUDevice,
                 scheme: str = "MR-P", tile_cross: tuple[int, ...] | None = None,
                 w_t: int = 1, tracker: MemoryTracker | None = None,
                 rho0: np.ndarray | float = 1.0, u0: np.ndarray | None = None,
                 telemetry=None):
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be 'MR-P' or 'MR-R', got {scheme!r}")
        self.problem = problem
        self.device = device
        self.scheme = scheme
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        lat = problem.lat
        if np.abs(lat.c).max() > 1:
            raise ValueError(
                f"{lat.name} is a multi-speed lattice: the MR column kernel "
                f"uses one-node cross halos and a (w_t+2)-row ring, which "
                f"only carry |c| <= 1 links; use the reference MR solvers "
                f"for multi-speed lattices"
            )
        self.shape = problem.shape
        self.cross_shape = problem.shape[:-1]
        self.r_extent = problem.shape[-1]
        self.r_mid = self.r_extent // 2
        self.n = problem.n_nodes
        self.nodes_per_row = int(np.prod(self.cross_shape))

        self.tile_cross = tuple(tile_cross) if tile_cross else default_tile(self.shape)
        if len(self.tile_cross) != lat.d - 1:
            raise ValueError(
                f"tile_cross must have {lat.d - 1} entries, got {self.tile_cross}"
            )
        for a, t in enumerate(self.tile_cross):
            if self.cross_shape[a] % t != 0:
                raise ValueError(
                    f"tile extent {t} does not divide domain extent "
                    f"{self.cross_shape[a]} on cross axis {a}"
                )
        self.w_t = int(w_t)
        if self.r_extent % self.w_t != 0:
            raise ValueError(
                f"window tile height {self.w_t} does not divide the window "
                f"extent {self.r_extent}"
            )
        self.n_tiles = self.r_extent // self.w_t

        # Launch geometry — thread count and shared size per Section 3.2.
        threads = int(np.prod([t + 2 for t in self.tile_cross])) * self.w_t
        shared = int(np.prod(self.tile_cross)) * (self.w_t + 2) * lat.q * 8
        if problem.mode in ("periodic", "masked"):
            # Wrap cache: post-collision f of the first two rows (tile+halo).
            shared += 2 * int(np.prod([t + 2 for t in self.tile_cross])) * lat.q * 8
        n_cols = 1
        for a, t in enumerate(self.tile_cross):
            n_cols *= self.cross_shape[a] // t
        self.n_columns = n_cols
        self.config = LaunchConfig(n_cols, threads, shared)
        validate_launch(device, self.config)
        self.occupancy = occupancy(device, self.config)

        # Global moment arrays with circular-shift margin.
        self.shift_rows = 2 * self.w_t
        self.shift_elems = self.shift_rows * self.nodes_per_row
        self.array_len = self.n + self.shift_elems
        self.read_base = 0

        from ...core.equilibrium import equilibrium_moments

        rho = np.array(np.broadcast_to(np.asarray(rho0, dtype=np.float64),
                                       self.shape))
        u = np.zeros((lat.d, *self.shape)) if u0 is None else np.array(u0, float)
        mesh = np.meshgrid(*[np.arange(s) for s in self.shape], indexing="ij")
        solid0 = problem.is_solid(tuple(mesh))
        rho[solid0] = 1.0
        u[:, solid0] = 0.0
        m_eq = equilibrium_moments(lat, rho, u)
        self.moments = [
            GlobalArray(f"moment{m}", self.array_len, self.tracker,
                        init=m_eq[m].ravel(order="F"))
            for m in range(lat.n_moments)
        ]
        # Complex geometries: uint8 node-type grid fetched per tile+halo
        # read (traffic counted; solidity logic uses the host-side mask).
        self.node_types: GlobalArray | None = None
        if problem.mode == "masked":
            self.node_types = GlobalArray(
                "node_type", self.n, self.tracker,
                init=problem.solid_mask.ravel(order="F").astype(np.float64),
                itemsize=1,
            )

        # Column geometries.
        origins = [()]
        for a, t in enumerate(self.tile_cross):
            origins = [o + (s,) for o in origins
                       for s in range(0, self.cross_shape[a], t)]
        self._geos = [_ColumnGeometry(self, o) for o in origins]
        self.time = 0

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def _coords_from_cross(self, gc: list[np.ndarray], rows: np.ndarray
                           ) -> tuple[np.ndarray, ...]:
        return (*gc, rows)

    def _node_index(self, cross_flat: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return rows.astype(np.int64) * self.nodes_per_row + cross_flat

    def _row_solid(self, rows: np.ndarray) -> np.ndarray:
        """Solidity contributed by the window axis (walls in channel mode)."""
        if self.problem.mode != "channel" or self.problem.lat.d < 2:
            return np.zeros(np.shape(rows), dtype=bool)
        rows = np.asarray(rows)
        return (rows <= 0) | (rows >= self.r_extent - 1)

    def _solid_src(self, geo: "_ColumnGeometry", rows_rep: np.ndarray
                   ) -> np.ndarray:
        """Solidity of the tile+halo source nodes at the given rows."""
        n_th = geo.lc[0].size
        rep = rows_rep.size // n_th
        if self.problem.mode == "masked":
            gc = [np.tile(g, rep) for g in geo.gc]
            solid = self.problem.is_solid((*gc, rows_rep % self.r_extent))
            return solid | np.tile(~geo.in_domain, rep)
        return np.tile(geo.cross_solid, rep) | self._row_solid(rows_rep)

    # ------------------------------------------------------------------
    # Timestep driver
    # ------------------------------------------------------------------
    def step(self) -> LaunchStats:
        lat = self.problem.lat
        self.tracker.flush_cache()   # no inter-step reuse at paper scales
        saved = self.tracker.report
        self.tracker.report = type(saved)()

        write_base = (self.read_base - self.shift_elems) % self.array_len
        states = [_ColumnState(g, self.w_t, lat.q) for g in self._geos]

        with self.telemetry.phase("gpu.step"):
            for tau in range(self.n_tiles):
                for geo, st in zip(self._geos, states):
                    self._column_iteration(geo, st, tau, write_base)
            for geo, st in zip(self._geos, states):
                self._column_epilogue(geo, st, write_base)

        traffic = self.tracker.report
        self.tracker.report = saved + traffic
        self.read_base = write_base
        self.time += 1
        stats = LaunchStats(
            config=self.config,
            traffic=traffic,
            n_nodes=self.n,
            kernel_name=f"{self.scheme}/{lat.name}",
        )
        publish_launch(self.telemetry, stats)
        return stats

    # ------------------------------------------------------------------
    # Column phases
    # ------------------------------------------------------------------
    def _collide_and_map(self, m_nodes: np.ndarray) -> np.ndarray:
        """Moment-space collision + reconstruction for a node set (Q, n)."""
        if self.scheme == "MR-P":
            m_star = collide_moments_projective(self.problem.lat, m_nodes,
                                                self.problem.tau)
            return f_from_moments(self.problem.lat, m_star)
        return collide_moments_recursive(self.problem.lat, m_nodes,
                                         self.problem.tau)

    def _column_iteration(self, geo: _ColumnGeometry, st: _ColumnState,
                          tau: int, write_base: int) -> None:
        lat = self.problem.lat
        w = self.w_t
        ring_h = w + 2
        periodic_w = self.problem.mode in ("periodic", "masked")

        # 1. Zero the ring slots of rows entering the window (free: shared
        # memory initialization).
        if tau == 0:
            st.ring[:] = 0.0
        else:
            for r in range(tau * w + 1, (tau + 1) * w + 1):
                st.ring[:, r % ring_h, :] = 0.0

        # 2. Read moments of tile+halo nodes for the source rows, collide,
        # map to distributions, and scatter into the ring.
        src_rows = np.arange(tau * w, (tau + 1) * w)
        n_th = geo.lc[0].size
        rows_rep = np.repeat(src_rows, n_th)
        cross_rep = np.tile(geo.cross_flat, w)
        in_dom = np.tile(geo.in_domain, w)
        node_idx = self._node_index(cross_rep[in_dom], rows_rep[in_dom])

        m_nodes = np.empty((lat.n_moments, node_idx.size))
        for m in range(lat.n_moments):
            m_nodes[m] = self.moments[m].read(node_idx, base=self.read_base)
        if self.node_types is not None:
            # Counted geometry fetch (uint8 per tile+halo node).
            self.node_types.read(node_idx % self.n)

        solid_src = self._solid_src(geo, rows_rep)
        f_star = np.zeros((lat.q, w * n_th))
        f_star[:, in_dom] = self._collide_and_map(m_nodes)

        if periodic_w and tau * w <= 1:
            for k, r in enumerate(src_rows):
                if r <= 1:
                    st.wrap_cache[int(r)] = f_star[:, k * n_th:(k + 1) * n_th].copy()

        self._scatter(geo, st, f_star, rows_rep, solid_src, tau)

        # 3. Finalize completed rows and write their moments back.
        lo = max(tau * w - 1, 1 if periodic_w else 0)
        hi = min((tau + 1) * w - 2, self.r_extent - 1)
        for r in range(lo, hi + 1):
            self._finalize_row(geo, st, r, r, write_base)

    def _scatter(self, geo: _ColumnGeometry, st: _ColumnState,
                 f_star: np.ndarray, rows_rep: np.ndarray,
                 solid_src: np.ndarray, tau: int,
                 plain_cw: tuple[int, ...] | None = None,
                 row_offset: int = 0,
                 reflect_rows: tuple[int, ...] | None = None) -> None:
        """Stream post-collision components into the shared-memory ring.

        ``rows_rep`` are the source rows per node (tile+halo repeated);
        ``row_offset`` shifts destination rows into virtual coordinates
        during the periodic epilogue. ``plain_cw`` restricts the regular
        deliveries to components with those window velocities, and
        ``reflect_rows`` restricts bounce-back reflections to sources on
        those (virtual) rows — both used by the wrap replay, which must
        re-deliver exactly what the first iteration deferred.
        """
        lat = self.problem.lat
        ring_h = self.w_t + 2
        periodic_w = self.problem.mode in ("periodic", "masked")
        n_th = geo.lc[0].size
        rep = rows_rep.size // n_th
        fluid_src = ~solid_src
        in_tile = np.tile(geo.in_tile, rep)
        tile_flat = np.tile(geo.tile_flat_of_node, rep)
        defer_wrap = periodic_w and tau == 0 and row_offset == 0

        for i in range(lat.q):
            cw = lat.c[i, -1]
            dest_rows = rows_rep + cw + row_offset
            src_rows_v = rows_rep + row_offset

            # Regular delivery: destination inside this column's tile.
            deliver = fluid_src & np.tile(geo.dest_in_tile[i], rep)
            if plain_cw is not None and cw not in plain_cw:
                deliver = np.zeros_like(deliver)
            if self.problem.mode == "masked":
                dgc = [np.tile(g, rep) for g in geo.dest_gc[i]]
                dest_solid = self.problem.is_solid(
                    (*dgc, dest_rows % self.r_extent)
                )
            else:
                dest_solid = np.tile(geo.dest_cross_solid[i], rep)
                if not periodic_w:
                    dest_solid = dest_solid | self._row_solid(
                        dest_rows - row_offset
                    )
            dest_gone = np.tile(geo.dest_leaves_domain[i], rep)

            if defer_wrap:
                # Deferred wrap writes (ring rows -1 and 0) are replayed
                # from the wrap cache in the epilogue.
                deliver = deliver & (dest_rows >= 1)

            plain = deliver & ~dest_solid & ~dest_gone
            if plain.any():
                slot = dest_rows[plain] % ring_h
                dst = np.tile(geo.dest_tile_flat[i], rep)[plain]
                st.ring[dst, slot, i] = f_star[i, plain]

            # Fused half-way bounce-back: wall-bound components reflect into
            # the source node's opposite slot (landing row = source row).
            reflect = fluid_src & dest_solid & ~dest_gone & in_tile
            if defer_wrap:
                reflect = reflect & (src_rows_v >= 1)
            if reflect_rows is not None:
                reflect = reflect & np.isin(src_rows_v, reflect_rows)
            if reflect.any():
                ibar = lat.opposite[i]
                slot = src_rows_v[reflect] % ring_h
                st.ring[tile_flat[reflect], slot, ibar] = f_star[i, reflect]

    def _column_epilogue(self, geo: _ColumnGeometry, st: _ColumnState,
                         write_base: int) -> None:
        """Finish the sweep: tail rows, plus wrap-around replay when the
        window axis is periodic."""
        lat = self.problem.lat
        w = self.w_t
        R = self.r_extent
        n_th = geo.lc[0].size

        if self.problem.mode in ("periodic", "masked"):
            # Replay exactly what the first iteration deferred:
            #   virtual src R   (= row 0): plain deliveries with c_w in
            #     {-1, 0} (ring rows R-1 and R) plus *all* of row 0's
            #     bounce-back reflections (they land on ring row R);
            #   virtual src R+1 (= row 1): plain deliveries with c_w = -1
            #     (ring row R); row 1's reflections were never deferred.
            for r, allowed in ((0, (-1, 0)), (1, (-1,))):
                f_star = st.wrap_cache[r]
                rows_rep = np.full(n_th, r)
                solid_src = self._solid_src(geo, rows_rep)
                self._scatter(
                    geo, st, f_star, rows_rep, solid_src, tau=-1,
                    plain_cw=allowed,
                    row_offset=R,
                    reflect_rows=(R,) if r == 0 else (),
                )
            # Finalize the deferred rows: R-1, then row 0 via its virtual
            # ring position R.
            self._finalize_row(geo, st, R - 1, R - 1, write_base)
            self._finalize_row(geo, st, R, 0, write_base)
        else:
            # Wall mode: only the last (solid) row remains.
            self._finalize_row(geo, st, R - 1, R - 1, write_base)

    def _finalize_row(self, geo: _ColumnGeometry, st: _ColumnState,
                      ring_row: int, real_row: int, write_base: int) -> None:
        """Recompute and write back the moments of one completed row."""
        lat = self.problem.lat
        ring_h = self.w_t + 2
        f_nodes = st.ring[:, ring_row % ring_h, :].T.copy()   # (Q, n_tile)

        if self.problem.mode == "masked":
            solid = self.problem.is_solid(
                (*geo.tile_gc, np.full(geo.n_tile, real_row))
            )
        else:
            solid = geo.tile_cross_solid | self._row_solid(
                np.full(geo.n_tile, real_row)
            )
        fluid = ~solid

        if self.problem.mode == "channel" and fluid.any():
            self._apply_channel_io(geo, f_nodes, real_row, fluid)

        m_vals = np.empty((lat.n_moments, geo.n_tile))
        if fluid.any():
            m_vals[:, fluid] = lat.moment_matrix @ f_nodes[:, fluid]
        m_vals[:, solid] = 0.0
        m_vals[0, solid] = 1.0

        rows = np.full(geo.n_tile, real_row, dtype=np.int64)
        node_idx = self._node_index(geo.tile_cross_flat, rows)
        for m in range(lat.n_moments):
            self.moments[m].write(node_idx, m_vals[m], base=write_base)

    def _apply_channel_io(self, geo: _ColumnGeometry, f_nodes: np.ndarray,
                          row: int, fluid: np.ndarray) -> None:
        """Inlet/outlet NEBB reconstruction on ring data at finalize time."""
        if self._row_solid(np.array([row]))[0]:
            return
        inlet = geo.inlet_nodes[fluid[geo.inlet_nodes]] if geo.inlet_nodes.size else geo.inlet_nodes
        if inlet.size:
            cross_idx = tuple(
                [geo.tile_gc[a][inlet] for a in range(1, len(geo.tile_gc))]
                + [np.full(inlet.size, row)]
            )
            f_in = f_nodes[:, inlet]
            self.problem.apply_inlet_nebb(f_in, cross_idx)
            f_nodes[:, inlet] = f_in
        outlet = geo.outlet_nodes[fluid[geo.outlet_nodes]] if geo.outlet_nodes.size else geo.outlet_nodes
        if outlet.size:
            f_out = f_nodes[:, outlet]
            u_t = None
            if self.problem.outlet_tangential == "extrapolate":
                # The first interior plane (x = Nx-2) lives in the same
                # column tile; read its post-stream state from the ring.
                _, u_t = macroscopic(self.problem.lat, f_nodes[:, outlet - 1])
            self.problem.apply_outlet_nebb(f_out, u_t)
            f_nodes[:, outlet] = f_out

    # ------------------------------------------------------------------
    # Host-side accessors
    # ------------------------------------------------------------------
    def moment_field(self) -> np.ndarray:
        """Host copy of the current moments as an ``(M, *shape)`` field."""
        lat = self.problem.lat
        idx = (np.arange(self.n) + self.read_base) % self.array_len
        out = np.empty((lat.n_moments, *self.shape))
        for m in range(lat.n_moments):
            out[m] = self.moments[m].data[idx].reshape(self.shape, order="F")
        return out

    def macroscopic_fields(self) -> tuple[np.ndarray, np.ndarray]:
        mf = self.moment_field()
        lat = self.problem.lat
        return mf[0], mf[1:1 + lat.d] / mf[0]

    @property
    def global_state_bytes(self) -> int:
        """Device-resident moment state (single shifted array)."""
        return sum(a.nbytes for a in self.moments)
