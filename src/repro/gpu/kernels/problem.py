"""Kernel-side problem description (the proxy-application setup).

The paper's CUDA/HIP proxy apps hardcode the rectangular channel — wall
planes, inlet profile and outlet density are compile-time knowledge of the
kernel, not data read from global memory. :class:`KernelProblem` plays that
role for the virtual-GPU kernels: it answers solidity queries analytically
(no memory traffic) and provides the inlet/outlet parameters plus the
initial condition.

Three modes are supported:

* ``"periodic"`` — fully periodic box, no boundaries (used for
  equivalence tests and Taylor-Green runs).
* ``"channel"`` — bounce-back walls on every non-``x`` axis extreme,
  velocity inlet at ``x = 0`` and pressure outlet at ``x = Nx-1``
  (non-equilibrium bounce-back reconstruction), exactly the geometry of
  :func:`repro.geometry.channel_2d` / ``channel_3d`` — the paper's
  evaluation workload.
* ``"masked"`` — arbitrary solid geometry on a periodic box (complex
  geometries after Herschlag et al. 2021, the paper's reference [4]);
  kernels additionally fetch a uint8 node-type grid so the geometry's
  bandwidth cost is measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...lattice import LatticeDescriptor

__all__ = ["KernelProblem"]


@dataclass
class KernelProblem:
    """Everything a virtual-GPU LBM kernel knows at 'compile time'."""

    lat: LatticeDescriptor
    shape: tuple[int, ...]
    tau: float
    mode: str = "periodic"          # "periodic" | "channel" | "masked"
    u_inlet: np.ndarray | None = None            # (D, *cross_shape) at x=0
    rho_out: float = 1.0
    outlet_tangential: str = "zero"              # "zero" | "extrapolate"
    #: arbitrary solid geometry for "masked" mode (periodic wrap, half-way
    #: bounce-back on every fluid-solid link) — the complex-geometry
    #: workloads of Herschlag et al. 2021 (paper reference [4]). Kernels
    #: additionally fetch a uint8 node-type grid from global memory, so
    #: the geometry's bandwidth cost is part of the traffic measurement.
    solid_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("periodic", "channel", "masked"):
            raise ValueError(f"unknown problem mode {self.mode!r}")
        if self.mode == "masked":
            if self.solid_mask is None:
                raise ValueError("masked mode requires a solid_mask array")
            self.solid_mask = np.ascontiguousarray(self.solid_mask, dtype=bool)
            if self.solid_mask.shape != tuple(self.shape):
                raise ValueError(
                    f"solid_mask must have shape {self.shape}, "
                    f"got {self.solid_mask.shape}"
                )
        elif self.solid_mask is not None:
            raise ValueError("solid_mask is only meaningful in masked mode")
        if len(self.shape) != self.lat.d:
            raise ValueError(
                f"shape {self.shape} does not match lattice dimension {self.lat.d}"
            )
        if self.mode == "channel":
            cross = self.shape[1:]
            if self.u_inlet is None:
                self.u_inlet = np.zeros((self.lat.d, *cross))
            self.u_inlet = np.asarray(self.u_inlet, dtype=np.float64)
            if self.u_inlet.shape != (self.lat.d, *cross):
                raise ValueError(
                    f"u_inlet must have shape {(self.lat.d, *cross)}, "
                    f"got {self.u_inlet.shape}"
                )
            if self.outlet_tangential not in ("zero", "extrapolate"):
                raise ValueError(
                    f"outlet_tangential must be 'zero' or 'extrapolate', "
                    f"got {self.outlet_tangential!r}"
                )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.shape))

    def axis_periodic(self, axis: int) -> bool:
        """Whether streaming wraps on this axis."""
        if self.mode in ("periodic", "masked"):
            return True
        # Channel: no axis wraps; x has inlet/outlet, others have walls.
        return False

    def is_solid(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        """Vectorized solidity predicate (host-side; no memory traffic).

        Coordinates may lie outside the domain (halo queries); out-of-range
        positions on wall axes count as solid, and on the x axis as
        non-solid (they are inlet/outlet ghost positions, handled by the
        reconstruction instead of bounce-back). Masked mode wraps the
        coordinates and looks up the geometry grid; the *counted* fetch of
        that grid happens inside the kernels.
        """
        first = np.asarray(coords[0])
        if self.mode == "periodic":
            return np.zeros(first.shape, dtype=bool)
        if self.mode == "masked":
            wrapped = tuple(np.asarray(c) % self.shape[a]
                            for a, c in enumerate(coords))
            return self.solid_mask[wrapped]
        solid = np.zeros(first.shape, dtype=bool)
        for axis in range(1, self.lat.d):
            c = np.asarray(coords[axis])
            solid |= (c <= 0) | (c >= self.shape[axis] - 1)
        return solid

    def in_domain(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        """Vectorized validity predicate with periodic wrap applied first."""
        first = np.asarray(coords[0])
        ok = np.ones(first.shape, dtype=bool)
        for axis in range(self.lat.d):
            if self.axis_periodic(axis):
                continue
            c = np.asarray(coords[axis])
            ok &= (c >= 0) & (c < self.shape[axis])
        return ok

    def node_type_grid(self) -> np.ndarray:
        """Node classification grid matching :mod:`repro.geometry` codes —
        used to build the equivalent reference-solver domain."""
        from ...geometry import INLET, OUTLET, SOLID

        nt = np.zeros(self.shape, dtype=np.int8)
        if self.mode == "masked":
            nt[self.solid_mask] = SOLID
        elif self.mode == "channel":
            coords = np.meshgrid(*[np.arange(s) for s in self.shape], indexing="ij")
            nt[self.is_solid(tuple(coords))] = SOLID
            inlet = nt[0] != SOLID
            outlet = nt[-1] != SOLID
            nt[0][inlet] = INLET
            nt[-1][outlet] = OUTLET
        return nt

    # -- NEBB helpers shared by the ST and MR kernels -------------------
    def inlet_components(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(unknown, tangential, known) component index sets at the inlet
        (inward normal +x)."""
        cx = self.lat.c[:, 0]
        return np.where(cx > 0)[0], np.where(cx == 0)[0], np.where(cx < 0)[0]

    def outlet_components(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(unknown, tangential, known) at the outlet (inward normal -x)."""
        cx = self.lat.c[:, 0]
        return np.where(cx < 0)[0], np.where(cx == 0)[0], np.where(cx > 0)[0]

    def apply_inlet_nebb(self, f_nodes: np.ndarray, cross_idx: tuple[np.ndarray, ...]) -> None:
        """NEBB velocity reconstruction at inlet nodes.

        ``f_nodes`` is ``(Q, n)`` post-stream populations of inlet-plane
        nodes whose cross coordinates are ``cross_idx``; modified in place.
        """
        from ...core.equilibrium import equilibrium

        lat = self.lat
        unknown, tangential, known = self.inlet_components()
        u_b = np.stack([self.u_inlet[a][cross_idx] for a in range(lat.d)])
        s0 = f_nodes[tangential].sum(axis=0)
        sm = f_nodes[known].sum(axis=0)
        rho = (s0 + 2.0 * sm) / (1.0 - u_b[0])
        feq = equilibrium(lat, rho, u_b)
        for i in unknown:
            ibar = lat.opposite[i]
            f_nodes[i] = feq[i] + (f_nodes[ibar] - feq[ibar])

    def apply_outlet_nebb(self, f_nodes: np.ndarray,
                          u_tangential: np.ndarray | None = None) -> None:
        """NEBB pressure reconstruction at outlet nodes (in place).

        ``u_tangential`` optionally supplies the tangential velocity
        (``(D, n)``; the normal component is ignored) for the
        'extrapolate' mode; ``None`` means zero tangential velocity.
        """
        from ...core.equilibrium import equilibrium

        lat = self.lat
        unknown, tangential, known = self.outlet_components()
        s0 = f_nodes[tangential].sum(axis=0)
        sm = f_nodes[known].sum(axis=0)
        u_n = 1.0 - (s0 + 2.0 * sm) / self.rho_out   # inward normal is -x
        u_b = np.zeros((lat.d, f_nodes.shape[1]))
        u_b[0] = -u_n
        if u_tangential is not None:
            for a in range(1, lat.d):
                u_b[a] = u_tangential[a]
        rho = np.full(f_nodes.shape[1], self.rho_out)
        feq = equilibrium(lat, rho, u_b)
        for i in unknown:
            ibar = lat.opposite[i]
            f_nodes[i] = feq[i] + (f_nodes[ibar] - feq[ibar])
