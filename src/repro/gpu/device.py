"""GPU device models (paper Table 1).

The evaluation targets two devices, the NVIDIA (Volta) V100 and the AMD
(CDNA) MI100; the numbers below are the paper's Table 1 values plus the
public FP64 peak rates used by the performance model. The virtual-GPU
executor uses the shared-memory capacity and thread limits to validate
kernel launches and compute occupancy; the performance model uses the
bandwidth and FLOP peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUDevice", "V100", "MI100", "get_device", "available_devices"]


@dataclass(frozen=True)
class GPUDevice:
    """Static description of a GPU accelerator."""

    name: str
    vendor: str
    frequency_mhz: float
    cores: int                      # CUDA / HIP (stream) cores
    sm_count: int                   # SMs (NVIDIA) or CUs (AMD)
    shared_mem_per_sm_kb: float     # shared memory / LDS capacity per SM/CU
    max_shared_mem_per_block_kb: float
    l1_kb: float
    l2_kb: float
    memory_gb: float
    bandwidth_gbs: float            # peak HBM2 bandwidth
    fp64_tflops: float              # peak double-precision throughput
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    compiler: str

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9

    @property
    def fp64_flops_per_s(self) -> float:
        return self.fp64_tflops * 1e12

    @property
    def shared_mem_per_sm_bytes(self) -> int:
        return int(self.shared_mem_per_sm_kb * 1024)

    @property
    def max_shared_mem_per_block_bytes(self) -> int:
        return int(self.max_shared_mem_per_block_kb * 1024)

    def memory_bytes(self) -> int:
        return int(self.memory_gb * 1024 ** 3)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.vendor}, {self.sm_count} SM/CU, {self.bandwidth_gbs} GB/s)"


#: NVIDIA Volta V100, SXM2 16 GB (paper Table 1 + public FP64 peak).
V100 = GPUDevice(
    name="V100",
    vendor="NVIDIA",
    frequency_mhz=1455.0,
    cores=5120,
    sm_count=80,
    shared_mem_per_sm_kb=96.0,      # up to 96 KB per SM (configurable carveout)
    max_shared_mem_per_block_kb=96.0,
    l1_kb=96.0,
    l2_kb=6144.0,
    memory_gb=16.0,
    bandwidth_gbs=900.0,
    fp64_tflops=7.8,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    compiler="nvcc v11.0.221",
)

#: AMD CDNA MI100, 32 GB (paper Table 1 + public FP64 peak).
MI100 = GPUDevice(
    name="MI100",
    vendor="AMD",
    frequency_mhz=1502.0,
    cores=7680,
    sm_count=120,
    shared_mem_per_sm_kb=64.0,      # LDS per CU
    max_shared_mem_per_block_kb=64.0,
    l1_kb=16.0,
    l2_kb=8192.0,
    memory_gb=32.0,
    bandwidth_gbs=1228.86,
    fp64_tflops=11.5,
    warp_size=64,
    max_threads_per_block=1024,
    max_threads_per_sm=2560,
    compiler="hipcc 4.2",
)

_DEVICES = {"V100": V100, "MI100": MI100}


def get_device(name: str) -> GPUDevice:
    """Look up a device model by name (case-insensitive)."""
    try:
        return _DEVICES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None


def available_devices() -> list[str]:
    return sorted(_DEVICES)
