"""Shared-memory bank-conflict analysis.

GPU shared memory is divided into banks (32 four-byte banks on Volta; 32
on CDNA); when multiple lanes of a warp address different words in the
same bank, the access serializes. The MR column kernel's shared-memory
streaming array (``tile x (w_t+2) x Q`` doubles, Section 3.2) is accessed
with per-lane offsets that depend on the layout, so this module provides
the standard conflict estimator used to check layouts — the kind of
analysis done with Nsight's shared-memory metrics on the real hardware.

Doubles occupy two 4-byte banks; as on real NVIDIA hardware in 64-bit
mode, a warp-wide double access is conflict-free iff the 8-byte words map
to distinct bank *pairs*.
"""

from __future__ import annotations

import numpy as np

from .device import GPUDevice

__all__ = [
    "conflict_degree",
    "warp_conflict_profile",
    "mr_ring_conflicts",
]

N_BANKS = 32
WORD_BYTES = 4


def conflict_degree(byte_addresses: np.ndarray, n_banks: int = N_BANKS,
                    element_bytes: int = 8) -> int:
    """Serialization factor of one warp-wide shared-memory access.

    ``byte_addresses`` holds one address per active lane, in lane order.
    For 8-byte elements the access executes in two half-warp phases (the
    hardware's 64-bit mode), so consecutive-double accesses by a full warp
    are conflict-free; within each phase, the degree is the maximum number
    of distinct elements colliding on one bank pair. Broadcasts (identical
    addresses) do not conflict. Returns 1 for a conflict-free access.
    """
    addr = np.asarray(byte_addresses, dtype=np.int64).ravel()
    if addr.size == 0:
        return 1
    banks_per_elem = max(element_bytes // WORD_BYTES, 1)
    n_phases = banks_per_elem
    phase_len = max(1, -(-addr.size // n_phases))
    worst = 1
    for p in range(0, addr.size, phase_len):
        chunk = addr[p:p + phase_len]
        words = np.unique(chunk // element_bytes)
        group = (words * banks_per_elem) % n_banks // banks_per_elem
        _, counts = np.unique(group, return_counts=True)
        worst = max(worst, int(counts.max()))
    return worst


def warp_conflict_profile(lane_addresses: np.ndarray, warp_size: int = 32,
                          n_banks: int = N_BANKS,
                          element_bytes: int = 8) -> list[int]:
    """Conflict degree per warp for a block-wide access.

    ``lane_addresses`` is ordered by thread id; it is split into warps of
    ``warp_size`` lanes and each warp analysed independently.
    """
    addr = np.asarray(lane_addresses, dtype=np.int64).ravel()
    out = []
    for start in range(0, addr.size, warp_size):
        out.append(conflict_degree(addr[start:start + warp_size],
                                   n_banks, element_bytes))
    return out


def mr_ring_conflicts(tile_cross: tuple[int, ...], w_t: int, q: int,
                      component: int, device: GPUDevice) -> list[int]:
    """Conflict profile of the MR kernel's component-scatter writes.

    Models the layout used by :class:`repro.gpu.kernels.MRKernel`: the
    ring is ``[tile_flat][slot][component]`` with the component index
    fastest. During the streaming scatter, consecutive threads (adjacent
    ``x``) write the *same* component of adjacent tile nodes — a stride of
    ``(w_t + 2) * q`` doubles. The profile shows how benign (or not) that
    stride is for a given lattice.
    """
    n_tile = int(np.prod(tile_cross))
    stride = (w_t + 2) * q                     # doubles between x-neighbours
    lanes = np.arange(min(n_tile, device.warp_size * 4))
    addresses = (lanes * stride + component) * 8
    return warp_conflict_profile(addresses, device.warp_size)
