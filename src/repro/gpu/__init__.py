"""Virtual-GPU substrate: devices, memory tracking, kernels, occupancy.

This package stands in for the CUDA/HIP + V100/MI100 testbed of the paper
(see DESIGN.md, "Hardware substitution"): kernels are executed
block-by-block on the host with explicit shared-memory arrays, and all
global-memory accesses are counted at 32-byte-sector granularity, giving
profiler-style traffic measurements from real executions of Algorithms 1
and 2.
"""

from .banks import conflict_degree, mr_ring_conflicts, warp_conflict_profile
from .device import MI100, V100, GPUDevice, available_devices, get_device
from .kernels import (
    AAKernel,
    KernelProblem,
    MRKernel,
    STIndirectKernel,
    STKernel,
    STPushKernel,
    default_tile,
)
from .launch import LaunchConfig, LaunchStats, Occupancy, occupancy, validate_launch
from .memory import GlobalArray, MemoryTracker, TrafficReport

__all__ = [
    "GPUDevice",
    "V100",
    "MI100",
    "get_device",
    "available_devices",
    "MemoryTracker",
    "GlobalArray",
    "TrafficReport",
    "LaunchConfig",
    "LaunchStats",
    "Occupancy",
    "occupancy",
    "validate_launch",
    "KernelProblem",
    "STKernel",
    "STPushKernel",
    "STIndirectKernel",
    "AAKernel",
    "MRKernel",
    "default_tile",
    "conflict_degree",
    "warp_conflict_profile",
    "mr_ring_conflicts",
]
