"""Kernel-launch bookkeeping: configuration validation and occupancy.

The paper's MR implementation notes that "optimal performance is achieved
with two or more thread blocks per SM, so the targeted tile size and shared
memory usage per column must be adjusted to account for this" (Section
3.2). :func:`occupancy` reproduces the standard shared-memory/thread-count
occupancy calculation that drives this tuning rule, and
:class:`LaunchStats` is what every virtual-GPU launch returns to the
performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import GPUDevice
from .memory import TrafficReport

__all__ = ["LaunchConfig", "Occupancy", "LaunchStats", "occupancy",
           "validate_launch", "publish_launch"]


@dataclass(frozen=True)
class LaunchConfig:
    """Static launch geometry of a kernel."""

    blocks: int
    threads_per_block: int
    shared_bytes_per_block: int = 0

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0:
            raise ValueError("blocks and threads_per_block must be positive")
        if self.shared_bytes_per_block < 0:
            raise ValueError("shared memory size cannot be negative")


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of a launch on a specific device."""

    blocks_per_sm: int
    limited_by: str            # "shared_memory" | "threads" | "block_cap"
    active_blocks: int         # concurrently resident blocks device-wide
    waves: int                 # number of full device waves
    tail_utilization: float    # blocks / (waves * capacity), in (0, 1]

    @property
    def meets_two_block_rule(self) -> bool:
        """The paper's >= 2 blocks/SM tuning rule."""
        return self.blocks_per_sm >= 2


# Hardware cap on resident blocks per SM (32 on Volta, 40+ on CDNA; the
# LBM kernels are nowhere near it, so a common conservative cap is fine).
_MAX_BLOCKS_PER_SM = 32


def occupancy(device: GPUDevice, config: LaunchConfig) -> Occupancy:
    """Occupancy from the shared-memory and thread-count limits."""
    limits = {
        "threads": device.max_threads_per_sm // config.threads_per_block,
        "block_cap": _MAX_BLOCKS_PER_SM,
    }
    if config.shared_bytes_per_block > 0:
        limits["shared_memory"] = (
            device.shared_mem_per_sm_bytes // config.shared_bytes_per_block
        )
    blocks_per_sm = min(limits.values())
    limited_by = min(limits, key=lambda k: limits[k])
    if blocks_per_sm == 0:
        raise ValueError(
            f"kernel cannot run on {device.name}: per-block resources exceed "
            f"the SM limits ({config.threads_per_block} threads, "
            f"{config.shared_bytes_per_block} B shared)"
        )
    capacity = blocks_per_sm * device.sm_count
    active = min(config.blocks, capacity)
    waves = max(1, math.ceil(config.blocks / capacity))
    tail = config.blocks / (waves * capacity)
    return Occupancy(blocks_per_sm, limited_by, active, waves, tail)


def validate_launch(device: GPUDevice, config: LaunchConfig) -> None:
    """Raise if the launch violates hard per-block device limits."""
    if config.threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"{config.threads_per_block} threads/block exceeds "
            f"{device.name}'s limit of {device.max_threads_per_block}"
        )
    if config.shared_bytes_per_block > device.max_shared_mem_per_block_bytes:
        raise ValueError(
            f"{config.shared_bytes_per_block} B of shared memory per block "
            f"exceeds {device.name}'s limit of "
            f"{device.max_shared_mem_per_block_bytes} B"
        )


@dataclass
class LaunchStats:
    """Everything a virtual-GPU launch reports to the performance model."""

    config: LaunchConfig
    traffic: TrafficReport
    n_nodes: int                   # fluid lattice nodes updated
    flops: float = 0.0             # estimated double-precision operations
    kernel_name: str = ""

    def bytes_per_node(self) -> float:
        return self.traffic.total_bytes / self.n_nodes

    def flops_per_node(self) -> float:
        return self.flops / self.n_nodes


def publish_launch(telemetry, stats: LaunchStats) -> None:
    """Record one kernel launch into a telemetry registry.

    Accumulates launch/node/FLOP counters and the full traffic report
    (logical bytes, 32-byte sector bytes, read/write transactions) under
    the ``gpu.*`` namespace. A no-op with :data:`~repro.obs.NULL_TELEMETRY`.
    """
    if not telemetry.enabled:
        return
    telemetry.count("gpu.launches")
    telemetry.count("gpu.nodes", stats.n_nodes)
    if stats.flops:
        telemetry.count("gpu.flops", stats.flops)
    telemetry.record_traffic(stats.traffic)
    if stats.kernel_name:
        telemetry.count(f"gpu.launches.{stats.kernel_name}")
