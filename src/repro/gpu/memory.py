"""Global-memory model with transaction-level traffic accounting.

The virtual GPU's global memory is a set of named linear ``float64``
arrays. Every kernel access goes through :class:`GlobalArray` so that the
:class:`MemoryTracker` can count

* logical bytes moved (``8 * n_indices``), and
* 32-byte *sector transactions*, computed from the set of distinct sectors
  an access touches — the same quantity the NVIDIA (``nvprof``/Nsight) and
  AMD (``rocprof``) profilers report and that the paper's Table 4
  bandwidth measurements are based on.

Sector counting is done per access call (one call = one block-wide
load/store phase), which models an L2 that captures intra-block overlap
but not inter-block reuse — adequate for the streaming-dominated LBM
kernels where inter-block reuse is limited to one-node halos.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MemoryTracker", "GlobalArray", "TrafficReport"]

SECTOR_BYTES = 32
ITEM_BYTES = 8  # float64 everywhere, as in the paper


@dataclass
class TrafficReport:
    """Aggregated traffic counters for one or more kernel launches."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_transactions: int = 0
    write_transactions: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def sector_bytes_read(self) -> int:
        """Bytes actually moved from DRAM, assuming whole-sector fetches."""
        return self.read_transactions * SECTOR_BYTES

    @property
    def sector_bytes_written(self) -> int:
        return self.write_transactions * SECTOR_BYTES

    @property
    def sector_bytes_total(self) -> int:
        return self.sector_bytes_read + self.sector_bytes_written

    def __add__(self, other: "TrafficReport") -> "TrafficReport":
        return TrafficReport(
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.read_transactions + other.read_transactions,
            self.write_transactions + other.write_transactions,
        )

    def per_node(self, n_nodes: int) -> dict[str, float]:
        """Traffic normalized per lattice node (the B/F of paper Table 2)."""
        return {
            "bytes_read": self.bytes_read / n_nodes,
            "bytes_written": self.bytes_written / n_nodes,
            "bytes_total": self.total_bytes / n_nodes,
            "sector_bytes_total": self.sector_bytes_total / n_nodes,
        }


class _LRUCache:
    """Sector-granular LRU standing in for the device L2 cache."""

    def __init__(self, capacity_sectors: int):
        from collections import OrderedDict

        self.capacity = int(capacity_sectors)
        self._entries: "OrderedDict[tuple, None]" = OrderedDict()

    def access(self, keys: list) -> int:
        """Touch sectors; returns the number of misses."""
        entries = self._entries
        misses = 0
        for key in keys:
            if key in entries:
                entries.move_to_end(key)
            else:
                misses += 1
                entries[key] = None
                if len(entries) > self.capacity:
                    entries.popitem(last=False)
        return misses

    def insert(self, keys: list) -> None:
        """Fill sectors without counting misses (write allocation)."""
        entries = self._entries
        for key in keys:
            if key in entries:
                entries.move_to_end(key)
            else:
                entries[key] = None
                if len(entries) > self.capacity:
                    entries.popitem(last=False)

    def flush(self) -> None:
        self._entries.clear()


class MemoryTracker:
    """Counts traffic for all :class:`GlobalArray` objects bound to it.

    With ``l2_bytes`` set, reads are filtered through a sector-granular LRU
    cache and ``read_transactions`` counts only DRAM fetches (misses) —
    modelling the device L2 that lets neighbouring MR columns share their
    halo moment reads and ST warps share misaligned sectors. Writes always
    count as DRAM traffic (every dirty sector drains exactly once in the
    streaming LBM access pattern) but do allocate in the cache.

    Call :meth:`flush_cache` at the start of each timestep: the paper's
    working sets (tens of millions of nodes) are far larger than any L2, so
    inter-step reuse is impossible on the real device and must not be
    credited when measuring traffic on reduced grids.
    """

    def __init__(self, l2_bytes: int | None = None) -> None:
        self.report = TrafficReport()
        self.enabled = True
        self.cache = _LRUCache(l2_bytes // SECTOR_BYTES) if l2_bytes else None

    def reset(self) -> TrafficReport:
        """Reset counters, returning the report accumulated so far."""
        old = self.report
        self.report = TrafficReport()
        return old

    def flush_cache(self) -> None:
        if self.cache is not None:
            self.cache.flush()

    def record(self, byte_offsets: np.ndarray, kind: str, space: int = 0,
               item_bytes: int = ITEM_BYTES) -> None:
        if not self.enabled:
            return
        n = int(byte_offsets.size)
        sector_ids = np.unique(byte_offsets // SECTOR_BYTES)
        sectors = int(sector_ids.size)
        if kind == "read":
            self.report.bytes_read += n * item_bytes
            if self.cache is not None:
                sectors = self.cache.access([(space, int(s)) for s in sector_ids])
            self.report.read_transactions += sectors
        elif kind == "write":
            self.report.bytes_written += n * item_bytes
            self.report.write_transactions += sectors
            if self.cache is not None:
                self.cache.insert([(space, int(s)) for s in sector_ids])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown access kind {kind!r}")


class GlobalArray:
    """A linear array in virtual-GPU global memory (float64 by default).

    ``base`` is an element offset added to every access — the moment-array
    circular shifting (Dethier et al. 2011) uses it to displace reads and
    writes without copying, exactly like the CUDA/HIP implementations
    offset their base pointers. ``itemsize`` (bytes per element) supports
    compact auxiliary arrays such as uint8 node-type grids for complex
    geometries; values are still held as float64 on the host, only the
    traffic accounting changes.
    """

    def __init__(self, name: str, size: int, tracker: MemoryTracker,
                 init: np.ndarray | None = None, itemsize: int = ITEM_BYTES):
        self.name = name
        self.size = int(size)
        self.tracker = tracker
        if itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {itemsize}")
        self.itemsize = int(itemsize)
        self.data = np.zeros(self.size, dtype=np.float64)
        if init is not None:
            init = np.asarray(init, dtype=np.float64).ravel()
            if init.size > self.size:
                raise ValueError(
                    f"initializer ({init.size}) larger than array ({self.size})"
                )
            self.data[: init.size] = init

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def _offsets(self, idx: np.ndarray, base: int) -> np.ndarray:
        flat = (np.asarray(idx, dtype=np.int64).ravel() + base) % self.size
        return flat

    def read(self, idx: np.ndarray, base: int = 0) -> np.ndarray:
        """Gather values at ``(idx + base) mod size``; counts one block-wide
        read access."""
        flat = self._offsets(idx, base)
        self.tracker.record(flat * self.itemsize, "read", space=id(self),
                            item_bytes=self.itemsize)
        return self.data[flat].reshape(np.shape(idx))

    def write(self, idx: np.ndarray, values: np.ndarray, base: int = 0) -> None:
        """Scatter values to ``(idx + base) mod size``; counts one block-wide
        write access."""
        flat = self._offsets(idx, base)
        vals = np.asarray(values, dtype=np.float64).ravel()
        if vals.size != flat.size:
            raise ValueError(
                f"value count {vals.size} does not match index count {flat.size}"
            )
        self.tracker.record(flat * self.itemsize, "write", space=id(self),
                            item_bytes=self.itemsize)
        self.data[flat] = vals

    def read_untracked(self) -> np.ndarray:
        """Host-side copy of the whole array (device-to-host transfer;
        not part of kernel traffic)."""
        return self.data.copy()
