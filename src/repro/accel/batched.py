"""Batched fused step kernels: one kernel invocation, N simulations.

On small and medium domains the per-step cost of the fused fast path is
dominated by fixed Python dispatch — a couple dozen NumPy calls whose
per-call overhead dwarfs the arithmetic once the grid fits in cache.
That is exactly the regime of parameter sweeps and ensembles
(EXPERIMENTS-style Re/τ/resolution scans), where the workload is *many
independent small simulations*, not one big one.

The cores here add a leading **batch axis** to the fused kernels of
:mod:`repro.accel.fused`: the distribution state becomes ``f[B, Q, *grid]``
(moments ``m[B, M, *grid]``) and every stage of the step runs once for
the whole ensemble:

* the moment projections ``m = P f`` and reconstructions (Eq. 11 /
  Eq. 14) are **stacked-column dgemms** — ``np.matmul`` broadcasts the
  ``(M, Q) @ (Q, N)`` product over the batch axis, so BLAS sees ``B``
  back-to-back well-shaped gemms from one call instead of ``B``
  Python-dispatched ones;
* streaming is a **single gather**: the flat
  :class:`~repro.accel.tables.NeighborTable` indices are applied to the
  ``(B, Q·N)`` view in one ``np.take``, one pass for the whole ensemble;
* collision, forcing and solid pinning broadcast over the batch with
  per-member parameters — each member keeps its own relaxation time
  ``τ_k`` (``keep``/Guo prefactors are ``(B, 1, 1)`` columns) and its
  own body-force field.

Per-member arithmetic is operation-for-operation the arithmetic of the
single-simulation fused cores on the member's contiguous ``(Q, N)``
block, so every member of a batched run reproduces its independent
fused run to machine precision (pinned by
``tests/unit/test_accel_batched.py``). Boundary condition objects are
per-member state (they may be bound to member-specific τ/profiles), so
the hooks run member by member on array views — an ``O(surface)`` loop
riding on ``O(volume)`` batched stages.

What is deliberately shared across a batch: the lattice, the grid shape
and the solid geometry (the ensemble packer only groups simulations of
matching ``(kind, scheme, lattice, shape)``). Per-node ``tau_field``
collision and the ``tau_bulk`` trace split stay single-simulation
features for now.

The solver-facing driver for these cores is
:class:`repro.ensemble.EnsembleRunner`; solvers opt in through the
``batched: True`` flag of their ``accel_caps`` declaration (see
:mod:`repro.accel`).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.streaming import stream_push
from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY
from .fused import STREAM_MODES
from .tables import neighbor_table

__all__ = ["BatchedFusedSTCore", "BatchedFusedMRCore"]


def _as_taus(taus, batch: int | None = None) -> np.ndarray:
    """Validate and normalize the per-member relaxation times ``(B,)``."""
    arr = np.atleast_1d(np.asarray(taus, dtype=np.float64))
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"taus must be a non-empty 1-D sequence, got "
                         f"shape {arr.shape}")
    if batch is not None and arr.size != batch:
        raise ValueError(f"expected {batch} relaxation times, got {arr.size}")
    if (arr <= 0.5).any():
        raise ValueError(f"every tau must exceed 1/2, got {arr}")
    return arr


class _BatchedStream:
    """Shared batched streaming: one flat gather over the ``(B, Q·N)`` view.

    ``"auto"`` resolves to ``"gather"`` here (unlike the single-simulation
    cores, where rolls win): the table gather amortizes its index pass
    over all ``B`` members in one ``np.take``, while rolls would pay
    ``B x Q x D`` Python-dispatched slice copies — the exact overhead the
    batch axis exists to remove. ``"roll"`` remains selectable for
    debugging (it is bit-identical: streaming is a pure permutation).
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 stream: str):
        if stream not in STREAM_MODES:
            raise ValueError(f"unknown streaming mode {stream!r}; expected "
                             f"one of {STREAM_MODES}")
        self.lat = lat
        self.stream_mode = "gather" if stream == "auto" else stream
        self._table = (neighbor_table(lat, tuple(shape))
                       if self.stream_mode == "gather" else None)

    def __call__(self, f: np.ndarray, out: np.ndarray) -> None:
        """Stream the batched field ``f[B, Q, *grid]`` into ``out``."""
        if self._table is not None:
            # mode="clip" is semantically a no-op (the table indices are
            # in-range by construction) but skips NumPy's bounce-buffer
            # path for out= takes — measurably faster on large batches.
            b = f.shape[0]
            np.take(f.reshape(b, -1), self._table.flat, axis=1,
                    out=out.reshape(b, -1), mode="clip")
        else:
            for k in range(f.shape[0]):
                stream_push(self.lat, f[k], out=out[k])


def _member_boundaries(boundaries, batch: int):
    """Normalize the per-member boundary lists (``None`` -> no boundaries)."""
    if boundaries is None:
        return [()] * batch
    blists = list(boundaries)
    if len(blists) != batch:
        raise ValueError(f"expected {batch} per-member boundary lists, "
                         f"got {len(blists)}")
    return [tuple(bl) if bl else () for bl in blists]


class BatchedFusedSTCore:
    """Batched fused stream+collide for the two-lattice ST scheme (BGK).

    One :meth:`step` advances ``B`` independent simulations held in
    ``f[B, Q, *grid]``: a single gather streams the whole ensemble, the
    per-member boundary hooks run on views, and one broadcast-matmul
    collision relaxes every member with its own ``τ_k``. The arithmetic
    on each member's block mirrors :class:`repro.accel.fused.FusedSTCore`
    operation for operation, so members track their independent fused
    runs to machine precision.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 taus, stream: str = "auto"):
        self.lat = lat
        self.shape = tuple(shape)
        self.taus = _as_taus(taus)
        self.batch = int(self.taus.size)
        #: per-member ``1 - 1/tau`` as a ``(B, 1, 1)`` broadcast column.
        self._keep = (1.0 - 1.0 / self.taus)[:, None, None]
        self._stream = _BatchedStream(lat, self.shape, stream)
        self.stream_mode = self._stream.stream_mode
        b, n, m = self.batch, int(np.prod(self.shape)), lat.n_moments
        self._mm = np.ascontiguousarray(lat.moment_matrix)
        self._rc = np.ascontiguousarray(lat.reconstruction_matrix)
        self._m = np.empty((b, m, n))
        self._meq = np.empty((b, m, n))
        self._u = np.empty((b, lat.d, n))
        self._feq = np.empty((b, lat.q, n))
        self._force_bufs = None

    def _ensure_force_bufs(self) -> tuple:
        """Scratch for the fused Guo source (allocated on first forced step)."""
        if self._force_bufs is None:
            lat = self.lat
            b, n = self.batch, self._m.shape[2]
            self._force_bufs = (
                np.ascontiguousarray(lat.c, dtype=np.float64),  # (Q, D)
                np.empty((b, lat.q, n)),                        # c . F
                np.empty((b, lat.q, n)),                        # c . u
                np.empty((b, lat.d, n)),                        # u_a F_a terms
                np.empty((b, 1, n)),                            # u . F
                # per-member Guo prefactor (1 - 1/(2 tau_k)) w_i, (B, Q, 1)
                ((1.0 - 0.5 / self.taus)[:, None, None]
                 * lat.w[None, :, None]),
            )
        return self._force_bufs

    def _guo_source(self, ff: np.ndarray) -> np.ndarray:
        """Batched fused Guo source for the flat forces ``ff[B, D, N]``.

        Same in-place build as the single-simulation core (division by
        ``cs2``/``cs4`` included), broadcast over the batch axis with the
        per-member prefactor column. Returns the core-owned ``(B, Q, N)``
        source buffer.
        """
        lat = self.lat
        cmat, cf, cu, uftmp, uf, wpref = self._ensure_force_bufs()
        np.matmul(cmat, ff, out=cf)
        np.matmul(cmat, self._u, out=cu)
        np.multiply(self._u, ff, out=uftmp)
        np.sum(uftmp, axis=1, keepdims=True, out=uf)
        cu *= cf
        cu /= lat.cs4
        cf -= uf
        cf /= lat.cs2
        cf += cu
        cf *= wpref
        return cf

    def _moments_and_feq(self, fs: np.ndarray,
                         ff: np.ndarray | None) -> None:
        """Fill ``_m``/``_u``/``_meq``/``_feq`` from ``fs[B, Q, N]``."""
        lat = self.lat
        d = lat.d
        np.matmul(self._mm, fs, out=self._m)
        rho = self._m[:, 0]
        meq = self._meq
        meq[:, 0] = rho
        if ff is None:
            np.divide(self._m[:, 1:1 + d], rho[:, None], out=self._u)
            meq[:, 1:1 + d] = self._m[:, 1:1 + d]
        else:
            # u = (j + F/2)/rho; the equilibrium momentum is rho u.
            np.multiply(ff, 0.5, out=self._u)
            self._u += self._m[:, 1:1 + d]
            self._u /= rho[:, None]
            np.multiply(self._u, rho[:, None], out=meq[:, 1:1 + d])
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(self._u[:, a], self._u[:, b], out=meq[:, 1 + d + k])
            meq[:, 1 + d + k] *= rho
        np.matmul(self._rc, meq, out=self._feq)

    def step(self, f: np.ndarray, scratch: np.ndarray, boundaries=None,
             solid_mask: np.ndarray | None = None, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None) -> None:
        """Advance the whole ensemble one step in place.

        ``f``/``scratch`` are ``(B, Q, *grid)``; ``boundaries`` is an
        optional sequence of ``B`` per-member boundary lists (bound
        objects, applied on member views); ``solid_mask`` the shared
        geometry mask; ``force`` an optional ``(B, D, *grid)`` per-member
        body-force field (all members forced, or none).
        """
        lat = self.lat
        blists = _member_boundaries(boundaries, self.batch)
        with tel.phase("stream"):
            self._stream(f, scratch)
        with tel.phase("boundary"):
            for k, bl in enumerate(blists):
                for b in bl:
                    b.post_stream(lat, scratch[k], f[k])
        with tel.phase("collide"):
            fs = scratch.reshape(self.batch, lat.q, -1)
            ff = (None if force is None
                  else force.reshape(self.batch, lat.d, -1))
            self._moments_and_feq(fs, ff)
            out = f.reshape(self.batch, lat.q, -1)
            np.subtract(fs, self._feq, out=out)
            out *= self._keep
            out += self._feq
            if ff is not None:
                out += self._guo_source(ff)
            if solid_mask is not None:
                f[:, :, solid_mask] = lat.w[None, :, None]
        with tel.phase("boundary"):
            for k, bl in enumerate(blists):
                for b in bl:
                    b.post_collide(lat, f[k], scratch[k])


class BatchedFusedMRCore:
    """Batched fused moment-representation step (MR-P or MR-R).

    The persistent ensemble state is the ``(B, M, *grid)`` moment field;
    each step runs moments -> f* -> streamed f -> moments with one
    broadcast dgemm per linear stage and one flat gather for streaming,
    per-member ``τ_k`` throughout. The distribution field only exists in
    the two core-owned batched scratch lattices, exactly as in the
    single-simulation :class:`repro.accel.fused.FusedMRCore` (whose
    collision arithmetic each member's block mirrors exactly).

    Per-node ``tau_field`` collision and the ``tau_bulk`` trace split
    are not batched (see the module docstring).
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 taus, scheme: str = "MR-P", stream: str = "auto"):
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be MR-P or MR-R, got {scheme!r}")
        self.lat = lat
        self.shape = tuple(shape)
        self.taus = _as_taus(taus)
        self.batch = int(self.taus.size)
        self.scheme = scheme
        self._keep = (1.0 - 1.0 / self.taus)[:, None, None]
        self._pref = (1.0 - 0.5 / self.taus)[:, None]
        self._stream = _BatchedStream(lat, self.shape, stream)
        self.stream_mode = self._stream.stream_mode
        b, n = self.batch, int(np.prod(self.shape))
        d, m = lat.d, lat.n_moments
        self._mm = np.ascontiguousarray(lat.moment_matrix)
        self._u = np.empty((b, d, n))
        self._pi_eq = np.empty((b, lat.n_pairs, n))
        self._pi_neq = np.empty((b, lat.n_pairs, n))
        self._src_buf = None
        self._f_star = np.empty((b, lat.q, *self.shape))
        self._f_new = np.empty((b, lat.q, *self.shape))
        if scheme == "MR-P":
            self._rcext = np.ascontiguousarray(lat.reconstruction_matrix)
            self._g = np.empty((b, m, n))
            self._a34_specs = None
        else:
            # Same precomputed [R | E3 | E4] block and recursion recipes
            # as the single-simulation core (see FusedMRCore.__init__).
            s3, s4 = lat.h3_supported, lat.h4_supported
            w3 = lat.triple_mult[s3] / (6.0 * lat.cs6)
            w4 = lat.quad_mult[s4] / (24.0 * lat.cs8)
            e3 = lat.w[:, None] * lat.h3_reg_cols[:, s3] * w3[None, :]
            e4 = lat.w[:, None] * lat.h4_reg_cols[:, s4] * w4[None, :]
            self._rcext = np.ascontiguousarray(
                np.hstack([lat.reconstruction_matrix, e3, e4]))
            self._g = np.empty((b, m + s3.size + s4.size, n))
            trip = [(t, [(t[0], lat.pair_index(t[1], t[2])),
                         (t[1], lat.pair_index(t[0], t[2])),
                         (t[2], lat.pair_index(t[0], t[1]))])
                    for t in (lat.triple_tuples[k] for k in s3)]
            quads = []
            for k in s4:
                quad = lat.quad_tuples[k]
                terms = []
                for pos in itertools.combinations(range(4), 2):
                    rest = [quad[i] for i in range(4) if i not in pos]
                    terms.append((rest[0], rest[1],
                                  lat.pair_index(quad[pos[0]], quad[pos[1]])))
                quads.append((quad, terms))
            self._a34_specs = (trip, quads)

    def _collide(self, mf: np.ndarray, force: np.ndarray | None) -> None:
        """Fill the coefficient block ``G`` from ``mf[B, M, N]``.

        Mirrors :meth:`repro.accel.fused.FusedMRCore._collide` with the
        scalar relaxation factors promoted to per-member broadcast
        columns; forced batches add the projected Guo source moments
        with the per-member ``1 - 1/(2 tau_k)`` prefactor.
        """
        lat = self.lat
        d = lat.d
        rho, j, pi = mf[:, 0], mf[:, 1:1 + d], mf[:, 1 + d:]
        u = self._u
        if force is None:
            np.divide(j, rho[:, None], out=u)
        else:
            np.multiply(force, 0.5, out=u)
            u += j
            u /= rho[:, None]
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(u[:, a], u[:, b], out=self._pi_eq[:, k])
            self._pi_eq[:, k] *= rho
        np.subtract(pi, self._pi_eq, out=self._pi_neq)
        g = self._g
        g[:, 0] = rho
        if force is None:
            g[:, 1:1 + d] = j
        else:
            np.add(j, force, out=g[:, 1:1 + d])
        g_pi = g[:, 1 + d:1 + d + lat.n_pairs]
        np.multiply(self._pi_neq, self._keep, out=g_pi)
        g_pi += self._pi_eq
        if force is not None:
            self._add_moment_force(g_pi, u, force)
        if self._a34_specs is not None:
            trip, quads = self._a34_specs
            keep = self._keep[:, :, 0]      # (B, 1) against (B, N) rows
            row = 1 + d + lat.n_pairs
            for (a, b, c), terms in trip:
                acc = rho * u[:, a] * u[:, b] * u[:, c]
                for v, p in terms:
                    acc += keep * (u[:, v] * self._pi_neq[:, p])
                g[:, row] = acc
                row += 1
            for (a, b, c, e), terms in quads:
                acc = rho * u[:, a] * u[:, b] * u[:, c] * u[:, e]
                for r0, r1, p in terms:
                    acc += keep * (u[:, r0] * u[:, r1] * self._pi_neq[:, p])
                g[:, row] = acc
                row += 1

    def _add_moment_force(self, g_pi: np.ndarray, u: np.ndarray,
                          force: np.ndarray) -> None:
        """Add the projected Guo second-moment source to ``g_pi`` in place."""
        lat = self.lat
        if self._src_buf is None:
            b, n = g_pi.shape[0], g_pi.shape[2]
            self._src_buf = (np.empty((b, n)), np.empty((b, n)))
        src, tmp = self._src_buf
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(u[:, a], force[:, b], out=src)
            np.multiply(u[:, b], force[:, a], out=tmp)
            src += tmp
            src *= self._pref
            g_pi[:, k] += src

    def step(self, m: np.ndarray, boundaries=None,
             solid_mask: np.ndarray | None = None, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None) -> None:
        """Advance the ``(B, M, *grid)`` ensemble moment field one step.

        ``boundaries`` is an optional sequence of ``B`` per-member
        boundary lists; ``force`` an optional ``(B, D, *grid)``
        per-member body-force field.
        """
        lat = self.lat
        blists = _member_boundaries(boundaries, self.batch)
        mf = m.reshape(self.batch, lat.n_moments, -1)
        with tel.phase("collide"):
            self._collide(mf, force=None if force is None
                          else force.reshape(self.batch, lat.d, -1))
            np.matmul(self._rcext, self._g,
                      out=self._f_star.reshape(self.batch, lat.q, -1))
        with tel.phase("stream"):
            self._stream(self._f_star, self._f_new)
        with tel.phase("boundary"):
            for k, bl in enumerate(blists):
                for b in bl:
                    b.post_stream(lat, self._f_new[k], self._f_star[k])
        with tel.phase("macroscopic"):
            np.matmul(self._mm, self._f_new.reshape(self.batch, lat.q, -1),
                      out=mf)
            if solid_mask is not None:
                m[:, :, solid_mask] = 0.0
                m[:, 0, solid_mask] = 1.0
