"""Sparse-geometry compact-state kernels (the ``"sparse"`` backend).

Every other host backend streams dense rectangular ``(Q, *grid)`` arrays,
so a domain that is 10% fluid — cylinder arrays, porous media — spends
~90% of its bandwidth and its collision FLOPs on solid nodes whose state
is pinned anyway. Following the fluid-node index lists of Tomczak &
Szafran's sparse-geometry GPU LBM (see PAPERS.md), the cores here compact
the working state to ``(Q, n_fluid)`` over a
:class:`~repro.accel.tables.MaskedNeighborTable` and run the *same*
collision arithmetic as the fused backend — literally the same
:class:`~repro.accel.fused.FusedSTCore` / ``FusedMRCore`` methods, bound
to a flat ``(n_fluid,)`` shape — over fluid columns only:

* **streaming** is one ``np.take`` through the masked table, whose
  solid-source links are *bounce-back-folded*: the gather itself realizes
  half-way bounce-back, so walls cost nothing on top of propagation;
* **collision** (moment projection, equilibrium reconstruction, BGK /
  MR-P / MR-R relaxation, Guo forcing, per-node ``tau_field``) runs as
  BLAS dgemms over ``n_fluid`` columns instead of ``N``;
* the **dense solver state** (``solver.f`` for ST, ``solver.m`` for MR)
  stays authoritative: fluid columns are gathered at the top of the step
  and scattered back at the bottom, so checkpoints, monitors, forces and
  the distributed ghost exchange see exactly the arrays they always saw.
  Solid columns are never touched and keep their pinned rest values from
  initialization — bit-identical to the fused kernels' per-step pinning.

Boundary handling has two tiers. A boundary list that is empty or a
single plain :class:`~repro.boundary.HalfwayBounceBack` (moving walls
included) folds entirely into the gather table — the *lean* path, which
never materializes a dense distribution field. Any other post-stream
boundary (velocity inlets, pressure outlets, ...) routes the step through
a *dense fallback* that scatters, streams densely, runs the unchanged
hook objects, and re-compacts — collision still runs compact, so the
geometry win survives partial boundary coverage. Boundaries with custom
post-collide hooks (full-way bounce-back) are rejected up front by
:func:`repro.accel.validate_backend`.

Traffic model (docs/ALGORITHMS.md derives the full version): the lean ST
step moves ``3 Q + D`` doubles per *fluid* node plus ``Q`` 8-byte table
indices, against ``4 Q`` doubles per *dense* node for the fused
two-lattice step — so compact streaming wins whenever the fluid fraction
``phi`` is below roughly ``4Q / (3Q + D + Q_idx)``, i.e. for every
``phi < ~0.9`` geometry, with the gap widening linearly as ``phi`` drops.

Machine-precision parity with the fused backend on masked problems is
pinned by ``tests/unit/test_accel_sparse.py`` and the hypothesis suite in
``tests/property/test_props_sparse.py``.
"""

from __future__ import annotations

import numpy as np

from ..core.streaming import stream_push
from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY
from .fused import FusedMRCore, FusedSTCore
from .tables import MaskedNeighborTable

__all__ = ["SparseSTCore", "SparseMRCore", "boundaries_fold"]


def boundaries_fold(boundaries) -> bool:
    """True when the boundary list folds entirely into the gather table.

    Foldable means no boundaries at all, or exactly one plain
    :class:`~repro.boundary.HalfwayBounceBack` (exact type — a subclass
    may override its hooks). Anything else routes the step through the
    dense fallback that runs the unchanged hook objects.
    """
    from ..boundary.bounceback import HalfwayBounceBack

    if not boundaries:
        return True
    return len(boundaries) == 1 and type(boundaries[0]) is HalfwayBounceBack


def _folded_momentum(table: MaskedNeighborTable, lat: LatticeDescriptor,
                     bb, shape: tuple[int, ...]):
    """Compact per-component moving-wall momentum terms of a bound wall.

    Reuses the bound boundary's own precomputed link targets and
    ``2 w_i rho0 (c_i . u_w) / cs2`` values (both enumerated in C order,
    matching the compact node order), so the folded adds are value- and
    order-identical to the dense hook's.
    """
    if bb is None or bb.wall_velocity is None:
        return None
    terms = []
    for q in range(lat.q):
        idx, mom = bb._targets[q], bb._momentum[q]
        if idx is None or mom is None:
            terms.append(None)
            continue
        flat = np.ravel_multi_index(idx, shape)
        terms.append((table.dense_to_compact[flat], np.asarray(mom)))
    return terms


class _SparseCoreBase:
    """Shared compaction plumbing of the two sparse cores."""

    def __init__(self, lat: LatticeDescriptor, solid_mask: np.ndarray,
                 boundaries=()):
        self.lat = lat
        self.shape = tuple(solid_mask.shape)
        self.table = MaskedNeighborTable(lat, solid_mask)
        self.lean = boundaries_fold(boundaries)
        self._bb = (boundaries[0] if (self.lean and boundaries) else None)
        self._mom = _folded_momentum(self.table, lat, self._bb, self.shape)
        self._ffc = None        # compact (D, n_fluid) force buffer
        self._fidx = None       # dense gather indices for the force field
        self._tfc = None        # compact (n_fluid,) tau_field buffer
        self._tidx = None

    def _compact_force(self, force: np.ndarray | None) -> np.ndarray | None:
        """Gather the fluid columns of the dense ``(D, *grid)`` force."""
        if force is None:
            return None
        if self._ffc is None:
            self._ffc = np.empty((self.lat.d, self.table.n_fluid))
            self._fidx = self.table.field_idx(self.lat.d)
        np.take(force.reshape(-1), self._fidx,
                out=self._ffc.reshape(-1), mode="clip")
        return self._ffc

    def _compact_tau(self, tau_field: np.ndarray | None) -> np.ndarray | None:
        """Gather the fluid entries of a dense per-node ``tau_field``."""
        if tau_field is None:
            return None
        if self._tfc is None:
            self._tfc = np.empty(self.table.n_fluid)
            self._tidx = self.table.fluid_flat
        np.take(tau_field.reshape(-1), self._tidx,
                out=self._tfc, mode="clip")
        return self._tfc

    def _apply_folded(self, fc: np.ndarray, rest: np.ndarray) -> None:
        """Finish the folded links of a freshly gathered compact field.

        Without a bounce-back wall the folded reflections are overwritten
        with the rest values ``rest[q]`` — exactly what the dense kernels
        stream out of their pinned solid nodes. With a moving wall the
        precomputed momentum terms are added on top of the reflections.
        """
        if self._bb is None:
            for q, links in enumerate(self.table.solid_links):
                if links.size:
                    fc[q, links] = rest[q]
        elif self._mom is not None:
            for q, term in enumerate(self._mom):
                if term is not None:
                    tgt, mom = term
                    fc[q, tgt] += mom


class SparseSTCore(_SparseCoreBase):
    """Compact-state fused ST step (two-lattice BGK over fluid nodes only).

    The lean step is: one folded gather straight from the dense lattice
    into the compact streamed field, the fused moment-space BGK collision
    over ``n_fluid`` columns (shared :class:`FusedSTCore` arithmetic, so
    the trajectory matches the fused backend to machine precision), and
    one scatter of the post-collision values back into the dense fluid
    columns. Solid columns of ``f`` keep their pinned ``w_i`` forever.
    """

    def __init__(self, lat: LatticeDescriptor, solid_mask: np.ndarray,
                 tau: float, boundaries=()):
        super().__init__(lat, solid_mask, boundaries)
        n = self.table.n_fluid
        self.arith = FusedSTCore(lat, (n,), tau)
        self._fc = np.empty((lat.q, n))        # streamed compact field
        self._fc_star = np.empty((lat.q, n))   # post-collision compact field
        self._rest = np.ascontiguousarray(lat.w, dtype=np.float64)
        self._dense_scratch = (None if self.lean
                               else np.empty((lat.q, *self.shape)))

    def step(self, f: np.ndarray, boundaries, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None) -> None:
        """Advance the dense ``(Q, *grid)`` lattice ``f`` one step in place."""
        lat = self.lat
        table = self.table
        if self.lean:
            with tel.phase("stream"):
                table.gather_dense(f, self._fc)
                self._apply_folded(self._fc, self._rest)
        else:
            with tel.phase("stream"):
                stream_push(lat, f, out=self._dense_scratch)
            with tel.phase("boundary"):
                for b in boundaries:
                    b.post_stream(lat, self._dense_scratch, f)
            with tel.phase("stream"):
                table.compact(self._dense_scratch, self._fc)
        with tel.phase("collide"):
            ffc = self._compact_force(force)
            arith = self.arith
            arith._moments_and_feq(self._fc, ffc)
            out = self._fc_star
            np.subtract(self._fc, arith._feq, out=out)
            out *= arith.keep
            out += arith._feq
            if ffc is not None:
                arith._add_guo_source(out, ffc)
            table.scatter(out, f)


class SparseMRCore(_SparseCoreBase):
    """Compact-state fused MR step (MR-P / MR-R over fluid nodes only).

    Algorithm 2 with every stage restricted to the compact node list:
    moment-space collision and Eq. 11/14 reconstruction as dgemms over
    ``n_fluid`` columns (shared :class:`FusedMRCore` arithmetic), one
    folded compact gather for streaming + bounce-back, and the Eq. 1-3
    re-projection scattered back into the dense moment field. Solid
    columns of ``m`` keep their pinned ``(1, 0, ..., 0)`` forever.
    """

    def __init__(self, lat: LatticeDescriptor, solid_mask: np.ndarray,
                 tau: float, scheme: str = "MR-P",
                 tau_bulk: float | None = None, boundaries=()):
        super().__init__(lat, solid_mask, boundaries)
        n = self.table.n_fluid
        self.arith = FusedMRCore(lat, (n,), tau, scheme=scheme,
                                 tau_bulk=tau_bulk, alloc_f=False)
        self._mc = np.empty((lat.n_moments, n))
        self._fc_star = np.empty((lat.q, n))
        self._fc = np.empty((lat.q, n))
        self._midx = self.table.field_idx(lat.n_moments)
        # Rest-state reconstruction column: exactly what the dense matmul
        # streams out of a pinned solid node (== w_i analytically).
        self._rest = np.ascontiguousarray(self.arith._rcext[:, 0])
        if self.lean:
            self._dense_star = self._dense_new = None
        else:
            # Dense fallback pair; solid columns of the post-collision
            # field hold the rest reconstruction permanently, matching
            # the fused kernels' pinned-moment reconstruction.
            self._dense_star = np.empty((lat.q, *self.shape))
            self._dense_star[...] = self._rest.reshape(
                (lat.q,) + (1,) * len(self.shape))
            self._dense_new = np.empty_like(self._dense_star)

    def step(self, m: np.ndarray, boundaries, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None,
             tau_field: np.ndarray | None = None) -> None:
        """Advance the dense ``(M, *grid)`` moment field ``m`` one step in place."""
        lat = self.lat
        table = self.table
        arith = self.arith
        with tel.phase("collide"):
            np.take(m.reshape(-1), self._midx,
                    out=self._mc.reshape(-1), mode="clip")
            arith._collide(self._mc,
                           force=self._compact_force(force),
                           tau_field=self._compact_tau(tau_field))
            np.matmul(arith._rcext, arith._g, out=self._fc_star)
        if self.lean:
            with tel.phase("stream"):
                table.gather_compact(self._fc_star, self._fc)
                self._apply_folded(self._fc, self._rest)
        else:
            with tel.phase("stream"):
                table.scatter(self._fc_star, self._dense_star)
                stream_push(lat, self._dense_star, out=self._dense_new)
            with tel.phase("boundary"):
                for b in boundaries:
                    b.post_stream(lat, self._dense_new, self._dense_star)
            with tel.phase("stream"):
                table.compact(self._dense_new, self._fc)
        with tel.phase("macroscopic"):
            np.matmul(arith._mm, self._fc, out=self._mc)
            table.scatter(self._mc, m)
