"""Single-lattice in-place streaming cores (the ``"aa"`` backend).

The fused kernels in :mod:`repro.accel.fused` are two-lattice: every
step reads the full ``(Q, N)`` field and writes a second one, moving
``2 Q x 8`` bytes of lattice state per node per step — exactly the
propagation-traffic ceiling the source paper attacks, and twice the
persistent footprint the state actually needs. This module brings the
single-lattice idea of the reference :class:`repro.solver.aa.AASolver`
(Bailey's AA pattern; see the memory-traffic model in
``docs/ALGORITHMS.md``) into the backend seam, as an array-level
realization that stays *collide-identical* to the fused cores:

:class:`InplaceSTCore`
    One persistent lattice, two alternating step flavours. The
    even-parity step streams into core-owned scratch, runs exactly the
    fused BGK(+Guo) collision, and writes the relaxed populations back
    *pre-streamed* — each component shifted by its own velocity, so the
    array ends holding ``S(f_{t+1})`` (the state the next stream pass
    would have produced). The odd-parity step therefore needs **no
    streaming pass at all**: it collides fully in place and leaves the
    natural ``f_{t+2}``. Over a step pair this removes one of the two
    per-pair streaming traversals (the measured MLUPS gain on
    memory-bound cells) while every even-time state matches the fused
    two-lattice trajectory bit for bit. With boundary objects present
    the core falls back to the conservative per-step path (identical to
    :class:`~repro.accel.fused.FusedSTCore`, scratch owned by the core),
    so the full feature matrix — boundaries, solids, Guo forcing — stays
    supported with trivial parity.

:class:`InplaceMRCore`
    The moment-representation analogue: the persistent state is the
    moment field, and the distribution exists in **one** core-owned
    lattice instead of the fused core's two. Reconstruction writes into
    that single buffer, and the streaming + re-projection collapse into
    a slab-wise gather-project: the pull-stream of each leading-axis
    chunk lands in an L2-sized scratch block via wrap-block slice
    copies and is immediately projected back to moments (one small
    dgemm per slab), eliminating the second lattice's store+load
    entirely. Supports
    MR-P/MR-R, solids, moment-space Guo forcing and the per-node
    ``tau_field`` collision; with boundary objects present the stepper
    in :mod:`repro.accel` falls back to the two-buffer fused core.

Layout helpers
--------------
At odd times the lean ST state is stored component-shifted ("AA
layout"). :func:`natural_to_aa` / :func:`aa_to_natural` convert between
that layout and the natural one with exact per-component rolls (pure
permutations, so round trips are bit-exact). They back the
checkpoint-layout canonicalization in :mod:`repro.io.checkpoint` —
checkpoints are always written in natural layout, so they stay
compatible across backends and across odd/even resume points — and the
odd-parity macroscopic evaluation of
:meth:`repro.solver.standard.STSolver.macroscopic`.
"""

from __future__ import annotations

import numpy as np

from ..core.streaming import stream_push
from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY
from .fused import FusedMRCore, FusedSTCore

__all__ = [
    "InplaceSTCore",
    "InplaceMRCore",
    "natural_to_aa",
    "aa_to_natural",
]


def natural_to_aa(lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
    """Natural post-collision state -> component-shifted AA layout.

    ``out[i] = roll(f[i], +c_i)`` — the pull-stream displacement applied
    eagerly, i.e. exactly the array the lean even-parity step of
    :class:`InplaceSTCore` leaves behind. Pure permutation per
    component, hence bit-exact and inverted by :func:`aa_to_natural`.
    """
    out = np.empty_like(f)
    stream_push(lat, f, out=out)
    return out


def aa_to_natural(lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
    """Component-shifted AA layout -> natural state (inverse roll).

    ``out[i] = roll(f[i], -c_i)``, undoing :func:`natural_to_aa`
    exactly. Used to canonicalize odd-time checkpoints and to evaluate
    macroscopic fields at odd parity without mutating the solver state.
    """
    axes = tuple(range(f.ndim - 1))
    out = np.empty_like(f)
    for i in range(lat.q):
        out[i] = np.roll(f[i], shift=tuple(-lat.c[i]), axis=axes)
    return out


def _shift_blocks(shape: tuple[int, ...], c) -> list[tuple[tuple, tuple]]:
    """Slice-pair decomposition of ``dst = roll(src, +c)`` over ``shape``.

    Returns ``(dst, src)`` tuples of per-axis slices such that assigning
    ``dst[...] = src[...]`` block by block reproduces ``np.roll`` with
    shift ``c`` exactly — at most ``2**d`` contiguous wrap blocks, each a
    plain view, so the scatter-relax loop of :class:`InplaceSTCore` can
    fuse the roll into the collision write with zero temporaries.
    """
    per_axis: list[list[tuple[slice, slice]]] = []
    for size, comp in zip(shape, c):
        s = int(comp) % size
        if s == 0:
            per_axis.append([(slice(None), slice(None))])
        else:
            per_axis.append([
                (slice(s, None), slice(0, size - s)),
                (slice(0, s), slice(size - s, None)),
            ])
    blocks: list[tuple[tuple, tuple]] = [((), ())]
    for segments in per_axis:
        blocks = [(dst + (d,), src + (s,))
                  for dst, src in blocks for d, s in segments]
    return blocks


class InplaceSTCore(FusedSTCore):
    """Single-lattice AA-pattern ST step (BGK, optional Guo forcing).

    Subclasses :class:`~repro.accel.fused.FusedSTCore` so the collision
    arithmetic is *shared code*, not a copy: both paths build moments,
    velocity, equilibrium and the Guo source through the same
    ``_moments_and_feq`` / ``_guo_source`` bodies, and the lean steps
    only change where the relaxed populations land. State convention
    (time ``t`` = steps completed):

    * even ``t``: ``f`` holds the natural post-collision lattice —
      bit-identical to the fused two-lattice state;
    * odd ``t`` (lean mode only): ``f`` holds the *pre-streamed* next
      input, ``f[i] = roll(f_nat[i], +c_i)`` (AA layout).

    :meth:`step_scatter` advances even -> odd, :meth:`step_local`
    odd -> even; the caller (see ``repro.accel`` steppers) derives the
    parity from the solver clock, so checkpoint/resume at any parity is
    just a matter of restoring the clock. :meth:`step_bounded` is the
    conservative every-step-natural fallback used whenever boundary
    objects are present (their hooks see full natural arrays, exactly as
    in the fused core).
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float, stream: str = "auto",
                 solid_mask: np.ndarray | None = None,
                 scatter: str = "auto"):
        super().__init__(lat, shape, tau, stream=stream)
        self._scratch = np.empty((lat.q, *self.shape))
        self._blocks = [_shift_blocks(self.shape, lat.c[i])
                        for i in range(lat.q)]
        self.solid_mask = solid_mask
        if scatter == "auto":
            # "copy" measures faster on both 2-D and 3-D grids on the
            # hosts benchmarked so far: its extra contiguous pass is
            # cheaper than pushing 3-4 elementwise ops through strided
            # wrap-block views (see docs/ALGORITHMS.md).
            scatter = "copy"
        if scatter not in ("fused", "copy"):
            raise ValueError(f"unknown scatter strategy {scatter!r}")
        self.scatter = scatter

    def step_scatter(self, f: np.ndarray, tel=NULL_TELEMETRY,
                     force: np.ndarray | None = None) -> None:
        """Even-parity lean step: natural ``f_t`` -> AA-layout ``f_{t+1}``.

        Streams into core scratch, collides exactly as the fused core,
        and lands the relaxed populations back shifted by ``+c_i``,
        pre-streaming the next step. Two scatter strategies (see
        :attr:`scatter` and the traffic notes in ``docs/ALGORITHMS.md``):
        ``"fused"`` writes the relaxation directly through the wrap-block
        destination views (fewest array passes; best when the innermost
        axis is long relative to the per-view inner-loop overhead, i.e.
        2-D grids), while ``"copy"`` relaxes in place on the contiguous
        scratch and then block-copies it shifted (one extra pass, but
        every elementwise op runs at contiguous speed — the right trade
        on 3-D grids, where wrap slivers degenerate to one-element inner
        loops). Solid nodes are pinned at rest equilibrium at their
        shifted slots; both strategies are bit-identical.
        """
        lat = self.lat
        with tel.phase("stream:gather"):
            self._stream(f, self._scratch)
        if self.scatter == "copy":
            with tel.phase("collide"):
                fs = self._scratch.reshape(lat.q, -1)
                ff = None if force is None else force.reshape(lat.d, -1)
                self._moments_and_feq(fs, ff)
                np.subtract(fs, self._feq, out=fs)
                fs *= self.keep
                fs += self._feq
                if ff is not None:
                    self._add_guo_source(fs, ff)
                if self.solid_mask is not None:
                    self._scratch[:, self.solid_mask] = lat.w[:, None]
            with tel.phase("stream:scatter"):
                for i in range(lat.q):
                    fi, si = f[i], self._scratch[i]
                    for dst, src in self._blocks[i]:
                        fi[dst] = si[src]
            return
        with tel.phase("collide"):
            fs = self._scratch.reshape(lat.q, -1)
            ff = None if force is None else force.reshape(lat.d, -1)
            self._moments_and_feq(fs, ff)
            cf = None if ff is None else self._guo_source(ff)
            if self.solid_mask is not None:
                # Pin pre-scatter: the relax below reads scratch and feq
                # block-wise, so force the relaxed value (feq would be
                # overwritten) by making both operands the rest weight.
                self._scratch[:, self.solid_mask] = lat.w[:, None]
                self._feq.reshape(lat.q, *self.shape)[
                    :, self.solid_mask] = lat.w[:, None]
                if cf is not None:
                    cf.reshape(lat.q, *self.shape)[:, self.solid_mask] = 0.0
        with tel.phase("stream:scatter"):
            grid = (lat.q, *self.shape)
            feq_g = self._feq.reshape(grid)
            cf_g = None if cf is None else cf.reshape(grid)
            keep = self.keep
            for i in range(lat.q):
                fi, si, ei = f[i], self._scratch[i], feq_g[i]
                ci = None if cf_g is None else cf_g[i]
                for dst, src in self._blocks[i]:
                    # f*(x)[i] -> f[i] at x + c_i: the fused relax
                    # (and Guo source add), written through the
                    # roll-shifted destination view.
                    dview = fi[dst]
                    np.subtract(si[src], ei[src], out=dview)
                    dview *= keep
                    dview += ei[src]
                    if ci is not None:
                        dview += ci[src]

    def step_local(self, f: np.ndarray, tel=NULL_TELEMETRY,
                   force: np.ndarray | None = None) -> None:
        """Odd-parity lean step: AA-layout ``f_{t+1}`` -> natural ``f_{t+2}``.

        The array already holds the streamed input, so the whole step is
        one in-place collision — no streaming traversal. This is the
        saved memory pass of the AA pattern.
        """
        lat = self.lat
        with tel.phase("collide"):
            fs = f.reshape(lat.q, -1)
            ff = None if force is None else force.reshape(lat.d, -1)
            self._moments_and_feq(fs, ff)
            np.subtract(fs, self._feq, out=fs)
            fs *= self.keep
            fs += self._feq
            if ff is not None:
                self._add_guo_source(fs, ff)
            if self.solid_mask is not None:
                f[:, self.solid_mask] = lat.w[:, None]

    def step_bounded(self, f: np.ndarray, boundaries,
                     solid_mask: np.ndarray | None, tel=NULL_TELEMETRY,
                     force: np.ndarray | None = None) -> None:
        """Conservative step for bounded problems (state natural every step).

        Delegates to the two-lattice fused step against the core-owned
        scratch, so boundary hooks observe exactly the arrays they were
        written against; the solver's persistent state is still the
        single lattice.
        """
        super().step(f, self._scratch, boundaries, solid_mask, tel,
                     force=force)


class InplaceMRCore(FusedMRCore):
    """Single-buffer moment-representation step (MR-P / MR-R).

    Identical collision + reconstruction to
    :class:`~repro.accel.fused.FusedMRCore` (shared ``_collide``), but
    the reconstructed distribution lands in **one** core-owned lattice
    and the streamed re-projection is evaluated slab by slab: the
    pull-stream of a leading-axis chunk is gathered into an L2-sized
    buffer with roll-equivalent wrap-block slice copies (no index
    table — a ``(Q, N)`` int64 table would itself cost a lattice worth
    of memory), then projected with one small dgemm while still
    cache-hot. The second distribution buffer — and its full
    store+load traversal — disappears. Boundary objects are not
    supported here (their hooks need the full streamed array); the
    ``"aa"`` stepper falls back to the fused core for bounded problems.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float, scheme: str = "MR-P",
                 tau_bulk: float | None = None, tile: int = 65536):
        super().__init__(lat, shape, tau, scheme=scheme, tau_bulk=tau_bulk,
                         stream="auto", alloc_f=False)
        self._f = np.empty((lat.q, *self.shape))
        # Slab decomposition of the pull-stream: ``tile`` is the target
        # node count per chunk, rounded to whole leading-axis slabs so
        # every gather is a wrap-block *slice copy* (roll-equivalent; no
        # index table, which would itself cost a lattice worth of int64).
        n0 = self.shape[0]
        tail = int(np.prod(self.shape[1:], dtype=np.int64)) or 1
        self._slab = max(1, min(n0, max(int(tile), 1) // tail or 1))
        self._tail_blocks = [_shift_blocks(self.shape[1:], lat.c[i][1:])
                             for i in range(lat.q)]
        self._row_shift = [int(lat.c[i][0]) % n0 for i in range(lat.q)]
        self._gbuf = np.empty((lat.q, self._slab, *self.shape[1:]))

    def step(self, m: np.ndarray, boundaries,
             solid_mask: np.ndarray | None, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None,
             tau_field: np.ndarray | None = None) -> None:
        """Advance the ``(M, *grid)`` moment field one step in place."""
        lat = self.lat
        if boundaries:
            raise ValueError(
                "InplaceMRCore supports boundary-free problems only; the "
                "'aa' stepper uses the two-buffer fused core when boundary "
                "objects are present"
            )
        if tau_field is not None and self.scheme != "MR-P":
            raise ValueError(
                "per-node tau_field collision is implemented for the MR-P "
                "scheme only"
            )
        mf = m.reshape(lat.n_moments, -1)
        with tel.phase("collide"):
            self._collide(
                mf,
                force=None if force is None else force.reshape(lat.d, -1),
                tau_field=None if tau_field is None
                else tau_field.reshape(-1))
            np.matmul(self._rcext, self._g, out=self._f.reshape(lat.q, -1))
        with tel.phase("stream:project"):
            n0 = self.shape[0]
            tail = int(np.prod(self.shape[1:], dtype=np.int64)) or 1
            for a0 in range(0, n0, self._slab):
                a1 = min(a0 + self._slab, n0)
                rows = a1 - a0
                gb = self._gbuf[:, :rows]
                for qi in range(lat.q):
                    # streamed[qi] rows [a0:a1) = roll(f[qi], +c) there:
                    # leading-axis source rows start at (a0 - c0) mod n0
                    # (at most one wrap), trailing axes via wrap blocks.
                    src0 = (a0 - self._row_shift[qi]) % n0
                    first = min(rows, n0 - src0)
                    pieces = [(slice(0, first), slice(src0, src0 + first))]
                    if first < rows:
                        pieces.append((slice(first, rows),
                                       slice(0, rows - first)))
                    for gdst, fsrc in pieces:
                        for dst_t, src_t in self._tail_blocks[qi]:
                            gb[qi][(gdst, *dst_t)] = \
                                self._f[qi][(fsrc, *src_t)]
                np.matmul(self._mm, gb.reshape(lat.q, -1),
                          out=mf[:, a0 * tail:a1 * tail])
            if solid_mask is not None:
                m[:, solid_mask] = 0.0
                m[0, solid_mask] = 1.0
