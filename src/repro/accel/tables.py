"""Precomputed periodic neighbor-index tables for streaming gathers.

Exact streaming (paper Eq. 7) on a periodic grid is a fixed permutation of
the lattice sites: component ``i`` of the streamed field at node ``x`` is
the pre-stream value at ``x - c_i`` (push and pull use the same
displacement, see :mod:`repro.core.streaming`). The reference solvers
realize that permutation as ``Q`` separate ``np.roll`` passes — up to
``D`` slice copies *per component*. A :class:`NeighborTable` precomputes
the flat source index of every ``(component, node)`` pair once per
``(lattice, shape)``, so the whole propagation step collapses into a
single ``np.take`` gather — the host-side analogue of the index tables
indirect-addressing GPU kernels stream through
(:mod:`repro.gpu.kernels.indirect`), and the structure the Numba backend
JIT-fuses straight into its collide loop.

Tables are cached per ``(lattice name, shape)``; they are pure functions
of both, so the cache never needs invalidation (``clear_cache`` exists
for tests and memory-conscious callers).
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = ["NeighborTable", "MaskedNeighborTable", "neighbor_table",
           "clear_cache", "stream_gather"]


class NeighborTable:
    """Flat gather indices realizing periodic streaming for one grid.

    Attributes
    ----------
    src:
        ``(Q, N)`` array of flat node indices with
        ``streamed[q].ravel()[n] == f[q].ravel()[src[q, n]]`` — i.e. the
        source node of the Eq. 7 displacement under periodic wrap.
    flat:
        ``src`` with per-component offsets ``q * N`` added, so one
        ``np.take`` over the raveled ``(Q, N)`` field performs the whole
        propagation step in a single gather pass.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...]):
        if len(shape) != lat.d:
            raise ValueError(
                f"shape {shape} does not match lattice dimension {lat.d}"
            )
        self.lat_name = lat.name
        self.shape = tuple(int(s) for s in shape)
        self.n_nodes = int(np.prod(self.shape))
        coords = np.indices(self.shape).reshape(lat.d, self.n_nodes)
        src = np.zeros((lat.q, self.n_nodes), dtype=np.intp)
        strides = np.ones(lat.d, dtype=np.intp)
        for a in range(lat.d - 2, -1, -1):
            strides[a] = strides[a + 1] * self.shape[a + 1]
        for q in range(lat.q):
            for a in range(lat.d):
                src[q] += ((coords[a] - lat.c[q, a]) % self.shape[a]) * strides[a]
        self.src = src
        self.flat = (src + (np.arange(lat.q, dtype=np.intp)[:, None]
                            * self.n_nodes)).ravel()
        # Table-owned reusable output buffers for ``gather(..., out=None)``
        # calls, keyed by dtype (see :meth:`_owned_out`).
        self._scratch: dict[np.dtype, list[np.ndarray]] = {}

    def _owned_out(self, f: np.ndarray) -> np.ndarray:
        """A table-owned ``(Q, *shape)`` buffer that does not alias ``f``.

        Keeps a two-deep ring per dtype so the hot ping-pong idiom
        ``f = table.gather(f)`` stabilizes at two buffers after warm-up
        instead of allocating a fresh field every call (the
        per-call-allocation hot-path bug); any buffer aliasing ``f`` —
        e.g. the one handed out on the previous call — is skipped, never
        clobbered.
        """
        bufs = self._scratch.setdefault(f.dtype, [])
        for buf in bufs:
            if buf is not f and not np.shares_memory(buf, f):
                return buf
        buf = np.empty((self.src.shape[0], *self.shape), dtype=f.dtype)
        if len(bufs) < 2:
            bufs.append(buf)
        return buf

    def gather(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Stream a ``(Q, *shape)`` (or ``(Q, N)``) field in one gather.

        Equivalent to :func:`repro.core.streaming.stream_push` (and, by
        the shared-displacement convention, ``stream_pull``) — the result
        is a pure permutation, so it matches the roll-based reference
        bit for bit. ``out`` must not alias ``f``.

        When ``out`` is omitted the result lands in a **table-owned**
        reusable buffer (a two-deep per-dtype ring): it stays valid until
        the second subsequent ``out=None`` gather of the same dtype, which
        supports ``f = table.gather(f)`` ping-ponging with zero
        steady-state allocations. Callers that need the result to outlive
        that window must pass their own ``out`` (or copy).
        """
        if out is None:
            out = self._owned_out(f)
        if out is f or np.shares_memory(f, out):
            raise ValueError("gather cannot stream in place: out aliases f")
        # mode="clip" is semantically a no-op (the indices are in-range
        # by construction) but skips NumPy's bounce-buffer path for
        # out= takes.
        np.take(f.reshape(-1), self.flat, out=out.reshape(-1), mode="clip")
        return out


class MaskedNeighborTable:
    """Compact fluid-node streaming table with bounce-back-folded solid links.

    The dense :class:`NeighborTable` realizes periodic streaming over the
    *whole* rectangular grid; on a domain that is mostly solid that wastes
    most of every pass. This table compacts the fluid-like nodes (fluid +
    inlet + outlet, i.e. ``~solid``) into one index list of length
    ``n_fluid`` — the indirect-addressing layout of Tomczak & Szafran's
    sparse-geometry GPU LBM — and precomputes, per ``(component, compact
    node)`` pair, where the streamed value comes from:

    * a **fluid-source link** gathers component ``q`` from the compact
      index of the periodic neighbour ``x - c_q``, exactly the Eq. 7
      displacement of the dense table;
    * a **solid-source link** is *folded*: it gathers component
      ``opposite[q]`` from the *same* compact node, which is precisely the
      half-way bounce-back pull
      (:class:`repro.boundary.HalfwayBounceBack.post_stream` reflects
      ``f_source[opposite[q]]`` at the target node). Cores that stream a
      problem *without* a bounce-back boundary overwrite those entries with
      the rest-equilibrium weights instead (see :attr:`solid_links`),
      matching the dense kernels' pinned solid nodes.

    Attributes
    ----------
    fluid_flat:
        ``(n_fluid,)`` flat dense node indices of the compact list, in C
        order — the scatter/gather map between dense ``(Q, *shape)``
        fields and compact ``(Q, n_fluid)`` fields.
    dense_to_compact:
        ``(n_nodes,)`` inverse map (``-1`` at solid nodes).
    src / src_comp:
        ``(Q, n_fluid)`` compact source index and source component per
        link (bounce-back-folded at solid links).
    flat_compact:
        ``src_comp * n_fluid + src`` — one ``np.take`` over a raveled
        compact ``(Q, n_fluid)`` field performs the whole (folded)
        propagation step.
    flat_dense:
        The same gather expressed against the raveled dense ``(Q,
        n_nodes)`` field, so a core whose persistent state is dense can
        fuse compaction and streaming into a single ``np.take``.
    solid_links:
        Per-component arrays of compact target indices whose source node
        is solid — the folded links. Used for the rest-equilibrium
        overwrite and for moving-wall momentum terms.
    """

    def __init__(self, lat: LatticeDescriptor, solid_mask: np.ndarray):
        solid = np.asarray(solid_mask, dtype=bool)
        if solid.ndim != lat.d:
            raise ValueError(
                f"solid mask dimension {solid.ndim} does not match lattice "
                f"dimension {lat.d}"
            )
        self.lat_name = lat.name
        self.shape = solid.shape
        self.n_nodes = int(solid.size)
        fluid = ~solid
        self.fluid_flat = np.flatnonzero(fluid.ravel())
        self.n_fluid = int(self.fluid_flat.size)
        if self.n_fluid == 0:
            raise ValueError("mask has no fluid nodes to compact")
        self.dense_to_compact = np.full(self.n_nodes, -1, dtype=np.intp)
        self.dense_to_compact[self.fluid_flat] = np.arange(
            self.n_fluid, dtype=np.intp)

        # Dense flat index of the periodic source node x - c_q for every
        # compact node x (same arithmetic as NeighborTable, restricted to
        # the fluid rows).
        dense = neighbor_table(lat, self.shape)
        src_dense = dense.src[:, self.fluid_flat]          # (Q, n_fluid)
        src_is_solid = ~fluid.ravel()[src_dense]

        self.src = self.dense_to_compact[src_dense]
        self.src_comp = np.broadcast_to(
            np.arange(lat.q, dtype=np.intp)[:, None],
            self.src.shape).copy()
        self.solid_links: list[np.ndarray] = []
        self_idx = np.arange(self.n_fluid, dtype=np.intp)
        for q in range(lat.q):
            links = np.flatnonzero(src_is_solid[q])
            self.solid_links.append(links)
            # Fold: pull opposite[q] at the target node itself.
            self.src[q, links] = self_idx[links]
            self.src_comp[q, links] = lat.opposite[q]
        self.flat_compact = (self.src_comp * self.n_fluid + self.src).ravel()
        self.flat_dense = (self.src_comp * self.n_nodes
                           + self.fluid_flat[self.src]).ravel()
        # Flat dense indices of every (component, fluid node) pair — the
        # one-take compaction map for (Q, N) and (D, N) fields.
        self.compact_idx = (np.arange(lat.q, dtype=np.intp)[:, None]
                            * self.n_nodes + self.fluid_flat).ravel()

    def field_idx(self, n_components: int) -> np.ndarray:
        """Flat dense gather indices compacting an ``(n_components, N)`` field."""
        return (np.arange(n_components, dtype=np.intp)[:, None]
                * self.n_nodes + self.fluid_flat).ravel()

    def gather_compact(self, fc: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Stream a compact ``(Q, n_fluid)`` field (folded links included)."""
        np.take(fc.reshape(-1), self.flat_compact, out=out.reshape(-1),
                mode="clip")
        return out

    def gather_dense(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Stream a dense ``(Q, *shape)`` field straight into compact form."""
        np.take(f.reshape(-1), self.flat_dense, out=out.reshape(-1),
                mode="clip")
        return out

    def compact(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather the fluid columns of a dense ``(Q, *shape)`` field."""
        np.take(f.reshape(-1), self.compact_idx, out=out.reshape(-1),
                mode="clip")
        return out

    def scatter(self, fc: np.ndarray, f: np.ndarray) -> np.ndarray:
        """Write a compact ``(Q, n_fluid)`` field into the dense fluid columns."""
        f.reshape(fc.shape[0], -1)[:, self.fluid_flat] = fc
        return f


#: Cache of built tables, keyed by (lattice name, grid shape).
_CACHE: dict[tuple[str, tuple[int, ...]], NeighborTable] = {}


def neighbor_table(lat: LatticeDescriptor, shape: tuple[int, ...]) -> NeighborTable:
    """Build (or fetch the cached) :class:`NeighborTable` for a grid."""
    key = (lat.name, tuple(int(s) for s in shape))
    table = _CACHE.get(key)
    if table is None:
        table = _CACHE[key] = NeighborTable(lat, key[1])
    return table


def clear_cache() -> None:
    """Drop all cached tables (tests / memory-conscious callers)."""
    _CACHE.clear()


def stream_gather(lat: LatticeDescriptor, f: np.ndarray,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Table-driven drop-in for :func:`repro.core.streaming.stream_push`."""
    return neighbor_table(lat, f.shape[1:]).gather(f, out=out)
