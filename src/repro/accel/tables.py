"""Precomputed periodic neighbor-index tables for streaming gathers.

Exact streaming (paper Eq. 7) on a periodic grid is a fixed permutation of
the lattice sites: component ``i`` of the streamed field at node ``x`` is
the pre-stream value at ``x - c_i`` (push and pull use the same
displacement, see :mod:`repro.core.streaming`). The reference solvers
realize that permutation as ``Q`` separate ``np.roll`` passes — up to
``D`` slice copies *per component*. A :class:`NeighborTable` precomputes
the flat source index of every ``(component, node)`` pair once per
``(lattice, shape)``, so the whole propagation step collapses into a
single ``np.take`` gather — the host-side analogue of the index tables
indirect-addressing GPU kernels stream through
(:mod:`repro.gpu.kernels.indirect`), and the structure the Numba backend
JIT-fuses straight into its collide loop.

Tables are cached per ``(lattice name, shape)``; they are pure functions
of both, so the cache never needs invalidation (``clear_cache`` exists
for tests and memory-conscious callers).
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = ["NeighborTable", "neighbor_table", "clear_cache", "stream_gather"]


class NeighborTable:
    """Flat gather indices realizing periodic streaming for one grid.

    Attributes
    ----------
    src:
        ``(Q, N)`` array of flat node indices with
        ``streamed[q].ravel()[n] == f[q].ravel()[src[q, n]]`` — i.e. the
        source node of the Eq. 7 displacement under periodic wrap.
    flat:
        ``src`` with per-component offsets ``q * N`` added, so one
        ``np.take`` over the raveled ``(Q, N)`` field performs the whole
        propagation step in a single gather pass.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...]):
        if len(shape) != lat.d:
            raise ValueError(
                f"shape {shape} does not match lattice dimension {lat.d}"
            )
        self.lat_name = lat.name
        self.shape = tuple(int(s) for s in shape)
        self.n_nodes = int(np.prod(self.shape))
        coords = np.indices(self.shape).reshape(lat.d, self.n_nodes)
        src = np.zeros((lat.q, self.n_nodes), dtype=np.intp)
        strides = np.ones(lat.d, dtype=np.intp)
        for a in range(lat.d - 2, -1, -1):
            strides[a] = strides[a + 1] * self.shape[a + 1]
        for q in range(lat.q):
            for a in range(lat.d):
                src[q] += ((coords[a] - lat.c[q, a]) % self.shape[a]) * strides[a]
        self.src = src
        self.flat = (src + (np.arange(lat.q, dtype=np.intp)[:, None]
                            * self.n_nodes)).ravel()
        # Table-owned reusable output buffers for ``gather(..., out=None)``
        # calls, keyed by dtype (see :meth:`_owned_out`).
        self._scratch: dict[np.dtype, list[np.ndarray]] = {}

    def _owned_out(self, f: np.ndarray) -> np.ndarray:
        """A table-owned ``(Q, *shape)`` buffer that does not alias ``f``.

        Keeps a two-deep ring per dtype so the hot ping-pong idiom
        ``f = table.gather(f)`` stabilizes at two buffers after warm-up
        instead of allocating a fresh field every call (the
        per-call-allocation hot-path bug); any buffer aliasing ``f`` —
        e.g. the one handed out on the previous call — is skipped, never
        clobbered.
        """
        bufs = self._scratch.setdefault(f.dtype, [])
        for buf in bufs:
            if buf is not f and not np.shares_memory(buf, f):
                return buf
        buf = np.empty((self.src.shape[0], *self.shape), dtype=f.dtype)
        if len(bufs) < 2:
            bufs.append(buf)
        return buf

    def gather(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Stream a ``(Q, *shape)`` (or ``(Q, N)``) field in one gather.

        Equivalent to :func:`repro.core.streaming.stream_push` (and, by
        the shared-displacement convention, ``stream_pull``) — the result
        is a pure permutation, so it matches the roll-based reference
        bit for bit. ``out`` must not alias ``f``.

        When ``out`` is omitted the result lands in a **table-owned**
        reusable buffer (a two-deep per-dtype ring): it stays valid until
        the second subsequent ``out=None`` gather of the same dtype, which
        supports ``f = table.gather(f)`` ping-ponging with zero
        steady-state allocations. Callers that need the result to outlive
        that window must pass their own ``out`` (or copy).
        """
        if out is None:
            out = self._owned_out(f)
        if out is f or np.shares_memory(f, out):
            raise ValueError("gather cannot stream in place: out aliases f")
        # mode="clip" is semantically a no-op (the indices are in-range
        # by construction) but skips NumPy's bounce-buffer path for
        # out= takes.
        np.take(f.reshape(-1), self.flat, out=out.reshape(-1), mode="clip")
        return out


#: Cache of built tables, keyed by (lattice name, grid shape).
_CACHE: dict[tuple[str, tuple[int, ...]], NeighborTable] = {}


def neighbor_table(lat: LatticeDescriptor, shape: tuple[int, ...]) -> NeighborTable:
    """Build (or fetch the cached) :class:`NeighborTable` for a grid."""
    key = (lat.name, tuple(int(s) for s in shape))
    table = _CACHE.get(key)
    if table is None:
        table = _CACHE[key] = NeighborTable(lat, key[1])
    return table


def clear_cache() -> None:
    """Drop all cached tables (tests / memory-conscious callers)."""
    _CACHE.clear()


def stream_gather(lat: LatticeDescriptor, f: np.ndarray,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Table-driven drop-in for :func:`repro.core.streaming.stream_push`."""
    return neighbor_table(lat, f.shape[1:]).gather(f, out=out)
