"""Fused pure-NumPy step kernels for the ST / MR-P / MR-R schemes.

The reference solvers are written line-for-line against the paper's
algorithms: each step materializes the full post-collision distribution,
streams it with ``Q`` per-component ``np.roll`` passes, and projects
moments through ``np.einsum`` contractions that NumPy evaluates as naive
loops. This module provides drop-in *fused* realizations of the same
steps that

* evaluate every linear projection (moments -> f, Eq. 11; f -> moments,
  Eqs. 1-3; the Eq. 14 higher-order extension) as a single BLAS ``dgemm``
  over the flattened ``(components, nodes)`` field — for MR-R the
  reconstruction and the higher-order delta collapse into **one** matmul
  against the precomputed block matrix ``[R | E3 | E4]``;
* keep every intermediate in preallocated scratch buffers, so the hot
  loop performs zero per-step allocations;
* write the collided ST populations straight into the retired lattice
  buffer, eliminating the per-step temporary of the reference solver;
* stream either through ``np.roll`` slicing or through the
  :mod:`~repro.accel.tables` single-gather (selectable; rolls win on
  hosts where sliced copies beat indexed gathers, see
  ``docs/PERFORMANCE.md``);
* fold body forcing (Guo's half-force scheme, distribution space for ST
  and the moment-space projection of :mod:`repro.core.forcing` for MR)
  into the collision stage — a handful of extra FMAs per node against
  preallocated buffers, no additional field passes;
* accept a per-node ``tau_field`` in the MR-P collision (the local
  relaxation of :class:`repro.solver.non_newtonian.PowerLawMRPSolver`),
  so variable-viscosity problems keep the fused round trip.

Every kernel reproduces the corresponding reference solver to machine
precision: the collision arithmetic mirrors the reference expressions
operation-for-operation, and the only deviations are BLAS summation-order
effects at the level of one ulp per step (pinned by the parity suite in
``tests/unit/test_accel_backends.py``).

The classes here are *array-level* cores: they know nothing about
:class:`~repro.solver.base.Solver`. The solver-facing steppers that
:func:`repro.accel.make_stepper` hands out, and the distributed per-rank
steps in :mod:`repro.parallel.decomposition`, both drive these same
cores, so single-domain and slab-decomposed fused runs share one
implementation.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.collision import _split_trace
from ..core.streaming import stream_push
from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY
from .tables import neighbor_table

__all__ = ["FusedSTCore", "FusedMRCore", "STREAM_MODES"]

#: Streaming strategies understood by the fused cores. ``"auto"`` resolves
#: to ``"roll"``: on every CPU we have measured, NumPy's sliced roll passes
#: outrun the indexed single-gather (the table gather exists for the Numba
#: backend, where it fuses into the JIT loop — see docs/PERFORMANCE.md).
STREAM_MODES = ("auto", "roll", "gather")


def _resolve_stream(lat: LatticeDescriptor, shape: tuple[int, ...],
                    stream: str):
    """Validate the streaming mode and prebuild the table when needed."""
    if stream not in STREAM_MODES:
        raise ValueError(
            f"unknown streaming mode {stream!r}; expected one of {STREAM_MODES}"
        )
    if stream == "auto":
        stream = "roll"
    table = neighbor_table(lat, shape) if stream == "gather" else None
    return stream, table


class FusedSTCore:
    """Fused stream+collide step for the two-lattice ST scheme (BGK).

    One step performs, over the flattened ``(Q, N)`` field:

    1. pull streaming into the scratch lattice (roll or table gather);
    2. the post-stream boundary hooks (unchanged reference objects);
    3. BGK collision *through moment space*: ``m = P f`` (dgemm), the
       equilibrium as the Eq. 11 reconstruction of
       ``[rho, j, rho u u]`` (dgemm), and the relaxation written in
       place into the retired lattice buffer — no per-step temporary;
    4. solid-node pinning and the post-collide boundary hooks.

    The two lattice buffers keep fixed roles (``f`` / ``scratch``), so the
    caller's arrays are updated in place and never swapped.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float, stream: str = "auto"):
        self.lat = lat
        self.shape = tuple(shape)
        self.tau = float(tau)
        self.keep = 1.0 - 1.0 / self.tau
        self.stream_mode, self._table = _resolve_stream(lat, self.shape, stream)
        n = int(np.prod(self.shape))
        m = lat.n_moments
        self._mm = np.ascontiguousarray(lat.moment_matrix)
        self._rc = np.ascontiguousarray(lat.reconstruction_matrix)
        self._m = np.empty((m, n))
        self._meq = np.empty((m, n))
        self._u = np.empty((lat.d, n))
        self._feq = np.empty((lat.q, n))
        self._force_bufs = None

    def _stream(self, f: np.ndarray, out: np.ndarray) -> None:
        if self._table is not None:
            self._table.gather(f, out=out)
        else:
            stream_push(self.lat, f, out=out)

    def _ensure_force_bufs(self) -> tuple:
        """Scratch for the fused Guo source (allocated on first forced step)."""
        if self._force_bufs is None:
            lat = self.lat
            n = self._m.shape[1]
            self._force_bufs = (
                np.ascontiguousarray(lat.c, dtype=np.float64),  # (Q, D)
                np.empty((lat.q, n)),                           # c . F
                np.empty((lat.q, n)),                           # c . u
                np.empty((lat.d, n)),                           # u_a F_a terms
                np.empty(n),                                    # u . F
                (1.0 - 0.5 / self.tau) * lat.w[:, None],        # Guo prefactor
            )
        return self._force_bufs

    def _guo_source(self, ff: np.ndarray) -> np.ndarray:
        """Build the fused Guo source ``S_i`` for the flat force ``ff``.

        Mirrors :func:`repro.core.forcing.guo_source` operation for
        operation (including the division by ``cs2``/``cs4``) so forced
        fused runs track the reference trajectory at the ulp level.
        Returns the core-owned ``(Q, N)`` source buffer.
        """
        lat = self.lat
        cmat, cf, cu, uftmp, uf, wpref = self._ensure_force_bufs()
        np.matmul(cmat, ff, out=cf)
        np.matmul(cmat, self._u, out=cu)
        np.multiply(self._u, ff, out=uftmp)
        np.sum(uftmp, axis=0, out=uf)
        # S = pref w ((c.F - u.F)/cs2 + (c.u)(c.F)/cs4), built in place:
        # cu becomes the cs4 term, cf the cs2 term.
        cu *= cf
        cu /= lat.cs4
        cf -= uf
        cf /= lat.cs2
        cf += cu
        cf *= wpref
        return cf

    def _add_guo_source(self, out: np.ndarray, ff: np.ndarray) -> None:
        """Add the fused Guo source ``S_i`` for the flat force ``ff``."""
        out += self._guo_source(ff)

    def _moments_and_feq(self, fs: np.ndarray, ff: np.ndarray | None) -> None:
        """Fill ``_m``/``_u``/``_meq``/``_feq`` from the flat lattice ``fs``.

        The moment projection, (optionally half-force-shifted) velocity
        and Eq. 11 equilibrium reconstruction shared by the two-lattice
        step and the in-place AA steps of
        :class:`repro.accel.inplace.InplaceSTCore` — one body, so the
        single-lattice path is collide-identical by construction.
        """
        lat = self.lat
        d = lat.d
        np.matmul(self._mm, fs, out=self._m)
        rho = self._m[0]
        meq = self._meq
        meq[0] = rho
        if ff is None:
            np.divide(self._m[1:1 + d], rho, out=self._u)
            meq[1:1 + d] = self._m[1:1 + d]
        else:
            # u = (j + F/2)/rho; the equilibrium momentum is rho u.
            np.multiply(ff, 0.5, out=self._u)
            self._u += self._m[1:1 + d]
            self._u /= rho
            np.multiply(self._u, rho, out=meq[1:1 + d])
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(self._u[a], self._u[b], out=meq[1 + d + k])
            meq[1 + d + k] *= rho
        np.matmul(self._rc, meq, out=self._feq)

    def step(self, f: np.ndarray, scratch: np.ndarray, boundaries,
             solid_mask: np.ndarray | None, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None) -> None:
        """Advance one step in place (``f`` ends as the new lattice).

        ``force`` is an optional ``(D, *grid)`` body-force field; the
        collision then evaluates the equilibrium at Guo's half-force
        velocity and adds the fused source term.
        """
        lat = self.lat
        with tel.phase("stream"):
            self._stream(f, scratch)
        with tel.phase("boundary"):
            for b in boundaries:
                b.post_stream(lat, scratch, f)
        with tel.phase("collide"):
            fs = scratch.reshape(lat.q, -1)
            ff = None if force is None else force.reshape(lat.d, -1)
            self._moments_and_feq(fs, ff)
            # f* = feq + (1 - omega)(f - feq), written into the retired
            # lattice buffer.
            out = f.reshape(lat.q, -1)
            np.subtract(fs, self._feq, out=out)
            out *= self.keep
            out += self._feq
            if ff is not None:
                self._add_guo_source(out, ff)
            if solid_mask is not None:
                f[:, solid_mask] = lat.w[:, None]
        with tel.phase("boundary"):
            for b in boundaries:
                b.post_collide(lat, f, scratch)


class FusedMRCore:
    """Fused moment-representation step (MR-P or MR-R, Algorithm 2).

    One step goes moments -> f* -> streamed f -> moments with a single
    dgemm at each linear boundary of the pipeline:

    * moment-space collision (Eq. 10, mirroring the reference arithmetic
      exactly, including the optional ``tau_bulk`` trace split) into the
      coefficient block ``G``;
    * for MR-R, the collided third/fourth-order Hermite coefficients
      (Eqs. 12-13) are appended to ``G`` so that reconstruction (Eq. 14)
      is the single product ``[R | E3 | E4] @ G``;
    * streaming via roll or table gather into the scratch lattice;
    * boundary hooks, then re-projection ``m = P f`` (dgemm) straight
      back into the caller's moment field.

    The distribution field exists only inside the two scratch lattices
    owned by the core — the caller's persistent state stays the
    ``(M, *grid)`` moment field, exactly as in Algorithm 2.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float, scheme: str = "MR-P",
                 tau_bulk: float | None = None, stream: str = "auto",
                 f_scratch: np.ndarray | None = None, alloc_f: bool = True):
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be MR-P or MR-R, got {scheme!r}")
        self.lat = lat
        self.shape = tuple(shape)
        self.tau = float(tau)
        self.tau_bulk = tau_bulk
        self.keep = 1.0 - 1.0 / self.tau
        self.scheme = scheme
        self.stream_mode, self._table = _resolve_stream(lat, self.shape, stream)
        n = int(np.prod(self.shape))
        d, m = lat.d, lat.n_moments
        self._mm = np.ascontiguousarray(lat.moment_matrix)
        self._u = np.empty((d, n))
        self._pi_eq = np.empty((lat.n_pairs, n))
        self._pi_neq = np.empty((lat.n_pairs, n))
        self._keep_buf = None   # per-node 1 - 1/tau for the tau_field path
        self._pref_buf = None   # per-node 1 - 1/(2 tau) force prefactor
        self._src_buf = None    # scratch for the moment-space force terms
        if alloc_f:
            self._f_star = np.empty((lat.q, *self.shape))
            if f_scratch is None:
                f_scratch = np.empty((lat.q, *self.shape))
            self._f_new = f_scratch
        else:
            # Collision-stage-only use (the Numba backend never
            # materializes the distribution field).
            self._f_star = self._f_new = None

        if scheme == "MR-P":
            self._rcext = np.ascontiguousarray(lat.reconstruction_matrix)
            self._g = np.empty((m, n))
            self._a34_specs = None
        else:
            s3, s4 = lat.h3_supported, lat.h4_supported
            w3 = lat.triple_mult[s3] / (6.0 * lat.cs6)
            w4 = lat.quad_mult[s4] / (24.0 * lat.cs8)
            e3 = lat.w[:, None] * lat.h3_reg_cols[:, s3] * w3[None, :]
            e4 = lat.w[:, None] * lat.h4_reg_cols[:, s4] * w4[None, :]
            self._rcext = np.ascontiguousarray(
                np.hstack([lat.reconstruction_matrix, e3, e4]))
            self._g = np.empty((m + s3.size + s4.size, n))
            # Index recipes for the supported recursion columns:
            # a3_abc = rho u_a u_b u_c + keep (u_a Pi_bc + u_b Pi_ac + u_c Pi_ab)
            # a4_abcd = rho u_a u_b u_c u_d + keep sum_6 u_r u_s Pi_pq
            trip = [(t, [(t[0], lat.pair_index(t[1], t[2])),
                         (t[1], lat.pair_index(t[0], t[2])),
                         (t[2], lat.pair_index(t[0], t[1]))])
                    for t in (lat.triple_tuples[k] for k in s3)]
            quads = []
            for k in s4:
                quad = lat.quad_tuples[k]
                terms = []
                for pos in itertools.combinations(range(4), 2):
                    rest = [quad[i] for i in range(4) if i not in pos]
                    terms.append((rest[0], rest[1],
                                  lat.pair_index(quad[pos[0]], quad[pos[1]])))
                quads.append((quad, terms))
            self._a34_specs = (trip, quads)

    def _stream(self, f: np.ndarray, out: np.ndarray) -> None:
        if self._table is not None:
            self._table.gather(f, out=out)
        else:
            stream_push(self.lat, f, out=out)

    def _collide(self, mf: np.ndarray, force: np.ndarray | None = None,
                 tau_field: np.ndarray | None = None) -> None:
        """Fill the coefficient block ``G`` from the flat moment field.

        ``force`` is an optional flat ``(D, N)`` body-force field: the
        equilibria are evaluated at Guo's half-force velocity and the
        projected source moments (momentum input ``F``, second-moment
        source ``(1 - 1/(2 tau))(u F + F u)``) are added, mirroring
        :func:`repro.core.forcing.apply_moment_space_force`.

        ``tau_field`` is an optional flat ``(N,)`` per-node relaxation
        time (MR-P only); it replaces the scalar ``tau`` in both the
        relaxation factor and the force prefactor, mirroring the
        power-law solver's variable-tau collision.
        """
        lat = self.lat
        d = lat.d
        rho, j, pi = mf[0], mf[1:1 + d], mf[1 + d:]
        u = self._u
        if force is None:
            np.divide(j, rho, out=u)
        else:
            np.multiply(force, 0.5, out=u)
            u += j
            u /= rho
        if tau_field is None:
            keep = self.keep
        else:
            if self._keep_buf is None:
                self._keep_buf = np.empty_like(tau_field)
            keep = self._keep_buf
            np.divide(-1.0, tau_field, out=keep)
            keep += 1.0
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(u[a], u[b], out=self._pi_eq[k])
            self._pi_eq[k] *= rho
        np.subtract(pi, self._pi_eq, out=self._pi_neq)
        g = self._g
        g[0] = rho
        if force is None:
            g[1:1 + d] = j
        else:
            np.add(j, force, out=g[1:1 + d])
        g_pi = g[1 + d:1 + d + lat.n_pairs]
        if self.tau_bulk is None or tau_field is not None:
            # tau_field implies the plain projective relaxation (the
            # variable-tau reference path has no bulk split either).
            np.multiply(self._pi_neq, keep, out=g_pi)
            g_pi += self._pi_eq
        else:
            dev, trace_cols = _split_trace(lat, self._pi_neq)
            g_pi[:] = (self._pi_eq + self.keep * dev
                       + (1.0 - 1.0 / self.tau_bulk) * trace_cols)
        if force is not None:
            self._add_moment_force(g_pi, u, force, tau_field)
        if self._a34_specs is not None:
            trip, quads = self._a34_specs
            keep = self.keep
            row = 1 + d + lat.n_pairs
            for (a, b, c), terms in trip:
                acc = rho * u[a] * u[b] * u[c]
                for v, p in terms:
                    acc += keep * (u[v] * self._pi_neq[p])
                g[row] = acc
                row += 1
            for (a, b, c, e), terms in quads:
                acc = rho * u[a] * u[b] * u[c] * u[e]
                for r0, r1, p in terms:
                    acc += keep * (u[r0] * u[r1] * self._pi_neq[p])
                g[row] = acc
                row += 1

    def _add_moment_force(self, g_pi: np.ndarray, u: np.ndarray,
                          force: np.ndarray,
                          tau_field: np.ndarray | None) -> None:
        """Add the projected Guo second-moment source to ``g_pi`` in place."""
        lat = self.lat
        if tau_field is None:
            pref = 1.0 - 0.5 / self.tau
        else:
            if self._pref_buf is None:
                self._pref_buf = np.empty_like(tau_field)
            pref = self._pref_buf
            np.divide(-0.5, tau_field, out=pref)
            pref += 1.0
        if self._src_buf is None:
            self._src_buf = (np.empty(g_pi.shape[1]), np.empty(g_pi.shape[1]))
        src, tmp = self._src_buf
        for k, (a, b) in enumerate(lat.pair_tuples):
            np.multiply(u[a], force[b], out=src)
            np.multiply(u[b], force[a], out=tmp)
            src += tmp
            src *= pref
            g_pi[k] += src

    def step(self, m: np.ndarray, boundaries,
             solid_mask: np.ndarray | None, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None,
             tau_field: np.ndarray | None = None) -> None:
        """Advance the ``(M, *grid)`` moment field one step in place.

        ``force`` is an optional ``(D, *grid)`` body-force field (the
        projected Guo coupling); ``tau_field`` an optional ``(*grid,)``
        per-node relaxation time (MR-P only, see :meth:`_collide`).
        """
        lat = self.lat
        if tau_field is not None and self.scheme != "MR-P":
            raise ValueError(
                "per-node tau_field collision is implemented for the MR-P "
                "scheme only"
            )
        mf = m.reshape(lat.n_moments, -1)
        with tel.phase("collide"):
            self._collide(
                mf,
                force=None if force is None else force.reshape(lat.d, -1),
                tau_field=None if tau_field is None
                else tau_field.reshape(-1))
            np.matmul(self._rcext, self._g,
                      out=self._f_star.reshape(lat.q, -1))
        with tel.phase("stream"):
            self._stream(self._f_star, self._f_new)
        with tel.phase("boundary"):
            for b in boundaries:
                b.post_stream(lat, self._f_new, self._f_star)
        with tel.phase("macroscopic"):
            np.matmul(self._mm, self._f_new.reshape(lat.q, -1), out=mf)
            if solid_mask is not None:
                m[:, solid_mask] = 0.0
                m[0, solid_mask] = 1.0
