"""Optional Numba-JIT realization of the fused step kernels.

The pure-NumPy fused cores (:mod:`repro.accel.fused`) still write the
post-collision distribution to memory before streaming it. With Numba
available, the streaming gather can be JIT-fused *into* the adjacent
dense stage, so each node's populations live only in registers between
phases — the host-side analogue of the paper's single-kernel GPU step:

* **ST** — one kernel per step: gather the ``Q`` neighbor populations
  through the :class:`~repro.accel.tables.NeighborTable`, compute the
  Eq. 4 equilibrium and BGK relaxation locally, write the new lattice.
* **MR-P / MR-R** — the moment-space collision (shared with the NumPy
  core) produces the coefficient block ``G``; one kernel then evaluates
  reconstruction (``[R | E3 | E4]`` columns), streaming (via the table)
  and the moment projection ``m = P f`` per node, so the distribution
  field is **never materialized** — moments -> f -> streamed f ->
  moments in one pass, exactly Algorithm 2's promise.

Numba is an optional extra (``pip install .[accel]``): this module
imports cleanly without it, exposing :data:`HAS_NUMBA` so callers and
tests can gate/skip. The JIT path supports fully periodic, solid-free
problems (the regime the paper benchmarks); the MR kernels additionally
take body forcing and a per-node ``tau_field`` (both live in the shared
NumPy collision stage), while the ST kernel stays unforced. Anything
else is rejected by :func:`repro.accel.validate_backend` at solver
construction, before a kernel runs.
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor
from ..obs.telemetry import NULL_TELEMETRY
from .fused import FusedMRCore
from .tables import neighbor_table

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the common offline/CI path
    numba = None
    HAS_NUMBA = False

__all__ = ["HAS_NUMBA", "NumbaSTCore", "NumbaMRCore"]


#: Nodes per parallel chunk in the JIT kernels. The per-node scratch
#: vectors (``local``/``u``/``fvec``) are hoisted to one allocation per
#: *chunk* instead of one per node, so a step performs ``O(N / _CHUNK)``
#: tiny allocations rather than ``O(N)`` — the hot-path allocation bug.
#: The value only has to be large enough to amortize the allocator call;
#: it does not affect results (the arithmetic per node is unchanged).
_CHUNK = 2048


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(parallel=True, fastmath=False, cache=True)
    def _st_bgk_kernel(f, out, src, c, w, cs2, cs4, keep):
        """Fused gather + BGK collide: one pass over the flat node axis."""
        q, n = src.shape
        d = c.shape[1]
        n_chunks = (n + _CHUNK - 1) // _CHUNK
        for chunk in numba.prange(n_chunks):
            local = np.empty(q)
            u = np.empty(d)
            stop = min((chunk + 1) * _CHUNK, n)
            for node in range(chunk * _CHUNK, stop):
                rho = 0.0
                for i in range(q):
                    val = f[i, src[i, node]]
                    local[i] = val
                    rho += val
                for a in range(d):
                    u[a] = 0.0
                for i in range(q):
                    for a in range(d):
                        u[a] += c[i, a] * local[i]
                usq = 0.0
                for a in range(d):
                    u[a] /= rho
                    usq += u[a] * u[a]
                for i in range(q):
                    cu = 0.0
                    for a in range(d):
                        cu += c[i, a] * u[a]
                    feq = w[i] * rho * (1.0 + cu / cs2
                                        + cu * cu / (2.0 * cs4)
                                        - usq / (2.0 * cs2))
                    out[i, node] = feq + keep * (local[i] - feq)

    @numba.njit(parallel=True, fastmath=False, cache=True)
    def _moment_fused_kernel(g, rcext, mm, src, m_out):
        """Reconstruct, stream and re-project in one pass per node.

        ``g`` is the collided coefficient block ``(Mext, N)``; for each
        node the ``Q`` streamed populations are evaluated on the fly as
        ``rcext @ g[:, src]`` and immediately contracted with the moment
        matrix — the distribution never touches memory.
        """
        q, n = src.shape
        mext = rcext.shape[1]
        m_rows = mm.shape[0]
        n_chunks = (n + _CHUNK - 1) // _CHUNK
        for chunk in numba.prange(n_chunks):
            fvec = np.empty(q)
            stop = min((chunk + 1) * _CHUNK, n)
            for node in range(chunk * _CHUNK, stop):
                for i in range(q):
                    s = src[i, node]
                    acc = 0.0
                    for k in range(mext):
                        acc += rcext[i, k] * g[k, s]
                    fvec[i] = acc
                for r in range(m_rows):
                    acc = 0.0
                    for i in range(q):
                        acc += mm[r, i] * fvec[i]
                    m_out[r, node] = acc


def _require_numba() -> None:
    if not HAS_NUMBA:
        raise RuntimeError(
            "the 'numba' backend requires numba (pip install .[accel]); "
            "use backend='fused' for the pure-NumPy fast path"
        )


class NumbaSTCore:
    """JIT-fused gather+collide step for the ST scheme (periodic BGK).

    Unlike :class:`~repro.accel.fused.FusedSTCore`, the step needs the
    two lattice buffers to swap roles (the kernel reads one, writes the
    other), so :meth:`step` returns the ``(f, scratch)`` pair for the
    caller to rebind.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float):
        _require_numba()
        self.lat = lat
        self.shape = tuple(shape)
        self.tau = float(tau)
        self.keep = 1.0 - 1.0 / self.tau
        self._src = neighbor_table(lat, self.shape).src
        self._c = np.ascontiguousarray(lat.c, dtype=np.float64)
        self._w = np.ascontiguousarray(lat.w)

    def step(self, f: np.ndarray, scratch: np.ndarray, tel=NULL_TELEMETRY):
        """Advance one step; returns the rebound ``(f, scratch)`` pair."""
        lat = self.lat
        with tel.phase("stream+collide"):
            _st_bgk_kernel(f.reshape(lat.q, -1), scratch.reshape(lat.q, -1),
                           self._src, self._c, self._w, lat.cs2, lat.cs4,
                           self.keep)
        return scratch, f


class NumbaMRCore:
    """JIT-fused MR-P / MR-R step: moments in, moments out, no f field.

    The moment-space collision is delegated to the NumPy
    :class:`~repro.accel.fused.FusedMRCore` (identical arithmetic, BLAS
    friendly); the reconstruction + streaming + projection pipeline runs
    as one JIT kernel over the neighbor table.
    """

    def __init__(self, lat: LatticeDescriptor, shape: tuple[int, ...],
                 tau: float, scheme: str = "MR-P",
                 tau_bulk: float | None = None):
        _require_numba()
        self.lat = lat
        self.shape = tuple(shape)
        # Reuse the NumPy core's collision stage and precomputed [R|E3|E4].
        self._core = FusedMRCore(lat, shape, tau, scheme=scheme,
                                 tau_bulk=tau_bulk, stream="roll",
                                 alloc_f=False)
        self._src = neighbor_table(lat, self.shape).src
        self.scheme = scheme

    def step(self, m: np.ndarray, tel=NULL_TELEMETRY,
             force: np.ndarray | None = None,
             tau_field: np.ndarray | None = None) -> None:
        """Advance the ``(M, *grid)`` moment field one step in place.

        ``force``/``tau_field`` reach the shared NumPy collision stage
        (see :meth:`repro.accel.fused.FusedMRCore._collide`); the JIT
        reconstruct+stream+project kernel is force-agnostic, so forced
        and variable-tau periodic problems ride the same fused pass.
        """
        lat = self.lat
        core = self._core
        if tau_field is not None and self.scheme != "MR-P":
            raise ValueError(
                "per-node tau_field collision is implemented for the MR-P "
                "scheme only"
            )
        mf = m.reshape(lat.n_moments, -1)
        with tel.phase("collide"):
            core._collide(
                mf,
                force=None if force is None else force.reshape(lat.d, -1),
                tau_field=None if tau_field is None
                else tau_field.reshape(-1))
        with tel.phase("stream+moments"):
            _moment_fused_kernel(core._g, core._rcext, core._mm, self._src,
                                 mf)
