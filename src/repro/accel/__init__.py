"""Selectable fast-path execution backends for the host solvers.

This package is the architecture seam for host-side acceleration: the
reference solvers in :mod:`repro.solver` stay the line-for-line
transcription of the paper's algorithms, while the cores here provide
faster realizations of the *same* steps, selected per solver via
``Solver(..., backend=...)`` or ``mrlbm run/profile --accel``:

``"reference"``
    The solvers' own step methods — the validated baseline.
``"fused"``
    Pure-NumPy fused kernels (:mod:`repro.accel.fused`): BLAS-backed
    moment projections, preallocated buffers, no post-collision
    temporary. Always available.
``"aa"``
    Single-lattice in-place streaming (:mod:`repro.accel.inplace`):
    the AA pattern of the reference ``solver/aa.py`` fused with the
    same collision arithmetic as ``"fused"``. One persistent lattice
    (half the ST state footprint), and on boundary-free problems one
    streaming traversal per step *pair* instead of one per step — the
    memory-traffic model is derived in ``docs/ALGORITHMS.md``. Always
    available; falls back to conservative fused-identical steps when
    boundary objects are present.
``"sparse"``
    Compact-state kernels (:mod:`repro.accel.sparse`) for sparse
    geometries: the working state shrinks to the fluid-node index list
    of a :class:`~repro.accel.tables.MaskedNeighborTable`, streaming is
    one bounce-back-folded gather, and the fused collision dgemms run
    over ``n_fluid`` columns instead of the dense grid. Always
    available; the win scales with the solid fraction (see
    ``docs/ALGORITHMS.md``). Boundaries with custom post-collide hooks
    (full-way bounce-back) are rejected.
``"numba"``
    JIT kernels (:mod:`repro.accel.numba_backend`) that fuse the
    table-driven streaming gather into the adjacent compute stage.
    Requires the optional ``numba`` extra (``pip install .[accel]``).

Every backend reproduces the reference trajectory to machine precision
(pinned by ``tests/unit/test_accel_backends.py``). Use
:func:`available_backends` for runtime discovery,
:func:`validate_backend` to check a solver/backend combination at
construction time, and :func:`make_stepper` to bind a backend to a
constructed solver.

Capability handshake
--------------------
Fast paths are not inferred from the class hierarchy: a solver class
opts in by declaring an ``accel_caps`` dict **in its own class body**
(inherited declarations do not count, so a subclass that overrides
physics is rejected until it certifies its own compatibility)::

    accel_caps = {"family": "st"}                       # STSolver
    accel_caps = {"family": "mr", "scheme": "MR-P"}     # MRPSolver
    accel_caps = {"family": "mr", "scheme": "MR-P",
                  "variable_tau": True}                 # PowerLawMRPSolver

``family`` selects the kernel family (``"st"`` two-lattice BGK,
``"mr"`` moment representation with ``scheme`` ``"MR-P"``/``"MR-R"``).
``variable_tau: True`` means the solver exposes a grid-shaped
``tau_field`` and an ``_update_relaxation()`` hook, and the MR stepper
runs the per-node relaxation path each step. ``batched: True``
certifies the solver for lockstep ensemble execution through the
batched cores of :mod:`repro.accel.batched` — its state arrays may be
rebound to batch-array views and stepped by
:class:`repro.ensemble.EnsembleRunner` instead of its own step method.
"""

from __future__ import annotations

from .batched import BatchedFusedMRCore, BatchedFusedSTCore
from .fused import STREAM_MODES, FusedMRCore, FusedSTCore
from .inplace import InplaceMRCore, InplaceSTCore, aa_to_natural, natural_to_aa
from .numba_backend import HAS_NUMBA, NumbaMRCore, NumbaSTCore
from .sparse import SparseMRCore, SparseSTCore
from .tables import (MaskedNeighborTable, NeighborTable, clear_cache,
                     neighbor_table, stream_gather)

__all__ = [
    "BACKENDS",
    "available_backends",
    "make_stepper",
    "validate_backend",
    "solver_caps",
    "FusedSTCore",
    "FusedMRCore",
    "BatchedFusedSTCore",
    "BatchedFusedMRCore",
    "InplaceSTCore",
    "InplaceMRCore",
    "natural_to_aa",
    "aa_to_natural",
    "NumbaSTCore",
    "NumbaMRCore",
    "SparseSTCore",
    "SparseMRCore",
    "NeighborTable",
    "MaskedNeighborTable",
    "neighbor_table",
    "stream_gather",
    "clear_cache",
    "HAS_NUMBA",
    "STREAM_MODES",
]

#: Recognized backend names, in preference order (numba last so that
#: :func:`available_backends` can drop it when the extra is missing).
BACKENDS = ("reference", "fused", "aa", "sparse", "numba")


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment (numba only if importable)."""
    return BACKENDS if HAS_NUMBA else BACKENDS[:-1]


class _FusedSTStepper:
    """Binds a :class:`FusedSTCore` to an :class:`~repro.solver.standard.STSolver`."""

    backend = "fused"

    def __init__(self, solver, stream: str = "auto"):
        self.core = FusedSTCore(solver.lat, solver.domain.shape, solver.tau,
                                stream=stream)
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None

    def step(self, solver) -> None:
        """One fused ST step updating ``solver.f`` in place."""
        self.core.step(solver.f, solver._f_streamed, solver.boundaries,
                       self._solid, solver.telemetry, force=solver.force)


class _FusedMRStepper:
    """Binds a :class:`FusedMRCore` to an MR-P or MR-R family solver."""

    backend = "fused"

    def __init__(self, solver, scheme: str, variable_tau: bool = False,
                 stream: str = "auto"):
        self.core = FusedMRCore(
            solver.lat, solver.domain.shape, solver.tau, scheme=scheme,
            tau_bulk=None if variable_tau
            else getattr(solver, "tau_bulk", None),
            stream=stream, f_scratch=solver._f_scratch)
        self.variable_tau = variable_tau
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None

    def step(self, solver) -> None:
        """One fused MR step updating ``solver.m`` in place."""
        tau_field = None
        if self.variable_tau:
            with solver.telemetry.phase("collide"):
                solver._update_relaxation()
            tau_field = solver.tau_field
        self.core.step(solver.m, solver.boundaries, self._solid,
                       solver.telemetry, force=solver.force,
                       tau_field=tau_field)


class _InplaceSTStepper:
    """Binds an :class:`InplaceSTCore` to an ST solver (the ``"aa"`` backend).

    On boundary-free problems the two lean step flavours alternate on
    the solver clock's parity (even time = natural layout, odd time =
    AA layout — see :mod:`repro.accel.inplace`); with boundary objects
    the conservative fused-identical step runs every time, keeping the
    state natural so the hooks and checkpoints see what they expect.
    """

    backend = "aa"

    def __init__(self, solver, stream: str = "auto"):
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None
        self.lean = not solver.boundaries
        self.core = InplaceSTCore(
            solver.lat, solver.domain.shape, solver.tau, stream=stream,
            solid_mask=self._solid if self.lean else None)

    def step(self, solver) -> None:
        """One single-lattice ST step updating ``solver.f`` in place."""
        if not self.lean:
            self.core.step_bounded(solver.f, solver.boundaries, self._solid,
                                   solver.telemetry, force=solver.force)
        elif solver.time % 2 == 0:
            self.core.step_scatter(solver.f, solver.telemetry,
                                   force=solver.force)
        else:
            self.core.step_local(solver.f, solver.telemetry,
                                 force=solver.force)


class _InplaceMRStepper:
    """Binds the single-buffer MR core to an MR solver (``"aa"`` backend).

    Boundary-free problems run :class:`InplaceMRCore` (one distribution
    buffer, tiled gather-project); bounded problems fall back to the
    two-buffer :class:`FusedMRCore` — same trajectory, no footprint win
    yet (see docs/ALGORITHMS.md).
    """

    backend = "aa"

    def __init__(self, solver, scheme: str, variable_tau: bool = False):
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None
        self.variable_tau = variable_tau
        tau_bulk = (None if variable_tau
                    else getattr(solver, "tau_bulk", None))
        if solver.boundaries:
            self.core = FusedMRCore(solver.lat, solver.domain.shape,
                                    solver.tau, scheme=scheme,
                                    tau_bulk=tau_bulk)
        else:
            self.core = InplaceMRCore(solver.lat, solver.domain.shape,
                                      solver.tau, scheme=scheme,
                                      tau_bulk=tau_bulk)

    def step(self, solver) -> None:
        """One single-buffer MR step updating ``solver.m`` in place."""
        tau_field = None
        if self.variable_tau:
            with solver.telemetry.phase("collide"):
                solver._update_relaxation()
            tau_field = solver.tau_field
        self.core.step(solver.m, solver.boundaries, self._solid,
                       solver.telemetry, force=solver.force,
                       tau_field=tau_field)


class _SparseSTStepper:
    """Binds a :class:`SparseSTCore` to an ST solver (compact fluid state)."""

    backend = "sparse"

    def __init__(self, solver):
        self.core = SparseSTCore(solver.lat, solver.domain.solid_mask,
                                 solver.tau, boundaries=solver.boundaries)

    def step(self, solver) -> None:
        """One compact-state ST step updating ``solver.f`` in place."""
        self.core.step(solver.f, solver.boundaries, solver.telemetry,
                       force=solver.force)


class _SparseMRStepper:
    """Binds a :class:`SparseMRCore` to an MR solver (compact fluid state)."""

    backend = "sparse"

    def __init__(self, solver, scheme: str, variable_tau: bool = False):
        self.core = SparseMRCore(
            solver.lat, solver.domain.solid_mask, solver.tau, scheme=scheme,
            tau_bulk=None if variable_tau
            else getattr(solver, "tau_bulk", None),
            boundaries=solver.boundaries)
        self.variable_tau = variable_tau

    def step(self, solver) -> None:
        """One compact-state MR step updating ``solver.m`` in place."""
        tau_field = None
        if self.variable_tau:
            with solver.telemetry.phase("collide"):
                solver._update_relaxation()
            tau_field = solver.tau_field
        self.core.step(solver.m, solver.boundaries, solver.telemetry,
                       force=solver.force, tau_field=tau_field)


class _NumbaSTStepper:
    """Binds a :class:`NumbaSTCore` to an ST solver (periodic BGK only)."""

    backend = "numba"

    def __init__(self, solver):
        self.core = NumbaSTCore(solver.lat, solver.domain.shape, solver.tau)

    def step(self, solver) -> None:
        """One JIT-fused ST step; rebinds the solver's lattice pair."""
        solver.f, solver._f_streamed = self.core.step(
            solver.f, solver._f_streamed, solver.telemetry)


class _NumbaMRStepper:
    """Binds a :class:`NumbaMRCore` to an MR solver (periodic only)."""

    backend = "numba"

    def __init__(self, solver, scheme: str, variable_tau: bool = False):
        self.core = NumbaMRCore(solver.lat, solver.domain.shape, solver.tau,
                                scheme=scheme,
                                tau_bulk=None if variable_tau
                                else getattr(solver, "tau_bulk", None))
        self.variable_tau = variable_tau

    def step(self, solver) -> None:
        """One JIT-fused MR step updating ``solver.m`` in place."""
        tau_field = None
        if self.variable_tau:
            with solver.telemetry.phase("collide"):
                solver._update_relaxation()
            tau_field = solver.tau_field
        self.core.step(solver.m, solver.telemetry, force=solver.force,
                       tau_field=tau_field)


def _reject(solver, backend: str, why: str):
    return ValueError(
        f"backend {backend!r} does not support this configuration of "
        f"{type(solver).__name__}: {why}; use backend='reference'"
    )


def solver_caps(solver) -> dict | None:
    """The solver's own ``accel_caps`` declaration, or ``None``.

    Only a declaration in the exact class body counts: subclasses do not
    inherit their parent's certification, so a subclass that overrides
    physics stays on the reference path until it opts in explicitly (see
    the module docstring).
    """
    return type(solver).__dict__.get("accel_caps")


def validate_backend(solver, backend: str | None = None) -> dict | None:
    """Check the solver/backend matrix; raise *before* any kernel runs.

    Called from :class:`~repro.solver.base.Solver` at construction time
    (and again by :func:`make_stepper`), so unsupported combinations
    fail fast — never mid-run after setup work has already happened.
    Returns the solver's capability declaration (``None`` for
    ``"reference"``). Raises :class:`ValueError` for unsupported
    combinations and :class:`RuntimeError` when numba is requested but
    not installed.
    """
    from ..core.collision import BGKCollision

    backend = solver.backend if backend is None else backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "reference":
        return None

    caps = solver_caps(solver)
    if caps is None:
        raise _reject(
            solver, backend,
            "the class declares no accel_caps — fast paths are an explicit "
            "opt-in, and subclasses that override physics must certify "
            "their own compatibility (see repro.accel)")
    family = caps.get("family")
    if family not in ("st", "mr"):
        raise _reject(solver, backend,
                      f"unknown accel_caps family {family!r}")

    if family == "st":
        # The collision attribute appears after the base constructor;
        # STSolver re-validates once it is set (still construction time).
        collision = getattr(solver, "collision", None)
        if collision is not None and type(collision) is not BGKCollision:
            raise _reject(solver, backend,
                          "only the plain BGK collision is fused for ST")

    if backend in ("fused", "aa"):
        # The single-lattice backend shares the fused support matrix:
        # bounded configurations run its conservative fused-identical
        # fallback, so no extra restrictions apply.
        return caps

    if backend == "sparse":
        # The compact-state step has no post-collide stage on the dense
        # field, so boundaries that hook it (full-way bounce-back) have
        # nowhere to run; everything else folds or falls back densely.
        from ..boundary.base import Boundary

        for b in solver.boundaries:
            if type(b).post_collide is not Boundary.post_collide:
                raise _reject(
                    solver, backend,
                    f"{type(b).__name__} customizes the post-collide hook, "
                    "which the compact-state sparse step does not run")
        return caps

    # backend == "numba"
    if not HAS_NUMBA:
        raise RuntimeError(
            "backend='numba' requested but numba is not installed; "
            "install the optional extra (pip install .[accel]) or use "
            "backend='fused'"
        )
    if solver.boundaries or solver.domain.solid_mask.any():
        raise _reject(solver, backend,
                      "the numba kernels support fully periodic, "
                      "solid-free problems only")
    if family == "st" and solver.force is not None:
        raise _reject(solver, backend,
                      "the numba ST kernel does not fuse body forcing; "
                      "use backend='fused'")
    return caps


def make_stepper(solver, backend: str | None = None):
    """Build the fast-path stepper bound to ``solver``.

    Dispatch follows the capability handshake (see the module
    docstring): the solver's own ``accel_caps`` declaration selects the
    kernel family, and :func:`validate_backend` re-checks the supported
    matrix. Returns ``None`` for ``backend="reference"``.
    """
    backend = solver.backend if backend is None else backend
    caps = validate_backend(solver, backend)
    if caps is None:
        return None

    family = caps["family"]
    variable_tau = bool(caps.get("variable_tau"))
    if backend == "fused":
        if family == "st":
            return _FusedSTStepper(solver)
        return _FusedMRStepper(solver, caps["scheme"],
                               variable_tau=variable_tau)
    if backend == "aa":
        if family == "st":
            return _InplaceSTStepper(solver)
        return _InplaceMRStepper(solver, caps["scheme"],
                                 variable_tau=variable_tau)
    if backend == "sparse":
        if family == "st":
            return _SparseSTStepper(solver)
        return _SparseMRStepper(solver, caps["scheme"],
                                variable_tau=variable_tau)
    if family == "st":
        return _NumbaSTStepper(solver)
    return _NumbaMRStepper(solver, caps["scheme"],
                           variable_tau=variable_tau)
