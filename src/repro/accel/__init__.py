"""Selectable fast-path execution backends for the host solvers.

This package is the architecture seam for host-side acceleration: the
reference solvers in :mod:`repro.solver` stay the line-for-line
transcription of the paper's algorithms, while the cores here provide
faster realizations of the *same* steps, selected per solver via
``Solver(..., backend=...)`` or ``mrlbm run/profile --accel``:

``"reference"``
    The solvers' own step methods — the validated baseline.
``"fused"``
    Pure-NumPy fused kernels (:mod:`repro.accel.fused`): BLAS-backed
    moment projections, preallocated buffers, no post-collision
    temporary. Always available.
``"numba"``
    JIT kernels (:mod:`repro.accel.numba_backend`) that fuse the
    table-driven streaming gather into the adjacent compute stage.
    Requires the optional ``numba`` extra (``pip install .[accel]``).

Every backend reproduces the reference trajectory to machine precision
(pinned by ``tests/unit/test_accel_backends.py``). Use
:func:`available_backends` for runtime discovery and
:func:`make_stepper` to bind a backend to a constructed solver.
"""

from __future__ import annotations

from .fused import STREAM_MODES, FusedMRCore, FusedSTCore
from .numba_backend import HAS_NUMBA, NumbaMRCore, NumbaSTCore
from .tables import NeighborTable, clear_cache, neighbor_table, stream_gather

__all__ = [
    "BACKENDS",
    "available_backends",
    "make_stepper",
    "FusedSTCore",
    "FusedMRCore",
    "NumbaSTCore",
    "NumbaMRCore",
    "NeighborTable",
    "neighbor_table",
    "stream_gather",
    "clear_cache",
    "HAS_NUMBA",
    "STREAM_MODES",
]

#: Recognized backend names, in preference order.
BACKENDS = ("reference", "fused", "numba")


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment (numba only if importable)."""
    return BACKENDS if HAS_NUMBA else BACKENDS[:-1]


class _FusedSTStepper:
    """Binds a :class:`FusedSTCore` to an :class:`~repro.solver.standard.STSolver`."""

    backend = "fused"

    def __init__(self, solver, stream: str = "auto"):
        self.core = FusedSTCore(solver.lat, solver.domain.shape, solver.tau,
                                stream=stream)
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None

    def step(self, solver) -> None:
        """One fused ST step updating ``solver.f`` in place."""
        self.core.step(solver.f, solver._f_streamed, solver.boundaries,
                       self._solid, solver.telemetry)


class _FusedMRStepper:
    """Binds a :class:`FusedMRCore` to an MR-P or MR-R solver."""

    backend = "fused"

    def __init__(self, solver, scheme: str, stream: str = "auto"):
        self.core = FusedMRCore(
            solver.lat, solver.domain.shape, solver.tau, scheme=scheme,
            tau_bulk=getattr(solver, "tau_bulk", None), stream=stream,
            f_scratch=solver._f_scratch)
        solid = solver.domain.solid_mask
        self._solid = solid if solid.any() else None

    def step(self, solver) -> None:
        """One fused MR step updating ``solver.m`` in place."""
        self.core.step(solver.m, solver.boundaries, self._solid,
                       solver.telemetry)


class _NumbaSTStepper:
    """Binds a :class:`NumbaSTCore` to an ST solver (periodic BGK only)."""

    backend = "numba"

    def __init__(self, solver):
        self.core = NumbaSTCore(solver.lat, solver.domain.shape, solver.tau)

    def step(self, solver) -> None:
        """One JIT-fused ST step; rebinds the solver's lattice pair."""
        solver.f, solver._f_streamed = self.core.step(
            solver.f, solver._f_streamed, solver.telemetry)


class _NumbaMRStepper:
    """Binds a :class:`NumbaMRCore` to an MR solver (periodic only)."""

    backend = "numba"

    def __init__(self, solver, scheme: str):
        self.core = NumbaMRCore(solver.lat, solver.domain.shape, solver.tau,
                                scheme=scheme,
                                tau_bulk=getattr(solver, "tau_bulk", None))

    def step(self, solver) -> None:
        """One JIT-fused MR step updating ``solver.m`` in place."""
        self.core.step(solver.m, solver.telemetry)


def _reject(solver, backend: str, why: str):
    return ValueError(
        f"backend {backend!r} does not support this configuration of "
        f"{type(solver).__name__}: {why}; use backend='reference'"
    )


def make_stepper(solver, backend: str | None = None):
    """Build the fast-path stepper bound to ``solver``.

    The supported solver/feature matrix is checked here, *before* any
    kernel runs: the fused backend accelerates the exact reference
    solver classes (``STSolver`` with plain BGK, ``MRPSolver``,
    ``MRRSolver`` — subclasses with overridden physics fall back to
    ``reference`` semantics and are rejected), and the numba backend
    additionally requires a fully periodic, solid-free, unforced,
    boundary-free problem. Raises :class:`ValueError` for unsupported
    combinations and :class:`RuntimeError` when numba is requested but
    not installed.
    """
    # Local imports: the solver package imports this package for
    # backend-name validation, so the reverse import must be deferred.
    from ..core.collision import BGKCollision
    from ..solver.moment import MRPSolver, MRRSolver
    from ..solver.standard import STSolver

    backend = solver.backend if backend is None else backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "reference":
        return None

    is_st = type(solver) is STSolver
    is_mrp = type(solver) is MRPSolver
    is_mrr = type(solver) is MRRSolver
    if not (is_st or is_mrp or is_mrr):
        raise _reject(
            solver, backend,
            "fast paths exist for STSolver, MRPSolver and MRRSolver only "
            "(subclasses may override physics the kernels hard-code)")
    if solver.force is not None:
        raise _reject(solver, backend, "body forcing is not fused")
    if is_st and type(solver.collision) is not BGKCollision:
        raise _reject(solver, backend,
                      "only the plain BGK collision is fused for ST")

    if backend == "fused":
        if is_st:
            return _FusedSTStepper(solver)
        return _FusedMRStepper(solver, "MR-P" if is_mrp else "MR-R")

    # backend == "numba"
    if not HAS_NUMBA:
        raise RuntimeError(
            "backend='numba' requested but numba is not installed; "
            "install the optional extra (pip install .[accel]) or use "
            "backend='fused'"
        )
    if solver.boundaries or solver.domain.solid_mask.any():
        raise _reject(solver, backend,
                      "the numba kernels support fully periodic, "
                      "solid-free problems only")
    if is_st:
        return _NumbaSTStepper(solver)
    return _NumbaMRStepper(solver, "MR-P" if is_mrp else "MR-R")
