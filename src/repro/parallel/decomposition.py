"""Distributed-memory domain decomposition (multi-device substrate).

The paper's lineage runs multi-GPU LBM at scale (Obrecht 2013, Robertsén
2017, Vardhan 2019); this package provides the corresponding substrate in
two interchangeable backends: a deterministic in-process emulation (this
module) and a real multiprocess SPMD runtime
(:mod:`repro.parallel.runtime`). In both, the global domain is split into
slabs along the streamwise axis, each rank owns a slab plus one-node
ghost layers, and every step performs an explicit halo exchange whose
volume is accounted exactly.

The moment representation changes the exchange payload: an ST rank must
receive the neighbour's post-collision *populations* crossing the cut
(5 of 19 for D3Q19 per direction, or all Q in naive implementations),
whereas an MR rank receives the neighbour's ghost *moments* (M = 10) and
reconstructs the crossing populations locally — trading a little
recomputation for less network traffic, exactly the compression the paper
exploits against DRAM.

Both backends drive the same per-rank primitives defined here —
:meth:`DistributedSolver._pack_halo`, :meth:`DistributedSolver._unpack_halo`
and :meth:`DistributedSolver._rank_step` — so the emulated exchange and
the shared-memory exchange move bit-identical payloads
(see ``docs/PARALLEL.md``).

Correctness: a distributed run over any number of ranks reproduces the
single-domain reference solver to machine precision (tested for periodic
and channel problems, all three schemes, both backends).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..boundary import Boundary
from ..core.collision import (
    collide_moments_projective,
    collide_moments_recursive,
)
from ..core.equilibrium import equilibrium, equilibrium_moments
from ..core.moments import f_from_moments, macroscopic, moments_from_f
from ..core.streaming import stream_pull, stream_push
from ..geometry import Domain
from ..lattice import LatticeDescriptor

__all__ = [
    "CommunicationReport",
    "SlabDecomposition",
    "DistributedSolver",
    "DistributedST",
    "DistributedMR",
    "distributed_channel_problem",
    "distributed_periodic_problem",
]

DOUBLE = 8


@dataclass
class CommunicationReport:
    """Halo-exchange accounting across a whole run.

    ``steps`` is advanced by the solver on every exchange round (one
    round per :meth:`DistributedSolver.step`), so ``bytes_per_step()``
    is well defined whether the run went through :meth:`~DistributedSolver.run`
    or through repeated direct ``step()`` calls.
    """

    bytes_sent: int = 0
    messages: int = 0
    steps: int = 0

    def record(self, n_values: int) -> None:
        """Account one directed message of ``n_values`` doubles."""
        self.bytes_sent += n_values * DOUBLE
        self.messages += 1

    def bytes_per_step(self) -> float:
        """Mean bytes moved per exchange round."""
        return self.bytes_sent / max(self.steps, 1)

    def merge(self, other: "CommunicationReport") -> None:
        """Fold another rank's accounting into this one (bytes and
        messages add; ``steps`` is the max, all ranks step in lockstep)."""
        self.bytes_sent += other.bytes_sent
        self.messages += other.messages
        self.steps = max(self.steps, other.steps)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot including the per-step rate."""
        return {
            "bytes_sent": self.bytes_sent,
            "messages": self.messages,
            "steps": self.steps,
            "bytes_per_step": self.bytes_per_step(),
        }


@dataclass(frozen=True)
class SlabDecomposition:
    """1D decomposition of the global grid along axis 0."""

    global_shape: tuple[int, ...]
    n_ranks: int
    periodic: bool

    def __post_init__(self) -> None:
        """Validate that every slab keeps at least 3 interior planes."""
        nx = self.global_shape[0]
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        if nx < 3 * self.n_ranks:
            raise ValueError(
                f"{self.n_ranks} slabs need a global extent of at least "
                f"{3 * self.n_ranks} along axis 0, got {nx}"
            )

    def bounds(self, rank: int) -> tuple[int, int]:
        """Global [start, stop) of a rank's interior slab."""
        nx = self.global_shape[0]
        base = nx // self.n_ranks
        rem = nx % self.n_ranks
        start = rank * base + min(rank, rem)
        width = base + (1 if rank < rem else 0)
        return start, start + width

    def has_left(self, rank: int) -> bool:
        """Whether the rank exchanges across its low-x face."""
        return self.periodic or rank > 0

    def has_right(self, rank: int) -> bool:
        """Whether the rank exchanges across its high-x face."""
        return self.periodic or rank < self.n_ranks - 1

    def left_of(self, rank: int) -> int:
        """Rank id of the low-x neighbour (wraps when periodic)."""
        return (rank - 1) % self.n_ranks

    def right_of(self, rank: int) -> int:
        """Rank id of the high-x neighbour (wraps when periodic)."""
        return (rank + 1) % self.n_ranks

    @property
    def face_nodes(self) -> int:
        """Number of lattice nodes in one cut face (a constant-x plane)."""
        out = 1
        for s in self.global_shape[1:]:
            out *= s
        return out


class _RankState:
    """Per-rank slab arrays and local boundary conditions."""

    def __init__(self, lat: LatticeDescriptor, domain_slab: Domain,
                 boundaries: list[Boundary], tau: float,
                 ghost_left: bool, ghost_right: bool):
        self.lat = lat
        self.domain = domain_slab
        self.tau = tau
        self.ghost_left = ghost_left
        self.ghost_right = ghost_right
        self.boundaries = [b.bind(lat, domain_slab, tau) for b in boundaries]

    @property
    def interior(self) -> slice:
        """Axis-0 slice selecting the owned (non-ghost) planes."""
        lo = 1 if self.ghost_left else 0
        hi = -1 if self.ghost_right else None
        return slice(lo, hi)

    def n_interior_fluid(self) -> int:
        """Number of fluid nodes this rank owns (ghost planes excluded)."""
        return int((~self.domain.solid_mask[self.interior]).sum())


class DistributedSolver:
    """Base class: slab setup, halo-exchange bookkeeping, gathering.

    Subclasses provide four per-rank primitives — :meth:`_init_rank_state`,
    :meth:`_pack_halo`, :meth:`_unpack_halo` and :meth:`_rank_step` — from
    which both :meth:`step` (the emulated backend) and the multiprocess
    runtime in :mod:`repro.parallel.runtime` are assembled.
    """

    scheme: str = "?"
    #: Name of the per-rank state attribute holding the exchanged field
    #: (``"f"`` for populations, ``"m"`` for moments).
    field_attr: str = "?"

    def __init__(self, lat: LatticeDescriptor, global_domain: Domain,
                 tau: float, n_ranks: int, periodic_axis0: bool,
                 boundary_factory, rho0=1.0, u0: np.ndarray | None = None,
                 force: np.ndarray | None = None,
                 st_exchange: str = "crossing",
                 accel: str = "reference"):
        self.lat = lat
        self.global_domain = global_domain
        self.tau = float(tau)
        self.decomp = SlabDecomposition(global_domain.shape, n_ranks,
                                        periodic_axis0)
        self.comm = CommunicationReport()
        self.time = 0
        if st_exchange not in ("crossing", "full"):
            raise ValueError("st_exchange must be 'crossing' or 'full'")
        self.st_exchange = st_exchange
        if accel not in ("reference", "fused", "aa", "sparse"):
            raise ValueError(
                f"distributed solvers support accel='reference', 'fused', "
                f"'aa' or 'sparse', got {accel!r} (the numba backend handles "
                f"single-domain periodic problems only)"
            )
        self.accel = accel

        rho_g = np.broadcast_to(np.asarray(rho0, dtype=np.float64),
                                global_domain.shape).copy()
        u_g = (np.zeros((lat.d, *global_domain.shape)) if u0 is None
               else np.array(u0, dtype=np.float64))
        rho_g[global_domain.solid_mask] = 1.0
        u_g[:, global_domain.solid_mask] = 0.0
        if force is not None:
            from ..core.forcing import normalize_force

            force = normalize_force(lat, force, global_domain.shape)
            force[:, global_domain.solid_mask] = 0.0
        self.force = force

        self.ranks: list[_RankState] = []
        self._rank_slices: list[tuple[slice, slice]] = []  # (global, local int.)
        for r in range(n_ranks):
            start, stop = self.decomp.bounds(r)
            gl = 1 if self.decomp.has_left(r) else 0
            gr = 1 if self.decomp.has_right(r) else 0
            gsl = [(start - gl + k) % global_domain.shape[0]
                   for k in range(stop - start + gl + gr)]
            node_type = global_domain.node_type[gsl]
            slab = Domain(node_type)
            state = _RankState(lat, slab, boundary_factory(r, n_ranks),
                               tau, bool(gl), bool(gr))
            self._init_rank_state(state, rho_g[gsl], np.stack(
                [u_g[a][gsl] for a in range(lat.d)]))
            if self.force is not None:
                state.force = np.stack([self.force[a][gsl]
                                        for a in range(lat.d)])
            else:
                state.force = None
            self.ranks.append(state)
            self._rank_slices.append((slice(start, stop), state.interior))

        if accel == "sparse":
            # The sparse cores never run post-collide hooks; fail at
            # construction, matching repro.accel.validate_backend.
            from ..boundary.base import Boundary

            for state in self.ranks:
                for b in state.boundaries:
                    if type(b).post_collide is not Boundary.post_collide:
                        raise ValueError(
                            f"accel='sparse' does not support boundaries "
                            f"with custom post-collide hooks "
                            f"({type(b).__name__}); use accel='fused'")

        # Crossing component sets for ST exchanges.
        cx = lat.c[:, 0]
        self._right_going = np.where(cx > 0)[0]
        self._left_going = np.where(cx < 0)[0]

    # -- subclass hooks --------------------------------------------------
    def _init_rank_state(self, state: _RankState, rho: np.ndarray,
                         u: np.ndarray) -> None:
        """Allocate and initialize one rank's field arrays."""
        raise NotImplementedError

    def _rank_step(self, state: _RankState) -> None:
        """Advance one rank's slab by one collide+stream step.

        Ghost planes must already hold the neighbours' halo data (see
        :meth:`_pack_halo` / :meth:`_unpack_halo`).
        """
        raise NotImplementedError

    def _pack_halo(self, state: _RankState, direction: str) -> np.ndarray:
        """Copy the edge-plane payload travelling ``direction`` out of a rank.

        ``direction`` is ``"right"`` (data for the high-x neighbour's low-x
        ghost) or ``"left"``. Returns a contiguous array of shape
        ``(payload_components, *face_shape)``.
        """
        raise NotImplementedError

    def _unpack_halo(self, state: _RankState, side: str,
                     buf: np.ndarray) -> None:
        """Write a received payload into the ``side`` (``"left"``/``"right"``)
        ghost plane of a rank."""
        raise NotImplementedError

    def halo_values_per_direction(self) -> int:
        """Doubles in one directed face payload (one face, one direction)."""
        raise NotImplementedError

    # -- common API -------------------------------------------------------
    def _exchange(self) -> None:
        """One emulated halo-exchange round: pack all faces, then unpack.

        The two-phase structure mirrors the barrier protocol of the
        multiprocess backend, so both move bit-identical payloads. Each
        directed pack is accounted as one message and the round advances
        ``comm.steps``.
        """
        packed: dict[tuple[int, str], np.ndarray] = {}
        for r, state in enumerate(self.ranks):
            if self.decomp.has_right(r):
                buf = self._pack_halo(state, "right")
                packed[r, "right"] = buf
                self.comm.record(buf.size)
            if self.decomp.has_left(r):
                buf = self._pack_halo(state, "left")
                packed[r, "left"] = buf
                self.comm.record(buf.size)
        for r, state in enumerate(self.ranks):
            if self.decomp.has_left(r):
                self._unpack_halo(state, "left",
                                  packed[self.decomp.left_of(r), "right"])
            if self.decomp.has_right(r):
                self._unpack_halo(state, "right",
                                  packed[self.decomp.right_of(r), "left"])
        self.comm.steps += 1

    def step(self) -> None:
        """Advance the whole decomposition by one step (exchange, then
        per-rank collide+stream)."""
        self._exchange()
        for state in self.ranks:
            self._rank_step(state)

    def run(self, n_steps: int) -> "DistributedSolver":
        """Advance ``n_steps`` steps and return self."""
        for _ in range(int(n_steps)):
            self.step()
            self.time += 1
        return self

    def gather_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the global (rho, u) fields from all ranks."""
        rho = np.empty(self.global_domain.shape)
        u = np.empty((self.lat.d, *self.global_domain.shape))
        for state, (gsl, isl) in zip(self.ranks, self._rank_slices):
            r_loc, u_loc = self._rank_macroscopic(state)
            rho[gsl] = r_loc[isl]
            u[:, gsl] = u_loc[:, isl]
        return rho, u

    def _rank_macroscopic(self, state: _RankState):
        """Density and velocity over one rank's slab (ghosts included)."""
        raise NotImplementedError

    def communication_values_per_face(self) -> int:
        """Doubles exchanged per cut face per step (both directions)."""
        return 2 * self.halo_values_per_direction()


class DistributedST(DistributedSolver):
    """Distributed standard two-lattice solver (pull configuration).

    Exchange payload per face and direction: the crossing populations
    (``c_x`` pointing into the neighbour) of the slab's edge plane — or
    the full Q populations in ``st_exchange='full'`` mode.
    """

    scheme = "ST"
    field_attr = "f"

    def _init_rank_state(self, state, rho, u):
        """Initialize the rank's populations at equilibrium."""
        state.f = equilibrium(self.lat, rho, u)
        # The single-lattice and compact cores own their own scratch; every
        # other path double-buffers through this one.
        state.scratch = (None if self.accel in ("aa", "sparse")
                         else np.empty_like(state.f))

    def _rank_macroscopic(self, state):
        """Density and (half-force-corrected) velocity from populations."""
        if state.force is None:
            return macroscopic(self.lat, state.f)
        from ..core.forcing import half_force_velocity

        rho = state.f.sum(axis=0)
        j = np.einsum("qa,q...->a...", self.lat.c.astype(float), state.f)
        return rho, half_force_velocity(self.lat, rho, j, state.force)

    def _send_comps(self, direction: str) -> np.ndarray:
        """Population components shipped in one direction of travel."""
        if self.st_exchange == "full":
            return np.arange(self.lat.q)
        return self._right_going if direction == "right" else self._left_going

    def halo_values_per_direction(self) -> int:
        """Crossing (or full-Q) populations of one edge plane."""
        return len(self._send_comps("right")) * self.decomp.face_nodes

    def _pack_halo(self, state, direction):
        """Copy the outgoing edge plane of crossing populations."""
        comps = self._send_comps(direction)
        src = -2 if direction == "right" else 1
        return np.ascontiguousarray(state.f[comps, src])

    def _unpack_halo(self, state, side, buf):
        """Write received crossing populations into a ghost plane."""
        if side == "left":
            state.f[self._send_comps("right"), 0] = buf
        else:
            state.f[self._send_comps("left"), -1] = buf

    def _rank_step(self, state) -> None:
        """Pull-stream, apply boundaries, BGK/Guo collide one slab."""
        lat = self.lat
        if self.accel == "fused":
            core = getattr(state, "accel_core", None)
            if core is None:
                from ..accel import FusedSTCore

                core = state.accel_core = FusedSTCore(
                    lat, state.domain.shape, self.tau)
                solid = state.domain.solid_mask
                state.accel_solid = solid if solid.any() else None
            core.step(state.f, state.scratch, state.boundaries,
                      state.accel_solid, force=state.force)
            return
        if self.accel == "sparse":
            # Compact fluid-node-list step over the slab (ghost planes
            # included, so the folded gather reads the exchanged halo
            # data exactly like the dense pull).
            core = getattr(state, "accel_core", None)
            if core is None:
                from ..accel import SparseSTCore

                core = state.accel_core = SparseSTCore(
                    lat, state.domain.solid_mask, self.tau,
                    boundaries=state.boundaries)
            core.step(state.f, state.boundaries, force=state.force)
            return
        if self.accel == "aa":
            # Per-rank conservative single-lattice step: the slab state
            # stays natural every step, so halo exchange and interior
            # checkpoints are untouched; the rank persists one lattice
            # (the core's scratch replaces state.scratch).
            core = getattr(state, "accel_core", None)
            if core is None:
                from ..accel import InplaceSTCore

                core = state.accel_core = InplaceSTCore(
                    lat, state.domain.shape, self.tau)
                solid = state.domain.solid_mask
                state.accel_solid = solid if solid.any() else None
            core.step_bounded(state.f, state.boundaries, state.accel_solid,
                              force=state.force)
            return
        stream_pull(lat, state.f, out=state.scratch)
        for b in state.boundaries:
            b.post_stream(lat, state.scratch, state.f)
        if state.force is None:
            from ..core.collision import BGKCollision

            f_star = BGKCollision(self.tau)(lat, state.scratch)
        else:
            from ..core.equilibrium import equilibrium as _eq
            from ..core.forcing import guo_source, half_force_velocity

            f = state.scratch
            rho = f.sum(axis=0)
            j = np.einsum("qa,q...->a...", lat.c.astype(float), f)
            u = half_force_velocity(lat, rho, j, state.force)
            feq = _eq(lat, rho, u)
            f_star = (f + (feq - f) / self.tau
                      + guo_source(lat, u, state.force, self.tau))
        solid = state.domain.solid_mask
        if solid.any():
            f_star[:, solid] = lat.w[:, None]
        for b in state.boundaries:
            b.post_collide(lat, f_star, state.scratch)
        state.f, state.scratch = f_star, state.f


class DistributedMR(DistributedSolver):
    """Distributed moment-representation solver (MR-P or MR-R).

    Exchange payload per face and direction: the M moments of the slab's
    edge plane — the crossing populations are reconstructed on the
    receiving rank from the exchanged moments (regularization makes this
    exact), cutting network volume by 1 - M/(2 q_cross) vs naive-full ST
    and trading arithmetic for bandwidth vs crossing-only ST.
    """

    field_attr = "m"

    def __init__(self, *args, scheme: str = "MR-P", **kwargs):
        """Build an MR decomposition; ``scheme`` picks the reconstruction
        (``"MR-P"`` projective, ``"MR-R"`` recursive)."""
        if scheme not in ("MR-P", "MR-R"):
            raise ValueError(f"scheme must be MR-P or MR-R, got {scheme!r}")
        self.scheme = scheme
        super().__init__(*args, **kwargs)

    def _init_rank_state(self, state, rho, u):
        """Initialize the rank's moment field at equilibrium."""
        state.m = equilibrium_moments(self.lat, rho, u)
        # The single-buffer and compact cores allocate their own lattices,
        # cutting the rank's distribution scratch from 2 Q-fields to 1 (or
        # to compact fluid-column buffers).
        state.scratch = (None if self.accel in ("aa", "sparse")
                         else np.empty((self.lat.q, *state.domain.shape)))

    def _rank_macroscopic(self, state):
        """Density and velocity straight from the conserved moments."""
        rho = state.m[0]
        j = state.m[1:1 + self.lat.d]
        if state.force is None:
            return rho, j / rho
        from ..core.forcing import half_force_velocity

        return rho, half_force_velocity(self.lat, rho, j, state.force)

    def halo_values_per_direction(self) -> int:
        """All M moments of one edge plane."""
        return self.lat.n_moments * self.decomp.face_nodes

    def _pack_halo(self, state, direction):
        """Copy the outgoing edge plane of the moment field."""
        src = -2 if direction == "right" else 1
        return np.ascontiguousarray(state.m[:, src])

    def _unpack_halo(self, state, side, buf):
        """Write received moments into a ghost plane."""
        state.m[:, 0 if side == "left" else -1] = buf

    def _rank_step(self, state) -> None:
        """Moment-space collide, reconstruct, push-stream one slab."""
        lat = self.lat
        if self.accel == "sparse":
            core = getattr(state, "accel_core", None)
            if core is None:
                from ..accel import SparseMRCore

                core = state.accel_core = SparseMRCore(
                    lat, state.domain.solid_mask, self.tau,
                    scheme=self.scheme, boundaries=state.boundaries)
            core.step(state.m, state.boundaries, force=state.force)
            return
        if self.accel in ("fused", "aa"):
            core = getattr(state, "accel_core", None)
            if core is None:
                from ..accel import FusedMRCore, InplaceMRCore

                if self.accel == "aa" and not state.boundaries:
                    # Single-buffer tiled gather-project on this slab
                    # (ghost planes absorb the periodic wrap, so the
                    # slab-local neighbour table is exact).
                    core = InplaceMRCore(lat, state.domain.shape, self.tau,
                                         scheme=self.scheme)
                else:
                    # Bounded ranks (or plain fused) run the two-buffer
                    # fused core; with accel='aa' it owns both lattices.
                    core = FusedMRCore(lat, state.domain.shape, self.tau,
                                       scheme=self.scheme,
                                       f_scratch=state.scratch)
                state.accel_core = core
                solid = state.domain.solid_mask
                state.accel_solid = solid if solid.any() else None
            core.step(state.m, state.boundaries, state.accel_solid,
                      force=state.force)
            return
        if self.scheme == "MR-P":
            m_star = collide_moments_projective(lat, state.m, self.tau,
                                                force=state.force)
            f_star = f_from_moments(lat, m_star)
        else:
            f_star = collide_moments_recursive(lat, state.m, self.tau,
                                               force=state.force)
        f_new = stream_push(lat, f_star, out=state.scratch)
        for b in state.boundaries:
            b.post_stream(lat, f_new, f_star)
        state.m = moments_from_f(lat, f_new)
        solid = state.domain.solid_mask
        if solid.any():
            state.m[:, solid] = 0.0
            state.m[0, solid] = 1.0
        state.scratch = f_star
