"""Distributed problem presets mirroring :mod:`repro.solver.presets`."""

from __future__ import annotations

import numpy as np

from ..boundary import HalfwayBounceBack, Plane, PressureOutlet, VelocityInlet
from ..geometry import channel_2d, channel_3d, periodic_box, porous_medium
from ..lattice import LatticeDescriptor, get_lattice
from ..solver.presets import (
    channel_body_force,
    channel_inlet_profile,
    cylinder_channel_domain,
)
from .decomposition import DistributedMR, DistributedST, DistributedSolver

__all__ = ["distributed_channel_problem", "distributed_periodic_problem",
           "distributed_forced_channel_problem",
           "distributed_cylinder_problem", "distributed_porous_problem"]


def _make(scheme: str, lat, domain, tau, n_ranks, periodic, factory,
          **kwargs) -> DistributedSolver:
    key = scheme.upper().replace("_", "-")
    if key == "ST":
        return DistributedST(lat, domain, tau, n_ranks, periodic, factory,
                             **kwargs)
    if key in ("MR-P", "MR-R"):
        return DistributedMR(lat, domain, tau, n_ranks, periodic, factory,
                             scheme=key, **kwargs)
    raise ValueError(f"unknown scheme {scheme!r}")


def distributed_channel_problem(scheme: str, lattice: str | LatticeDescriptor,
                                shape: tuple[int, ...], n_ranks: int,
                                tau: float = 0.8, u_max: float = 0.04,
                                bc_method: str = "nebb",
                                **kwargs) -> DistributedSolver:
    """The channel proxy app decomposed into streamwise slabs.

    Rank 0 owns the inlet, the last rank the outlet, every rank the wall
    bounce-back; interior cut faces carry halo exchanges.
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    domain = channel_2d(*shape) if lat.d == 2 else channel_3d(*shape)
    u_in = channel_inlet_profile(lat, shape, u_max)

    def factory(rank: int, total: int):
        """Boundary set for one rank: walls everywhere, I/O at the ends."""
        bcs = [HalfwayBounceBack()]
        if rank == 0:
            bcs.append(VelocityInlet(Plane(0, 0), u_in, method=bc_method))
        if rank == total - 1:
            bcs.append(PressureOutlet(Plane(0, -1), rho_out=1.0,
                                      method=bc_method, tangential="zero"))
        return bcs

    u0 = np.zeros((lat.d, *shape))
    u0[:] = u_in[(slice(None), None) + (slice(None),) * (lat.d - 1)]
    return _make(scheme, lat, domain, tau, n_ranks, periodic=False,
                 factory=factory, u0=u0, **kwargs)


def distributed_forced_channel_problem(
        scheme: str, lattice: str | LatticeDescriptor,
        shape: tuple[int, ...], n_ranks: int, tau: float = 0.8,
        u_max: float = 0.04, **kwargs) -> DistributedSolver:
    """Body-force-driven channel decomposed into streamwise slabs.

    Mirrors :func:`repro.solver.presets.forced_channel_problem`: periodic
    along the streamwise axis (wrap-around halo exchange), bounce-back
    walls on every rank, and a uniform body force sized so the steady
    Poiseuille/duct flow peaks near ``u_max``. With ``accel="fused"``
    every rank steps its slab through the fused forced kernels.
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    domain = (channel_2d(*shape, with_io=False) if lat.d == 2
              else channel_3d(*shape, with_io=False))
    force = channel_body_force(lat, shape, tau, u_max)
    return _make(scheme, lat, domain, tau, n_ranks, periodic=True,
                 factory=lambda r, t: [HalfwayBounceBack()], force=force,
                 **kwargs)


def distributed_cylinder_problem(scheme: str,
                                 lattice: str | LatticeDescriptor,
                                 shape: tuple[int, ...], n_ranks: int,
                                 tau: float = 0.8, u_max: float = 0.04,
                                 radius: float | None = None,
                                 **kwargs) -> DistributedSolver:
    """Force-driven cylinder channel decomposed into streamwise slabs.

    The slab cut planes may pass through the obstacle: half-way
    bounce-back only reads the ghost-plane node types, which every slab
    carries, so the decomposition reproduces the single-domain
    :func:`repro.solver.presets.cylinder_channel_problem` to machine
    precision for any rank count (pinned by the registry tests).
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    domain = cylinder_channel_domain(lat, shape, radius)
    force = channel_body_force(lat, shape, tau, u_max)
    return _make(scheme, lat, domain, tau, n_ranks, periodic=True,
                 factory=lambda r, t: [HalfwayBounceBack()], force=force,
                 **kwargs)


def distributed_porous_problem(scheme: str, lattice: str | LatticeDescriptor,
                               shape: tuple[int, ...], n_ranks: int,
                               tau: float = 0.8, solid_fraction: float = 0.85,
                               seed: int = 0, force_x: float = 1e-6,
                               **kwargs) -> DistributedSolver:
    """Seeded random porous medium decomposed into streamwise slabs.

    The geometry is rebuilt deterministically from ``(shape,
    solid_fraction, seed)`` on every rank, so only halo faces cross
    process boundaries — mirroring
    :func:`repro.solver.presets.porous_channel_problem`.
    """
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(
            f"shape {shape} does not match lattice dimension {lat.d}")
    domain = porous_medium(shape, solid_fraction=float(solid_fraction),
                           seed=int(seed))
    force = np.zeros(lat.d)
    force[0] = float(force_x)
    return _make(scheme, lat, domain, tau, n_ranks, periodic=True,
                 factory=lambda r, t: [HalfwayBounceBack()], force=force,
                 **kwargs)


def distributed_periodic_problem(scheme: str, lattice: str | LatticeDescriptor,
                                 shape: tuple[int, ...], n_ranks: int,
                                 tau: float = 0.8, rho0=1.0,
                                 u0: np.ndarray | None = None,
                                 **kwargs) -> DistributedSolver:
    """A fully periodic box decomposed into slabs (wrap-around exchange)."""
    lat = get_lattice(lattice) if isinstance(lattice, str) else lattice
    if len(shape) != lat.d:
        raise ValueError(f"shape {shape} does not match lattice dimension {lat.d}")
    return _make(scheme, lat, periodic_box(shape), tau, n_ranks,
                 periodic=True, factory=lambda r, t: [], rho0=rho0, u0=u0,
                 **kwargs)
