"""Deterministic fault injection for the multiprocess slab runtime.

Fault tolerance that is only exercised by real hardware failures is
fault tolerance that has never been tested. This module gives the
runtime (and, more importantly, its test suite) a precise way to break a
distributed run on purpose: a :class:`FaultSpec` names a rank, a step
and a failure mode, and :func:`maybe_inject` — called by the worker at
the top of every step — makes exactly that failure happen:

``"exception"``
    Raise :class:`FaultInjected` inside the worker. The normal error
    path runs: the worker posts a structured failure record and aborts
    the barrier so siblings unwind.
``"kill"``
    Hard-exit the process (``os._exit``) without any cleanup — the
    worker never posts a record and never aborts the barrier, modelling
    a segfault/OOM-kill. Siblings discover the death through the
    barrier timeout; the parent through the dead process.
``"hang"``
    Sleep far past the barrier timeout, modelling a livelock or a stuck
    I/O. Siblings time out at the barrier; the parent terminates the
    hung process after its straggler grace period.
``"corrupt"``
    Overwrite part of the rank's slab field with NaN and keep running,
    modelling silent memory corruption. Detection is the job of the
    per-rank watchdog (``RunSpec.watchdog_every``).

By default a fault fires on attempt 0 only (``attempt=0``), so a
supervised retry (``ProcessRuntime.run(..., max_restarts=...)``) can
demonstrate recovery: the restarted attempt runs clean from the last
checkpoint. Set ``attempt=None`` to fail on every attempt.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["FAULT_KINDS", "FaultInjected", "FaultSpec", "normalize_fault",
           "maybe_inject"]

#: Recognized failure modes, in roughly increasing order of nastiness.
FAULT_KINDS = ("exception", "kill", "hang", "corrupt")


class FaultInjected(RuntimeError):
    """The error raised inside a worker by an ``"exception"`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: which rank fails, when, and how.

    Parameters
    ----------
    rank:
        Rank that misbehaves.
    step:
        Step index at whose start the fault fires (after the checkpoint
        scheduled for that step, if any — so a retry from the latest
        checkpoint replays the faulted step).
    kind:
        One of :data:`FAULT_KINDS`.
    attempt:
        Restart attempt the fault is armed on (0 = the first run).
        ``None`` arms it on every attempt, making the failure permanent.
    hang_s:
        Sleep duration of a ``"hang"`` fault; anything comfortably past
        the barrier timeout behaves like forever.
    exit_code:
        Process exit code used by a ``"kill"`` fault.
    """

    rank: int
    step: int
    kind: str = "exception"
    attempt: int | None = 0
    hang_s: float = 3600.0
    exit_code: int = 99

    def __post_init__(self) -> None:
        """Validate the failure mode early, in the parent process."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")

    def armed(self, rank: int, step: int, attempt: int) -> bool:
        """Whether the fault fires for this (rank, step, attempt)."""
        if rank != self.rank or step != self.step:
            return False
        return self.attempt is None or attempt == self.attempt


def normalize_fault(fault) -> FaultSpec | None:
    """Coerce ``None``, a dict or a :class:`FaultSpec` into a spec.

    Dicts (the pre-fault-harness ``RunSpec.fault`` test hook) map keys
    straight onto :class:`FaultSpec` fields; missing ``kind`` means
    ``"exception"`` and a missing ``attempt`` arms every attempt, which
    matches the old always-on behaviour.
    """
    if fault is None or isinstance(fault, FaultSpec):
        return fault
    if isinstance(fault, dict):
        allowed = set(FaultSpec.__dataclass_fields__)
        spec = dict(fault)
        spec.setdefault("attempt", None)
        unknown = set(spec) - allowed
        if unknown:
            raise ValueError(f"unknown fault field(s) {sorted(unknown)}")
        return FaultSpec(**spec)
    raise TypeError(f"fault must be a FaultSpec, dict or None, "
                    f"got {type(fault).__name__}")


def maybe_inject(fault: FaultSpec | None, rank: int, step: int, attempt: int,
                 field: np.ndarray | None = None) -> None:
    """Fire ``fault`` if it is armed for this (rank, step, attempt).

    ``field`` is the rank's slab field array, scribbled on by
    ``"corrupt"`` faults (ignored by the other kinds).
    """
    if fault is None or not fault.armed(rank, step, attempt):
        return
    if fault.kind == "exception":
        raise FaultInjected(
            f"injected fault on rank {rank} at step {step}")
    if fault.kind == "kill":
        # Bypass every Python-level cleanup path on purpose: no error
        # record, no barrier abort, no shared-memory close.
        os._exit(fault.exit_code)
    if fault.kind == "hang":
        time.sleep(fault.hang_s)
        return
    # kind == "corrupt": poison one interior plane and keep going.
    if field is not None:
        field[..., field.shape[-1] // 2] = np.nan
