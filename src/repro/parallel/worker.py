"""Worker-process entry point for the multiprocess slab runtime.

Each worker rebuilds the deterministic problem from the pickled
:class:`~repro.parallel.runtime.RunSpec`, adopts the shared-memory blocks
named in the :class:`~repro.parallel.runtime.ShmPlan`, and then runs the
barrier-synchronized SPMD loop for its single rank:

1. **pack** — copy the outgoing edge planes into this rank's own send
   buffers (crossing populations for ST, the M-moment plane for MR);
2. **barrier** — everyone's sends are published;
3. **unpack** — read the neighbours' send buffers into this rank's ghost
   planes (writes touch only this rank's memory, so no locks are needed);
4. **barrier** — everyone is done reading, buffers may be overwritten
   next step;
5. **compute** — the per-rank collide+stream
   (:meth:`~repro.parallel.decomposition.DistributedSolver._rank_step`),
   then publish the slab field to the rank's shared block.

Failures never deadlock the cohort: an exception posts a structured
record to the error queue and aborts the barrier, which unwinds every
sibling with ``BrokenBarrierError``; the parent unlinks all shared
segments (see :class:`~repro.parallel.runtime.ParallelRuntimeError`).
"""

from __future__ import annotations

import os
import traceback
from threading import BrokenBarrierError

from ..obs import Telemetry
from .runtime import RunSpec, ShmPlan, attach_shm, shm_view

__all__ = ["worker_main"]


def worker_main(spec: RunSpec, rank: int, n_steps: int, plan: ShmPlan,
                barrier, errq, resq, barrier_timeout: float) -> None:
    """Run one rank of a distributed problem to completion.

    Invoked in a child process by
    :meth:`~repro.parallel.runtime.ProcessRuntime.run`; communicates only
    through the shared-memory blocks in ``plan``, the step ``barrier``
    and the ``errq``/``resq`` queues.
    """
    shms = []
    views = []

    def _view_of(entry):
        """Attach a planned block and wrap it as an ndarray view."""
        name, shape = entry
        shm = attach_shm(name)
        shms.append(shm)
        view = shm_view(shm, shape)
        views.append(view)
        return view

    try:
        solver = spec.build()
        decomp = solver.decomp
        state = solver.ranks[rank]
        tel = Telemetry(record_spans=False)

        fview = _view_of(plan.field[rank])
        fview[...] = getattr(state, solver.field_attr)

        has_l, has_r = decomp.has_left(rank), decomp.has_right(rank)
        send_l = _view_of(plan.send_left[rank]) if has_l else None
        send_r = _view_of(plan.send_right[rank]) if has_r else None
        recv_l = (_view_of(plan.send_right[decomp.left_of(rank)])
                  if has_l else None)
        recv_r = (_view_of(plan.send_left[decomp.right_of(rank)])
                  if has_r else None)

        fault = spec.fault or {}
        for step in range(n_steps):
            if fault.get("rank") == rank and fault.get("step") == step:
                raise RuntimeError(
                    f"injected fault on rank {rank} at step {step}")
            with tel.phase("step"):
                with tel.phase("pack"):
                    if send_r is not None:
                        send_r[...] = solver._pack_halo(state, "right")
                        solver.comm.record(send_r.size)
                    if send_l is not None:
                        send_l[...] = solver._pack_halo(state, "left")
                        solver.comm.record(send_l.size)
                with tel.phase("barrier"):
                    barrier.wait(timeout=barrier_timeout)
                with tel.phase("unpack"):
                    if recv_l is not None:
                        solver._unpack_halo(state, "left", recv_l)
                    if recv_r is not None:
                        solver._unpack_halo(state, "right", recv_r)
                with tel.phase("barrier"):
                    barrier.wait(timeout=barrier_timeout)
                with tel.phase("compute"):
                    solver._rank_step(state)
                with tel.phase("publish"):
                    fview[...] = getattr(state, solver.field_attr)
            solver.comm.steps += 1
            tel.count("steps")

        resq.put({
            "rank": rank,
            "pid": os.getpid(),
            "scheme": solver.scheme,
            "accel": solver.accel,
            "steps": n_steps,
            "n_fluid": state.n_interior_fluid(),
            "wall_s": tel.phase_total("step"),
            "comm": solver.comm.to_dict(),
            "summary": tel.summary(),
        })
    except BrokenBarrierError:
        # A sibling failed (or timed out) and aborted the barrier; unwind
        # quietly — the culprit has already posted its failure record.
        pass
    except Exception as exc:
        try:
            errq.put({
                "rank": rank,
                "exc_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            })
        finally:
            try:
                barrier.abort()
            except Exception:
                pass
        raise SystemExit(1)
    finally:
        del views
        for shm in shms:
            try:
                shm.close()
            except Exception:
                pass
