"""Worker-process entry point for the multiprocess slab runtime.

Each worker rebuilds the deterministic problem from the pickled
:class:`~repro.parallel.runtime.RunSpec`, adopts the shared-memory blocks
named in the :class:`~repro.parallel.runtime.ShmPlan`, and then runs the
barrier-synchronized SPMD loop for its single rank:

1. **pack** — copy the outgoing edge planes into this rank's own send
   buffers (crossing populations for ST, the M-moment plane for MR);
2. **barrier** — everyone's sends are published;
3. **unpack** — read the neighbours' send buffers into this rank's ghost
   planes (writes touch only this rank's memory, so no locks are needed);
4. **barrier** — everyone is done reading, buffers may be overwritten
   next step;
5. **compute** — the per-rank collide+stream
   (:meth:`~repro.parallel.decomposition.DistributedSolver._rank_step`),
   then publish the slab field to the rank's shared block.

Fault tolerance hooks ride on this loop (see ``docs/PARALLEL.md``):

* **checkpoint** — on the ``RunSpec.checkpoint_every`` cadence, every
  rank writes its interior slab into the per-run checkpoint directory
  and waits at the barrier; rank 0 then seals the snapshot (manifest +
  ``COMPLETE`` marker) and prunes old ones. Since all ranks share one
  deterministic schedule, the snapshot is step-consistent by
  construction.
* **resume** — given a checkpoint directory, the worker reassembles the
  saved global field and cuts out its own slab
  (:func:`~repro.io.checkpoint.reshard_field`), so the rank count of the
  resumed run is free to differ from the writing run's.
* **fault injection** — :func:`~repro.parallel.faults.maybe_inject`
  fires the spec's deterministic fault (exception, kill, hang, corrupt)
  at the configured (rank, step, attempt).
* **watchdog** — on the ``RunSpec.watchdog_every`` cadence the rank
  checks its interior slab for NaN/Inf/over-speed nodes
  (:func:`~repro.obs.watchdog.check_fields`) and converts silent
  corruption into a structured failure.
* **event streaming** — with ``RunSpec.events_dir`` set, the rank
  appends heartbeat/progress/phase/checkpoint/watchdog events to its
  own JSONL stream (:mod:`repro.obs.events`) on the
  ``RunSpec.events_every`` cadence, so ``mrlbm watch`` can tail the
  cohort while it runs; the final report also carries the rank's
  halo-exchange wait time (``exchange_wait_s``, the barrier phases) for
  the merged load-imbalance attribution.

Failures never deadlock the cohort: an exception posts a structured
record to the error queue and aborts the barrier, which unwinds every
sibling with ``BrokenBarrierError``; the parent unlinks all shared
segments (see :class:`~repro.parallel.runtime.ParallelRuntimeError`) and
may relaunch the cohort from the last checkpoint.
"""

from __future__ import annotations

import os
import traceback
from threading import BrokenBarrierError

import numpy as np

from ..io.checkpoint import (
    assemble_global_field,
    checkpoint_step_dir,
    load_distributed_checkpoint,
    mark_checkpoint_complete,
    prune_checkpoints,
    reshard_field,
    save_rank_slab,
)
from ..obs import Telemetry
from ..obs.events import EventStream, RunEventEmitter
from ..obs.manifest import RunManifest
from ..obs.watchdog import check_fields
from .faults import maybe_inject, normalize_fault
from .runtime import (
    FINGERPRINT_VERSION,
    RunSpec,
    ShmPlan,
    attach_shm,
    shm_view,
)

__all__ = ["worker_main"]


def _resume_state(spec: RunSpec, solver, state, rank: int,
                  resume_dir: str) -> None:
    """Load this rank's slab from a checkpoint, re-sharding as needed."""
    _, slabs = load_distributed_checkpoint(resume_dir)
    global_field = assemble_global_field(slabs, tuple(spec.shape))
    slab = reshard_field(global_field, solver.decomp, rank)
    getattr(state, solver.field_attr)[...] = slab


def _write_checkpoint(spec: RunSpec, solver, state, rank: int, step: int,
                      barrier, barrier_timeout: float) -> None:
    """Cooperatively snapshot the cohort's state after ``step`` steps.

    Every rank writes its own interior slab (atomic rename), then waits;
    once all slabs are on disk rank 0 seals the snapshot with the
    manifest and the ``COMPLETE`` marker and prunes old snapshots. A
    crash anywhere in here leaves at worst a torn, marker-less directory
    that resume logic ignores.
    """
    step_dir = checkpoint_step_dir(spec.checkpoint_dir, step)
    field = getattr(state, solver.field_attr)
    start, stop = solver.decomp.bounds(rank)
    save_rank_slab(step_dir, rank,
                   np.ascontiguousarray(field[:, state.interior]),
                   start=start, stop=stop, step=step,
                   scheme=solver.scheme, lattice=solver.lat.name)
    barrier.wait(timeout=barrier_timeout)
    if rank == 0:
        RunManifest.from_run_spec(
            spec, step, kind=spec.kind, n_ranks=spec.n_ranks,
            backend="process", accel=spec.accel,
            fingerprint=spec.fingerprint(),
            fingerprint_version=FINGERPRINT_VERSION,
        ).write(step_dir / "manifest.json")
        mark_checkpoint_complete(step_dir)
        prune_checkpoints(spec.checkpoint_dir, keep=spec.checkpoint_keep)


def _check_health(solver, state, rank: int, step: int) -> None:
    """Watchdog pass over this rank's interior slab (raises on divergence)."""
    rho, u = solver._rank_macroscopic(state)
    interior = state.interior
    check_fields(rho[interior], u[:, interior],
                 state.domain.fluid_mask[interior],
                 context={"rank": rank, "step": step,
                          "scheme": solver.scheme})


def worker_main(spec: RunSpec, rank: int, n_steps: int, plan: ShmPlan,
                barrier, errq, resq, barrier_timeout: float,
                start_step: int = 0, attempt: int = 0,
                resume_dir: str | None = None) -> None:
    """Run one rank of a distributed problem from ``start_step`` to the end.

    Invoked in a child process by
    :meth:`~repro.parallel.runtime.ProcessRuntime.run`; communicates only
    through the shared-memory blocks in ``plan``, the step ``barrier``
    and the ``errq``/``resq`` queues. ``start_step``/``resume_dir``
    continue a checkpointed trajectory; ``attempt`` numbers the
    supervised-retry attempt (0 = first launch) and arms fault
    injection.
    """
    shms = []
    views = []
    step = None
    emitter = None

    def _view_of(entry):
        """Attach a planned block and wrap it as an ndarray view."""
        name, shape = entry
        shm = attach_shm(name)
        shms.append(shm)
        view = shm_view(shm, shape)
        views.append(view)
        return view

    try:
        solver = spec.build()
        decomp = solver.decomp
        state = solver.ranks[rank]
        tel = Telemetry(record_spans=False)

        if resume_dir:
            with tel.phase("resume"):
                _resume_state(spec, solver, state, rank, resume_dir)

        fview = _view_of(plan.field[rank])
        fview[...] = getattr(state, solver.field_attr)

        has_l, has_r = decomp.has_left(rank), decomp.has_right(rank)
        send_l = _view_of(plan.send_left[rank]) if has_l else None
        send_r = _view_of(plan.send_right[rank]) if has_r else None
        recv_l = (_view_of(plan.send_right[decomp.left_of(rank)])
                  if has_l else None)
        recv_r = (_view_of(plan.send_left[decomp.right_of(rank)])
                  if has_r else None)

        fault = normalize_fault(spec.fault)
        ckpt_every = int(spec.checkpoint_every or 0)
        checkpointing = bool(spec.checkpoint_dir) and ckpt_every > 0
        watch_every = int(spec.watchdog_every or 0)
        if spec.events_dir:
            emitter = RunEventEmitter(
                EventStream(spec.events_dir, rank=rank, attempt=attempt),
                every=spec.events_every or 25, n_steps=n_steps,
                start_step=start_step, telemetry=tel,
                n_fluid=state.n_interior_fluid())
            emitter.start(pid=os.getpid(), scheme=solver.scheme,
                          lattice=solver.lat.name, accel=solver.accel,
                          n_fluid=state.n_interior_fluid(),
                          resumed=bool(resume_dir))
        for step in range(start_step, n_steps):
            if checkpointing and step > start_step and step % ckpt_every == 0:
                with tel.phase("checkpoint"):
                    _write_checkpoint(spec, solver, state, rank, step,
                                      barrier, barrier_timeout)
                if emitter is not None:
                    emitter.checkpoint(step, spec.checkpoint_dir)
            maybe_inject(fault, rank, step, attempt,
                         getattr(state, solver.field_attr))
            with tel.phase("step"):
                with tel.phase("pack"):
                    if send_r is not None:
                        send_r[...] = solver._pack_halo(state, "right")
                        solver.comm.record(send_r.size)
                    if send_l is not None:
                        send_l[...] = solver._pack_halo(state, "left")
                        solver.comm.record(send_l.size)
                with tel.phase("barrier"):
                    barrier.wait(timeout=barrier_timeout)
                with tel.phase("unpack"):
                    if recv_l is not None:
                        solver._unpack_halo(state, "left", recv_l)
                    if recv_r is not None:
                        solver._unpack_halo(state, "right", recv_r)
                with tel.phase("barrier"):
                    barrier.wait(timeout=barrier_timeout)
                with tel.phase("compute"):
                    solver._rank_step(state)
                with tel.phase("publish"):
                    fview[...] = getattr(state, solver.field_attr)
            solver.comm.steps += 1
            tel.count("steps")
            if watch_every and (step + 1) % watch_every == 0:
                with tel.phase("watchdog"):
                    _check_health(solver, state, rank, step + 1)
                if emitter is not None:
                    emitter.watchdog(step + 1, ok=True)
            if emitter is not None:
                emitter.maybe(step + 1)

        if emitter is not None:
            emitter.end(n_steps, steps=n_steps - start_step)
        resq.put({
            "rank": rank,
            "pid": os.getpid(),
            "scheme": solver.scheme,
            "accel": solver.accel,
            "steps": n_steps - start_step,
            "start_step": start_step,
            "attempt": attempt,
            "n_fluid": state.n_interior_fluid(),
            "wall_s": tel.phase_total("step"),
            "exchange_wait_s": tel.phase_total("step/barrier"),
            "comm": solver.comm.to_dict(),
            "summary": tel.summary(),
        })
    except BrokenBarrierError:
        # A sibling failed (or timed out) and aborted the barrier; unwind
        # quietly — the culprit has already posted its failure record (or
        # the parent will synthesize one for a silent death).
        if emitter is not None:
            emitter.error(step, "BrokenBarrierError",
                          "sibling failed; barrier aborted")
    except Exception as exc:
        if emitter is not None:
            emitter.error(step, type(exc).__name__, str(exc))
        try:
            errq.put({
                "rank": rank,
                "exc_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "step": step,
                "attempt": attempt,
            })
        finally:
            try:
                barrier.abort()
            except Exception:
                pass
        raise SystemExit(1)
    finally:
        if emitter is not None:
            emitter.stream.close()
        del views
        for shm in shms:
            try:
                shm.close()
            except Exception:
                pass
