"""Multiprocess SPMD runtime for the distributed slab solvers.

This module turns the emulated decomposition of
:mod:`repro.parallel.decomposition` into genuinely concurrent execution:
every :class:`~repro.parallel.decomposition.SlabDecomposition` rank runs
as a real OS process (``multiprocessing``), its slab field and its
one-node halo face buffers live in ``multiprocessing.shared_memory``
blocks, and the collide -> exchange -> stream cadence is synchronized by a
``multiprocessing.Barrier`` (two waits per step; see ``docs/PARALLEL.md``
for the protocol proof sketch).

The payload on the "wire" (the shared face buffers) is exactly what the
emulated backend accounts: ST ranks ship the crossing populations of the
edge plane (or all Q in ``st_exchange='full'`` mode), MR ranks ship the
compressed M-moment plane (10 values per face node in D3Q19) and
reconstruct the crossing populations locally. Both backends therefore
reproduce the single-domain reference solvers to machine precision, and
:class:`CommunicationReport` totals agree between them.

On any worker failure the runtime degrades gracefully instead of
deadlocking: the failing rank posts a structured
:class:`WorkerFailure` and aborts the barrier, the surviving ranks
unwind on ``BrokenBarrierError``, the parent unlinks every shared-memory
segment and raises :class:`ParallelRuntimeError`.

Entry points
------------
:func:`run_process`
    One-call API: build the problem from a :class:`RunSpec`, run it on
    ``spec.n_ranks`` worker processes, return a :class:`ProcessRunResult`
    with the gathered fields, communication accounting and the merged
    per-rank telemetry report.
:class:`ProcessRuntime`
    The reusable object behind it, exposing the shared-memory plan for
    tests and tooling.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..obs.merge import merge_rank_reports
from .decomposition import CommunicationReport, DistributedSolver
from .presets import distributed_channel_problem, distributed_periodic_problem

__all__ = [
    "RunSpec",
    "WorkerFailure",
    "ParallelRuntimeError",
    "ProcessRunResult",
    "ProcessRuntime",
    "run_process",
]

#: Every shared-memory segment created by the runtime starts with this
#: prefix (visible as ``/dev/shm/<prefix>-...`` on Linux), so leaked
#: segments are attributable and tests can assert cleanup.
SHM_PREFIX = "mrlbm"


@dataclass(frozen=True)
class RunSpec:
    """Picklable description of a distributed problem.

    Workers rebuild the *same* deterministic initial condition from this
    spec on their side of the fork/spawn, so only halo faces — never
    initial fields — cross process boundaries during a run.

    Parameters
    ----------
    kind:
        ``"channel"`` (the paper's proxy app) or ``"periodic"``.
    scheme:
        ``"ST"``, ``"MR-P"`` or ``"MR-R"``.
    lattice:
        Lattice name, e.g. ``"D2Q9"`` or ``"D3Q19"``.
    shape:
        Global grid shape.
    n_ranks:
        Number of slabs along axis 0 == number of worker processes.
    tau:
        BGK relaxation time.
    options:
        Extra keyword arguments forwarded to the problem preset
        (``u_max``, ``bc_method``, ``rho0``, ``u0``, ``force``,
        ``st_exchange``, ...).
    accel:
        Per-rank execution backend, ``"reference"`` or ``"fused"`` (see
        :mod:`repro.accel`); every worker steps its slab through the
        selected kernels.
    fault:
        Test hook: ``{"rank": r, "step": s}`` makes worker ``r`` raise a
        ``RuntimeError`` at the start of step ``s``, exercising the
        failure path (see ``tests/integration/test_process_runtime.py``).
    """

    kind: str
    scheme: str
    lattice: str
    shape: tuple[int, ...]
    n_ranks: int
    tau: float = 0.8
    options: dict = field(default_factory=dict)
    fault: dict | None = None
    accel: str = "reference"

    def build(self) -> DistributedSolver:
        """Construct the emulated solver this spec describes."""
        if self.kind == "channel":
            return distributed_channel_problem(
                self.scheme, self.lattice, tuple(self.shape), self.n_ranks,
                tau=self.tau, accel=self.accel, **self.options)
        if self.kind == "periodic":
            return distributed_periodic_problem(
                self.scheme, self.lattice, tuple(self.shape), self.n_ranks,
                tau=self.tau, accel=self.accel, **self.options)
        raise ValueError(f"unknown problem kind {self.kind!r}")


@dataclass
class WorkerFailure:
    """Structured record of one worker's failure."""

    rank: int
    exc_type: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        """One-line ``rank N: Type: message`` rendering."""
        return f"rank {self.rank}: {self.exc_type}: {self.message}"


class ParallelRuntimeError(RuntimeError):
    """A distributed run failed; carries every rank's failure record."""

    def __init__(self, failures: list[WorkerFailure]):
        self.failures = failures
        lines = "\n  ".join(str(f) for f in failures) or "no failure detail"
        super().__init__(
            f"{len(failures)} worker(s) failed:\n  {lines}")


@dataclass
class ProcessRunResult:
    """Outcome of a successful :func:`run_process` call."""

    rho: np.ndarray
    u: np.ndarray
    comm: CommunicationReport
    report: dict
    per_rank: list[dict]
    steps: int
    n_ranks: int
    wall_s: float


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without adopting ownership.

    Attaching re-registers the name with the process tree's (single,
    inherited) resource tracker — a harmless set-add; ownership stays
    with the creating parent, which unlinks (and thereby unregisters)
    every segment exactly once in its cleanup path.
    """
    return shared_memory.SharedMemory(name=name)


def shm_view(shm: shared_memory.SharedMemory,
             shape: tuple[int, ...]) -> np.ndarray:
    """A float64 ndarray view over a shared-memory block."""
    return np.ndarray(shape, dtype=np.float64, buffer=shm.buf)


def _nbytes(shape: tuple[int, ...]) -> int:
    """Byte size of a float64 array of the given shape."""
    return int(np.prod(shape)) * 8


@dataclass
class ShmPlan:
    """Names and shapes of every shared block of one run (picklable).

    Per rank: the canonical slab field block (``f`` for ST, ``m`` for MR,
    refreshed by the worker after every step so the parent can snapshot
    or gather at any barrier-consistent point) and up to two directed
    send buffers holding one face payload each.
    """

    prefix: str
    field: list[tuple[str, tuple[int, ...]]]
    send_left: list[tuple[str, tuple[int, ...]] | None]
    send_right: list[tuple[str, tuple[int, ...]] | None]

    def all_names(self) -> list[str]:
        """Every segment name in the plan."""
        out = [name for name, _ in self.field]
        for entry in (*self.send_left, *self.send_right):
            if entry is not None:
                out.append(entry[0])
        return out


def _build_plan(solver: DistributedSolver) -> ShmPlan:
    """Lay out the shared-memory blocks for one run (names only)."""
    prefix = f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(3)}"
    fields, lefts, rights = [], [], []
    payload = None
    for r, state in enumerate(solver.ranks):
        fshape = getattr(state, solver.field_attr).shape
        fields.append((f"{prefix}-f{r}", tuple(fshape)))
        if payload is None and (solver.decomp.has_right(r)
                                or solver.decomp.has_left(r)):
            direction = "right" if solver.decomp.has_right(r) else "left"
            payload = tuple(solver._pack_halo(state, direction).shape)
        lefts.append((f"{prefix}-l{r}", payload)
                     if solver.decomp.has_left(r) else None)
        rights.append((f"{prefix}-r{r}", payload)
                      if solver.decomp.has_right(r) else None)
    return ShmPlan(prefix, fields, lefts, rights)


class ProcessRuntime:
    """Run a :class:`RunSpec` on real worker processes over shared memory.

    The parent keeps its own emulated solver instance purely as the
    *shape and gather oracle*: it never steps it, but reuses its slab
    layout to allocate shared blocks and, after the workers finish, to
    assemble the global fields from the per-rank shared slabs.

    Parameters
    ----------
    spec:
        The problem to run.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (Linux), else ``"spawn"``.
    barrier_timeout:
        Seconds any rank waits at a halo barrier before declaring the
        cohort broken. Guards against deadlock if a sibling dies without
        aborting the barrier.
    """

    def __init__(self, spec: RunSpec, start_method: str | None = None,
                 barrier_timeout: float = 120.0):
        self.spec = spec
        self.solver = spec.build()
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self.barrier_timeout = float(barrier_timeout)
        self.plan: ShmPlan | None = None

    # -- internals --------------------------------------------------------
    def _create_blocks(self, plan: ShmPlan) -> dict[str, shared_memory.SharedMemory]:
        """Create every shared segment of the plan (parent owns them)."""
        blocks: dict[str, shared_memory.SharedMemory] = {}
        try:
            for name, shape in plan.field:
                blocks[name] = shared_memory.SharedMemory(
                    create=True, name=name, size=_nbytes(shape))
            for entry in (*plan.send_left, *plan.send_right):
                if entry is not None:
                    name, shape = entry
                    blocks[name] = shared_memory.SharedMemory(
                        create=True, name=name, size=_nbytes(shape))
        except Exception:
            self._destroy_blocks(blocks)
            raise
        return blocks

    @staticmethod
    def _destroy_blocks(blocks: dict[str, shared_memory.SharedMemory]) -> None:
        """Close and unlink every created segment, ignoring stragglers."""
        for shm in blocks.values():
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass

    def _harvest(self, procs, errq, resq, run_timeout):
        """Join workers while draining both queues; return (results, failures)."""
        results: dict[int, dict] = {}
        failures: list[WorkerFailure] = []
        deadline = None if run_timeout is None else time.monotonic() + run_timeout
        while True:
            for q, sink in ((errq, failures), (resq, results)):
                while True:
                    try:
                        item = q.get_nowait()
                    except Exception:
                        break
                    if sink is failures:
                        failures.append(WorkerFailure(**item))
                    else:
                        results[item["rank"]] = item
            alive = [p for p in procs if p.is_alive()]
            if not alive:
                break
            if deadline is not None and time.monotonic() > deadline:
                for p in alive:
                    p.terminate()
                failures.append(WorkerFailure(
                    -1, "TimeoutError",
                    f"run exceeded {run_timeout:.0f}s; "
                    f"ranks still alive: {[p.name for p in alive]}"))
                break
            alive[0].join(timeout=0.02)
        for p in procs:
            p.join(timeout=5.0)
        for r, p in enumerate(procs):
            if p.exitcode not in (0, None) and not any(
                    f.rank == r for f in failures):
                failures.append(WorkerFailure(
                    r, "ProcessExit", f"worker exited with code {p.exitcode} "
                    "without reporting a failure"))
        return results, failures

    # -- API --------------------------------------------------------------
    def run(self, n_steps: int,
            run_timeout: float | None = None) -> ProcessRunResult:
        """Execute ``n_steps`` barrier-synchronized steps on all ranks.

        Returns the gathered fields plus the merged telemetry report, or
        raises :class:`ParallelRuntimeError` after cleaning up every
        shared segment if any worker fails.
        """
        from .worker import worker_main

        spec, solver = self.spec, self.solver
        plan = self.plan = _build_plan(solver)
        blocks = self._create_blocks(plan)
        barrier = self._ctx.Barrier(spec.n_ranks)
        errq = self._ctx.Queue()
        resq = self._ctx.Queue()
        procs = [
            self._ctx.Process(
                target=worker_main, name=f"mrlbm-rank{r}",
                args=(spec, r, int(n_steps), plan, barrier, errq, resq,
                      self.barrier_timeout),
                daemon=True)
            for r in range(spec.n_ranks)
        ]
        t0 = time.perf_counter()
        try:
            for p in procs:
                p.start()
            results, failures = self._harvest(procs, errq, resq, run_timeout)
            wall = time.perf_counter() - t0
            if failures or len(results) != spec.n_ranks:
                if not failures:
                    missing = sorted(set(range(spec.n_ranks)) - set(results))
                    failures = [WorkerFailure(
                        r, "MissingResult",
                        "worker exited without posting a result")
                        for r in missing]
                raise ParallelRuntimeError(failures)

            # Gather: copy each rank's shared slab into the parent's
            # emulated states, then reuse its gather path.
            for r, state in enumerate(solver.ranks):
                name, shape = plan.field[r]
                view = shm_view(blocks[name], shape)
                getattr(state, solver.field_attr)[...] = view
                del view
            rho, u = solver.gather_macroscopic()
            solver.time += int(n_steps)

            comm = CommunicationReport()
            per_rank = [results[r] for r in range(spec.n_ranks)]
            for rep in per_rank:
                comm.merge(CommunicationReport(
                    bytes_sent=rep["comm"]["bytes_sent"],
                    messages=rep["comm"]["messages"],
                    steps=rep["comm"]["steps"]))
            solver.comm.merge(comm)
            report = merge_rank_reports(per_rank, wall_s=wall)
            return ProcessRunResult(rho=rho, u=u, comm=comm, report=report,
                                    per_rank=per_rank, steps=int(n_steps),
                                    n_ranks=spec.n_ranks, wall_s=wall)
        finally:
            self._destroy_blocks(blocks)


def run_process(spec: RunSpec, n_steps: int,
                start_method: str | None = None,
                barrier_timeout: float = 120.0,
                run_timeout: float | None = None) -> ProcessRunResult:
    """Build and run ``spec`` on ``spec.n_ranks`` worker processes."""
    runtime = ProcessRuntime(spec, start_method=start_method,
                             barrier_timeout=barrier_timeout)
    return runtime.run(n_steps, run_timeout=run_timeout)
