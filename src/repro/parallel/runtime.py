"""Multiprocess SPMD runtime for the distributed slab solvers.

This module turns the emulated decomposition of
:mod:`repro.parallel.decomposition` into genuinely concurrent execution:
every :class:`~repro.parallel.decomposition.SlabDecomposition` rank runs
as a real OS process (``multiprocessing``), its slab field and its
one-node halo face buffers live in ``multiprocessing.shared_memory``
blocks, and the collide -> exchange -> stream cadence is synchronized by a
``multiprocessing.Barrier`` (two waits per step; see ``docs/PARALLEL.md``
for the protocol proof sketch).

The payload on the "wire" (the shared face buffers) is exactly what the
emulated backend accounts: ST ranks ship the crossing populations of the
edge plane (or all Q in ``st_exchange='full'`` mode), MR ranks ship the
compressed M-moment plane (10 values per face node in D3Q19) and
reconstruct the crossing populations locally. Both backends therefore
reproduce the single-domain reference solvers to machine precision, and
:class:`CommunicationReport` totals agree between them.

On any worker failure the runtime degrades gracefully instead of
deadlocking: the failing rank posts a structured
:class:`WorkerFailure` and aborts the barrier, the surviving ranks
unwind on ``BrokenBarrierError``, the parent unlinks every shared-memory
segment and raises :class:`ParallelRuntimeError`. Workers that die
without a trace (SIGKILL, hangs — see :mod:`repro.parallel.faults`) are
detected through the barrier timeout and the parent's straggler grace
period, then terminated with SIGTERM→SIGKILL escalation so no zombie or
``/dev/shm`` segment outlives the run.

On top of that degrade-cleanly baseline sits *supervised recovery*:
with ``RunSpec.checkpoint_dir``/``checkpoint_every`` set, the worker
ranks write barrier-aligned distributed checkpoints (see
:mod:`repro.io.checkpoint`), and ``ProcessRuntime.run(...,
max_restarts=K)`` restarts a failed cohort from the newest complete
checkpoint up to ``K`` times with linear backoff — a run killed at an
arbitrary step finishes with fields bit-identical to an uninterrupted
one. ``RunSpec.resume_from`` starts a *new* run from a saved
checkpoint, re-sharding when the rank count changed.

Entry points
------------
:func:`run_process`
    One-call API: build the problem from a :class:`RunSpec`, run it on
    ``spec.n_ranks`` worker processes, return a :class:`ProcessRunResult`
    with the gathered fields, communication accounting and the merged
    per-rank telemetry report.
:class:`ProcessRuntime`
    The reusable object behind it, exposing the shared-memory plan for
    tests and tooling.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import secrets
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..io.checkpoint import (
    checkpoint_step,
    latest_checkpoint,
    load_manifest_for_resume,
    validate_checkpoint_manifest,
)
from ..obs.merge import merge_rank_reports
from .decomposition import CommunicationReport, DistributedSolver
from .faults import FaultSpec, normalize_fault

__all__ = [
    "FINGERPRINT_VERSION",
    "RunSpec",
    "WorkerFailure",
    "ParallelRuntimeError",
    "ProcessRunResult",
    "ProcessRuntime",
    "run_process",
]

#: Every shared-memory segment created by the runtime starts with this
#: prefix (visible as ``/dev/shm/<prefix>-...`` on Linux), so leaked
#: segments are attributable and tests can assert cleanup.
SHM_PREFIX = "mrlbm"

#: Version of the :meth:`RunSpec.fingerprint` encoding, recorded in
#: checkpoint manifests. Version 1 concatenated key/value reprs with no
#: separator, so distinct option dicts (``{"x1": 2}`` vs ``{"x": 12}``)
#: could collide; version 2 length-prefixes every field. Resuming a
#: checkpoint written under another version warns and skips the digest
#: comparison instead of failing it spuriously.
FINGERPRINT_VERSION = 2


@dataclass(frozen=True)
class RunSpec:
    """Picklable description of a distributed problem.

    Workers rebuild the *same* deterministic initial condition from this
    spec on their side of the fork/spawn, so only halo faces — never
    initial fields — cross process boundaries during a run.

    Parameters
    ----------
    kind:
        ``"channel"`` (the paper's proxy app), ``"forced-channel"``
        (body-force-driven, streamwise-periodic) or ``"periodic"``.
    scheme:
        ``"ST"``, ``"MR-P"`` or ``"MR-R"``.
    lattice:
        Lattice name, e.g. ``"D2Q9"`` or ``"D3Q19"``.
    shape:
        Global grid shape.
    n_ranks:
        Number of slabs along axis 0 == number of worker processes.
    tau:
        BGK relaxation time.
    options:
        Extra keyword arguments forwarded to the problem preset
        (``u_max``, ``bc_method``, ``rho0``, ``u0``, ``force``,
        ``st_exchange``, ...).
    accel:
        Per-rank execution backend, ``"reference"``, ``"fused"``,
        ``"aa"`` or ``"sparse"`` (see :mod:`repro.accel`); every worker
        steps its slab through the selected kernels. The ``"aa"``
        workers run the conservative single-lattice step, so their slab
        state stays in the natural layout at every step — halo exchange,
        interior checkpoints and odd/even resume points all behave
        exactly as with the two-lattice backends. The ``"sparse"``
        workers compact their slab to its fluid-node list but keep the
        dense slab arrays authoritative, so the exchange and checkpoint
        protocols are untouched.
    fault:
        Deterministic fault injection: a
        :class:`~repro.parallel.faults.FaultSpec` (or a plain dict of
        its fields) makes one rank raise, die, hang or corrupt its slab
        at a chosen step — the test harness for every failure path (see
        :mod:`repro.parallel.faults`).
    checkpoint_dir:
        Per-run checkpoint directory; workers write barrier-aligned
        distributed checkpoints here (see :mod:`repro.io.checkpoint`).
        ``None`` disables checkpointing.
    checkpoint_every:
        Checkpoint cadence in steps (0 disables). A snapshot taken "at
        step s" captures the state after ``s`` completed steps.
    checkpoint_keep:
        How many complete checkpoints to retain; older ones are pruned
        by rank 0 after each new complete snapshot.
    resume_from:
        Checkpoint root (or one specific ``step-*`` directory) to resume
        from: the run continues bit-exactly from the saved step, after
        manifest validation, re-sharding if ``n_ranks`` differs from the
        writing run. With ``resume_from`` set, ``run(n_steps)`` treats
        ``n_steps`` as the *total* step count of the trajectory.
    max_restarts:
        Default supervised-retry budget of :meth:`ProcessRuntime.run`:
        on worker failure the runtime restarts from the newest complete
        checkpoint up to this many times.
    watchdog_every:
        Per-rank stability-watchdog cadence in steps (0 disables): every
        worker checks its interior slab for NaN/Inf/over-speed nodes and
        converts silent corruption into a structured failure.
    events_dir:
        Run directory for the per-rank JSONL event streams (see
        :mod:`repro.obs.events`): every worker appends heartbeat /
        progress / phase / checkpoint / watchdog events there, so a
        live run can be tailed with ``mrlbm watch``. ``None`` disables
        event streaming.
    events_every:
        Heartbeat cadence in steps (default 25 when ``events_dir`` is
        set).
    """

    kind: str
    scheme: str
    lattice: str
    shape: tuple[int, ...]
    n_ranks: int
    tau: float = 0.8
    options: dict = field(default_factory=dict)
    fault: FaultSpec | dict | None = None
    accel: str = "reference"
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 2
    resume_from: str | None = None
    max_restarts: int = 0
    watchdog_every: int = 0
    events_dir: str | None = None
    events_every: int = 25

    def __post_init__(self) -> None:
        """Validate ``kind`` against the problem registry at construction.

        An unknown kind used to surface only when :meth:`build` ran —
        long after the spec had been queued, fingerprinted or pickled.
        Failing here keeps bad specs out of the system entirely. The
        check is skipped during unpickling (``__reduce__`` restores
        fields directly), so forked workers pay nothing.
        """
        from ..service.registry import get_problem

        get_problem(self.kind)

    def fingerprint(self) -> str:
        """Injective digest of the problem identity (kind + preset options).

        Stored in every checkpoint manifest and compared on resume, and
        the dedup key of the job server's result cache:
        scheme/lattice/shape/tau are validated field by field, and this
        digest extends the check to the preset options (initial fields,
        forcing, boundary method, ...) that equally shape the
        trajectory. Array-valued options hash their dtype, shape and
        bytes.

        Every field is length-prefixed before hashing (and values carry
        their type name), so no two distinct specs can produce the same
        byte stream — version 1 concatenated raw reprs, letting
        ``{"x1": 2}`` and ``{"x": 12}`` collide. Bump
        :data:`FINGERPRINT_VERSION` when this encoding changes.
        """
        h = hashlib.sha256()

        def feed(data: bytes) -> None:
            h.update(len(data).to_bytes(8, "big"))
            h.update(data)

        feed(b"fingerprint-v%d" % FINGERPRINT_VERSION)
        for part in (self.kind, self.scheme, self.lattice):
            feed(str(part).encode())
        feed(repr(tuple(int(s) for s in self.shape)).encode())
        feed(repr(float(self.tau)).encode())
        for key in sorted(self.options):
            value = self.options[key]
            feed(key.encode())
            if isinstance(value, np.ndarray):
                feed(b"ndarray")
                feed(repr((tuple(value.shape), str(value.dtype))).encode())
                feed(np.ascontiguousarray(value).tobytes())
            else:
                feed(f"{type(value).__name__}:{value!r}".encode())
        return h.hexdigest()[:16]

    def build(self) -> DistributedSolver:
        """Construct the emulated solver this spec describes.

        Dispatches through the shared problem registry
        (:mod:`repro.service.registry`), so every kind registered there
        — built-in or site-specific — is runnable from a spec.
        """
        from ..service.registry import build_distributed

        return build_distributed(
            self.kind, self.scheme, self.lattice, tuple(self.shape),
            self.n_ranks, tau=self.tau, accel=self.accel, **self.options)


@dataclass
class WorkerFailure:
    """Structured record of one worker's failure."""

    rank: int
    exc_type: str
    message: str
    traceback: str = ""
    step: int | None = None
    attempt: int = 0

    def __str__(self) -> str:
        """One-line ``rank N: Type: message`` rendering."""
        at = f" (step {self.step})" if self.step is not None else ""
        return f"rank {self.rank}: {self.exc_type}: {self.message}{at}"


class ParallelRuntimeError(RuntimeError):
    """A distributed run failed; carries every rank's failure record.

    ``failures`` holds the final attempt's records; ``failure_history``
    every attempt's (one list per attempt) when supervised retries were
    in play; ``restarts`` counts the restarts that were tried.
    """

    def __init__(self, failures: list[WorkerFailure],
                 failure_history: list[list[WorkerFailure]] | None = None):
        self.failures = failures
        self.failure_history = (failure_history if failure_history is not None
                                else [failures])
        self.restarts = max(len(self.failure_history) - 1, 0)
        lines = "\n  ".join(str(f) for f in failures) or "no failure detail"
        retried = (f" (after {self.restarts} restart(s))"
                   if self.restarts else "")
        super().__init__(
            f"{len(failures)} worker(s) failed{retried}:\n  {lines}")


@dataclass
class ProcessRunResult:
    """Outcome of a successful :func:`run_process` call.

    ``steps`` is the trajectory's total step count; ``start_step`` the
    checkpoint step the run was resumed from (0 for a fresh start);
    ``restarts`` how many supervised restarts recovery needed, with the
    per-attempt failure records in ``failure_history``.
    """

    rho: np.ndarray
    u: np.ndarray
    comm: CommunicationReport
    report: dict
    per_rank: list[dict]
    steps: int
    n_ranks: int
    wall_s: float
    start_step: int = 0
    restarts: int = 0
    failure_history: list = field(default_factory=list)


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without adopting ownership.

    Attaching re-registers the name with the process tree's (single,
    inherited) resource tracker — a harmless set-add; ownership stays
    with the creating parent, which unlinks (and thereby unregisters)
    every segment exactly once in its cleanup path.
    """
    return shared_memory.SharedMemory(name=name)


def shm_view(shm: shared_memory.SharedMemory,
             shape: tuple[int, ...]) -> np.ndarray:
    """A float64 ndarray view over a shared-memory block."""
    return np.ndarray(shape, dtype=np.float64, buffer=shm.buf)


def _nbytes(shape: tuple[int, ...]) -> int:
    """Byte size of a float64 array of the given shape."""
    return int(np.prod(shape)) * 8


@dataclass
class ShmPlan:
    """Names and shapes of every shared block of one run (picklable).

    Per rank: the canonical slab field block (``f`` for ST, ``m`` for MR,
    refreshed by the worker after every step so the parent can snapshot
    or gather at any barrier-consistent point) and up to two directed
    send buffers holding one face payload each.
    """

    prefix: str
    field: list[tuple[str, tuple[int, ...]]]
    send_left: list[tuple[str, tuple[int, ...]] | None]
    send_right: list[tuple[str, tuple[int, ...]] | None]

    def all_names(self) -> list[str]:
        """Every segment name in the plan."""
        out = [name for name, _ in self.field]
        for entry in (*self.send_left, *self.send_right):
            if entry is not None:
                out.append(entry[0])
        return out


def _build_plan(solver: DistributedSolver) -> ShmPlan:
    """Lay out the shared-memory blocks for one run (names only)."""
    prefix = f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(3)}"
    fields, lefts, rights = [], [], []
    payload = None
    for r, state in enumerate(solver.ranks):
        fshape = getattr(state, solver.field_attr).shape
        fields.append((f"{prefix}-f{r}", tuple(fshape)))
        if payload is None and (solver.decomp.has_right(r)
                                or solver.decomp.has_left(r)):
            direction = "right" if solver.decomp.has_right(r) else "left"
            payload = tuple(solver._pack_halo(state, direction).shape)
        lefts.append((f"{prefix}-l{r}", payload)
                     if solver.decomp.has_left(r) else None)
        rights.append((f"{prefix}-r{r}", payload)
                      if solver.decomp.has_right(r) else None)
    return ShmPlan(prefix, fields, lefts, rights)


class ProcessRuntime:
    """Run a :class:`RunSpec` on real worker processes over shared memory.

    The parent keeps its own emulated solver instance purely as the
    *shape and gather oracle*: it never steps it, but reuses its slab
    layout to allocate shared blocks and, after the workers finish, to
    assemble the global fields from the per-rank shared slabs.

    Parameters
    ----------
    spec:
        The problem to run.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (Linux), else ``"spawn"``.
    barrier_timeout:
        Seconds any rank waits at a halo barrier before declaring the
        cohort broken. Guards against deadlock if a sibling dies without
        aborting the barrier.
    straggler_grace:
        Seconds the parent lets surviving workers keep running after the
        first sign of cohort failure (a failure record, or a worker dead
        without its result) before terminating them — this is what turns
        a hung rank into a structured error instead of a deadlock.
    """

    def __init__(self, spec: RunSpec, start_method: str | None = None,
                 barrier_timeout: float = 120.0,
                 straggler_grace: float = 15.0):
        # Validate the fault spec eagerly, in the parent.
        normalize_fault(spec.fault)
        self.spec = spec
        self.solver = spec.build()
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self.barrier_timeout = float(barrier_timeout)
        self.straggler_grace = float(straggler_grace)
        self.plan: ShmPlan | None = None

    # -- internals --------------------------------------------------------
    def _create_blocks(self, plan: ShmPlan) -> dict[str, shared_memory.SharedMemory]:
        """Create every shared segment of the plan (parent owns them)."""
        blocks: dict[str, shared_memory.SharedMemory] = {}
        try:
            for name, shape in plan.field:
                blocks[name] = shared_memory.SharedMemory(
                    create=True, name=name, size=_nbytes(shape))
            for entry in (*plan.send_left, *plan.send_right):
                if entry is not None:
                    name, shape = entry
                    blocks[name] = shared_memory.SharedMemory(
                        create=True, name=name, size=_nbytes(shape))
        except Exception:
            self._destroy_blocks(blocks)
            raise
        return blocks

    @staticmethod
    def _destroy_blocks(blocks: dict[str, shared_memory.SharedMemory]) -> None:
        """Close and unlink every created segment, ignoring stragglers."""
        for shm in blocks.values():
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass

    @staticmethod
    def _drain(errq, resq, results: dict[int, dict],
               failures: list[WorkerFailure]) -> None:
        """Pull everything currently buffered on both queues."""
        for q, is_err in ((errq, True), (resq, False)):
            while True:
                try:
                    item = q.get_nowait()
                except Exception:
                    break
                if is_err:
                    failures.append(WorkerFailure(**item))
                else:
                    results[item["rank"]] = item

    def _harvest(self, procs, errq, resq, run_timeout):
        """Join workers while draining both queues; return (results, failures).

        Cohort-failure detection: the first failure record — or a worker
        found dead without having posted its result — arms a
        ``straggler_grace`` countdown; survivors still running when it
        expires (hung ranks that will never reach another barrier) are
        terminated, with SIGTERM → SIGKILL escalation and a structured
        :class:`WorkerFailure` instead of a silently leaked zombie.
        """
        results: dict[int, dict] = {}
        failures: list[WorkerFailure] = []
        deadline = None if run_timeout is None else time.monotonic() + run_timeout
        doom_deadline = None
        while True:
            self._drain(errq, resq, results, failures)
            alive = [p for p in procs if p.is_alive()]
            if not alive:
                break
            now = time.monotonic()
            if deadline is not None and now > deadline:
                failures.append(WorkerFailure(
                    -1, "TimeoutError",
                    f"run exceeded {run_timeout:.0f}s; "
                    f"ranks still alive: {[p.name for p in alive]}"))
                break
            # A dead rank that never posted its result can no longer
            # serve its barrier — the cohort is doomed. (A just-exited
            # healthy rank's result may still be in flight, so this only
            # arms a grace countdown; the next drain clears it.)
            doomed = bool(failures) or any(
                not p.is_alive() and r not in results
                for r, p in enumerate(procs))
            if not doomed:
                doom_deadline = None
            elif doom_deadline is None:
                doom_deadline = now + self.straggler_grace
            elif now > doom_deadline:
                for r, p in enumerate(procs):
                    if p.is_alive():
                        failures.append(WorkerFailure(
                            r, "Straggler",
                            f"rank still running {self.straggler_grace:.0f}s "
                            "after the cohort failed (hung or deadlocked); "
                            "terminating"))
                break
            alive[0].join(timeout=0.02)
        for p in procs:
            if p.is_alive():
                p.terminate()
        for r, p in enumerate(procs):
            p.join(timeout=5.0)
            if p.is_alive():
                # terminate() was ignored (e.g. a worker stuck in
                # uninterruptible state): escalate rather than leak.
                p.kill()
                p.join(timeout=5.0)
                failures.append(WorkerFailure(
                    r, "ZombieKilled",
                    "worker ignored SIGTERM for 5s after the run ended; "
                    "escalated to SIGKILL"))
        self._drain(errq, resq, results, failures)
        for r, p in enumerate(procs):
            if p.exitcode not in (0, None) and not any(
                    f.rank == r for f in failures):
                failures.append(WorkerFailure(
                    r, "ProcessExit", f"worker exited with code {p.exitcode} "
                    "without reporting a failure"))
        return results, failures

    def _resolve_resume(self, where: str, n_steps: int) -> tuple[str, int]:
        """Locate and validate a checkpoint to resume from.

        Returns ``(step_dir, start_step)``; raises ``FileNotFoundError``
        when no complete checkpoint exists under ``where`` and
        ``ValueError`` when the manifest is incompatible with this spec
        or the checkpoint already reached ``n_steps``.
        """
        spec = self.spec
        found = latest_checkpoint(where)
        if found is None:
            raise FileNotFoundError(
                f"no complete checkpoint under {where!r} to resume from")
        manifest = load_manifest_for_resume(found)
        validate_checkpoint_manifest(
            manifest, scheme=spec.scheme, lattice=spec.lattice,
            shape=tuple(spec.shape), tau=spec.tau,
            fingerprint=spec.fingerprint(),
            fingerprint_version=FINGERPRINT_VERSION)
        start_step = checkpoint_step(found)
        if start_step >= int(n_steps):
            raise ValueError(
                f"checkpoint {found} is at step {start_step}, which already "
                f"reaches the requested total of {n_steps} steps")
        return str(found), start_step

    # -- API --------------------------------------------------------------
    def run(self, n_steps: int, run_timeout: float | None = None,
            max_restarts: int | None = None,
            restart_backoff: float = 0.5) -> ProcessRunResult:
        """Run the trajectory to ``n_steps`` total steps on all ranks.

        Without ``spec.resume_from`` this executes ``n_steps``
        barrier-synchronized steps from scratch, exactly as before; with
        it, the run continues from the validated checkpoint until the
        trajectory totals ``n_steps``.

        Supervised recovery: when any worker fails, up to
        ``max_restarts`` (default ``spec.max_restarts``) fresh cohorts
        are launched from the newest complete checkpoint (or the
        original starting point when none exists yet), waiting
        ``restart_backoff * attempt`` seconds between attempts. Shared
        memory is unlinked after every attempt, successful or not.

        Returns the gathered fields plus the merged telemetry report, or
        raises :class:`ParallelRuntimeError` carrying every attempt's
        failure records once the restart budget is exhausted.
        """
        spec = self.spec
        n_steps = int(n_steps)
        if max_restarts is None:
            max_restarts = int(spec.max_restarts)
        resume_dir: str | None = None
        start_step = 0
        if spec.resume_from:
            resume_dir, start_step = self._resolve_resume(
                spec.resume_from, n_steps)
        initial_resume = resume_dir is not None

        failure_history: list[list[WorkerFailure]] = []
        attempt = 0
        while True:
            try:
                result = self._run_attempt(
                    n_steps, start_step, attempt, resume_dir, run_timeout)
            except ParallelRuntimeError as err:
                for f in err.failures:
                    f.attempt = attempt
                failure_history.append(err.failures)
                if attempt >= max_restarts:
                    raise ParallelRuntimeError(
                        err.failures, failure_history) from None
                attempt += 1
                resume_dir, start_step = None, 0
                if spec.checkpoint_dir:
                    found = latest_checkpoint(spec.checkpoint_dir)
                    if found is not None:
                        resume_dir = str(found)
                        start_step = checkpoint_step(found)
                if resume_dir is None and spec.resume_from:
                    resume_dir, start_step = self._resolve_resume(
                        spec.resume_from, n_steps)
                time.sleep(restart_backoff * attempt)
                continue
            if initial_resume or spec.resume_from:
                self.solver.time = n_steps
            else:
                self.solver.time += n_steps
            result.restarts = attempt
            result.failure_history = failure_history
            report = result.report
            report["restarts"] = attempt
            report["failures"] = [asdict(f)
                                  for fs in failure_history for f in fs]
            report.setdefault("counters", {})["runtime.restarts"] = attempt
            return result

    def _run_attempt(self, n_steps: int, start_step: int, attempt: int,
                     resume_dir: str | None,
                     run_timeout: float | None) -> ProcessRunResult:
        """Launch one worker cohort and harvest it (one retry attempt)."""
        from .worker import worker_main

        spec, solver = self.spec, self.solver
        plan = self.plan = _build_plan(solver)
        blocks = self._create_blocks(plan)
        barrier = self._ctx.Barrier(spec.n_ranks)
        errq = self._ctx.Queue()
        resq = self._ctx.Queue()
        procs = [
            self._ctx.Process(
                target=worker_main, name=f"mrlbm-rank{r}",
                args=(spec, r, n_steps, plan, barrier, errq, resq,
                      self.barrier_timeout, start_step, attempt, resume_dir),
                daemon=True)
            for r in range(spec.n_ranks)
        ]
        t0 = time.perf_counter()
        try:
            for p in procs:
                p.start()
            try:
                results, failures = self._harvest(procs, errq, resq,
                                                  run_timeout)
            except KeyboardInterrupt:
                # SIGINT lands on the whole foreground process group, so
                # the workers are dying too — but _harvest was unwound
                # mid-join, skipping its terminate/escalate path. Tear
                # the cohort down here so the ``finally`` below unlinks
                # every /dev/shm segment with no worker still attached,
                # then let the interrupt propagate (the CLI maps it to
                # exit 130).
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                for p in procs:
                    p.join(timeout=2.0)
                    if p.is_alive():
                        p.kill()
                        p.join(timeout=2.0)
                raise
            wall = time.perf_counter() - t0
            if failures or len(results) != spec.n_ranks:
                if not failures:
                    missing = sorted(set(range(spec.n_ranks)) - set(results))
                    failures = [WorkerFailure(
                        r, "MissingResult",
                        "worker exited without posting a result")
                        for r in missing]
                raise ParallelRuntimeError(failures)

            # Gather: copy each rank's shared slab into the parent's
            # emulated states, then reuse its gather path.
            for r, state in enumerate(solver.ranks):
                name, shape = plan.field[r]
                view = shm_view(blocks[name], shape)
                getattr(state, solver.field_attr)[...] = view
                del view
            rho, u = solver.gather_macroscopic()

            comm = CommunicationReport()
            per_rank = [results[r] for r in range(spec.n_ranks)]
            for rep in per_rank:
                comm.merge(CommunicationReport(
                    bytes_sent=rep["comm"]["bytes_sent"],
                    messages=rep["comm"]["messages"],
                    steps=rep["comm"]["steps"]))
            solver.comm.merge(comm)
            report = merge_rank_reports(per_rank, wall_s=wall)
            return ProcessRunResult(rho=rho, u=u, comm=comm, report=report,
                                    per_rank=per_rank, steps=n_steps,
                                    n_ranks=spec.n_ranks, wall_s=wall,
                                    start_step=start_step)
        finally:
            self._destroy_blocks(blocks)


def run_process(spec: RunSpec, n_steps: int,
                start_method: str | None = None,
                barrier_timeout: float = 120.0,
                run_timeout: float | None = None,
                max_restarts: int | None = None,
                straggler_grace: float = 15.0) -> ProcessRunResult:
    """Build and run ``spec`` on ``spec.n_ranks`` worker processes."""
    runtime = ProcessRuntime(spec, start_method=start_method,
                             barrier_timeout=barrier_timeout,
                             straggler_grace=straggler_grace)
    return runtime.run(n_steps, run_timeout=run_timeout,
                       max_restarts=max_restarts)
