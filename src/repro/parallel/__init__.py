"""Distributed-memory domain decomposition with halo-exchange accounting."""

from .decomposition import (
    CommunicationReport,
    DistributedMR,
    DistributedSolver,
    DistributedST,
    SlabDecomposition,
)
from .presets import distributed_channel_problem, distributed_periodic_problem

__all__ = [
    "CommunicationReport",
    "SlabDecomposition",
    "DistributedSolver",
    "DistributedST",
    "DistributedMR",
    "distributed_channel_problem",
    "distributed_periodic_problem",
]
