"""Distributed-memory domain decomposition and execution backends.

Two interchangeable backends share one slab decomposition and one halo
protocol (see ``docs/PARALLEL.md``):

* **emulated** — every rank stepped sequentially in-process
  (:class:`DistributedST` / :class:`DistributedMR`), deterministic and
  dependency-free: the accounting and correctness oracle;
* **process** — every rank a real OS process over
  ``multiprocessing.shared_memory`` with barrier-synchronized halo
  exchanges (:func:`run_process` / :class:`ProcessRuntime`).

The process backend is fault tolerant: cohorts write coordinated
distributed checkpoints, restart from them (``RunSpec.resume_from`` /
``mrlbm run --resume``, including with a different rank count), and the
supervisor retries failed cohorts from the last checkpoint. Faults for
testing the machinery are injected deterministically via
:class:`FaultSpec` (see :mod:`repro.parallel.faults`).
"""

from .decomposition import (
    CommunicationReport,
    DistributedMR,
    DistributedSolver,
    DistributedST,
    SlabDecomposition,
)
from .faults import FAULT_KINDS, FaultInjected, FaultSpec, normalize_fault
from .presets import (
    distributed_channel_problem,
    distributed_forced_channel_problem,
    distributed_periodic_problem,
)
from .runtime import (
    ParallelRuntimeError,
    ProcessRunResult,
    ProcessRuntime,
    RunSpec,
    WorkerFailure,
    run_process,
)

__all__ = [
    "CommunicationReport",
    "SlabDecomposition",
    "DistributedSolver",
    "DistributedST",
    "DistributedMR",
    "distributed_channel_problem",
    "distributed_forced_channel_problem",
    "distributed_periodic_problem",
    "RunSpec",
    "ProcessRuntime",
    "ProcessRunResult",
    "run_process",
    "ParallelRuntimeError",
    "WorkerFailure",
    "FaultSpec",
    "FaultInjected",
    "FAULT_KINDS",
    "normalize_fault",
]
