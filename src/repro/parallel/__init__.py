"""Distributed-memory domain decomposition and execution backends.

Two interchangeable backends share one slab decomposition and one halo
protocol (see ``docs/PARALLEL.md``):

* **emulated** — every rank stepped sequentially in-process
  (:class:`DistributedST` / :class:`DistributedMR`), deterministic and
  dependency-free: the accounting and correctness oracle;
* **process** — every rank a real OS process over
  ``multiprocessing.shared_memory`` with barrier-synchronized halo
  exchanges (:func:`run_process` / :class:`ProcessRuntime`).
"""

from .decomposition import (
    CommunicationReport,
    DistributedMR,
    DistributedSolver,
    DistributedST,
    SlabDecomposition,
)
from .presets import distributed_channel_problem, distributed_periodic_problem
from .runtime import (
    ParallelRuntimeError,
    ProcessRunResult,
    ProcessRuntime,
    RunSpec,
    WorkerFailure,
    run_process,
)

__all__ = [
    "CommunicationReport",
    "SlabDecomposition",
    "DistributedSolver",
    "DistributedST",
    "DistributedMR",
    "distributed_channel_problem",
    "distributed_periodic_problem",
    "RunSpec",
    "ProcessRuntime",
    "ProcessRunResult",
    "run_process",
    "ParallelRuntimeError",
    "WorkerFailure",
]
