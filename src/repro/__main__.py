"""Allow ``python -m repro`` as an alias for the ``mrlbm`` CLI."""

import sys

from .cli import main

sys.exit(main())
