"""Flow analysis: observables, stresses from moments, convergence studies."""

from .convergence import fit_convergence_order, taylor_green_convergence
from .forces import MomentumExchangeForce, drag_lift_coefficients
from .stability import max_stable_amplitude, stability_map, survives
from .observables import (
    deviatoric_stress_from_moments,
    enstrophy,
    mach_number,
    reynolds_number,
    strain_rate_fd,
    strain_rate_from_moments,
    velocity_gradient,
    vorticity,
)

__all__ = [
    "velocity_gradient",
    "vorticity",
    "strain_rate_fd",
    "strain_rate_from_moments",
    "deviatoric_stress_from_moments",
    "enstrophy",
    "mach_number",
    "reynolds_number",
    "fit_convergence_order",
    "taylor_green_convergence",
    "MomentumExchangeForce",
    "drag_lift_coefficients",
    "survives",
    "max_stable_amplitude",
    "stability_map",
]
