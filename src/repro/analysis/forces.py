"""Hydrodynamic forces on solid bodies via momentum exchange.

The classical momentum-exchange method (Ladd 1994): each fluid-solid link
transfers momentum ``c_i (f_i^out + f_ibar^in)`` per step, so summing over
the boundary links of a body gives the total hydrodynamic force without
any stress integration. Works with the half-way bounce-back boundaries of
this package and with any of the three schemes (the distribution is
reconstructed on the fly for the MR solvers).
"""

from __future__ import annotations

import numpy as np

from ..solver import MRPSolver, MRRSolver, Solver, STSolver

__all__ = ["MomentumExchangeForce", "drag_lift_coefficients"]


class MomentumExchangeForce:
    """Force on a set of solid nodes from the momentum-exchange method.

    Parameters
    ----------
    solver:
        A bound solver (any scheme) whose domain contains the body.
    body_mask:
        Boolean mask of the solid nodes making up the body; defaults to
        every solid node of the domain.
    """

    def __init__(self, solver: Solver, body_mask: np.ndarray | None = None,
                 wall_velocity: np.ndarray | None = None, rho0: float = 1.0):
        self.solver = solver
        lat = solver.lat
        domain = solver.domain
        solid = domain.solid_mask
        if body_mask is None:
            body_mask = solid
        else:
            body_mask = np.asarray(body_mask, dtype=bool)
            if body_mask.shape != domain.shape:
                raise ValueError(
                    f"body mask must have shape {domain.shape}, "
                    f"got {body_mask.shape}"
                )
            if (body_mask & ~solid).any():
                raise ValueError("body mask must select solid nodes only")
        if wall_velocity is not None:
            wall_velocity = np.asarray(wall_velocity, dtype=np.float64)
            if wall_velocity.shape != (lat.d, *domain.shape):
                raise ValueError(
                    f"wall_velocity must have shape {(lat.d, *domain.shape)}"
                )

        # Links: fluid node x with neighbour x + c_i inside the body.
        axes = tuple(range(domain.ndim))
        self._links: list[tuple[int, tuple[np.ndarray, ...], np.ndarray | None]] = []
        fluidlike = domain.fluid_mask
        for i in range(lat.q):
            if not lat.c[i].any():
                continue
            neighbour_in_body = np.roll(body_mask, shift=tuple(-lat.c[i]),
                                        axis=axes) & fluidlike
            idx = np.nonzero(neighbour_in_body)
            if idx[0].size == 0:
                continue
            mom = None
            if wall_velocity is not None:
                # Wall node the link ends on: x + c_i.
                wall_idx = tuple(
                    (idx[a] + lat.c[i, a]) % domain.shape[a]
                    for a in range(lat.d)
                )
                cu = sum(lat.c[i, a] * wall_velocity[a][wall_idx]
                         for a in range(lat.d))
                mom = 2.0 * lat.w[i] * rho0 * cu / lat.cs2
            self._links.append((i, idx, mom))
        if not self._links:
            raise ValueError("body has no fluid-solid boundary links")

    def _distribution(self) -> np.ndarray:
        """Post-collision (pre-stream) distribution of the current state."""
        s = self.solver
        if isinstance(s, STSolver):
            return s.f
        if isinstance(s, (MRPSolver, MRRSolver)):
            return s._post_collision_f()
        raise TypeError(f"unsupported solver type {type(s).__name__}")

    def force(self) -> np.ndarray:
        """Instantaneous force vector on the body (lattice units).

        Per link, the fluid hands the wall the outgoing momentum
        ``c_i f_i^*`` and receives the reflected population back, so the
        transfer is ``2 c_i f_i^*`` for a static wall, reduced by the
        moving-wall momentum term ``c_i 2 w_i rho0 (c_i . u_w)/cs2`` when
        a wall velocity was supplied (matching the half-way bounce-back
        boundary). Includes the hydrostatic normal contribution; subtract
        the ambient-pressure term if only the dynamic force is wanted.
        """
        lat = self.solver.lat
        f = self._distribution()
        total = np.zeros(lat.d)
        for i, idx, mom in self._links:
            transfer = 2.0 * f[i][idx].sum()
            if mom is not None:
                transfer -= np.sum(mom)
            total += lat.c[i] * transfer
        return total


def drag_lift_coefficients(force: np.ndarray, rho: float, u_ref: float,
                           length: float) -> tuple[float, float]:
    """2D drag/lift coefficients ``C = 2 F / (rho u^2 L)``."""
    if u_ref <= 0 or length <= 0:
        raise ValueError("reference velocity and length must be positive")
    denom = 0.5 * rho * u_ref * u_ref * length
    return float(force[0] / denom), float(force[1] / denom)
