"""Grid-convergence studies.

Utilities for measuring the order of accuracy of a scheme against an
analytic solution: run the same physical problem at several resolutions
(with diffusive time scaling), collect an error norm per resolution, and
fit the order as the log-log slope.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["fit_convergence_order", "taylor_green_convergence"]


def fit_convergence_order(resolutions: Sequence[float],
                          errors: Sequence[float]) -> float:
    """Least-squares slope of ``log(error)`` vs ``log(1/resolution)``.

    Returns the estimated order ``p`` such that ``error ~ h^p``.
    """
    res = np.asarray(resolutions, dtype=float)
    err = np.asarray(errors, dtype=float)
    if res.size != err.size or res.size < 2:
        raise ValueError("need at least two matching (resolution, error) pairs")
    if np.any(err <= 0) or np.any(res <= 0):
        raise ValueError("resolutions and errors must be positive")
    slope, _ = np.polyfit(np.log(res), np.log(err), 1)
    return float(-slope)


def taylor_green_convergence(scheme: str, resolutions: Sequence[int] = (16, 24, 32),
                             tau: float = 0.8, u0: float = 0.02,
                             t_phys: float = 0.08) -> tuple[list[float], float]:
    """Taylor-Green convergence study for one scheme.

    Runs the vortex at each resolution for the same physical (diffusive)
    time ``t_phys = nu t / L^2`` and returns ``(errors, order)``.
    """
    from ..solver import periodic_problem
    from ..validation import relative_l2_error, taylor_green_fields

    nu = (tau - 0.5) / 3.0
    errors = []
    for n in resolutions:
        steps = max(1, int(round(t_phys * n * n / nu)))
        rho_i, u_i = taylor_green_fields((n, n), 0.0, nu, u0)
        solver = periodic_problem(scheme, "D2Q9", (n, n), tau,
                                  rho0=rho_i, u0=u_i)
        solver.run(steps)
        _, u_ref = taylor_green_fields((n, n), float(steps), nu, u0)
        errors.append(relative_l2_error(solver.velocity(), u_ref))
    order = fit_convergence_order(list(resolutions), errors)
    return errors, order
