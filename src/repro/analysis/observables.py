"""Macroscopic observables: vorticity, strain rate, stresses.

A distinguishing feature of the moment representation: because the state
*is* ``{rho, j, Pi}``, the deviatoric stress / strain-rate tensor is
available locally per node without finite differences — from the
Chapman-Enskog relation ``Pi_neq = -2 rho cs2 tau S`` of the BGK-class
collision operators. For ST-style states the same quantities are offered
via central-difference gradients, so the two routes can be cross-checked
(they agree at O(Ma^2) + O(dx^2); tested on Taylor-Green flows).
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = [
    "velocity_gradient",
    "vorticity",
    "strain_rate_fd",
    "strain_rate_from_moments",
    "deviatoric_stress_from_moments",
    "enstrophy",
    "mach_number",
    "reynolds_number",
]


def velocity_gradient(u: np.ndarray, periodic: bool = True) -> np.ndarray:
    """Central-difference velocity gradient ``G[a, b] = d_a u_b``.

    ``u`` has shape ``(D, *grid)``; the result ``(D, D, *grid)``. With
    ``periodic`` the stencil wraps (exact for periodic boxes); otherwise
    one-sided differences apply at the domain edges (``np.gradient``).
    """
    d = u.shape[0]
    grid_ndim = u.ndim - 1
    if d != grid_ndim:
        raise ValueError(f"velocity field (D={d}) does not match grid "
                         f"dimension {grid_ndim}")
    grad = np.empty((d, d, *u.shape[1:]))
    for b in range(d):
        for a in range(d):
            if periodic:
                grad[a, b] = (np.roll(u[b], -1, axis=a)
                              - np.roll(u[b], 1, axis=a)) / 2.0
            else:
                grad[a, b] = np.gradient(u[b], axis=a)
    return grad


def vorticity(u: np.ndarray, periodic: bool = True) -> np.ndarray:
    """Vorticity: scalar field in 2D, ``(3, *grid)`` vector field in 3D."""
    g = velocity_gradient(u, periodic)
    d = u.shape[0]
    if d == 2:
        return g[0, 1] - g[1, 0]
    if d == 3:
        w = np.empty((3, *u.shape[1:]))
        w[0] = g[1, 2] - g[2, 1]
        w[1] = g[2, 0] - g[0, 2]
        w[2] = g[0, 1] - g[1, 0]
        return w
    raise ValueError(f"vorticity requires a 2D or 3D field, got D={d}")


def strain_rate_fd(lat: LatticeDescriptor, u: np.ndarray,
                   periodic: bool = True) -> np.ndarray:
    """Finite-difference strain rate, distinct columns ``(T, *grid)``."""
    g = velocity_gradient(u, periodic)
    return np.stack(
        [0.5 * (g[a, b] + g[b, a]) for a, b in lat.pair_tuples], axis=0
    )


def strain_rate_from_moments(lat: LatticeDescriptor, m: np.ndarray,
                             tau: float) -> np.ndarray:
    """Strain rate from the moment state, no gradients needed.

    Chapman-Enskog: ``Pi_neq = -2 rho cs2 tau S`` for the pre-collision
    state, so ``S = -(Pi - rho u u) / (2 rho cs2 tau)``. Returns distinct
    columns ``(T, *grid)``. Exact to O(Ma^3, dx^2) — second-order
    consistent with the FD route (cross-checked in the tests).
    """
    rho = m[0]
    u = m[1:1 + lat.d] / rho
    out = np.empty((lat.n_pairs, *rho.shape))
    denom = -2.0 * rho * lat.cs2 * tau
    for k, (a, b) in enumerate(lat.pair_tuples):
        pi_neq = m[1 + lat.d + k] - rho * u[a] * u[b]
        out[k] = pi_neq / denom
    return out


def deviatoric_stress_from_moments(lat: LatticeDescriptor, m: np.ndarray,
                                   tau: float) -> np.ndarray:
    """Deviatoric (viscous) stress ``sigma = 2 rho nu S`` from moments.

    Equals ``-(1 - 1/(2 tau)) Pi_neq``; distinct columns ``(T, *grid)``.
    """
    nu = lat.viscosity(tau)
    s = strain_rate_from_moments(lat, m, tau)
    return 2.0 * nu * m[0] * s


def enstrophy(u: np.ndarray, periodic: bool = True,
              mask: np.ndarray | None = None) -> float:
    """Total enstrophy ``1/2 sum |omega|^2`` over the (masked) grid."""
    w = vorticity(u, periodic)
    e = 0.5 * (w * w if w.ndim == u.ndim - 1
               else np.einsum("a...,a...->...", w, w))
    if mask is not None:
        e = e[mask]
    return float(e.sum())


def mach_number(lat: LatticeDescriptor, u: np.ndarray) -> np.ndarray:
    """Local Mach number ``|u| / cs``."""
    speed = np.sqrt(np.einsum("a...,a...->...", u, u))
    return speed / np.sqrt(lat.cs2)


def reynolds_number(lat: LatticeDescriptor, u_char: float, l_char: float,
                    tau: float) -> float:
    """``Re = u L / nu`` in lattice units."""
    return u_char * l_char / lat.viscosity(tau)
