"""Stability-margin experiments for the three collision schemes.

Regularization exists "to improve stability" (paper Sections 1-2; Latt &
Chopard 2006, Malaspinas 2015): filtering the non-equilibrium ghost modes
lets the simulation survive lower viscosities and stronger gradients than
plain BGK. This module measures that margin directly: for a given
relaxation time it bisects the largest initial vortex amplitude a scheme
can integrate without blowing up, on an intentionally under-resolved
Taylor-Green vortex.
"""

from __future__ import annotations

import numpy as np

__all__ = ["survives", "max_stable_amplitude", "stability_map"]


def survives(scheme: str, tau: float, u0: float, shape=(24, 24),
             steps: int = 400, seed: int = 0) -> bool:
    """Does a noisy Taylor-Green run at (tau, u0) stay finite and positive?"""
    from ..solver import periodic_problem
    from ..validation import taylor_green_fields

    nu = (tau - 0.5) / 3.0
    rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
    rng = np.random.default_rng(seed)
    u_i = u_i + 0.05 * u0 * rng.standard_normal(u_i.shape)
    solver = periodic_problem(scheme, "D2Q9", shape, tau,
                              rho0=rho_i, u0=u_i)
    with np.errstate(all="ignore"):
        try:
            solver.run(steps)
        except FloatingPointError:  # pragma: no cover - env dependent
            return False
        rho, u = solver.macroscopic()
    return bool(
        np.isfinite(rho).all() and np.isfinite(u).all()
        and rho.min() > 0 and np.abs(u).max() < 1.0
    )


def max_stable_amplitude(scheme: str, tau: float, shape=(24, 24),
                         steps: int = 400, lo: float = 0.01,
                         hi: float = 0.6, iters: int = 8) -> float:
    """Bisect the largest stable initial velocity amplitude at ``tau``.

    Returns ``lo`` if even the smallest amplitude blows up and ``hi`` if
    everything survives.
    """
    if not survives(scheme, tau, lo, shape, steps):
        return lo
    if survives(scheme, tau, hi, shape, steps):
        return hi
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if survives(scheme, tau, mid, shape, steps):
            lo = mid
        else:
            hi = mid
    return lo


def stability_map(taus=(0.51, 0.52, 0.55, 0.6),
                  schemes=("ST", "MR-P", "MR-R"), **kwargs) -> dict:
    """Max stable amplitude per (scheme, tau): the regularization margin."""
    return {
        (scheme, tau): max_stable_amplitude(scheme, tau, **kwargs)
        for scheme in schemes
        for tau in taus
    }
