"""Domain descriptions: node-type fields and standard geometries.

The paper's proxy applications simulate flow in a rectangular 2D or 3D
channel with bounce-back walls and finite-difference velocity boundaries at
the inlet and outlet (Section 4). :class:`Domain` captures the node
classification on a Cartesian grid; factory functions below build the
channel plus a few classical test geometries (periodic box, lid-driven
cavity, cylinder obstacle).

Node types
----------
``FLUID``    bulk fluid node, full collide + stream.
``SOLID``    wall node; half-way bounce-back happens on the links between
             fluid and solid nodes, the solid node values themselves are
             never used.
``INLET``    velocity boundary node (prescribed velocity).
``OUTLET``   pressure boundary node (prescribed density).

Inlet/outlet nodes are treated as fluid by streaming; their populations are
reconstructed each step by the boundary condition objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FLUID",
    "SOLID",
    "INLET",
    "OUTLET",
    "Domain",
    "periodic_box",
    "channel_2d",
    "channel_3d",
    "lid_driven_cavity",
    "cylinder_in_channel",
    "porous_medium",
]

FLUID: int = 0
SOLID: int = 1
INLET: int = 2
OUTLET: int = 3


@dataclass(frozen=True)
class Domain:
    """A Cartesian grid with a node classification.

    ``node_type`` has dtype int8 and shape ``shape``; the convenience masks
    are computed lazily and cached.
    """

    node_type: np.ndarray
    _masks: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        nt = np.ascontiguousarray(self.node_type, dtype=np.int8)
        nt.setflags(write=False)
        object.__setattr__(self, "node_type", nt)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.node_type.shape

    @property
    def ndim(self) -> int:
        return self.node_type.ndim

    def mask(self, kind: int) -> np.ndarray:
        """Boolean mask of nodes with the given type (cached)."""
        if kind not in self._masks:
            m = self.node_type == kind
            m.setflags(write=False)
            self._masks[kind] = m
        return self._masks[kind]

    @property
    def fluid_mask(self) -> np.ndarray:
        """Nodes where the flow field is meaningful (fluid + inlet + outlet)."""
        key = "fluidlike"
        if key not in self._masks:
            m = self.node_type != SOLID
            m.setflags(write=False)
            self._masks[key] = m
        return self._masks[key]

    @property
    def solid_mask(self) -> np.ndarray:
        return self.mask(SOLID)

    @property
    def n_fluid(self) -> int:
        """Number of fluid-like nodes — the 'fluid lattice points' of the
        paper's MFLUPS metric."""
        return int(self.fluid_mask.sum())

    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.shape))


def periodic_box(shape: tuple[int, ...]) -> Domain:
    """Fully periodic box of fluid nodes (no boundaries)."""
    return Domain(np.zeros(shape, dtype=np.int8))


def channel_2d(nx: int, ny: int, with_io: bool = True) -> Domain:
    """Rectangular 2D channel (the paper's 2D proxy application).

    Bounce-back walls on the two ``y`` extremes; inlet at ``x = 0`` and
    outlet at ``x = nx-1`` when ``with_io`` is true (otherwise the ``x``
    direction is left periodic, useful for body-force-driven Poiseuille
    validation).
    """
    if nx < 3 or ny < 3:
        raise ValueError(f"channel needs at least 3 nodes per direction, got {nx}x{ny}")
    nt = np.zeros((nx, ny), dtype=np.int8)
    nt[:, 0] = SOLID
    nt[:, -1] = SOLID
    if with_io:
        nt[0, 1:-1] = INLET
        nt[-1, 1:-1] = OUTLET
    return Domain(nt)


def channel_3d(nx: int, ny: int, nz: int, with_io: bool = True) -> Domain:
    """Rectangular 3D channel (the paper's 3D proxy application).

    Bounce-back walls on the ``y`` and ``z`` extremes (rectangular duct);
    inlet/outlet on the ``x`` extremes when ``with_io`` is true.
    """
    if min(nx, ny, nz) < 3:
        raise ValueError("channel needs at least 3 nodes per direction")
    nt = np.zeros((nx, ny, nz), dtype=np.int8)
    nt[:, 0, :] = SOLID
    nt[:, -1, :] = SOLID
    nt[:, :, 0] = SOLID
    nt[:, :, -1] = SOLID
    if with_io:
        nt[0, 1:-1, 1:-1] = INLET
        nt[-1, 1:-1, 1:-1] = OUTLET
    return Domain(nt)


def lid_driven_cavity(n: int, ndim: int = 2) -> Domain:
    """Closed square/cubic cavity; the moving lid is the ``y``-top plane.

    The lid nodes are SOLID — drive them with a moving-wall bounce-back
    boundary (:class:`repro.boundary.HalfwayBounceBack` with a wall
    velocity restricted to the lid plane).
    """
    if ndim == 2:
        nt = np.zeros((n, n), dtype=np.int8)
        nt[0, :] = SOLID
        nt[-1, :] = SOLID
        nt[:, 0] = SOLID
        nt[:, -1] = SOLID
    elif ndim == 3:
        nt = np.zeros((n, n, n), dtype=np.int8)
        for axis in range(3):
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            sl_lo[axis] = 0
            sl_hi[axis] = -1
            nt[tuple(sl_lo)] = SOLID
            nt[tuple(sl_hi)] = SOLID
    else:
        raise ValueError(f"ndim must be 2 or 3, got {ndim}")
    return Domain(nt)


def cylinder_in_channel(nx: int, ny: int, cx: float, cy: float, radius: float,
                        with_io: bool = True) -> Domain:
    """2D channel with a circular obstacle (classical flow-past-cylinder)."""
    base = channel_2d(nx, ny, with_io=with_io)
    nt = np.array(base.node_type)
    x, y = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    nt[(x - cx) ** 2 + (y - cy) ** 2 <= radius ** 2] = SOLID
    return Domain(nt)


def porous_medium(shape: tuple[int, ...], solid_fraction: float = 0.85,
                  seed: int = 0) -> Domain:
    """Periodic random porous medium with a prescribed solid fraction.

    Each node is independently solid with probability ``solid_fraction``
    (seeded, so geometries are reproducible). The low-fluid-fraction
    regime is the home turf of the ``"sparse"`` backend — the benchmark
    suite uses this factory for its sparse-vs-dense cells — and the
    random microstructure drives the Darcy-flow integration tests.
    """
    if not 0.0 <= solid_fraction < 1.0:
        raise ValueError(
            f"solid_fraction must be in [0, 1), got {solid_fraction}"
        )
    rng = np.random.default_rng(seed)
    nt = np.where(rng.random(shape) < solid_fraction,
                  SOLID, FLUID).astype(np.int8)
    if (nt == SOLID).all():        # pragma: no cover - astronomically rare
        nt.flat[0] = FLUID
    return Domain(nt)
