"""Domains, node classifications and standard benchmark geometries."""

from .domain import (
    FLUID,
    INLET,
    OUTLET,
    SOLID,
    Domain,
    channel_2d,
    channel_3d,
    cylinder_in_channel,
    lid_driven_cavity,
    periodic_box,
    porous_medium,
)

__all__ = [
    "FLUID",
    "SOLID",
    "INLET",
    "OUTLET",
    "Domain",
    "periodic_box",
    "channel_2d",
    "channel_3d",
    "lid_driven_cavity",
    "cylinder_in_channel",
    "porous_medium",
]
