"""Command-line interface: ``mrlbm`` (or ``python -m repro``).

Subcommands
-----------
``run``      Run a channel or Taylor-Green simulation with any scheme.
``profile``  Per-phase time/traffic breakdown for a short workload.
``bench``    Run the standard benchmark matrix, append to the BENCH_*.json
             trajectory and compare against the stored baseline.
``watch``    Tail the per-rank JSONL event streams of a (live) run dir.
``sweep``    Expand a parameter grid into an ensemble and run member
             batches of same-shape simulations through one fused kernel
             (lockstep batched execution; see docs/TUTORIAL.md).
``serve``    Start the local async job server: queue RunSpecs over HTTP
             (or a Unix socket), multiplex them over a bounded worker
             pool of fault-tolerant process runtimes, dedupe identical
             submissions via the problem fingerprint, and stream
             per-job event-bus lines (see docs/SERVICE.md).
``submit``   Submit one job to a running server; optionally wait for
             the sealed result or follow the live event stream.
``jobs``     List a server's jobs, or query one job / its result.
``tables``   Regenerate the paper's Tables 1-4.
``figures``  Regenerate the paper's Figures 2-3 (text rendering).
``summary``  Regenerate the headline claims (footprint, speedups, MR-R cost).
``devices``  Show the modelled GPU devices.

``run`` takes observability flags (see ``docs/observability.md``):
``--metrics out.jsonl`` streams per-report-interval metric records,
``--trace out.json`` writes a Chrome trace-event file of the
collide/stream/boundary phase spans, ``--manifest`` writes a
reproducibility manifest next to the output, and ``--watchdog N`` aborts
cleanly on NaN/Inf/over-speed divergence sampled every N steps.

``run`` also takes distributed flags (see ``docs/PARALLEL.md``):
``--ranks N`` decomposes the domain into N streamwise slabs and
``--backend {emulated,process}`` picks between the sequential in-process
emulation and the real multiprocess shared-memory runtime.

The process backend is fault tolerant: ``--checkpoint-dir DIR
--checkpoint-every N`` writes coordinated distributed checkpoints,
``--resume DIR`` continues a checkpointed run bit-exactly (the rank
count may differ from the writing run), ``--max-restarts K`` retries a
failed cohort from the last checkpoint, and ``--watchdog N`` runs the
divergence check inside every rank.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="mrlbm",
        description="Moment representation of regularized LBM (SC'23 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a simulation")
    run.add_argument("--scheme", default="MR-P", choices=["ST", "MR-P", "MR-R"])
    run.add_argument("--lattice", default="D2Q9")
    run.add_argument("--shape", default="128,66",
                     help="comma-separated grid shape, e.g. 128,66 or 64,34,34")
    run.add_argument("--problem", default="channel",
                     choices=["channel", "forced-channel", "taylor-green",
                              "cylinder", "porous"])
    run.add_argument("--tau", type=float, default=0.8)
    run.add_argument("--u-max", type=float, default=0.05)
    run.add_argument("--steps", type=int, default=1000)
    run.add_argument("--bc", default="regularized-fd", choices=["regularized-fd", "nebb"])
    run.add_argument("--ranks", type=int, default=1, metavar="N",
                     help="decompose into N streamwise slabs (distributed "
                     "run; see docs/PARALLEL.md)")
    run.add_argument("--backend", default=None,
                     choices=["emulated", "process"],
                     help="distributed backend: 'emulated' steps every rank "
                     "sequentially in-process, 'process' runs each rank as "
                     "a real OS process over shared memory (default: "
                     "'emulated' when --ranks > 1, 'process' when "
                     "checkpoint/resume flags are given)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write coordinated distributed checkpoints into "
                     "DIR (process backend; see docs/PARALLEL.md)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="checkpoint cadence in steps (0 = off)")
    run.add_argument("--resume", default=None, metavar="DIR",
                     help="resume from the newest complete checkpoint in "
                     "DIR (or from DIR itself if it is a step directory); "
                     "--steps is the TOTAL trajectory length")
    run.add_argument("--max-restarts", type=int, default=0, metavar="K",
                     help="retry a failed cohort up to K times from the "
                     "last checkpoint (process backend)")
    run.add_argument("--output", default=None, help="write final fields to .npz/.vtk")
    run.add_argument("--report-interval", type=int, default=200)
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="stream per-report metric records to a JSON-lines file")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace-event file of the phase spans")
    run.add_argument("--manifest", default=None, metavar="PATH", nargs="?",
                     const="", help="write a run manifest JSON (default: "
                     "next to --output, or run.manifest.json)")
    run.add_argument("--watchdog", type=int, default=0, metavar="N",
                     help="check for NaN/Inf/over-speed divergence every N "
                     "steps (0 = off)")
    run.add_argument("--accel", default="reference",
                     choices=["reference", "fused", "aa", "sparse", "numba"],
                     help="execution backend for the solver step: the "
                     "reference implementation, the fused NumPy fast "
                     "path, the single-lattice in-place streaming path "
                     "(aa), the sparse fluid-node-list path for masked "
                     "geometries, or the numba JIT kernels (optional "
                     "extra); see docs/PERFORMANCE.md")
    run.add_argument("--events", default=None, metavar="DIR",
                     help="append per-rank JSONL event streams "
                     "(heartbeat/progress/phase/checkpoint/watchdog) "
                     "into DIR; tail them with 'mrlbm watch DIR'")
    run.add_argument("--events-every", type=int, default=25, metavar="N",
                     help="event heartbeat cadence in steps (default 25)")

    prof = sub.add_parser(
        "profile", help="per-phase time/traffic breakdown for a short workload")
    prof.add_argument("--scheme", default="MR-P",
                      choices=["ST", "MR-P", "MR-R", "AA", "all"])
    prof.add_argument("--lattice", default="D2Q9")
    prof.add_argument("--shape", default=None,
                      help="comma-separated grid shape (default: small 2D/3D)")
    prof.add_argument("--steps", type=int, default=40)
    prof.add_argument("--tau", type=float, default=0.8)
    prof.add_argument("--device", default="V100",
                      help="device for the traffic measurement / roofline")
    prof.add_argument("--no-traffic", action="store_true",
                      help="skip the virtual-GPU DRAM traffic measurement")
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="also dump the raw profile results as JSON")
    prof.add_argument("--accel", default="reference",
                      choices=["reference", "fused", "aa", "sparse", "numba",
                               "compare"],
                      help="execution backend to profile, or 'compare' to "
                      "run every available backend on one problem and "
                      "report MLUPS side by side")
    prof.add_argument("--problem", default="periodic",
                      choices=["periodic", "forced-channel", "power-law",
                               "cylinder", "porous"],
                      help="workload for --accel compare: a periodic box, "
                      "a body-force-driven channel, the power-law "
                      "(variable-tau) channel, a channel with a "
                      "cylinder obstacle, or a random porous medium "
                      "(masked geometries)")

    bench = sub.add_parser(
        "bench", help="run the benchmark matrix; append to the "
        "BENCH_<suite>.json trajectory and flag regressions")
    bench.add_argument("--suite", default="default",
                       help="suite name (selects the trajectory file)")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke matrix: same cells, shrunk "
                       "shapes/steps, a few seconds total")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="trajectory file (default BENCH_<suite>.json "
                       "in the current directory)")
    bench.add_argument("--device", default="V100",
                       help="modelled GPU for the roofline column")
    bench.add_argument("--threshold", type=float, default=0.15,
                       metavar="REL", help="relative regression threshold "
                       "(widened per cell by the baseline's own spread)")
    bench.add_argument("--report-only", action="store_true",
                       help="print regressions but exit 0 (CI smoke mode)")
    bench.add_argument("--no-append", action="store_true",
                       help="measure and compare without writing the "
                       "trajectory")
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="also dump the new records + verdicts as JSON")

    watch = sub.add_parser(
        "watch", help="tail the per-rank event streams of a run directory")
    watch.add_argument("run_dir", help="directory holding "
                       "events-rank*.jsonl streams (see 'mrlbm run "
                       "--events DIR')")
    watch.add_argument("--follow", action="store_true",
                       help="keep tailing until every rank ends (or "
                       "--timeout expires)")
    watch.add_argument("--poll", type=float, default=0.5, metavar="S",
                       help="poll interval in seconds while following")
    watch.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="give up following after S seconds")

    sub.add_parser("tables", help="regenerate paper Tables 1-4")
    fig = sub.add_parser("figures", help="regenerate paper Figures 2-3")
    fig.add_argument("--which", default="both", choices=["2", "3", "both"])
    fig.add_argument("--svg", default=None, metavar="PREFIX",
                     help="also write PREFIX_figure2.svg / PREFIX_figure3.svg")
    fig.add_argument("--csv", default=None, metavar="PREFIX",
                     help="also write PREFIX_figure2.csv / PREFIX_figure3.csv")
    sub.add_parser("summary", help="regenerate headline claims")
    sub.add_parser("devices", help="list modelled GPU devices")

    val = sub.add_parser("validate",
                         help="quick physics validation (TG + Poiseuille)")
    val.add_argument("--fast", action="store_true",
                     help="smaller grids / fewer steps")

    rep = sub.add_parser("report", help="write the full reproduction report")
    rep.add_argument("--output", default="reproduction_report.md")
    rep.add_argument("--svg-dir", default=None,
                     help="also write the SVG figures into this directory")

    swp = sub.add_parser(
        "sweep", help="expand a parameter grid into an ensemble and run "
        "member batches through one fused kernel (see docs/TUTORIAL.md)")
    swp.add_argument("--problem", default="taylor-green",
                     choices=["taylor-green", "forced-channel", "channel"])
    swp.add_argument("--scheme", default="MR-P",
                     help="comma-separated scheme list, e.g. MR-P,MR-R,ST")
    swp.add_argument("--lattice", default="D2Q9",
                     help="comma-separated lattice list")
    swp.add_argument("--shape", default="48,48",
                     help="semicolon-separated shape list of comma shapes, "
                     "e.g. '48,48;64,64'")
    swp.add_argument("--tau", default="0.8",
                     help="comma-separated relaxation times, e.g. "
                     "0.6,0.8,1.0")
    swp.add_argument("--u-max", default="0.05",
                     help="comma-separated peak velocities")
    swp.add_argument("--steps", type=int, default=200)
    swp.add_argument("--batch", type=int, default=16, metavar="B",
                     help="max members per fused batch (1 = serial "
                     "per-member execution, for comparison)")
    swp.add_argument("--out", default=None, metavar="DIR",
                     help="write per-member manifests and "
                     "sweep_summary.json into DIR")
    swp.add_argument("--json", default=None, metavar="PATH",
                     help="also dump the sweep summary JSON to PATH")

    srv = sub.add_parser(
        "serve", help="start the local async job server over the "
        "fault-tolerant runtime (see docs/SERVICE.md)")
    srv.add_argument("--root", default="mrlbm-jobs", metavar="DIR",
                     help="job state directory: one subdirectory per "
                     "job holding events, checkpoints and the sealed "
                     "result (default mrlbm-jobs)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="TCP bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8722,
                     help="TCP port; 0 picks an ephemeral one "
                     "(default 8722)")
    srv.add_argument("--uds", default=None, metavar="PATH",
                     help="bind a Unix-domain socket at PATH instead "
                     "of TCP")
    srv.add_argument("--workers", type=int, default=2, metavar="N",
                     help="number of jobs run concurrently (default 2)")
    srv.add_argument("--run-timeout", type=float, default=None,
                     metavar="S", help="per-attempt wall-clock timeout "
                     "forwarded to the process runtime")

    sbm = sub.add_parser(
        "submit", help="submit a job to a running 'mrlbm serve' server")
    sbm.add_argument("--server", default="127.0.0.1:8722", metavar="ADDR",
                     help="server address: host:port, or a Unix-socket "
                     "path (contains '/')")
    sbm.add_argument("--kind", default="forced-channel",
                     help="problem kind (see 'mrlbm jobs --kinds')")
    sbm.add_argument("--scheme", default="MR-P",
                     choices=["ST", "MR-P", "MR-R"])
    sbm.add_argument("--lattice", default="D2Q9")
    sbm.add_argument("--shape", default="64,34",
                     help="comma-separated grid shape")
    sbm.add_argument("--steps", type=int, default=500)
    sbm.add_argument("--tau", type=float, default=0.8)
    sbm.add_argument("--ranks", type=int, default=1)
    sbm.add_argument("--accel", default="reference",
                     choices=["reference", "fused", "aa", "sparse"])
    sbm.add_argument("--option", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="extra problem option forwarded to the "
                     "builder (repeatable; VALUE is parsed as JSON, "
                     "falling back to a string)")
    sbm.add_argument("--checkpoint-every", type=int, default=0,
                     metavar="N", help="checkpoint cadence in steps "
                     "(0 = off); checkpoints live inside the job dir")
    sbm.add_argument("--max-restarts", type=int, default=0, metavar="K")
    sbm.add_argument("--watchdog", type=int, default=0, metavar="N")
    sbm.add_argument("--wait", action="store_true",
                     help="block until the job finishes and print the "
                     "sealed result")
    sbm.add_argument("--follow", action="store_true",
                     help="stream the job's event-bus lines while it "
                     "runs (implies --wait)")
    sbm.add_argument("--timeout", type=float, default=600.0, metavar="S",
                     help="give up waiting after S seconds "
                     "(default 600)")

    jbs = sub.add_parser(
        "jobs", help="list jobs on a running server, or query one job")
    jbs.add_argument("job_id", nargs="?", default=None,
                     help="show one job instead of listing all")
    jbs.add_argument("--server", default="127.0.0.1:8722", metavar="ADDR",
                     help="server address: host:port, or a Unix-socket "
                     "path (contains '/')")
    jbs.add_argument("--result", action="store_true",
                     help="with a job id: print the sealed result JSON")
    jbs.add_argument("--kinds", action="store_true",
                     help="list the server's registered problem kinds")
    jbs.add_argument("--json", action="store_true",
                     help="print raw JSON instead of the table")

    tune = sub.add_parser("tune", help="rank MR tile configurations")
    tune.add_argument("--lattice", default="D3Q19")
    tune.add_argument("--device", default="V100")
    tune.add_argument("--shape", default="256,256,256")
    tune.add_argument("--scheme", default="MR-P", choices=["MR-P", "MR-R"])
    tune.add_argument("--top", type=int, default=10)
    return p


def _distributed_spec(args, shape):
    """Build the :class:`~repro.parallel.RunSpec` for a distributed run."""
    from .parallel import RunSpec

    accel = getattr(args, "accel", "reference")
    if accel == "numba":
        raise ValueError(
            "--accel numba is single-domain only; distributed runs "
            "support --accel reference, fused, aa or sparse")
    fault_tolerance = {
        "checkpoint_dir": args.checkpoint_dir,
        "checkpoint_every": args.checkpoint_every,
        "resume_from": args.resume,
        "max_restarts": args.max_restarts,
        "watchdog_every": args.watchdog,
        "events_dir": getattr(args, "events", None),
        "events_every": getattr(args, "events_every", 25),
    }
    # The problem kinds live in the shared registry (repro.service.registry),
    # so the CLI only decides which options each kind takes.  The porous
    # preset draws its own geometry from a seed and takes no u_max.
    options: dict = {"u_max": args.u_max}
    if args.problem == "channel":
        options["bc_method"] = "nebb"
    elif args.problem == "porous":
        options = {}
    return RunSpec(args.problem, args.scheme, args.lattice, shape,
                   args.ranks, tau=args.tau, accel=accel,
                   options=options, **fault_tolerance)


def _cmd_run_distributed(args: argparse.Namespace) -> int:
    """Handle ``mrlbm run --ranks N [--backend {emulated,process}]``."""
    from .parallel import ParallelRuntimeError, run_process

    wants_fault_tolerance = bool(args.resume or args.checkpoint_dir
                                 or args.max_restarts)
    backend = args.backend or ("process" if wants_fault_tolerance
                               else "emulated")
    if wants_fault_tolerance and backend != "process":
        raise SystemExit("--checkpoint-dir/--resume/--max-restarts need "
                         "--backend process")
    shape = tuple(int(s) for s in args.shape.split(","))
    if getattr(args, "trace", None):
        print("note: --trace applies to single-domain runs only; "
              "ignored for distributed backends", file=sys.stderr)
    if args.watchdog and backend != "process":
        print("note: --watchdog on distributed runs needs the process "
              "backend; ignored", file=sys.stderr)
    if getattr(args, "events", None) and backend != "process":
        print("note: --events on distributed runs needs the process "
              "backend; ignored", file=sys.stderr)

    try:
        spec = _distributed_spec(args, shape)
        solver = spec.build()
    except (ValueError, RuntimeError) as err:
        # unsupported accel/solver combination — fail before any rank runs
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    n_fluid = solver.global_domain.n_fluid
    print(f"{args.scheme} / {args.lattice} on {shape} "
          f"({n_fluid:,} fluid nodes), tau = {args.tau}, "
          f"{args.ranks} rank(s), backend = {backend}, "
          f"accel = {spec.accel}")

    t0 = time.perf_counter()
    report = None
    if backend == "process":
        try:
            result = run_process(spec, args.steps)
        except KeyboardInterrupt:
            # The runtime's interrupt path has already terminated the
            # rank processes and unlinked every shared-memory block;
            # exit with the conventional 128+SIGINT status.
            print("INTERRUPTED: cohort terminated, shared memory "
                  "released", file=sys.stderr)
            return 130
        except ParallelRuntimeError as err:
            print(f"ABORTED: {err}", file=sys.stderr)
            return 2
        except (FileNotFoundError, ValueError) as err:
            # bad --resume target or incompatible checkpoint manifest
            print(f"ERROR: {err}", file=sys.stderr)
            return 2
        rho, u = result.rho, result.u
        comm, report = result.comm, result.report
        wall = result.wall_s
        if result.start_step:
            print(f"  resumed from checkpoint at step {result.start_step} "
                  f"({args.steps - result.start_step} steps run)")
        if result.restarts:
            print(f"  recovered after {result.restarts} restart(s) "
                  f"from the last checkpoint")
        for entry in report["mlups_per_rank"]:
            print(f"  rank {entry['rank']}: {entry['n_fluid']:,} fluid "
                  f"nodes, {entry['mlups']:.2f} MLUPS")
        print(f"  cohort: {report['mlups']:.2f} MLUPS "
              f"(slowest-rank pace over {report['steps']} steps)")
        imb = report.get("imbalance")
        if imb:
            print(f"  imbalance: slowest/mean = "
                  f"{imb['imbalance_ratio']:.2f} "
                  f"(rank {imb['slowest_rank']}), halo-wait share = "
                  f"{imb['exchange_wait_share']:.1%} of step time")
        if args.events:
            print(f"  event streams in {args.events} "
                  f"(tail with 'mrlbm watch {args.events}')")
    else:
        solver.run(args.steps)
        wall = time.perf_counter() - t0
        rho, u = solver.gather_macroscopic()
        comm = solver.comm
        print(f"  {n_fluid * args.steps / wall / 1e6:.2f} MLUPS "
              f"(sequential emulation, {args.steps} steps)")

    print(f"  halo payload per cut face: "
          f"{solver.communication_values_per_face()} doubles "
          f"(both directions)")
    print(f"  exchange volume: {comm.bytes_per_step():,.0f} B/step, "
          f"{comm.messages} messages total")

    if args.metrics:
        from .obs import JsonLinesExporter

        exporter = JsonLinesExporter(args.metrics)
        record = {"backend": backend, "ranks": args.ranks,
                  "steps": args.steps, "wall_s": wall,
                  "comm": comm.to_dict()}
        if report is not None:
            record["report"] = report
        exporter.write(record)
        exporter.close()
        print(f"wrote {args.metrics}")

    if args.output:
        from .io import save_fields, write_vtk

        if args.output.endswith(".vtk"):
            write_vtk(args.output, rho, u)
        else:
            save_fields(args.output, rho, u, time=args.steps)
        print(f"wrote {args.output}")

    if args.manifest is not None:
        from .obs import manifest_path_for, write_manifest

        mpath = (args.manifest or
                 (manifest_path_for(args.output) if args.output
                  else "run.manifest.json"))
        solver.time = args.steps
        write_manifest(mpath, solver, problem=args.problem,
                       u_max=args.u_max, backend=backend, ranks=args.ranks,
                       command="mrlbm run")
        print(f"wrote {mpath}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .service.registry import build_single

    if (args.ranks > 1 or args.backend is not None or args.resume
            or args.checkpoint_dir or args.max_restarts):
        return _cmd_run_distributed(args)

    shape = tuple(int(s) for s in args.shape.split(","))
    accel = getattr(args, "accel", "reference")
    # Single-domain dispatch goes through the same problem registry as
    # the distributed runtime, the sweep engine and the job server; the
    # CLI only decides which options each kind takes (the porous preset
    # draws its own geometry from a seed and takes no u_max).
    options: dict = {"u_max": args.u_max}
    if args.problem == "channel":
        options["bc_method"] = args.bc
    elif args.problem == "porous":
        options = {}
    try:
        solver = build_single(args.problem, args.scheme, args.lattice,
                              shape, tau=args.tau, backend=accel,
                              **options)
    except (ValueError, RuntimeError) as err:
        # Backend validation happens at solver construction (see
        # repro.accel.validate_backend), so an unsupported --accel
        # combination dies here with a clean message — never mid-run.
        print(f"ERROR: {err}", file=sys.stderr)
        return 2

    n_fluid = solver.domain.n_fluid
    t0 = time.perf_counter()

    telemetry = None
    metrics = None
    if args.metrics or args.trace or args.events:
        from .obs import Telemetry

        telemetry = Telemetry()
        solver.attach_telemetry(telemetry)
    if args.metrics:
        from .obs import JsonLinesExporter

        metrics = JsonLinesExporter(args.metrics)

    emitter = None
    if args.events:
        import os as _os

        from .obs import EventStream, RunEventEmitter

        emitter = RunEventEmitter(
            EventStream(args.events, rank=0),
            every=args.events_every, n_steps=args.steps,
            telemetry=telemetry, n_fluid=n_fluid)
        emitter.start(pid=_os.getpid(), scheme=args.scheme,
                      lattice=args.lattice, accel=accel,
                      n_fluid=int(n_fluid))

    def report(s):
        elapsed = time.perf_counter() - t0
        mflups = n_fluid * s.time / elapsed / 1e6
        print(f"  step {s.time:7d}  max|u| = {s.diagnostics.max_speed():.5f}  "
              f"mass = {s.diagnostics.mass():.6e}  ({mflups:.2f} CPU-MFLUPS)")
        if metrics is not None:
            metrics.write({
                "step": s.time,
                "elapsed_s": elapsed,
                "mlups": mflups,
                "max_speed": s.diagnostics.max_speed(),
                "mass": s.diagnostics.mass(),
            })

    callback = report
    hooks = []
    if args.watchdog > 0:
        from .obs import StabilityWatchdog

        hooks.append(StabilityWatchdog(
            every=args.watchdog,
            telemetry=telemetry if telemetry is not None else None))
    if emitter is not None:
        hooks.append(lambda s: emitter.maybe(s.time))
    if hooks:
        def callback(s, _report=report, _hooks=tuple(hooks)):
            for hook in _hooks:
                hook(s)
            if s.time % args.report_interval == 0:
                _report(s)

        callback_interval = 1
    else:
        callback_interval = args.report_interval

    print(f"{args.scheme} / {args.lattice} on {shape} "
          f"({n_fluid:,} fluid nodes), tau = {args.tau}, "
          f"accel = {accel}")
    try:
        from .obs import StabilityError

        try:
            solver.run(args.steps, callback=callback,
                       callback_interval=callback_interval)
            if emitter is not None:
                emitter.end(solver.time, steps=solver.time)
        except StabilityError as err:
            import json as _json

            if emitter is not None:
                emitter.error(solver.time, "StabilityError", str(err))
            print(f"ABORTED: {err}", file=sys.stderr)
            print(_json.dumps(err.report, indent=2), file=sys.stderr)
            return 2
    finally:
        if emitter is not None:
            emitter.stream.close()
            print(f"event stream in {args.events} "
                  f"(tail with 'mrlbm watch {args.events}')")
        if metrics is not None:
            if telemetry is not None:
                metrics.write({"summary": telemetry.summary(),
                               "n_fluid": n_fluid,
                               "mlups": telemetry.mlups(n_fluid)})
            metrics.close()
            print(f"wrote {args.metrics}")
        if telemetry is not None and args.trace:
            from .obs import write_chrome_trace

            write_chrome_trace(telemetry, args.trace)
            print(f"wrote {args.trace} (load in chrome://tracing)")

    if args.output:
        from .io import save_fields, write_vtk

        rho, u = solver.macroscopic()
        if args.output.endswith(".vtk"):
            write_vtk(args.output, rho, u)
        else:
            save_fields(args.output, rho, u, time=solver.time)
        print(f"wrote {args.output}")

    if args.manifest is not None:
        from .obs import manifest_path_for, write_manifest

        if args.manifest:
            mpath = args.manifest
        elif args.output:
            mpath = manifest_path_for(args.output)
        else:
            mpath = "run.manifest.json"
        write_manifest(mpath, solver, problem=args.problem,
                       u_max=args.u_max, bc=args.bc, accel=accel,
                       command="mrlbm run")
        print(f"wrote {mpath}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import PROFILE_SCHEMES, format_profile, profile_scheme
    from .obs.profile import compare_backends, format_backend_comparison

    shape = None
    if args.shape:
        shape = tuple(int(s) for s in args.shape.split(","))
    schemes = PROFILE_SCHEMES if args.scheme == "all" else (args.scheme,)
    accel = getattr(args, "accel", "reference")
    results = []
    for i, scheme in enumerate(schemes):
        if i:
            print()
        if accel == "compare":
            if scheme.upper() == "AA":
                print("AA: reference-only scheme; the single-lattice fast "
                      "path is the 'aa' backend column of the ST/MR rows")
                continue
            result = compare_backends(scheme, lattice=args.lattice,
                                      shape=shape, steps=args.steps,
                                      tau=args.tau,
                                      problem=getattr(args, "problem",
                                                      "periodic"))
            results.append(result)
            print(format_backend_comparison(result))
            continue
        result = profile_scheme(scheme, lattice=args.lattice, shape=shape,
                                steps=args.steps, tau=args.tau,
                                device=args.device,
                                measure_traffic=not args.no_traffic,
                                accel=accel)
        results.append(result)
        print(format_profile(result))
    if args.json:
        import json as _json

        Path(args.json).write_text(_json.dumps(results, indent=2))
        print(f"\nwrote {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs import (
        append_records,
        compare_to_baseline,
        default_suite,
        format_comparison,
        format_records,
        load_trajectory,
        run_suite,
        trajectory_path,
    )

    cells = default_suite(quick=args.quick)
    mode = "quick" if args.quick else "full"
    print(f"benchmark suite '{args.suite}' ({mode}, {len(cells)} cells, "
          f"roofline device {args.device})")

    def progress(record):
        d = record.to_dict()
        print(f"  {d['scheme']:8s} {d['lattice']:6s} {d['backend']:9s} "
              f"{d['problem']:14s} ranks={d['ranks']} -> "
              f"{d['mlups']:8.2f} MLUPS ({d['attainment']:.0%} of host bw)")

    records = run_suite(cells, suite=args.suite, device=args.device,
                        progress=progress)
    print()
    print(format_records(records))

    path = Path(args.out) if args.out else trajectory_path(args.suite)
    try:
        doc = load_trajectory(path)
    except ValueError as err:
        print(f"ERROR: corrupt trajectory {path}: {err}", file=sys.stderr)
        return 2
    result = compare_to_baseline(doc["records"], records,
                                 rel_threshold=args.threshold)
    print()
    print(format_comparison(result))

    if not args.no_append:
        append_records(path, records)
        print(f"\nappended {len(records)} records to {path} "
              f"({len(doc['records']) + len(records)} total)")
    if args.json:
        import json as _json

        Path(args.json).write_text(_json.dumps({
            "records": [r.to_dict() for r in records],
            "comparison": result,
        }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {args.json}")

    if result["regressions"] and not args.report_only:
        print(f"\nFAIL: {result['regressions']} regression(s) beyond the "
              f"noise-aware threshold", file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .obs import (
        event_files,
        follow_events,
        format_watch,
        read_events,
        summarize_events,
    )

    run_dir = Path(args.run_dir)
    if not args.follow and not event_files(run_dir):
        print(f"ERROR: no events-rank*.jsonl streams under {run_dir} "
              f"(start a run with --events)", file=sys.stderr)
        return 2

    if args.follow:
        events = []
        try:
            for event in follow_events(run_dir, poll_s=args.poll,
                                       timeout_s=args.timeout):
                events.append(event)
                kind = event.get("kind")
                if kind in ("heartbeat", "phase"):
                    continue        # summarized below; too chatty to echo
                step = event.get("step")
                detail = {k: v for k, v in event.items()
                          if k not in ("ts", "rank", "attempt", "kind",
                                       "step")}
                print(f"  rank {event.get('rank', 0):3d} "
                      f"{kind:>10s} step {step if step is not None else '-':>7} "
                      f" {detail if detail else ''}")
        except KeyboardInterrupt:
            pass
        summary = summarize_events(events)
    else:
        summary = summarize_events(read_events(run_dir))

    if not summary["ranks"]:
        print(f"no events yet under {run_dir}")
        return 0
    print(f"\n{run_dir}: {summary['n_ranks']} rank(s), "
          f"{'all done' if summary['all_done'] else 'still running'}")
    print(format_watch(summary))
    return 1 if any(s["status"] == "error"
                    for s in summary["ranks"].values()) else 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .bench import (
        render_table,
        table1_devices,
        table2_bytes_per_flup,
        table3_roofline,
        table4_bandwidth,
    )

    t1 = table1_devices()
    print(render_table(t1["headers"], t1["rows"], "Table 1 — device features"))

    print("\nTable 2 — bytes per fluid lattice update (B/F)")
    rows = [[r["pattern"], r["formula"], r["D2Q9"], r["D2Q9_measured"],
             r["D3Q19"], r["D3Q19_measured"]] for r in table2_bytes_per_flup()["rows"]]
    print(render_table(
        ["Pattern", "B/F", "D2Q9", "(measured)", "D3Q19", "(measured)"], rows))

    print("\nTable 3 — roofline MFLUPS (Eq. 15)")
    rows = [[r["pattern"]] + [f"{r[(d, l)]:,.0f}"
            for d in ("V100", "MI100") for l in ("D2Q9", "D3Q19")]
            for r in table3_roofline()["rows"]]
    print(render_table(
        ["Model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"], rows))

    print("\nTable 4 — sustained bandwidth (GB/s, fraction of peak)")
    rows = [[r["device"], r["pattern"],
             f"{r['D2Q9']:.0f} ({r['D2Q9_fraction']:.0%})",
             f"{r['D3Q19']:.0f} ({r['D3Q19_fraction']:.0%})"]
            for r in table4_bandwidth()["rows"]]
    print(render_table(["GPU", "Model", "D2Q9", "D3Q19"], rows))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .bench import (
        figure2_d2q9,
        figure3_d3q19,
        figure_to_csv,
        figure_to_svg,
        render_figure_text,
    )

    jobs = []
    if args.which in ("2", "both"):
        jobs.append(("figure2", "Figure 2 — D2Q9 performance (MFLUPS)",
                     figure2_d2q9))
    if args.which in ("3", "both"):
        jobs.append(("figure3", "Figure 3 — D3Q19 performance (MFLUPS)",
                     figure3_d3q19))
    for name, title, fn in jobs:
        panels = fn()
        print(f"{title}\n")
        print(render_figure_text(panels))
        print()
        if args.svg:
            path = Path(f"{args.svg}_{name}.svg")
            path.write_text(figure_to_svg(panels, title))
            print(f"wrote {path}")
        if args.csv:
            path = Path(f"{args.csv}_{name}.csv")
            path.write_text(figure_to_csv(panels))
            print(f"wrote {path}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from .bench import footprint_summary, intensity_summary, speedup_summary

    print("Memory footprint at 15M fluid nodes (Section 4.1):")
    for r in footprint_summary():
        if r["scheme"] == "reduction":
            print(f"  {r['lattice']:6s} reduction: {r['gib']:.1%} "
                  f"(paper ~{r['paper_gb']:.0%})")
        else:
            print(f"  {r['lattice']:6s} {r['scheme']:3s}: {r['gib']:.2f} GiB "
                  f"(paper ~{r['paper_gb']} GB)")
    print("\nMR-P speedup over ST (Section 5):")
    for r in speedup_summary():
        print(f"  {r['device']:6s} {r['lattice']:6s}: {r['speedup']:.2f}x "
              f"(paper {r['paper_speedup']}x)")
    s = intensity_summary()
    print(f"\nMR-R/MR-P arithmetic intensity, D2Q9: {s['ai_ratio_d2q9']:.2f} "
          f"(paper ~{s['paper_ai_ratio']})")
    for dev, v in s["d3q19_penalties"].items():
        print(f"  {dev}: MR-R penalty on D3Q19 = {v['penalty']:.0f} MFLUPS "
              f"(paper ~{v['paper_penalty']:.0f})")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from .gpu import MI100, V100

    for d in (V100, MI100):
        print(f"{d.name}: {d.vendor}, {d.sm_count} SM/CU, "
              f"{d.bandwidth_gbs} GB/s, {d.fp64_tflops} FP64 TFLOP/s, "
              f"{d.memory_gb:.0f} GB HBM2, {d.compiler}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .ensemble import expand_sweep, run_sweep

    try:
        schemes = [s.strip() for s in args.scheme.split(",") if s.strip()]
        lattices = [s.strip() for s in args.lattice.split(",") if s.strip()]
        shapes = [tuple(int(v) for v in part.split(","))
                  for part in args.shape.split(";") if part.strip()]
        taus = [float(v) for v in args.tau.split(",") if v.strip()]
        u_maxes = [float(v) for v in args.u_max.split(",") if v.strip()]
        specs, dropped = expand_sweep(args.problem, schemes, lattices,
                                      shapes, taus, u_maxes)
        if not specs:
            raise ValueError("the sweep grid is empty")
        print(f"sweep '{args.problem}': {len(specs)} members "
              f"({dropped} duplicates dropped), {args.steps} steps, "
              f"batch size <= {args.batch}")
        result = run_sweep(specs, args.steps, max_batch=args.batch,
                           out_dir=args.out,
                           progress=lambda line: print(f"  {line}"))
    except (ValueError, RuntimeError) as err:
        # Bad grid values or an ineligible member configuration — fail
        # with a clean message, never a traceback.
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    summary = result.to_dict()
    print(f"\n{summary['n_members']} members in {summary['n_batches']} "
          f"batch(es), {result.wall_s:.2f} s wall, "
          f"{summary['aggregate_mlups']:.2f} MLUPS aggregate")
    for row in result.members:
        print(f"  {row['scheme']:6s} {row['lattice']:6s} "
              f"{str(tuple(row['shape'])):>12s} tau={row['tau']:<5g} "
              f"u_max={row['options'].get('u_max', 0.0):<6g} "
              f"batch={row['batch']} -> {row['mlups']:7.2f} MLUPS "
              f"[{row['fingerprint']}]")
    if args.out:
        print(f"manifests + summary written to {args.out}")
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2) + "\n",
                                   encoding="utf-8")
        print(f"summary JSON written to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Handle ``mrlbm serve``: run the async job server until stopped."""
    import asyncio

    from .service import JobScheduler, JobServer

    scheduler = JobScheduler(args.root, workers=args.workers,
                             run_timeout=args.run_timeout)
    server = JobServer(scheduler, host=args.host, port=args.port,
                       uds=args.uds)

    async def _serve() -> None:
        await server.start()
        print(f"mrlbm serve: listening on {server.address} "
              f"({scheduler.workers} worker(s), jobs under "
              f"{scheduler.root})")
        print(f"  submit:  mrlbm submit --server {server.address} ...")
        print(f"  inspect: mrlbm jobs --server {server.address}")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("mrlbm serve: stopped", file=sys.stderr)
    return 0


def _parse_option(text: str) -> tuple[str, object]:
    """Split one ``--option KEY=VALUE``; VALUE parses as JSON if it can."""
    import json as _json

    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ValueError(f"--option expects KEY=VALUE, got {text!r}")
    try:
        return key, _json.loads(value)
    except _json.JSONDecodeError:
        return key, value


def _cmd_submit(args: argparse.Namespace) -> int:
    """Handle ``mrlbm submit``: post one job, optionally wait/follow."""
    from .service import ServiceClient, ServiceError

    try:
        options = dict(_parse_option(o) for o in args.option)
    except ValueError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    payload: dict = {
        "kind": args.kind, "scheme": args.scheme, "lattice": args.lattice,
        "shape": [int(s) for s in args.shape.split(",")],
        "steps": args.steps, "tau": args.tau, "n_ranks": args.ranks,
        "accel": args.accel, "options": options,
    }
    if args.checkpoint_every:
        payload["checkpoint_every"] = args.checkpoint_every
    if args.max_restarts:
        payload["max_restarts"] = args.max_restarts
    if args.watchdog:
        payload["watchdog_every"] = args.watchdog

    client = ServiceClient(args.server)
    try:
        reply = client.submit(payload)
        job = reply["job"]
        verb = ("created" if reply.get("created")
                else "cached" if job["state"] == "done" else "coalesced")
        print(f"{job['id']} [{verb}] state={job['state']} "
              f"key={job['key']}")
        if not (args.wait or args.follow):
            return 0
        if args.follow:
            for event in client.events(job["id"], follow=True):
                kind = event.get("kind", "?")
                step = event.get("step")
                print(f"  rank {event.get('rank', 0):3d} {kind:>10s} "
                      f"step {step if step is not None else '-':>7}")
        job = client.wait(job["id"], timeout_s=args.timeout)
        if job["state"] != "done":
            print(f"FAILED: {job.get('error')}", file=sys.stderr)
            return 1
        result = client.result(job["id"])["result"]
    except TimeoutError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    except (ServiceError, ConnectionError, OSError) as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    print(f"{job['id']} done: {result['steps']} steps, "
          f"{result['mlups']:.2f} MLUPS, {result['wall_s']:.2f} s wall, "
          f"{result['restarts']} restart(s)")
    print(f"  sealed result in {job['dir']}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Handle ``mrlbm jobs``: list jobs / show one / list problem kinds."""
    import json as _json

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if args.kinds:
            kinds = client.kinds()
            if args.json:
                print(_json.dumps(kinds, indent=2, sort_keys=True))
            else:
                for name in sorted(kinds):
                    print(f"  {name:15s} {kinds[name]}")
            return 0
        if args.job_id:
            if args.result:
                payload = client.result(args.job_id)["result"]
            else:
                payload = client.job(args.job_id)
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 0
        jobs = client.jobs()
    except (ServiceError, ConnectionError, OSError) as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'id':12s} {'state':8s} {'steps':>7s} {'hits':>4s}  spec")
    for job in jobs:
        spec = job.get("spec") or {}
        desc = (f"{spec.get('kind', '?')} {spec.get('scheme', '?')} "
                f"{spec.get('lattice', '?')} "
                f"{tuple(spec.get('shape', ()))} x{spec.get('n_ranks', '?')}")
        print(f"{job['id']:12s} {job['state']:8s} {job['steps']:7d} "
              f"{job['hits']:4d}  {desc}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .gpu import get_device
    from .lattice import get_lattice
    from .perf import sweep_tiles

    lat = get_lattice(args.lattice)
    device = get_device(args.device)
    shape = tuple(int(s) for s in args.shape.split(","))
    ranking = sweep_tiles(lat, shape, device, scheme=args.scheme)
    print(f"{args.scheme} / {lat.name} on {device.name}, domain {shape} "
          f"({len(ranking)} legal configurations)\n")
    print(f"{'tile':>10s} {'w_t':>4s} {'threads':>8s} {'shared':>9s} "
          f"{'blk/SM':>7s} {'MFLUPS':>9s} {'bound':>8s}")
    for cand in ranking[: args.top]:
        occ = cand.prediction.occupancy
        from .perf import mr_launch_config

        cfg = mr_launch_config(lat, shape, cand.tile_cross, cand.w_t)
        print(f"{str(cand.tile_cross):>10s} {cand.w_t:4d} "
              f"{cfg.threads_per_block:8d} "
              f"{cfg.shared_bytes_per_block / 1024:8.1f}K "
              f"{occ.blocks_per_sm:7d} {cand.mflups:9,.0f} "
              f"{cand.prediction.bound:>8s}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .solver import channel_problem, periodic_problem
    from .validation import (
        poiseuille_profile,
        relative_l2_error,
        taylor_green_fields,
    )

    tg_shape = (32, 32) if args.fast else (64, 64)
    tg_steps = 100 if args.fast else 300
    ch_shape = (32, 18) if args.fast else (48, 26)
    ch_steps = 3000 if args.fast else 12000
    tau, u0 = 0.8, 0.03
    nu = (tau - 0.5) / 3.0
    failures = 0

    print(f"Taylor-Green {tg_shape}, {tg_steps} steps "
          f"(tolerance 1% relative L2):")
    rho_i, u_i = taylor_green_fields(tg_shape, 0.0, nu, u0)
    _, u_ref = taylor_green_fields(tg_shape, float(tg_steps), nu, u0)
    for scheme in ("ST", "MR-P", "MR-R"):
        s = periodic_problem(scheme, "D2Q9", tg_shape, tau,
                             rho0=rho_i, u0=u_i)
        s.run(tg_steps)
        err = relative_l2_error(s.velocity(), u_ref)
        ok = err < 0.01
        failures += not ok
        print(f"  {scheme:5s} error {err:.2e}  {'PASS' if ok else 'FAIL'}")

    print(f"\nChannel Poiseuille {ch_shape}, {ch_steps} steps "
          f"(tolerance 2% max error):")
    analytic = poiseuille_profile(ch_shape[1], 0.04)
    for scheme in ("ST", "MR-P", "MR-R"):
        s = channel_problem(scheme, "D2Q9", ch_shape, tau=0.9, u_max=0.04)
        s.run(ch_steps)
        import numpy as _np

        prof = s.velocity()[0][ch_shape[0] // 2]
        err = _np.abs(prof[1:-1] - analytic[1:-1]).max() / 0.04
        ok = err < 0.02
        failures += not ok
        print(f"  {scheme:5s} error {err:.2e}  {'PASS' if ok else 'FAIL'}")

    print(f"\n{'all validations passed' if not failures else f'{failures} FAILURES'}")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench import write_report

    path = write_report(args.output, svg_dir=args.svg_dir)
    print(f"wrote {path}")
    if args.svg_dir:
        print(f"wrote SVG figures into {args.svg_dir}/")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "watch": _cmd_watch,
        "tables": _cmd_tables,
        "figures": _cmd_figures,
        "summary": _cmd_summary,
        "devices": _cmd_devices,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "tune": _cmd_tune,
        "report": _cmd_report,
        "validate": _cmd_validate,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # 128 + SIGINT: handlers with a cleaner interrupt story (watch,
        # serve, the distributed run path) catch it before this does.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
