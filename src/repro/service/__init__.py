"""Simulation-as-a-service: problem registry, job scheduler, server, client.

This package turns the one-shot CLI/runtime stack into a long-lived
service (ROADMAP open item 2):

:mod:`repro.service.registry`
    The shared problem registry — one ``kind -> builders`` table used by
    the CLI, the distributed runtime (:meth:`RunSpec.build`), the sweep
    engine and the job server, replacing the open-coded dispatch that
    each entry point used to duplicate.
:mod:`repro.service.jobs`
    The job model and scheduler: a bounded worker pool multiplexing
    queued :class:`~repro.parallel.runtime.RunSpec` jobs over the
    fault-tolerant :class:`~repro.parallel.runtime.ProcessRuntime`, with
    fingerprint-keyed dedup serving repeat submissions from sealed
    result manifests.
:mod:`repro.service.server`
    ``mrlbm serve`` — a stdlib-only asyncio HTTP server (TCP or Unix
    socket) exposing submit / list / status / result / event-stream
    endpoints over the scheduler.
:mod:`repro.service.client`
    The blocking client behind ``mrlbm submit`` / ``mrlbm jobs``.
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobScheduler, job_key, spec_from_dict
from .registry import (
    ProblemKind,
    build_distributed,
    build_single,
    get_problem,
    problem_kinds,
    register_problem,
    sweep_kinds,
)
from .server import JobServer

__all__ = [
    "ProblemKind",
    "register_problem",
    "get_problem",
    "problem_kinds",
    "sweep_kinds",
    "build_distributed",
    "build_single",
    "Job",
    "JobScheduler",
    "job_key",
    "spec_from_dict",
    "JobServer",
    "ServiceClient",
    "ServiceError",
]
