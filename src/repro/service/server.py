"""``mrlbm serve``: a stdlib-only asyncio HTTP front end for the scheduler.

The server speaks a deliberately small HTTP/1.1 subset over a local TCP
port or a Unix-domain socket — requests are parsed by hand on asyncio
streams, every response closes its connection, and bodies are JSON
(event streams are newline-delimited JSON read until EOF). That keeps
the service inside the standard library while still being curl-able:

====== ============================== =====================================
Method Path                           Meaning
====== ============================== =====================================
GET    ``/healthz``                   liveness + pool/job counts
GET    ``/kinds``                     the registered problem kinds
POST   ``/jobs``                      submit a RunSpec payload
                                      (201 created / 200 coalesced)
GET    ``/jobs``                      list all jobs
GET    ``/jobs/<id>``                 one job's state
GET    ``/jobs/<id>/result``          sealed result (409 until done)
GET    ``/jobs/<id>/events``          the job's event-bus lines as
                                      ndjson; ``?follow=1`` tails the
                                      live run until it finishes
POST   ``/shutdown``                  graceful stop
====== ============================== =====================================

Submission payloads are validated by
:func:`repro.service.jobs.spec_from_dict`; validation errors come back
as ``400 {"error": ...}``, which is also how unknown problem kinds
surface (the registry raises at RunSpec construction).
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from ..obs.events import iter_event_lines
from .jobs import JobScheduler, spec_from_dict
from .registry import get_problem, problem_kinds

__all__ = ["JobServer"]

_MAX_BODY = 8 * 1024 * 1024


class _HttpError(Exception):
    """Routing-level error carrying an HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class JobServer:
    """Serve a :class:`~repro.service.jobs.JobScheduler` over local HTTP.

    Parameters
    ----------
    scheduler:
        The scheduler to front. :meth:`start` starts it too, so one
        ``await JobServer(...).start()`` brings the whole service up.
    host, port:
        TCP bind address; ``port=0`` picks an ephemeral port (read the
        resolved one back from :attr:`address`). Ignored when ``uds``
        is set.
    uds:
        Path of a Unix-domain socket to bind instead of TCP.
    """

    def __init__(self, scheduler: JobScheduler, host: str = "127.0.0.1",
                 port: int = 0, uds: str | None = None):
        self.scheduler = scheduler
        self.host = host
        self.port = int(port)
        self.uds = uds
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "JobServer":
        """Start the scheduler and bind the listening socket."""
        await self.scheduler.start()
        if self.uds is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.uds)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """The client-usable address: ``host:port`` or the socket path."""
        return self.uds if self.uds is not None else f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block until :meth:`close` (or ``POST /shutdown``)."""
        await self._stop.wait()

    async def close(self) -> None:
        """Stop accepting, shut the scheduler down, release the socket."""
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()

    # -- request plumbing ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Parse one request, route it, send one response, close."""
        try:
            method, path, query, body = await self._read_request(reader)
        except (_HttpError, asyncio.IncompleteReadError, ValueError) as exc:
            status = exc.status if isinstance(exc, _HttpError) else 400
            await self._send_json(writer, status, {"error": str(exc) or
                                                   "malformed request"})
            return
        try:
            await self._route(method, path, query, body, writer)
        except _HttpError as exc:
            await self._send_json(writer, exc.status, {"error": str(exc)})
        except ConnectionError:
            pass
        except Exception as exc:  # don't let one request kill the server
            try:
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse the request line, headers and (length-delimited) body."""
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes is too large")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method.upper(), split.path, query, body

    @staticmethod
    async def _send_json(writer: asyncio.StreamWriter, status: int,
                         payload: dict) -> None:
        """Send one JSON response and close the connection."""
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "?")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        try:
            await writer.drain()
        finally:
            writer.close()

    # -- routes --------------------------------------------------------
    async def _route(self, method: str, path: str, query: dict, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        """Dispatch one parsed request to its endpoint."""
        sched = self.scheduler
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "ok": True, "workers": sched.workers,
                "jobs": len(sched.jobs),
                "runs_executed": sched.runs_executed})
            return
        if path == "/kinds" and method == "GET":
            kinds = {name: get_problem(name).description
                     for name in problem_kinds()}
            await self._send_json(writer, 200, {"kinds": kinds})
            return
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8") or "null")
                spec, n_steps = spec_from_dict(payload)
            except (ValueError, UnicodeDecodeError) as exc:
                raise _HttpError(400, str(exc)) from None
            job, created = sched.submit(spec, n_steps)
            await self._send_json(writer, 201 if created else 200, {
                "job": job.to_dict(), "created": created})
            return
        if path == "/jobs" and method == "GET":
            await self._send_json(writer, 200, {
                "jobs": [j.to_dict() for j in sched.list()]})
            return
        if path == "/shutdown" and method == "POST":
            await self._send_json(writer, 200, {"ok": True,
                                                "shutting_down": True})
            self._stop.set()
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):].split("/")
            job = sched.get(rest[0])
            if job is None:
                raise _HttpError(404, f"no such job {rest[0]!r}")
            if len(rest) == 1 and method == "GET":
                await self._send_json(writer, 200, job.to_dict())
                return
            if rest[1:] == ["result"] and method == "GET":
                if job.state != "done":
                    raise _HttpError(
                        409, f"job {job.id} is {job.state}, not done")
                await self._send_json(writer, 200, {
                    "job": job.to_dict(), "result": job.result})
                return
            if rest[1:] == ["events"] and method == "GET":
                follow = query.get("follow") in ("1", "true", "yes")
                await self._stream_events(writer, job, follow)
                return
        raise _HttpError(404 if method == "GET" else 405,
                         f"no route for {method} {path}")

    async def _stream_events(self, writer: asyncio.StreamWriter, job,
                             follow: bool, poll_s: float = 0.2) -> None:
        """Stream a job's event-bus lines as close-delimited ndjson.

        Without ``follow`` this dumps whatever the run directory holds
        right now; with it, the stream keeps tailing the per-rank event
        files until the job reaches a terminal state — with one final
        drain after, so the last heartbeat/end lines are never lost.
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        offsets: dict = {}
        try:
            while True:
                terminal = job.state in ("done", "failed")
                for line in iter_event_lines(job.dir, offsets):
                    writer.write(line.encode() + b"\n")
                await writer.drain()
                if not follow or terminal:
                    break
                await asyncio.sleep(poll_s)
        except ConnectionError:
            pass
        finally:
            writer.close()
