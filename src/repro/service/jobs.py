"""Job model and scheduler: a bounded pool over the fault-tolerant runtime.

A *job* is one :class:`~repro.parallel.runtime.RunSpec` plus a step
count. The :class:`JobScheduler` queues submitted jobs and multiplexes
them over a bounded worker pool — each worker drives one blocking
:class:`~repro.parallel.runtime.ProcessRuntime` run in a thread, so a
job transparently inherits the runtime's checkpointing, supervised
retry and watchdog machinery. Every job gets its own directory under
the scheduler root holding the per-rank event streams (tailed by the
server's ``/jobs/<id>/events``), the gathered fields, a manifest and a
``COMPLETE`` seal.

Dedup: jobs are keyed by :func:`job_key` — the (collision-fixed)
:meth:`RunSpec.fingerprint` plus the step count. Re-submitting an
identical spec while the first is queued or running coalesces onto it;
re-submitting after it finished serves the sealed result from cache
without recomputation. Failed keys are cleared so a retry actually
reruns. On startup the scheduler rescans its root and re-adopts every
sealed job directory whose ``fingerprint_version`` matches the current
one, so the cache survives restarts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs.manifest import RunManifest
from ..parallel.runtime import FINGERPRINT_VERSION, RunSpec

__all__ = ["Job", "JobScheduler", "job_key", "spec_from_dict"]

#: Job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: RunSpec fields a submission payload may set (beyond the required
#: ones); everything else is rejected so typos fail loudly.
_SPEC_FIELDS = ("kind", "scheme", "lattice", "shape", "n_ranks", "tau",
                "options", "accel", "checkpoint_every", "checkpoint_keep",
                "max_restarts", "watchdog_every", "events_every", "fault")
_REQUIRED = ("kind", "scheme", "lattice", "shape")


def job_key(fingerprint: str, n_steps: int) -> str:
    """Dedup key of a submission: problem fingerprint + step count."""
    return f"{fingerprint}-{int(n_steps):08d}"


def spec_from_dict(payload: dict) -> tuple[RunSpec, int]:
    """Validate a JSON submission payload into ``(RunSpec, n_steps)``.

    The payload must carry ``kind``/``scheme``/``lattice``/``shape``
    plus a positive integer ``steps``; it may set any field named in
    ``_SPEC_FIELDS``. Unknown keys, malformed values and unknown
    problem kinds all raise ``ValueError`` with a client-presentable
    message (the server maps them to HTTP 400).
    """
    if not isinstance(payload, dict):
        raise ValueError("a job submission must be a JSON object")
    unknown = sorted(set(payload) - set(_SPEC_FIELDS) - {"steps"})
    if unknown:
        raise ValueError(f"unknown submission field(s): {', '.join(unknown)}")
    missing = sorted(set(_REQUIRED) - set(payload))
    if missing:
        raise ValueError(f"missing required field(s): {', '.join(missing)}")
    try:
        n_steps = int(payload.get("steps", 0))
    except (TypeError, ValueError):
        raise ValueError(f"steps must be an integer, "
                         f"got {payload.get('steps')!r}") from None
    if n_steps <= 0:
        raise ValueError(f"steps must be a positive integer, got {n_steps}")
    shape = payload["shape"]
    if (not isinstance(shape, (list, tuple)) or not shape
            or not all(isinstance(s, int) and s > 0 for s in shape)):
        raise ValueError(f"shape must be a list of positive integers, "
                         f"got {shape!r}")
    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ValueError(f"options must be an object, got {options!r}")
    kwargs = {k: payload[k] for k in _SPEC_FIELDS
              if k in payload and k not in ("kind", "scheme", "lattice",
                                            "shape", "options")}
    spec = RunSpec(kind=str(payload["kind"]), scheme=str(payload["scheme"]),
                   lattice=str(payload["lattice"]),
                   shape=tuple(int(s) for s in shape),
                   n_ranks=int(payload.get("n_ranks", 1)),
                   options=dict(options), **{k: v for k, v in kwargs.items()
                                             if k != "n_ranks"})
    return spec, n_steps


@dataclass
class Job:
    """One scheduled run: spec + step count + lifecycle state.

    ``spec`` is ``None`` for sealed jobs re-adopted from disk on
    scheduler restart (the result alone serves cache hits); live
    submissions always carry theirs.
    """

    id: str
    key: str
    spec: RunSpec | None
    n_steps: int
    dir: Path
    state: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    error: str | None = None
    result: dict | None = None
    hits: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable job summary (what the API returns)."""
        out = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "steps": self.n_steps,
            "dir": str(self.dir),
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "hits": self.hits,
        }
        if self.spec is not None:
            out["spec"] = {
                "kind": self.spec.kind,
                "scheme": self.spec.scheme,
                "lattice": self.spec.lattice,
                "shape": list(self.spec.shape),
                "n_ranks": self.spec.n_ranks,
                "tau": self.spec.tau,
                "accel": self.spec.accel,
            }
        elif self.result is not None:
            out["spec"] = self.result.get("spec")
        return out


class JobScheduler:
    """Bounded-concurrency job executor with fingerprint dedup.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per job (events, fields,
        manifest, seal). Created on :meth:`start`; rescanned for sealed
        results so the dedup cache survives restarts.
    workers:
        Worker-pool width: how many jobs run concurrently. Each worker
        occupies one thread driving a blocking ProcessRuntime run (the
        run's rank processes parallelize beneath it).
    run_timeout:
        Per-job wall-clock budget in seconds forwarded to
        :meth:`ProcessRuntime.run` (``None`` = unbounded).

    Notes
    -----
    All public methods must be called from the event-loop thread; only
    the private ``_execute`` body runs in job threads, and it touches
    no scheduler state. Jobs run on *dedicated* ``threading.Thread``s
    (one per running job, bounded by the worker coroutines), never on a
    ``ThreadPoolExecutor``: the runtime forks its rank processes from
    the executing thread, and a child forked from a pool thread dies at
    interpreter shutdown when ``concurrent.futures``' atexit hook tries
    to join what is now the child's own main thread.
    """

    def __init__(self, root: str | Path, workers: int = 2,
                 run_timeout: float | None = None):
        self.root = Path(root)
        self.workers = max(int(workers), 1)
        self.run_timeout = run_timeout
        self.jobs: dict[str, Job] = {}
        self.runs_executed = 0
        self._by_key: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] | None = None
        self._tasks: list[asyncio.Task] = []
        self._next_id = 1

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "JobScheduler":
        """Create the root, re-adopt sealed jobs, start the worker pool."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._rescan()
        self._queue = asyncio.Queue()
        self._tasks = [asyncio.create_task(self._worker(), name=f"job-w{i}")
                       for i in range(self.workers)]
        return self

    async def close(self) -> None:
        """Cancel the worker tasks (running job threads finish detached)."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []

    def _rescan(self) -> None:
        """Re-adopt sealed job directories left by a previous scheduler.

        Only results whose recorded ``fingerprint_version`` matches the
        current one are trusted as cache entries — a sealed directory
        from before the fingerprint fix would otherwise serve a result
        keyed by a colliding digest.
        """
        for complete in sorted(self.root.glob("job-*/COMPLETE")):
            job_dir = complete.parent
            result_path = job_dir / "result.json"
            m = re.fullmatch(r"job-(\d+)", job_dir.name)
            if m is None or not result_path.exists():
                continue
            try:
                result = json.loads(result_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if result.get("fingerprint_version") != FINGERPRINT_VERSION:
                continue
            key = result.get("job_key")
            if not key:
                continue
            job = Job(id=job_dir.name, key=key, spec=None,
                      n_steps=int(result.get("steps", 0)), dir=job_dir,
                      state="done", result=result,
                      finished_unix=result.get("finished_unix"))
            self.jobs[job.id] = job
            self._by_key.setdefault(key, job)
            self._next_id = max(self._next_id, int(m.group(1)) + 1)

    # -- submission / queries ------------------------------------------
    def submit(self, spec: RunSpec, n_steps: int) -> tuple[Job, bool]:
        """Submit a run; returns ``(job, created)``.

        An identical in-flight or completed submission (same
        fingerprint, same step count) coalesces: the existing job is
        returned with ``created=False`` and its ``hits`` counter bumped
        — a completed one serves its sealed result with no recompute.
        A previously *failed* key is cleared and rerun.
        """
        if self._queue is None:
            raise RuntimeError("scheduler is not started")
        key = job_key(spec.fingerprint(), n_steps)
        existing = self._by_key.get(key)
        if existing is not None and existing.state != "failed":
            existing.hits += 1
            return existing, False
        job = Job(id=f"job-{self._next_id:06d}", key=key, spec=spec,
                  n_steps=int(n_steps),
                  dir=self.root / f"job-{self._next_id:06d}")
        self._next_id += 1
        self.jobs[job.id] = job
        self._by_key[key] = job
        self._queue.put_nowait(job)
        return job, True

    def get(self, job_id: str) -> Job | None:
        """The job with this id, or ``None``."""
        return self.jobs.get(job_id)

    def list(self) -> list[Job]:
        """Every known job, oldest first."""
        return [self.jobs[k] for k in sorted(self.jobs)]

    # -- execution -----------------------------------------------------
    async def _run_in_thread(self, job: Job) -> dict:
        """Run ``_execute(job)`` on a dedicated thread; await its outcome."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def target() -> None:
            """Job-thread body: run, then post the outcome to the loop."""
            try:
                outcome = self._execute(job)
            except BaseException as exc:
                result, value = future.set_exception, exc
            else:
                result, value = future.set_result, outcome
            try:
                loop.call_soon_threadsafe(result, value)
            except RuntimeError:
                pass                        # loop already closed

        threading.Thread(target=target, name=f"mrlbm-{job.id}",
                         daemon=True).start()
        return await future

    async def _worker(self) -> None:
        """One pool worker: drain the queue, run each job on its thread."""
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            job.state = "running"
            job.started_unix = time.time()
            try:
                job.result = await self._run_in_thread(job)
                job.state = "done"
                self.runs_executed += 1
            except Exception as exc:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                job.finished_unix = time.time()
                self._queue.task_done()

    def _execute(self, job: Job) -> dict:
        """Run one job to completion and seal its directory (pool thread)."""
        from ..parallel.runtime import ProcessRuntime

        spec = job.spec
        assert spec is not None
        job.dir.mkdir(parents=True, exist_ok=True)
        run_spec = dataclasses.replace(
            spec, events_dir=str(job.dir),
            checkpoint_dir=(str(job.dir / "ckpt") if spec.checkpoint_every
                            else spec.checkpoint_dir))
        runtime = ProcessRuntime(run_spec)
        outcome = runtime.run(job.n_steps, run_timeout=self.run_timeout)

        np.savez_compressed(job.dir / "fields.npz",
                            rho=outcome.rho, u=outcome.u)
        fingerprint = spec.fingerprint()
        result = {
            "job_key": job.key,
            "fingerprint": fingerprint,
            "fingerprint_version": FINGERPRINT_VERSION,
            "spec": {
                "kind": spec.kind, "scheme": spec.scheme,
                "lattice": spec.lattice, "shape": list(spec.shape),
                "n_ranks": spec.n_ranks, "tau": spec.tau,
                "accel": spec.accel,
            },
            "steps": outcome.steps,
            "restarts": outcome.restarts,
            "wall_s": outcome.wall_s,
            "mlups": outcome.report.get("mlups", 0.0),
            "fields": "fields.npz",
            "finished_unix": time.time(),
        }
        (job.dir / "result.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        RunManifest.from_run_spec(
            spec, outcome.steps, kind=spec.kind, n_ranks=spec.n_ranks,
            fingerprint=fingerprint, fingerprint_version=FINGERPRINT_VERSION,
            job_key=job.key, mlups=result["mlups"],
        ).write(job.dir / "manifest.json")
        (job.dir / "COMPLETE").write_text("sealed\n", encoding="utf-8")
        return result
