"""Blocking client for the job server (behind ``mrlbm submit``/``jobs``).

:class:`ServiceClient` wraps :mod:`http.client` so the CLI and tests
talk to :class:`~repro.service.server.JobServer` without any third-party
dependency. Addresses are either ``host:port`` (TCP) or a filesystem
path (Unix-domain socket — anything containing ``/``). Event streams
are exposed as a generator over the server's close-delimited ndjson
body, so ``for event in client.events(job_id, follow=True)`` tails a
live run.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx server response; carries the HTTP ``status``."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class _UnixConnection(http.client.HTTPConnection):
    """An ``http.client`` connection over a Unix-domain socket."""

    def __init__(self, path: str, timeout: float | None = None):
        super().__init__("localhost", timeout=timeout)
        self._uds_path = path

    def connect(self) -> None:
        """Open the AF_UNIX stream socket instead of TCP."""
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._uds_path)


class ServiceClient:
    """Talk to a running job server.

    Parameters
    ----------
    address:
        ``host:port`` for TCP, or a socket path (contains ``/``) for a
        Unix-domain server — the same string ``mrlbm serve`` prints.
    timeout:
        Per-connection socket timeout in seconds. Streaming reads
        (:meth:`events` with ``follow=True``) use it per line, so it
        must exceed the server's poll cadence (it does by default).
    """

    def __init__(self, address: str, timeout: float | None = 60.0):
        self.address = address
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        """A fresh connection (the server closes after every response)."""
        if "/" in self.address:
            return _UnixConnection(self.address, timeout=self.timeout)
        host, _, port = self.address.rpartition(":")
        return http.client.HTTPConnection(host or "127.0.0.1",
                                          int(port), timeout=self.timeout)

    def request(self, method: str, path: str,
                payload: dict | None = None) -> dict:
        """One JSON round trip; raises :class:`ServiceError` on non-2xx."""
        conn = self._connect()
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read().decode("utf-8", "replace")
            if resp.status >= 300:
                try:
                    message = json.loads(data).get("error", data)
                except json.JSONDecodeError:
                    message = data.strip()
                raise ServiceError(resp.status, message)
            return json.loads(data) if data.strip() else {}
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def kinds(self) -> dict:
        """``GET /kinds`` — registered problem kinds with descriptions."""
        return self.request("GET", "/kinds")["kinds"]

    def submit(self, payload: dict) -> dict:
        """``POST /jobs`` — returns ``{"job": ..., "created": bool}``."""
        return self.request("POST", "/jobs", payload)

    def jobs(self) -> list[dict]:
        """``GET /jobs`` — every job's summary."""
        return self.request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one job's state."""
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /jobs/<id>/result`` — the sealed result (409 until done)."""
        return self.request("GET", f"/jobs/{job_id}/result")

    def shutdown(self) -> dict:
        """``POST /shutdown`` — ask the server to stop."""
        return self.request("POST", "/shutdown")

    def events(self, job_id: str, follow: bool = False):
        """Generator over ``GET /jobs/<id>/events`` ndjson lines.

        With ``follow=True`` the server keeps the stream open until the
        job finishes; iteration ends when the server closes it.
        """
        conn = self._connect()
        try:
            suffix = "?follow=1" if follow else ""
            conn.request("GET", f"/jobs/{job_id}/events{suffix}")
            resp = conn.getresponse()
            if resp.status >= 300:
                data = resp.read().decode("utf-8", "replace")
                try:
                    message = json.loads(data).get("error", data)
                except json.JSONDecodeError:
                    message = data.strip()
                raise ServiceError(resp.status, message)
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state; returns its summary.

        Raises ``TimeoutError`` if the job is still queued/running when
        ``timeout_s`` elapses.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job.get("state") in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')!r} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
