"""The shared problem registry: one ``kind -> builders`` table for everyone.

Before this module, every entry point open-coded its own problem
dispatch: ``RunSpec.build()`` hard-wired three distributed presets, the
sweep engine duplicated the single-domain variants, and the masked
cylinder/porous geometries existed only inside ``compare_backends``.
The registry replaces all of that with one table: each
:class:`ProblemKind` names a problem and carries its distributed and
single-domain builders, so the CLI, the distributed runtime, the sweep
engine and the job server all resolve kinds — and reject unknown ones —
in exactly one place.

Registration is open: downstream code may :func:`register_problem` its
own kinds (e.g. a site-specific geometry) and they become visible to
``mrlbm run/serve/submit`` and :class:`~repro.parallel.runtime.RunSpec`
validation without touching this package.

The default kinds load lazily on first lookup, because their builders
live in :mod:`repro.solver.presets` / :mod:`repro.parallel.presets`
while :mod:`repro.parallel.runtime` consults this registry from
``RunSpec`` — eager imports would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ProblemKind",
    "register_problem",
    "get_problem",
    "problem_kinds",
    "sweep_kinds",
    "build_distributed",
    "build_single",
]


@dataclass(frozen=True)
class ProblemKind:
    """One registered problem: a name plus its builders.

    Parameters
    ----------
    name:
        The ``RunSpec.kind`` string (e.g. ``"forced-channel"``).
    description:
        One-line human description, surfaced by ``mrlbm jobs --kinds``
        and the server's ``GET /kinds``.
    distributed:
        Builder ``(scheme, lattice, shape, n_ranks, *, tau, accel,
        **options) -> DistributedSolver``, or ``None`` when the kind has
        no distributed form.
    single:
        Builder ``(scheme, lattice, shape, *, tau, backend, **options)
        -> Solver``, or ``None`` when the kind has no single-domain
        form.
    sweepable:
        Whether ``mrlbm sweep`` may expand over this kind (requires a
        ``single`` builder that accepts ``u_max``).
    """

    name: str
    description: str
    distributed: Callable | None = None
    single: Callable | None = None
    sweepable: bool = False


_REGISTRY: dict[str, ProblemKind] = {}
_DEFAULTS_LOADED = False


def register_problem(kind: ProblemKind) -> ProblemKind:
    """Register (or replace) a problem kind; returns it for chaining."""
    if not kind.name:
        raise ValueError("a problem kind needs a non-empty name")
    _REGISTRY[kind.name] = kind
    return kind


def _taylor_green_fields(lattice: str, shape: tuple[int, ...], tau: float,
                         u_max: float):
    """Initial ``(rho0, u0)`` of the 2D Taylor-Green vortex at ``t=0``."""
    from ..lattice import get_lattice
    from ..validation import taylor_green_fields

    lat = get_lattice(lattice)
    if lat.d != 2:
        raise ValueError(
            "the taylor-green problem is 2D; pick a D2 lattice "
            f"(got {lattice})")
    nu = lat.viscosity(tau)
    return taylor_green_fields(tuple(shape), 0.0, nu, u_max)


def _load_defaults() -> None:
    """Populate the registry with the built-in kinds (idempotent)."""
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True

    from ..parallel.presets import (
        distributed_channel_problem,
        distributed_cylinder_problem,
        distributed_forced_channel_problem,
        distributed_periodic_problem,
        distributed_porous_problem,
    )
    from ..solver.presets import (
        channel_problem,
        cylinder_channel_problem,
        forced_channel_problem,
        periodic_problem,
        porous_channel_problem,
    )

    def distributed_taylor_green(scheme, lattice, shape, n_ranks,
                                 tau=0.8, u_max=0.05, **kwargs):
        """Distributed 2D Taylor-Green vortex (periodic box + TG fields)."""
        rho0, u0 = _taylor_green_fields(lattice, shape, tau, float(u_max))
        return distributed_periodic_problem(scheme, lattice, shape, n_ranks,
                                            tau=tau, rho0=rho0, u0=u0,
                                            **kwargs)

    def single_taylor_green(scheme, lattice, shape, tau=0.8, u_max=0.05,
                            backend="reference", **kwargs):
        """Single-domain 2D Taylor-Green vortex (periodic box + TG fields)."""
        rho0, u0 = _taylor_green_fields(lattice, shape, tau, float(u_max))
        return periodic_problem(scheme, lattice, shape, tau=tau, rho0=rho0,
                                u0=u0, backend=backend, **kwargs)

    register_problem(ProblemKind(
        "channel",
        "rectangular channel with Poiseuille inlet and pressure outlet "
        "(the paper's proxy app)",
        distributed=distributed_channel_problem,
        single=channel_problem, sweepable=True))
    register_problem(ProblemKind(
        "forced-channel",
        "body-force-driven channel, streamwise-periodic, bounce-back walls",
        distributed=distributed_forced_channel_problem,
        single=forced_channel_problem, sweepable=True))
    register_problem(ProblemKind(
        "periodic",
        "fully periodic box with caller-supplied initial fields",
        distributed=distributed_periodic_problem,
        single=periodic_problem))
    register_problem(ProblemKind(
        "taylor-green",
        "2D Taylor-Green vortex in a periodic box (analytic decay)",
        distributed=distributed_taylor_green,
        single=single_taylor_green, sweepable=True))
    register_problem(ProblemKind(
        "cylinder",
        "force-driven channel with a staircase cylinder obstacle",
        distributed=distributed_cylinder_problem,
        single=cylinder_channel_problem))
    register_problem(ProblemKind(
        "porous",
        "force-driven flow through a seeded random porous medium",
        distributed=distributed_porous_problem,
        single=porous_channel_problem))


def get_problem(name: str) -> ProblemKind:
    """Look up a registered kind; raise ``ValueError`` for unknown names."""
    _load_defaults()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown problem kind {name!r}; registered kinds: "
            f"{', '.join(problem_kinds())}") from None


def problem_kinds() -> tuple[str, ...]:
    """Sorted names of every registered kind."""
    _load_defaults()
    return tuple(sorted(_REGISTRY))


def sweep_kinds() -> tuple[str, ...]:
    """Sorted names of the kinds ``mrlbm sweep`` may expand over."""
    _load_defaults()
    return tuple(sorted(k for k, v in _REGISTRY.items() if v.sweepable))


def build_distributed(name: str, scheme: str, lattice: str,
                      shape: tuple[int, ...], n_ranks: int, *,
                      tau: float = 0.8, accel: str = "reference",
                      **options):
    """Build the distributed solver of a registered kind.

    This is the engine behind :meth:`RunSpec.build`; raises
    ``ValueError`` for unknown kinds and for kinds without a
    distributed form.
    """
    kind = get_problem(name)
    if kind.distributed is None:
        raise ValueError(
            f"problem kind {name!r} has no distributed builder")
    return kind.distributed(scheme, lattice, tuple(shape), int(n_ranks),
                            tau=tau, accel=accel, **options)


def build_single(name: str, scheme: str, lattice: str,
                 shape: tuple[int, ...], *, tau: float = 0.8,
                 backend: str = "reference", **options):
    """Build the single-domain solver of a registered kind.

    Used by ``mrlbm run`` and the sweep engine; raises ``ValueError``
    for unknown kinds and for kinds without a single-domain form.
    """
    kind = get_problem(name)
    if kind.single is None:
        raise ValueError(
            f"problem kind {name!r} has no single-domain builder")
    return kind.single(scheme, lattice, tuple(shape), tau=tau,
                       backend=backend, **options)
