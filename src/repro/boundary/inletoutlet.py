"""Velocity inlets and pressure outlets on axis-aligned faces.

Two reconstruction methods are provided, selected by ``method``:

* ``"nebb"`` — non-equilibrium bounce-back (Zou & He style): only the
  populations pointing into the domain are replaced, using
  ``f_i = f_eq_i + (f_ibar - f_eq_ibar)``. Purely node-local, which is what
  the virtual-GPU kernels implement in shared memory.
* ``"regularized-fd"`` — the paper's inlet/outlet scheme (Latt et al. 2008,
  "straight velocity boundaries", finite-difference flavour): the *entire*
  population set of the boundary node is rebuilt as
  ``f = f_eq(rho, u) + w/(2 cs4) H2 : Pi_neq`` with
  ``Pi_neq = -2 rho cs2 tau S`` and the strain rate ``S`` evaluated with
  one-sided finite differences in the wall-normal direction (second order)
  and central differences tangentially.

Density at a velocity inlet follows the classical closed relation
``rho = (S_0 + 2 S_-)/(1 - u_n)`` where ``S_0``/``S_-`` sum the tangential
and outgoing populations and ``u_n`` is the inward normal velocity. The
pressure outlet inverts the same relation for ``u_n`` given ``rho``.
"""

from __future__ import annotations

import numpy as np

from ..core.equilibrium import equilibrium
from ..core.moments import macroscopic
from ..core.regularization import hermite_delta_second_order
from ..geometry import SOLID, Domain
from ..lattice import LatticeDescriptor
from .base import Boundary, Plane

__all__ = ["VelocityInlet", "PressureOutlet"]


def _classify(lat: LatticeDescriptor, plane: Plane) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split component indices by sign of ``c . n_inward`` on a face."""
    cn = lat.c[:, plane.axis] * plane.inward
    return np.where(cn > 0)[0], np.where(cn == 0)[0], np.where(cn < 0)[0]


def _plane_velocity(lat: LatticeDescriptor, value, plane_shape: tuple[int, ...]) -> np.ndarray:
    """Normalize a prescribed velocity to a ``(D, *plane_shape)`` array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape == (lat.d,):
        out = np.empty((lat.d, *plane_shape))
        out[:] = arr.reshape((lat.d,) + (1,) * len(plane_shape))
        return out
    if arr.shape == (lat.d, *plane_shape):
        return arr.copy()
    raise ValueError(
        f"velocity must have shape {(lat.d,)} or {(lat.d, *plane_shape)}, got {arr.shape}"
    )


class _FaceBoundary(Boundary):
    """Shared face bookkeeping for inlet/outlet boundaries."""

    def __init__(self, plane: Plane, method: str):
        if method not in ("nebb", "regularized-fd"):
            raise ValueError(f"unknown reconstruction method {method!r}")
        self.plane = plane
        self.method = method
        self.tau: float | None = None
        self._active: np.ndarray | None = None   # bool over plane shape
        self._unknown: np.ndarray | None = None
        self._tangential: np.ndarray | None = None
        self._known: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None

    def bind(self, lat: LatticeDescriptor, domain: Domain, tau: float):
        """Resolve the face on ``domain`` and cache the component split."""
        if self.plane.axis >= domain.ndim:
            raise ValueError(
                f"plane axis {self.plane.axis} out of range for {domain.ndim}D domain"
            )
        if (self.method == "regularized-fd"
                and domain.shape[self.plane.axis] < 3):
            # The one-sided strain stencil reads the planes at offsets 1
            # and 2 from the face; on a thinner domain those indices
            # silently wrap around the periodic axis and corrupt the
            # reconstruction, so refuse at bind time.
            raise ValueError(
                f"the regularized-fd reconstruction needs at least 3 planes "
                f"along axis {self.plane.axis} (its one-sided finite "
                f"difference reads two interior planes), but the domain has "
                f"only {domain.shape[self.plane.axis]}; enlarge the domain "
                f"or use method='nebb'"
            )
        self.tau = float(tau)
        self._shape = domain.shape
        face = self.plane.face_index(domain.shape)
        self._active = domain.node_type[face] != SOLID
        self._unknown, self._tangential, self._known = _classify(lat, self.plane)
        return self

    # -- helpers ------------------------------------------------------
    def _face_view(self, f: np.ndarray, offset: int = 0) -> np.ndarray:
        """(Q, *plane_shape) view of the distribution ``offset`` nodes in."""
        face = self.plane.face_index(self._shape, offset)
        return f[(slice(None), *face)]

    def _density_sums(self, lat: LatticeDescriptor, fslab: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        s0 = fslab[self._tangential].sum(axis=0)
        sm = fslab[self._known].sum(axis=0)
        return s0, sm

    def _assign_nebb(self, lat: LatticeDescriptor, fslab: np.ndarray,
                     rho: np.ndarray, u_b: np.ndarray) -> None:
        """Replace the unknown populations via non-equilibrium bounce-back."""
        feq = equilibrium(lat, rho, u_b)
        act = self._active
        for i in self._unknown:
            ibar = lat.opposite[i]
            vals = feq[i] + (fslab[ibar] - feq[ibar])
            fslab[i][act] = vals[act]

    def _assign_regularized(self, lat: LatticeDescriptor, f: np.ndarray,
                            rho: np.ndarray, u_b: np.ndarray) -> None:
        """Rebuild the full population set with the regularized-FD scheme."""
        strain_cols = self._fd_strain_cols(lat, f, u_b)
        pi_neq = -2.0 * rho * lat.cs2 * self.tau * strain_cols
        fnew = equilibrium(lat, rho, u_b) + hermite_delta_second_order(lat, pi_neq)
        fslab = self._face_view(f)
        act = self._active
        for i in range(lat.q):
            fslab[i][act] = fnew[i][act]

    def _fd_strain_cols(self, lat: LatticeDescriptor, f: np.ndarray,
                        u_b: np.ndarray) -> np.ndarray:
        """Strain-rate distinct columns at the face via finite differences.

        Normal direction: second-order one-sided stencil using the two
        interior neighbour planes; tangential directions: central
        differences of the boundary-plane velocity.
        """
        _, u1 = macroscopic(lat, self._face_view(f, 1))
        _, u2 = macroscopic(lat, self._face_view(f, 2))
        # d u / d x_axis with x measured along +axis.
        grad = np.zeros((lat.d, lat.d, *u_b.shape[1:]))  # grad[a, b] = d_a u_b
        grad[self.plane.axis] = self.plane.inward * (-3.0 * u_b + 4.0 * u1 - u2) / 2.0
        tang_axes = [a for a in range(lat.d) if a != self.plane.axis]
        for plane_pos, a in enumerate(tang_axes):
            if u_b.shape[1 + plane_pos] >= 2:
                grad[a] = np.gradient(u_b, axis=1 + plane_pos)
        cols = np.stack(
            [0.5 * (grad[a, b] + grad[b, a]) for a, b in lat.pair_tuples], axis=0
        )
        return cols


class VelocityInlet(_FaceBoundary):
    """Prescribed-velocity boundary on a domain face (paper's inlet).

    ``velocity`` is either a length-``D`` vector (uniform) or a
    ``(D, *plane_shape)`` profile (e.g. Poiseuille).
    """

    def __init__(self, plane: Plane, velocity, method: str = "regularized-fd"):
        super().__init__(plane, method)
        self._velocity_spec = velocity
        self.u_b: np.ndarray | None = None

    def bind(self, lat: LatticeDescriptor, domain: Domain, tau: float) -> "VelocityInlet":
        """Bind the face and normalize the prescribed velocity profile."""
        super().bind(lat, domain, tau)
        face = self.plane.face_index(domain.shape)
        plane_shape = domain.node_type[face].shape
        self.u_b = _plane_velocity(lat, self._velocity_spec, plane_shape)
        return self

    def post_stream(self, lat: LatticeDescriptor, f_new: np.ndarray,
                    f_source: np.ndarray) -> None:
        """Impose the prescribed velocity on the freshly streamed face."""
        fslab = self._face_view(f_new)
        s0, sm = self._density_sums(lat, fslab)
        u_n = self.plane.inward * self.u_b[self.plane.axis]
        rho = (s0 + 2.0 * sm) / (1.0 - u_n)
        if self.method == "nebb":
            self._assign_nebb(lat, fslab, rho, self.u_b)
        else:
            self._assign_regularized(lat, f_new, rho, self.u_b)


class PressureOutlet(_FaceBoundary):
    """Prescribed-density boundary on a domain face (paper's outlet).

    The inward-normal velocity follows from the mass relation
    ``u_n = 1 - (S_0 + 2 S_-)/rho``; tangential components are either
    zero or copied from the first interior plane (``tangential``).
    """

    def __init__(self, plane: Plane, rho_out: float = 1.0,
                 method: str = "regularized-fd", tangential: str = "extrapolate"):
        super().__init__(plane, method)
        if tangential not in ("zero", "extrapolate"):
            raise ValueError(f"tangential must be 'zero' or 'extrapolate', got {tangential!r}")
        self.rho_out = float(rho_out)
        self.tangential = tangential

    def post_stream(self, lat: LatticeDescriptor, f_new: np.ndarray,
                    f_source: np.ndarray) -> None:
        """Impose the prescribed density on the freshly streamed face."""
        fslab = self._face_view(f_new)
        s0, sm = self._density_sums(lat, fslab)
        rho = np.full(s0.shape, self.rho_out)
        u_n = 1.0 - (s0 + 2.0 * sm) / self.rho_out
        u_b = np.zeros((lat.d, *s0.shape))
        u_b[self.plane.axis] = self.plane.inward * u_n
        if self.tangential == "extrapolate":
            _, u1 = macroscopic(lat, self._face_view(f_new, 1))
            for a in range(lat.d):
                if a != self.plane.axis:
                    u_b[a] = u1[a]
        if self.method == "nebb":
            self._assign_nebb(lat, fslab, rho, u_b)
        else:
            self._assign_regularized(lat, f_new, rho, u_b)
