"""Second-order interpolated (Bouzidi) bounce-back for curved walls.

Half-way bounce-back puts every wall at the half-link position, so a
curved surface degenerates into a staircase and the scheme drops to
first-order accuracy in the wall position. The linear interpolated
bounce-back of Bouzidi, Firdaouss & Lallemand (2001) restores second
order by using the *actual* wall distance along each cut link: with
``q`` the fluid-node-to-wall distance as a fraction of the link length,
the population entering the fluid node ``x_f`` against the wall
direction ``j`` (``x_f + c_j`` solid, ``ibar = opposite(j)``) is

* ``q < 1/2``:  ``f_ibar(x_f) = 2 q f*_j(x_f) + (1 - 2 q) f*_j(x_f - c_j)``
* ``q >= 1/2``: ``f_ibar(x_f) = f*_j(x_f) / (2 q)
  + (2 q - 1) / (2 q) f*_ibar(x_f)``

both built from post-collision populations, and both reducing to plain
half-way bounce-back at ``q = 1/2``. Links whose upstream interpolation
node ``x_f - c_j`` is itself solid (thin gaps) fall back to the half-way
rule on that link.

The wall geometry enters through a signed distance function; the
``q`` of every cut link is found once at bind time by bisection along
the link. The boundary also accumulates the instantaneous momentum
exchange over its links each application (``last_force``), which is the
consistent curved-wall force — the plain
:class:`~repro.analysis.forces.MomentumExchangeForce` assumes the
half-way reflection and stays first-order on curved surfaces.

This is a generic post-stream hook: it runs unmodified under the
``reference``/``fused``/``aa`` backends and through the ``sparse``
backend's dense fallback path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..geometry import Domain
from ..lattice import LatticeDescriptor
from .base import Boundary

__all__ = ["InterpolatedBounceBack", "circle_sdf", "sphere_sdf"]


def circle_sdf(cx: float, cy: float, radius: float) -> Callable[[np.ndarray], np.ndarray]:
    """Signed distance to a circle (negative inside) in lattice coordinates."""
    def sdf(points: np.ndarray) -> np.ndarray:
        return np.hypot(points[0] - cx, points[1] - cy) - radius

    return sdf


def sphere_sdf(cx: float, cy: float, cz: float,
               radius: float) -> Callable[[np.ndarray], np.ndarray]:
    """Signed distance to a sphere (negative inside) in lattice coordinates."""
    def sdf(points: np.ndarray) -> np.ndarray:
        return np.sqrt((points[0] - cx) ** 2 + (points[1] - cy) ** 2
                       + (points[2] - cz) ** 2) - radius

    return sdf


def _link_fractions(sdf, start: np.ndarray, c: np.ndarray,
                    iters: int = 48) -> np.ndarray:
    """Wall-intersection fractions ``q`` along ``start + t c``, ``t in (0, 1]``.

    Bisection on the signed distance (fluid end positive, solid end
    negative), robust for any monotone-enough SDF; 48 halvings put the
    root far below the discretization error. Links whose solid end is
    not actually inside the surface (mask/SDF disagreement at tangent
    nodes) fall back to the half-way position ``q = 1/2``.
    """
    lo = np.zeros(start.shape[1])
    hi = np.ones(start.shape[1])
    d_hi = sdf(start + c[:, None])
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        d_mid = sdf(start + mid[None, :] * c[:, None])
        inside = d_mid <= 0.0
        hi = np.where(inside, mid, hi)
        lo = np.where(inside, lo, mid)
    q = 0.5 * (lo + hi)
    return np.where(d_hi > 0.0, 0.5, q)


class InterpolatedBounceBack(Boundary):
    """Bouzidi linear interpolated bounce-back on a curved solid surface.

    Parameters
    ----------
    sdf:
        Signed distance function of the wall surface in lattice
        coordinates: maps a ``(D, n)`` array of points to ``(n,)``
        distances, negative inside the solid. Must be consistent with
        the solid nodes it covers (``sdf <= 0`` there).
    body_mask:
        Optional boolean mask restricting the boundary to the links of
        one solid body; defaults to every solid node of the domain.
        Other solid nodes (e.g. straight channel walls handled by a
        separate :class:`~repro.boundary.HalfwayBounceBack`) are left
        untouched.

    After each application :attr:`last_force` holds the instantaneous
    momentum-exchange force vector over the boundary's links (lattice
    units), built from the true interpolated reflections.
    """

    def __init__(self, sdf: Callable[[np.ndarray], np.ndarray],
                 body_mask: np.ndarray | None = None):
        self.sdf = sdf
        self.body_mask = body_mask
        self._links: list = []
        #: Momentum-exchange force accumulated on the latest application.
        self.last_force: np.ndarray | None = None

    def bind(self, lat: LatticeDescriptor, domain: Domain,
             tau: float) -> "InterpolatedBounceBack":
        """Precompute per-link interpolation coefficients from the SDF."""
        solid = domain.solid_mask
        body = solid if self.body_mask is None else (
            np.asarray(self.body_mask, dtype=bool) & solid)
        fluidlike = domain.fluid_mask
        axes = tuple(range(solid.ndim))
        shape = domain.shape
        self._links = []
        self.last_force = np.zeros(lat.d)
        for i in range(lat.q):
            if not lat.c[i].any():
                continue
            # Node x receives component i from x - c_i; the link is cut
            # when that source lies inside the body.
            j = int(lat.opposite[i])           # direction into the wall
            from_body = np.roll(body, shift=tuple(lat.c[i]), axis=axes) & fluidlike
            idx = np.nonzero(from_body)
            if idx[0].size == 0:
                continue
            start = np.stack([a.astype(np.float64) for a in idx])
            c_j = lat.c[j].astype(np.float64)
            q = _link_fractions(self.sdf, start, c_j)
            # Upstream interpolation node x - c_j (= x + c_i), periodic.
            behind = tuple((idx[a] + lat.c[i, a]) % shape[a]
                           for a in range(lat.d))
            behind_fluid = fluidlike[behind]
            near = (q < 0.5) & behind_fluid
            far = q >= 0.5
            # Coefficients of f*_j(x), f*_j(x - c_j), f*_i(x):
            a_self = np.where(near, 2.0 * q,
                              np.where(far, 0.5 / q, 1.0))
            b_up = np.where(near, 1.0 - 2.0 * q, 0.0)
            c_own = np.where(far, (2.0 * q - 1.0) / (2.0 * q), 0.0)
            self._links.append((i, j, idx, behind, a_self, b_up, c_own))
        if not self._links:
            raise ValueError("surface has no cut fluid-solid links")
        return self

    def post_stream(self, lat: LatticeDescriptor, f_new: np.ndarray,
                    f_source: np.ndarray) -> None:
        """Write the interpolated reflections; accumulate the wall force."""
        force = np.zeros(lat.d)
        for i, j, idx, behind, a_self, b_up, c_own in self._links:
            out = f_source[j][idx]
            vals = a_self * out
            vals += b_up * f_source[j][behind]
            vals += c_own * f_source[i][idx]
            f_new[i][idx] = vals
            # Per link the wall absorbs c_j f*_j and injects c_i f_i:
            # the transfer along c_j is f*_j + f_i (since c_i = -c_j).
            force += lat.c[j] * float(out.sum() + vals.sum())
        self.last_force = force
