"""Boundary-condition interface shared by all solvers.

Boundaries hook into two points of the LBM update cycle:

* ``post_stream(lat, f_new, f_source)`` — called right after streaming with
  the freshly streamed field ``f_new`` and the field that was streamed
  (post-collision) ``f_source``. Bounce-back and the inlet/outlet
  reconstructions live here; this is the point where, in the paper's MR
  GPU kernel, the distribution still lives in shared memory.
* ``post_collide(lat, f_star, f_post_stream)`` — called right after
  collision (used by full-way bounce-back, which replaces the collision on
  solid nodes by a reflection).

A boundary must first be bound to a lattice/domain/relaxation-time triple
via :meth:`Boundary.bind`, which precomputes index arrays so that the apply
hooks are pure vectorized scatter/gather operations.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Domain
from ..lattice import LatticeDescriptor

__all__ = ["Boundary", "Plane"]


class Plane:
    """An axis-aligned domain face: ``axis`` plus ``side`` (0 or -1).

    ``inward`` is the signed unit direction pointing from the face into the
    domain interior (+1 for the low side, -1 for the high side).
    """

    def __init__(self, axis: int, side: int):
        if side not in (0, -1):
            raise ValueError(f"side must be 0 or -1, got {side}")
        self.axis = int(axis)
        self.side = int(side)

    @property
    def inward(self) -> int:
        """Signed unit direction from the face into the domain interior."""
        return 1 if self.side == 0 else -1

    def face_index(self, shape: tuple[int, ...], offset: int = 0) -> tuple:
        """Indexing tuple selecting the plane ``offset`` nodes inward."""
        idx: list = [slice(None)] * len(shape)
        if self.side == 0:
            idx[self.axis] = offset
        else:
            idx[self.axis] = shape[self.axis] - 1 - offset
        return tuple(idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Plane(axis={self.axis}, side={self.side})"


class Boundary:
    """Abstract boundary condition. Subclasses precompute indices in
    :meth:`bind` and implement one or both apply hooks."""

    def bind(self, lat: LatticeDescriptor, domain: Domain, tau: float) -> "Boundary":
        """Precompute index arrays; returns self for chaining."""
        raise NotImplementedError

    def post_stream(self, lat: LatticeDescriptor, f_new: np.ndarray,
                    f_source: np.ndarray) -> None:
        """Mutate ``f_new`` in place after streaming (default: no-op)."""

    def post_collide(self, lat: LatticeDescriptor, f_star: np.ndarray,
                     f_post_stream: np.ndarray) -> None:
        """Mutate ``f_star`` in place after collision (default: no-op)."""
