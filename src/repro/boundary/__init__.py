"""Boundary conditions: bounce-back walls, velocity inlets, pressure outlets."""

from .base import Boundary, Plane
from .bounceback import FullwayBounceBack, HalfwayBounceBack
from .inletoutlet import PressureOutlet, VelocityInlet

__all__ = [
    "Boundary",
    "Plane",
    "HalfwayBounceBack",
    "FullwayBounceBack",
    "VelocityInlet",
    "PressureOutlet",
]
