"""Boundary conditions: bounce-back walls (straight and curved), velocity
inlets, pressure outlets."""

from .base import Boundary, Plane
from .bounceback import FullwayBounceBack, HalfwayBounceBack
from .curved import InterpolatedBounceBack, circle_sdf, sphere_sdf
from .inletoutlet import PressureOutlet, VelocityInlet

__all__ = [
    "Boundary",
    "Plane",
    "HalfwayBounceBack",
    "FullwayBounceBack",
    "InterpolatedBounceBack",
    "circle_sdf",
    "sphere_sdf",
    "VelocityInlet",
    "PressureOutlet",
]
