"""Bounce-back wall boundaries (the paper's channel walls).

Half-way bounce-back reflects, on each fluid-solid link, the post-collision
population back into the fluid with reversed direction; the wall plane sits
half a lattice spacing beyond the last fluid node and the scheme is
second-order accurate for straight walls. A moving-wall momentum term
``2 w_i rho0 (c_i . u_w) / cs2`` supports driven cavities.

Full-way bounce-back instead replaces the collision at *solid* nodes by a
full reflection of all populations, introducing a one-step delay. Both are
provided; the half-way variant is the default used by the channel
workloads.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Domain
from ..lattice import LatticeDescriptor
from .base import Boundary

__all__ = ["HalfwayBounceBack", "FullwayBounceBack"]


class HalfwayBounceBack(Boundary):
    """Link-wise half-way bounce-back on all fluid-solid links.

    Parameters
    ----------
    wall_velocity:
        Optional ``(D, *shape)`` array giving the velocity of each solid
        node (only values at solid nodes are read). Used for moving walls,
        e.g. a cavity lid.
    rho0:
        Reference density in the moving-wall momentum correction.
    """

    def __init__(self, wall_velocity: np.ndarray | None = None, rho0: float = 1.0):
        self.wall_velocity = wall_velocity
        self.rho0 = float(rho0)
        self._targets: list[tuple[np.ndarray, ...]] = []
        self._momentum: list[np.ndarray | None] = []

    def bind(self, lat: LatticeDescriptor, domain: Domain, tau: float) -> "HalfwayBounceBack":
        """Precompute the fluid-solid link targets (and momentum terms)."""
        solid = domain.solid_mask
        fluidlike = domain.fluid_mask
        axes = tuple(range(solid.ndim))
        if self.wall_velocity is not None:
            uw = np.asarray(self.wall_velocity, dtype=np.float64)
            if uw.shape != (lat.d, *domain.shape):
                raise ValueError(
                    f"wall_velocity must have shape {(lat.d, *domain.shape)}, got {uw.shape}"
                )
        self._targets = []
        self._momentum = []
        for i in range(lat.q):
            if not lat.c[i].any():
                self._targets.append(None)
                self._momentum.append(None)
                continue
            # Node x receives component i from x - c_i; fix it if the
            # source is a solid node.
            from_solid = np.roll(solid, shift=tuple(lat.c[i]), axis=axes) & fluidlike
            idx = np.nonzero(from_solid)
            self._targets.append(idx if idx[0].size else None)
            if self.wall_velocity is None or idx[0].size == 0:
                self._momentum.append(None)
            else:
                src = tuple(
                    (idx[a] - lat.c[i, a]) % domain.shape[a] for a in range(lat.d)
                )
                cu = sum(lat.c[i, a] * uw[a][src] for a in range(lat.d))
                self._momentum.append(2.0 * lat.w[i] * self.rho0 * cu / lat.cs2)
        return self

    def post_stream(self, lat: LatticeDescriptor, f_new: np.ndarray,
                    f_source: np.ndarray) -> None:
        """Reflect the populations streamed out of solid nodes."""
        for i in range(lat.q):
            idx = self._targets[i]
            if idx is None:
                continue
            vals = f_source[lat.opposite[i]][idx]
            mom = self._momentum[i]
            if mom is not None:
                vals = vals + mom
            f_new[i][idx] = vals


class FullwayBounceBack(Boundary):
    """Full-way bounce-back: solid nodes reflect all populations instead of
    colliding. Solid nodes participate in streaming normally."""

    def __init__(self) -> None:
        self._solid_idx: tuple[np.ndarray, ...] | None = None

    def bind(self, lat: LatticeDescriptor, domain: Domain, tau: float) -> "FullwayBounceBack":
        """Precompute the solid-node index set."""
        idx = np.nonzero(domain.solid_mask)
        self._solid_idx = idx if idx[0].size else None
        return self

    def post_collide(self, lat: LatticeDescriptor, f_star: np.ndarray,
                     f_post_stream: np.ndarray) -> None:
        """Replace the collision at solid nodes by a full reflection."""
        if self._solid_idx is None:
            return
        idx = self._solid_idx
        reflected = f_post_stream[lat.opposite][(slice(None), *idx)]
        f_star[(slice(None), *idx)] = reflected
