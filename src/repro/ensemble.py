"""Lockstep ensemble execution: N same-shape simulations, one fused kernel.

On small and medium grids a single simulation cannot feed the fused
kernels: the per-step cost is dominated by fixed NumPy dispatch and the
BLAS moment projections run starved on skinny ``(M, N)`` operands. A
parameter sweep (the EXPERIMENTS-style Re/τ/resolution scans of ROADMAP
item 3) is exactly ``B`` such starved simulations — so
:class:`EnsembleRunner` packs them into the batched cores of
:mod:`repro.accel.batched` and steps the whole ensemble with one kernel
invocation per stage, restoring the large-``n`` dgemm shapes the moment
representation was designed around.

Packing is **zero-copy for the members**: the runner allocates the
``(B, ...)`` batch arrays once, copies each member's state in, and
rebinds the member solver's state attribute (``f``/``m``/``force``) to
its batch *view*. Member solvers therefore stay fully observable —
``macroscopic()``, diagnostics, monitors and manifests all read the live
batched state — but they must not call their own ``step``/``run`` while
enrolled; the runner advances everyone in lockstep (and keeps each
member's ``time`` in sync).

Eligibility is explicit, via the ``batched: True`` flag of the solver's
``accel_caps`` declaration (see :mod:`repro.accel`): ST (plain BGK),
MR-P and MR-R solvers qualify; subclasses that override physics, TRT
collisions, ``tau_bulk`` splits and per-node ``tau_field`` relaxation do
not. Members must share the lattice, grid shape, scheme and solid
geometry; relaxation time, forcing fields, boundary objects and initial
conditions are free per member. Each member reproduces its independent
``backend="fused"`` run to machine precision (pinned by
``tests/unit/test_accel_batched.py``).

On top of the runner, this module provides the sweep machinery behind
``mrlbm sweep``: :func:`expand_sweep` turns a parameter grid into
:class:`~repro.parallel.runtime.RunSpec` records (fingerprint-deduped),
:func:`pack_batches` groups compatible specs into batches, and
:func:`run_sweep` executes them, attributing aggregate MLUPS back to
each member and writing per-member manifests plus a sweep summary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .accel import solver_caps
from .accel.batched import BatchedFusedMRCore, BatchedFusedSTCore
from .core.collision import BGKCollision
from .obs.manifest import write_manifest
from .obs.telemetry import NULL_TELEMETRY
from .parallel.runtime import RunSpec
from .service.registry import build_single, sweep_kinds
from .solver.base import Solver

__all__ = [
    "EnsembleRunner",
    "SWEEP_PROBLEMS",
    "expand_sweep",
    "build_sweep_member",
    "pack_batches",
    "run_sweep",
    "SweepResult",
]


def _member_caps(member: Solver) -> dict:
    """The member's own ``accel_caps``; raise unless it certifies batching."""
    caps = solver_caps(member)
    if caps is None or not caps.get("batched"):
        raise ValueError(
            f"{type(member).__name__} does not certify batched execution "
            f"(accel_caps must declare batched=True in its own class body; "
            f"see repro.accel)"
        )
    return caps


class EnsembleRunner:
    """Step ``B`` same-shape simulations in lockstep through one batched core.

    Parameters
    ----------
    members:
        The enrolled solvers. All must certify ``batched`` capability in
        their own ``accel_caps``, share lattice / grid shape / scheme
        family (and MR scheme) / solid geometry / forcing presence, be in
        natural state layout (any backend except ``"aa"``), agree on
        ``time``, and be distinct objects. Relaxation time, force fields,
        boundary objects and state are free per member.
    stream:
        Streaming mode for the batched core (``"auto"`` resolves to the
        single-pass table gather; see :mod:`repro.accel.batched`).

    Notes
    -----
    Construction rebinds each member's state arrays (``f``/``m``, and
    ``force`` when forced) to views into the runner-owned batch arrays;
    the members remain live observers of the evolving state but must not
    self-step while enrolled.
    """

    def __init__(self, members: Sequence[Solver], stream: str = "auto"):
        members = list(members)
        if not members:
            raise ValueError("an ensemble needs at least one member")
        if len({id(m) for m in members}) != len(members):
            raise ValueError("ensemble members must be distinct solver "
                             "objects (the same solver cannot be enrolled "
                             "twice)")
        head = members[0]
        caps0 = _member_caps(head)
        self.family = caps0["family"]
        self.scheme = caps0.get("scheme")
        for m in members:
            caps = _member_caps(m)
            if caps["family"] != self.family or caps.get("scheme") != self.scheme:
                raise ValueError(
                    "ensemble members must share one scheme; got "
                    f"{type(head).__name__} and {type(m).__name__}")
            if m.lat.name != head.lat.name:
                raise ValueError(
                    f"ensemble members must share one lattice; got "
                    f"{head.lat.name} and {m.lat.name}")
            if tuple(m.domain.shape) != tuple(head.domain.shape):
                raise ValueError(
                    f"ensemble members must share one grid shape; got "
                    f"{tuple(head.domain.shape)} and {tuple(m.domain.shape)}")
            if m.backend == "aa":
                raise ValueError(
                    "members on the single-lattice 'aa' backend cannot be "
                    "enrolled: their state may be in the component-shifted "
                    "layout; build ensemble members with backend='fused'")
            if m.time != head.time:
                raise ValueError(
                    "ensemble members must agree on time before enrolment "
                    f"(got steps {head.time} and {m.time})")
            if not np.array_equal(m.domain.solid_mask, head.domain.solid_mask):
                raise ValueError(
                    "ensemble members must share the solid geometry")
            if (m.force is None) != (head.force is None):
                raise ValueError(
                    "ensemble forcing is all-or-none: forced and unforced "
                    "members take bitwise-different collision paths, so "
                    "they cannot share a batch")
            if self.family == "st" and type(m.collision) is not BGKCollision:
                raise ValueError(
                    "only the plain BGK collision is batched for ST (same "
                    "support matrix as the fused backend)")
            if self.family == "mr" and getattr(m, "tau_bulk", None) is not None:
                raise ValueError(
                    "tau_bulk members cannot be batched (the trace-split "
                    "relaxation is a single-simulation feature)")

        self.members = members
        self.batch = len(members)
        self.lat = head.lat
        self.shape = tuple(head.domain.shape)
        self.time = head.time
        self.telemetry = NULL_TELEMETRY
        taus = [m.tau for m in members]
        solid = head.domain.solid_mask
        self._solid = solid if solid.any() else None
        self._boundaries = [m.boundaries for m in members]
        self._force = None
        if head.force is not None:
            self._force = np.empty((self.batch, self.lat.d, *self.shape))
            for k, m in enumerate(members):
                self._force[k] = m.force
                # Rebind so member.set_force(...) keeps driving the batch.
                m.force = self._force[k]
        if self.family == "st":
            self._core = BatchedFusedSTCore(self.lat, self.shape, taus,
                                            stream=stream)
            self._f = np.empty((self.batch, self.lat.q, *self.shape))
            self._scratch = np.empty_like(self._f)
            for k, m in enumerate(members):
                self._f[k] = m.f
                m.f = self._f[k]
                m._f_streamed = self._scratch[k]
        else:
            self._core = BatchedFusedMRCore(self.lat, self.shape, taus,
                                            scheme=self.scheme, stream=stream)
            self._m = np.empty((self.batch, self.lat.n_moments, *self.shape))
            for k, m in enumerate(members):
                self._m[k] = m.m
                m.m = self._m[k]

    def attach_telemetry(self, telemetry) -> "EnsembleRunner":
        """Attach a :class:`~repro.obs.Telemetry` registry (``None`` resets).

        Phases accumulate over the whole ensemble step; use
        :meth:`member_mlups` to attribute throughput back to members.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        return self

    def step(self) -> None:
        """Advance every member one lockstep step (one batched kernel pass)."""
        if self.family == "st":
            self._core.step(self._f, self._scratch, self._boundaries,
                            self._solid, self.telemetry, force=self._force)
        else:
            self._core.step(self._m, self._boundaries, self._solid,
                            self.telemetry, force=self._force)

    def run(self, n_steps: int,
            member_callbacks: Sequence[Callable[[Solver], None] | None]
            | None = None,
            callback_interval: int = 1) -> "EnsembleRunner":
        """Advance ``n_steps`` lockstep steps, with per-member callbacks.

        ``member_callbacks`` is an optional sequence of ``B`` callables
        (entries may be ``None``); each is invoked with its member solver
        every ``callback_interval`` steps, exactly as
        :meth:`repro.solver.base.Solver.run` invokes its callback — and a
        callback exposing ``flush(solver)`` (monitors do) is flushed once
        after the final step. Member ``time`` attributes advance in sync.
        """
        cbs = None
        if member_callbacks is not None:
            cbs = list(member_callbacks)
            if len(cbs) != self.batch:
                raise ValueError(
                    f"expected {self.batch} member callbacks, got {len(cbs)}")
        tel = self.telemetry
        completed = 0
        try:
            for _ in range(int(n_steps)):
                with tel.phase("step"):
                    self.step()
                self.time += 1
                for m in self.members:
                    m.time += 1
                completed += 1
                if cbs is not None and self.time % callback_interval == 0:
                    for m, cb in zip(self.members, cbs):
                        if cb is not None:
                            cb(m)
            if cbs is not None:
                for m, cb in zip(self.members, cbs):
                    flush = getattr(cb, "flush", None)
                    if flush is not None:
                        flush(m)
        finally:
            if tel.enabled and completed:
                tel.count("steps", completed)
        return self

    # -- throughput attribution ---------------------------------------
    def member_fluid_nodes(self) -> list[int]:
        """Fluid-node count of each member (equal when geometry is shared)."""
        return [int(m.domain.n_fluid) for m in self.members]

    def aggregate_mlups(self, elapsed_s: float, steps: int) -> float:
        """Ensemble throughput: total fluid-node updates / wall seconds."""
        if elapsed_s <= 0.0:
            return 0.0
        return sum(self.member_fluid_nodes()) * steps / elapsed_s / 1e6

    def member_mlups(self, elapsed_s: float, steps: int) -> list[float]:
        """Per-member MLUPS attribution of a timed span.

        Each member is credited its own fluid-node updates over the
        shared wall time, so the attributions sum to
        :meth:`aggregate_mlups` exactly.
        """
        if elapsed_s <= 0.0:
            return [0.0] * self.batch
        return [nf * steps / elapsed_s / 1e6
                for nf in self.member_fluid_nodes()]


# ---------------------------------------------------------------------------
# Sweep machinery (the engine behind ``mrlbm sweep``)
# ---------------------------------------------------------------------------

#: Problem kinds a sweep can expand over — the registry entries flagged
#: ``sweepable`` (see :mod:`repro.service.registry`), so a kind
#: registered there with ``sweepable=True`` becomes sweepable here and
#: in ``mrlbm sweep`` without touching this module.
SWEEP_PROBLEMS = sweep_kinds()


def expand_sweep(problem: str, schemes: Sequence[str],
                 lattices: Sequence[str],
                 shapes: Sequence[tuple[int, ...]],
                 taus: Sequence[float],
                 u_maxes: Sequence[float] = (0.05,)
                 ) -> tuple[list[RunSpec], int]:
    """Expand a parameter grid into deduplicated single-domain RunSpecs.

    The cross product ``schemes x lattices x shapes x taus x u_maxes``
    becomes one :class:`~repro.parallel.runtime.RunSpec` per member
    (``kind`` is the sweep problem name, ``n_ranks=1``, ``u_max`` in
    ``options``); members whose :meth:`RunSpec.fingerprint` collides
    with an earlier one are dropped. Returns ``(specs, n_duplicates)``.
    """
    if problem not in SWEEP_PROBLEMS:
        raise ValueError(f"unknown sweep problem {problem!r}; expected one "
                         f"of {SWEEP_PROBLEMS}")
    specs: list[RunSpec] = []
    seen: set[str] = set()
    dropped = 0
    for scheme in schemes:
        for lattice in lattices:
            for shape in shapes:
                for tau in taus:
                    for u_max in u_maxes:
                        spec = RunSpec(kind=problem, scheme=scheme,
                                       lattice=lattice,
                                       shape=tuple(int(s) for s in shape),
                                       n_ranks=1, tau=float(tau),
                                       options={"u_max": float(u_max)})
                        fp = spec.fingerprint()
                        if fp in seen:
                            dropped += 1
                            continue
                        seen.add(fp)
                        specs.append(spec)
    return specs, dropped


def build_sweep_member(spec: RunSpec, backend: str = "fused") -> Solver:
    """Construct the single-domain solver one sweep RunSpec describes.

    Delegates to the registry's single-domain builders
    (:func:`repro.service.registry.build_single`), so any sweepable
    kind — including ones registered downstream — is buildable here.
    """
    if spec.kind not in SWEEP_PROBLEMS:
        raise ValueError(f"unknown sweep problem kind {spec.kind!r}; "
                         f"expected one of {SWEEP_PROBLEMS}")
    return build_single(spec.kind, spec.scheme, spec.lattice,
                        tuple(spec.shape), tau=spec.tau, backend=backend,
                        **spec.options)


def pack_batches(specs: Sequence[RunSpec],
                 max_batch: int = 16) -> list[list[RunSpec]]:
    """Group specs into batchable chunks of at most ``max_batch`` members.

    Members are batch-compatible when they share ``(kind, scheme,
    lattice, shape)`` — the ensemble contract of
    :class:`EnsembleRunner` (same kernels, same geometry; τ and
    ``u_max`` free). Grouping preserves first-seen order of both the
    groups and their members.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: dict[tuple, list[RunSpec]] = {}
    for spec in specs:
        key = (spec.kind, spec.scheme, spec.lattice, tuple(spec.shape))
        groups.setdefault(key, []).append(spec)
    batches: list[list[RunSpec]] = []
    for group in groups.values():
        for i in range(0, len(group), max_batch):
            batches.append(group[i:i + max_batch])
    return batches


@dataclass
class SweepResult:
    """Outcome of :func:`run_sweep`.

    ``members`` holds one record per executed member (scheme, lattice,
    shape, tau, options, fingerprint, batch index, attributed MLUPS,
    final max speed); ``batches`` one record per kernel batch (size,
    wall seconds, aggregate MLUPS); ``duplicates_dropped`` the members
    removed by fingerprint dedupe before execution.
    """

    problem: str
    steps: int
    members: list[dict] = field(default_factory=list)
    batches: list[dict] = field(default_factory=list)
    duplicates_dropped: int = 0
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary."""
        return {
            "problem": self.problem,
            "steps": self.steps,
            "n_members": len(self.members),
            "n_batches": len(self.batches),
            "duplicates_dropped": self.duplicates_dropped,
            "wall_s": self.wall_s,
            "aggregate_mlups": (
                sum(b["mlups"] for b in self.batches)
                if self.batches else 0.0),
            "batches": self.batches,
            "members": self.members,
        }

    def write(self, path: str | Path) -> Path:
        """Write the summary JSON to ``path`` (returns the path)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                        encoding="utf-8")
        return path


def run_sweep(specs: Sequence[RunSpec], steps: int, max_batch: int = 16,
              out_dir: str | Path | None = None, backend: str = "fused",
              stream: str = "auto",
              progress: Callable[[str], None] | None = None) -> SweepResult:
    """Execute a sweep: pack, run batched, attribute MLUPS, write manifests.

    Specs are fingerprint-deduplicated (defensively — :func:`expand_sweep`
    already dedupes) and packed by :func:`pack_batches`; each batch of
    two or more members runs through an :class:`EnsembleRunner`, while
    singletons run their solver directly (same fused kernels, no batch
    overhead). With ``out_dir`` set, every member gets a
    ``member-<fingerprint>.json`` manifest and the sweep a
    ``sweep_summary.json``. ``progress`` (e.g. ``print``) receives one
    line per completed batch.
    """
    unique: list[RunSpec] = []
    seen: set[str] = set()
    dropped = 0
    fps: dict[int, str] = {}
    for spec in specs:
        fp = spec.fingerprint()
        if fp in seen:
            dropped += 1
            continue
        seen.add(fp)
        fps[id(spec)] = fp
        unique.append(spec)
    problem = unique[0].kind if unique else "?"
    result = SweepResult(problem=problem, steps=int(steps),
                         duplicates_dropped=dropped)
    out_path = None
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
    t_sweep = time.perf_counter()
    for bi, chunk in enumerate(pack_batches(unique, max_batch=max_batch)):
        solvers = [build_sweep_member(s, backend=backend) for s in chunk]
        t0 = time.perf_counter()
        if len(solvers) == 1:
            solvers[0].run(int(steps))
            runner = None
        else:
            runner = EnsembleRunner(solvers, stream=stream)
            runner.run(int(steps))
        wall = time.perf_counter() - t0
        fluid = [int(s.domain.n_fluid) for s in solvers]
        agg = (sum(fluid) * steps / wall / 1e6) if wall > 0 else 0.0
        result.batches.append({
            "batch": bi,
            "kind": chunk[0].kind,
            "scheme": chunk[0].scheme,
            "lattice": chunk[0].lattice,
            "shape": list(chunk[0].shape),
            "size": len(solvers),
            "batched": runner is not None,
            "wall_s": wall,
            "mlups": agg,
        })
        for spec, solver, nf in zip(chunk, solvers, fluid):
            fp = fps[id(spec)]
            mlups = (nf * steps / wall / 1e6) if wall > 0 else 0.0
            row = {
                "fingerprint": fp,
                "kind": spec.kind,
                "scheme": spec.scheme,
                "lattice": spec.lattice,
                "shape": list(spec.shape),
                "tau": spec.tau,
                "options": dict(spec.options),
                "batch": bi,
                "steps": int(steps),
                "mlups": mlups,
                "max_speed": solver.diagnostics.max_speed(),
            }
            result.members.append(row)
            if out_path is not None:
                write_manifest(out_path / f"member-{fp}.json", solver,
                               kind=spec.kind, fingerprint=fp, batch=bi,
                               mlups=mlups, u_max=spec.options.get("u_max"))
        if progress is not None:
            progress(f"batch {bi}: {len(solvers)} x {chunk[0].scheme} "
                     f"{chunk[0].lattice} {tuple(chunk[0].shape)} — "
                     f"{agg:.2f} MLUPS aggregate ({wall:.3f} s)")
    result.wall_s = time.perf_counter() - t_sweep
    if out_path is not None:
        result.write(out_path / "sweep_summary.json")
    return result
