"""Body-force coupling (Guo et al. 2002) in distribution and moment space.

The paper's proxy apps drive the channel through inlet/outlet boundaries,
but body-force driving is the other standard workload (periodic
Poiseuille, buoyancy, ...), so the library supports it for all three
schemes:

* **ST/BGK** uses the classical Guo forcing: with

  .. math::
     S_i = (1 - \\tfrac{1}{2\\tau}) w_i
           \\left[ \\frac{\\mathbf{c}_i - \\mathbf{u}}{c_s^2}
                 + \\frac{(\\mathbf{c}_i\\cdot\\mathbf{u})\\,\\mathbf{c}_i}
                        {c_s^4} \\right] \\cdot \\mathbf{F}

  added post-collision and the macroscopic velocity redefined as
  ``u = (j + F/2) / rho``.

* **MR-P / MR-R** use the *moment-space projection* of the same scheme.
  The source term's moments are ``sum_i S_i = 0``,
  ``sum_i c_i S_i = (1 - 1/(2 tau)) F`` — which combined with the
  half-force velocity shift makes the post-collision momentum exactly
  ``j + F`` — and a second Hermite moment of
  ``(1 - 1/(2 tau)) (u_a F_b + u_b F_a)``. Collision therefore becomes

  ``j* = j + F``,
  ``Pi* = Pi_eq(u*) + (1 - 1/tau)(Pi - Pi_eq(u*))
          + (1 - 1/(2 tau))(u*_a F_b + u*_b F_a)``

  with ``u* = (j + F/2)/rho``, followed by the usual Eq. 11/14
  reconstruction. This is the regularized ("projected") version of Guo
  forcing: source content beyond the second Hermite moment is filtered
  exactly like the non-equilibrium distribution itself.

Both paths make a body-force-driven periodic channel converge to the
parabolic Poiseuille profile at second order (tested).
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = [
    "normalize_force",
    "half_force_velocity",
    "guo_source",
    "apply_moment_space_force",
]


def normalize_force(lat: LatticeDescriptor, force, grid_shape: tuple[int, ...]
                    ) -> np.ndarray:
    """Normalize a force spec (vector or field) to a ``(D, *grid)`` array."""
    arr = np.asarray(force, dtype=np.float64)
    if arr.shape == (lat.d,):
        out = np.empty((lat.d, *grid_shape))
        out[:] = arr.reshape((lat.d,) + (1,) * len(grid_shape))
        return out
    if arr.shape == (lat.d, *grid_shape):
        return arr.copy()
    raise ValueError(
        f"force must have shape {(lat.d,)} or {(lat.d, *grid_shape)}, "
        f"got {arr.shape}"
    )


def half_force_velocity(lat: LatticeDescriptor, rho: np.ndarray, j: np.ndarray,
                        force: np.ndarray) -> np.ndarray:
    """Guo's macroscopic velocity ``u = (j + F/2)/rho``."""
    return (j + 0.5 * force) / rho


def guo_source(lat: LatticeDescriptor, u: np.ndarray, force: np.ndarray,
               tau: float | None) -> np.ndarray:
    """The distribution-space Guo source term ``S_i`` (``(Q, *grid)``).

    With ``tau`` given, includes the BGK prefactor ``1 - 1/(2 tau)``;
    pass ``tau=None`` for the raw (unscaled) source, e.g. when the caller
    applies parity-split TRT prefactors itself.
    """
    pref = 1.0 if tau is None else 1.0 - 0.5 / tau
    c = lat.c.astype(np.float64)
    cf = np.einsum("qa,a...->q...", c, force)
    cu = np.einsum("qa,a...->q...", c, u)
    uf = np.einsum("a...,a...->...", u, force)
    w = lat.w.reshape((-1,) + (1,) * (u.ndim - 1))
    return pref * w * (
        (cf - uf) / lat.cs2 + cu * cf / lat.cs4
    )


def apply_moment_space_force(lat: LatticeDescriptor, m_star: np.ndarray,
                             u_star: np.ndarray, force: np.ndarray,
                             tau: float) -> None:
    """Add the projected Guo source to collided moments, in place.

    ``m_star`` must already hold the force-aware collision (equilibria
    evaluated at ``u* = (j + F/2)/rho``); this adds the momentum input
    ``F`` and the second-moment source ``(1 - 1/(2 tau)) (u F + F u)``.
    """
    pref = 1.0 - 0.5 / tau
    m_star[1:1 + lat.d] += force
    for k, (a, b) in enumerate(lat.pair_tuples):
        m_star[1 + lat.d + k] += pref * (
            u_star[a] * force[b] + u_star[b] * force[a]
        )
