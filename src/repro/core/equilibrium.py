"""Equilibrium distributions and equilibrium moments.

Implements the second-order Maxwell-Boltzmann expansion of paper Eq. 4 (the
classical LBGK equilibrium) together with its moment-space counterpart and
the third/fourth-order Hermite equilibrium coefficients
``a3_eq = rho*u*u*u`` and ``a4_eq = rho*u*u*u*u`` used by recursive
regularization (Section 2.3).
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor
from .moments import pack_moments

__all__ = [
    "equilibrium",
    "equilibrium_moments",
    "a3_equilibrium_cols",
    "a4_equilibrium_cols",
    "equilibrium_extended",
]


def _as_velocity_field(lat: LatticeDescriptor, u: np.ndarray) -> np.ndarray:
    u = np.asarray(u, dtype=np.float64)
    if u.shape[0] != lat.d:
        raise ValueError(f"velocity field must have leading axis {lat.d}, got {u.shape}")
    return u


def equilibrium(lat: LatticeDescriptor, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Second-order equilibrium distribution (paper Eq. 4).

    ``f_eq_i = w_i rho (1 + c.u/cs2 + (c.u)^2/(2 cs4) - u.u/(2 cs2))``,
    which is exactly the Hermite form
    ``w_i (H0 rho + H1.rho u / cs2 + H2 : rho u u / (2 cs4))``.

    Parameters have shapes ``grid`` (rho) and ``(D, *grid)`` (u); the result
    has shape ``(Q, *grid)``.
    """
    rho = np.asarray(rho, dtype=np.float64)
    u = _as_velocity_field(lat, u)
    cu = np.einsum("qa,a...->q...", lat.c.astype(np.float64), u)
    usq = np.einsum("a...,a...->...", u, u)
    return lat.w.reshape((-1,) + (1,) * rho.ndim) * rho * (
        1.0 + cu / lat.cs2 + cu * cu / (2.0 * lat.cs4) - usq / (2.0 * lat.cs2)
    )


def equilibrium_moments(lat: LatticeDescriptor, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Equilibrium M-vector: ``[rho, rho u, (rho u u)_distinct]``.

    The Hermite second moment of Eq. 4 equilibrium is ``Pi_eq = rho u u``
    (paper, below Eq. 10).
    """
    rho = np.asarray(rho, dtype=np.float64)
    u = _as_velocity_field(lat, u)
    pi_cols = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples], axis=0)
    return pack_moments(lat, rho, rho * u, pi_cols)


def a3_equilibrium_cols(lat: LatticeDescriptor, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Distinct components of ``a3_eq = rho u u u`` (Section 2.3)."""
    u = _as_velocity_field(lat, u)
    return np.stack([rho * u[a] * u[b] * u[c] for a, b, c in lat.triple_tuples], axis=0)


def a4_equilibrium_cols(lat: LatticeDescriptor, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Distinct components of ``a4_eq = rho u u u u`` (Section 2.3)."""
    u = _as_velocity_field(lat, u)
    return np.stack(
        [rho * u[a] * u[b] * u[c] * u[e] for a, b, c, e in lat.quad_tuples], axis=0
    )


def equilibrium_extended(lat: LatticeDescriptor, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Fourth-order Hermite equilibrium (the equilibrium limit of Eq. 14).

    Adds the third- and fourth-order Hermite terms with coefficients
    ``a3_eq = rho uuu`` and ``a4_eq = rho uuuu`` on top of Eq. 4. On
    lattices that do not support some components (e.g. H3_xxx on D2Q9) the
    corresponding Hermite columns vanish identically, so the expression is
    automatically projected onto the supported subspace.
    """
    rho = np.asarray(rho, dtype=np.float64)
    base = equilibrium(lat, rho, u)
    from .regularization import hermite_delta_higher_order

    a3 = a3_equilibrium_cols(lat, rho, u)
    a4 = a4_equilibrium_cols(lat, rho, u)
    return base + hermite_delta_higher_order(lat, a3, a4)
