"""Moment-space algebra: projections between distribution and moment space.

Array conventions used throughout the package
---------------------------------------------

* Distribution fields ``f`` have shape ``(Q, *grid)`` — component-major,
  the NumPy analogue of the structure-of-arrays (SoA) layout the paper uses
  for coalesced GPU access (Section 3.1).
* Moment fields ``m`` have shape ``(M, *grid)`` with the layout
  ``[rho, j_x..j_D, Pi_xx, Pi_xy, ..., Pi_DD]`` where ``j = rho*u`` and the
  second-order block stores the *Hermite* second moment
  ``Pi_ab = sum_i H2_iab f_i`` (paper Eq. 3) in
  combinations-with-replacement order.
* Velocity fields ``u`` have shape ``(D, *grid)``.

The f -> M projection (Eqs. 1-3) and the M -> f reconstruction of the
projective-regularized state (Eq. 11) are both linear, so they are single
``einsum`` contractions against precomputed ``(M, Q)`` / ``(Q, M)``
matrices stored on the lattice descriptor.
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = [
    "macroscopic",
    "moments_from_f",
    "f_from_moments",
    "split_moments",
    "pack_moments",
    "velocity_from_moments",
    "pi_cols_from_tensor",
    "pi_tensor_from_cols",
    "second_moment_cols",
]


def macroscopic(lat: LatticeDescriptor, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Density and velocity from a distribution field (Eqs. 1-2).

    Returns ``(rho, u)`` with shapes ``grid`` and ``(D, *grid)``.
    """
    rho = f.sum(axis=0)
    j = np.einsum("qa,q...->a...", lat.c.astype(np.float64), f)
    return rho, j / rho


def moments_from_f(lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
    """Project a distribution field to the M-vector field (Eqs. 1-3, 8).

    ``m[0] = rho``, ``m[1:1+D] = rho*u``, remaining slots hold the distinct
    components of the Hermite second moment ``Pi``.
    """
    return np.einsum("mq,q...->m...", lat.moment_matrix, f)


def f_from_moments(lat: LatticeDescriptor, m: np.ndarray) -> np.ndarray:
    """Reconstruct a regularized distribution field from moments (Eq. 11).

    Only exact for states whose information content is limited to the first
    three moment sets — i.e. post-collision states of the projective scheme,
    or any state built from Eq. 11. This is the 'lossless compression' at
    the heart of the moment representation.
    """
    return np.einsum("qm,m...->q...", lat.reconstruction_matrix, m)


def split_moments(lat: LatticeDescriptor, m: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Views ``(rho, j, pi_cols)`` of an M-vector field."""
    d = lat.d
    return m[0], m[1:1 + d], m[1 + d:]


def pack_moments(lat: LatticeDescriptor, rho: np.ndarray, j: np.ndarray,
                 pi_cols: np.ndarray) -> np.ndarray:
    """Assemble an M-vector field from its blocks (copies)."""
    rho = np.asarray(rho, dtype=np.float64)
    m = np.empty((lat.n_moments, *rho.shape), dtype=np.float64)
    m[0] = rho
    m[1:1 + lat.d] = j
    m[1 + lat.d:] = pi_cols
    return m


def velocity_from_moments(lat: LatticeDescriptor, m: np.ndarray) -> np.ndarray:
    """Velocity field ``u = j / rho`` from an M-vector field."""
    return m[1:1 + lat.d] / m[0]


def pi_cols_from_tensor(lat: LatticeDescriptor, pi: np.ndarray) -> np.ndarray:
    """Compress a symmetric ``(D, D, *grid)`` tensor field to distinct columns."""
    return np.stack([pi[a, b] for a, b in lat.pair_tuples], axis=0)


def pi_tensor_from_cols(lat: LatticeDescriptor, cols: np.ndarray) -> np.ndarray:
    """Expand distinct columns back to a full symmetric tensor field."""
    d = lat.d
    pi = np.empty((d, d, *cols.shape[1:]), dtype=cols.dtype)
    for k, (a, b) in enumerate(lat.pair_tuples):
        pi[a, b] = cols[k]
        if a != b:
            pi[b, a] = cols[k]
    return pi


def second_moment_cols(lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
    """Distinct components of ``Pi = sum_i H2_i f_i`` (Eq. 3) directly from f."""
    return np.einsum("qt,q...->t...", lat.h2_cols, f)
