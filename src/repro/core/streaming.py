"""Streaming (propagation) of distribution fields.

Exact streaming advances each distribution component one lattice link per
timestep (paper Eq. 7). On periodic domains this is a per-component
``np.roll``. The *push* (collide-then-stream, Algorithm 2) and *pull*
(stream-then-collide, Algorithm 1) orderings use the same displacement; the
distinction matters for fused GPU kernels (memory traffic and in-place
safety), which is exactly what :mod:`repro.gpu` models, not for the
physics. This module provides both orientations explicitly so solver code
reads like the corresponding algorithm in the paper.
"""

from __future__ import annotations

import numpy as np

from ..lattice import LatticeDescriptor

__all__ = [
    "stream_push",
    "stream_pull",
    "pull_gather",
    "streaming_offsets",
]


def streaming_offsets(lat: LatticeDescriptor) -> np.ndarray:
    """Integer displacement per component, shape ``(Q, D)`` (alias of ``c``)."""
    return lat.c


def stream_push(lat: LatticeDescriptor, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Push streaming on a periodic grid: ``f_new(x + c_i) = f(x)``.

    Boundary conditions replace the periodic wrap-around values afterwards
    (all solvers in this package keep a one-node solid/boundary frame or
    explicitly fix the boundary populations post-stream).

    ``out`` must be a distinct buffer: streaming is a grid-wide
    permutation, so writing into ``f`` while the per-component loop is
    still reading it would silently corrupt components. Overlapping
    buffers raise ``ValueError``.
    """
    grid_axes = tuple(range(f.ndim - 1))  # axes of a single component f[i]
    if out is None:
        out = np.empty_like(f)
    elif out is f or np.shares_memory(f, out):
        raise ValueError(
            "stream_push cannot stream in place: out aliases f (the roll "
            "loop would read components already overwritten); pass a "
            "separate output buffer"
        )
    for i in range(lat.q):
        out[i] = np.roll(f[i], shift=tuple(lat.c[i]), axis=grid_axes)
    return out


def stream_pull(lat: LatticeDescriptor, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Pull streaming on a periodic grid: ``f_new(x) = f(x - c_i)``.

    Identical displacement to :func:`stream_push`; kept separate so the ST
    solver mirrors Algorithm 1 line-for-line.
    """
    return stream_push(lat, f, out)


def pull_gather(lat: LatticeDescriptor, f: np.ndarray, node_index: tuple[np.ndarray, ...]) -> np.ndarray:
    """Gather the pulled populations for a set of nodes (Algorithm 1 lines 4-10).

    ``node_index`` is a tuple of coordinate arrays (one per dimension); the
    result has shape ``(Q, n_nodes)`` with ``result[i] = f[i][x - c_i]``
    under periodic wrap. Used by the virtual-GPU ST kernel, where each GPU
    thread performs exactly this gather.
    """
    shape = f.shape[1:]
    gathered = np.empty((lat.q, node_index[0].size), dtype=f.dtype)
    for i in range(lat.q):
        src = tuple(
            (node_index[a] - lat.c[i, a]) % shape[a] for a in range(lat.d)
        )
        gathered[i] = f[i][src]
    return gathered
