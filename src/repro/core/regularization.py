"""Regularization machinery: non-equilibrium moments and recursions.

Projective regularization (Latt & Chopard 2006; paper Section 2.2) filters
the non-equilibrium distribution through its second-order Hermite moment
``Pi_neq`` (Eq. 8). Recursive regularization (Malaspinas 2015; paper
Section 2.3) additionally reconstructs the third- and fourth-order
non-equilibrium Hermite coefficients from the recursion relations

.. math::

    a^{neq}_{(3),\\alpha\\beta\\gamma} =
        u_\\alpha \\Pi^{neq}_{\\beta\\gamma}
      + u_\\beta  \\Pi^{neq}_{\\alpha\\gamma}
      + u_\\gamma \\Pi^{neq}_{\\alpha\\beta}

.. math::

    a^{neq}_{(4),\\alpha\\beta\\gamma\\delta} =
        \\sum_{\\text{6 index pairs } (p,q)}
        u_{p_1} u_{p_2} \\, \\Pi^{neq}_{q_1 q_2}

(the first-order Chapman-Enskog closed forms for the athermal hierarchy;
each distinct pair of indices carries the ``Pi_neq`` factor exactly once).
This module validates those closed forms in the test suite against a direct
Chapman-Enskog evaluation on manufactured velocity fields.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..lattice import LatticeDescriptor
from .equilibrium import equilibrium
from .moments import second_moment_cols

__all__ = [
    "pi_neq_cols_from_f",
    "recursive_a3_neq_cols",
    "recursive_a4_neq_cols",
    "hermite_delta_second_order",
    "hermite_delta_higher_order",
]


def pi_neq_cols_from_f(lat: LatticeDescriptor, f: np.ndarray, rho: np.ndarray,
                       u: np.ndarray) -> np.ndarray:
    """Distinct components of ``Pi_neq = Pi - rho u u`` (Eq. 8).

    Computed as the second Hermite moment of ``f - f_eq``; since
    ``sum_i H2_i f_eq_i = rho u u`` exactly for the Eq. 4 equilibrium, this
    equals projecting ``f`` and subtracting ``rho u u``.
    """
    pi_cols = second_moment_cols(lat, f)
    pi_eq = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples], axis=0)
    return pi_cols - pi_eq


def recursive_a3_neq_cols(lat: LatticeDescriptor, u: np.ndarray,
                          pi_neq_cols: np.ndarray) -> np.ndarray:
    """Third-order non-equilibrium Hermite coefficients via recursion.

    For each distinct triple ``(a, b, c)``:
    ``a3_abc = u_a Pi_bc + u_b Pi_ac + u_c Pi_ab``.
    """
    def pi(a: int, b: int) -> np.ndarray:
        return pi_neq_cols[lat.pair_index(a, b)]

    out = np.empty((len(lat.triple_tuples), *u.shape[1:]), dtype=np.float64)
    for k, (a, b, c) in enumerate(lat.triple_tuples):
        out[k] = u[a] * pi(b, c) + u[b] * pi(a, c) + u[c] * pi(a, b)
    return out


def recursive_a4_neq_cols(lat: LatticeDescriptor, u: np.ndarray,
                          pi_neq_cols: np.ndarray) -> np.ndarray:
    """Fourth-order non-equilibrium Hermite coefficients via recursion.

    For each distinct quadruple, the Chapman-Enskog closed form sums over
    the six ways of assigning two of the four indices to ``Pi_neq`` and the
    remaining two to velocities:
    ``a4_abcd = u_a u_b Pi_cd + u_a u_c Pi_bd + u_a u_d Pi_bc
              + u_b u_c Pi_ad + u_b u_d Pi_ac + u_c u_d Pi_ab``.
    """
    def pi(a: int, b: int) -> np.ndarray:
        return pi_neq_cols[lat.pair_index(a, b)]

    out = np.zeros((len(lat.quad_tuples), *u.shape[1:]), dtype=np.float64)
    for k, quad in enumerate(lat.quad_tuples):
        for pair_pos in itertools.combinations(range(4), 2):
            rest = [quad[i] for i in range(4) if i not in pair_pos]
            a, b = quad[pair_pos[0]], quad[pair_pos[1]]
            out[k] += u[rest[0]] * u[rest[1]] * pi(a, b)
    return out


def hermite_delta_second_order(lat: LatticeDescriptor, pi_cols: np.ndarray) -> np.ndarray:
    """Distribution-space contribution of a second-order Hermite coefficient.

    Returns ``w_i / (2 cs4) * H2_i : Pi`` with the full symmetric
    contraction expressed through distinct components and multiplicities —
    the regularized non-equilibrium distribution of Eq. 9 (without the
    ``1 - 1/tau`` factor).
    """
    weights = lat.pair_mult / (2.0 * lat.cs4)
    contrib = np.einsum("qt,t,t...->q...", lat.h2_cols, weights, pi_cols)
    return lat.w.reshape((-1,) + (1,) * (pi_cols.ndim - 1)) * contrib


def hermite_delta_higher_order(lat: LatticeDescriptor, a3_cols: np.ndarray,
                               a4_cols: np.ndarray) -> np.ndarray:
    """Distribution-space contribution of third/fourth-order coefficients.

    Returns ``w_i (H3 : a3 / (6 cs6) + H4 :: a4 / (24 cs8))`` — the extra
    terms of Eq. 14 relative to Eq. 11. (The paper writes the prefactors as
    ``1/(2 cs6)`` and ``1/(4 cs8)`` because it enumerates only distinct
    D2Q9 components — e.g. the multiplicity-3 ``a_xxy`` terms give
    ``3/3! = 1/2``; the full-contraction normalization used here is the
    general equivalent.)

    Only the lattice-*supported* Hermite columns participate: columns that
    vanish identically (H3_xyz on D3Q19) or alias onto lower-order
    polynomials (H4_xxxx = -H2_xx on D2Q9) are excluded, which matches the
    minimal recursive-regularization basis of Malaspinas (2015). The
    remaining columns are used in their lower-order-orthogonalized form
    (``h3_reg_cols``/``h4_reg_cols``) so that, on lattices without full
    fourth-order support (D3Q15, D3Q19), these terms still carry exactly
    zero density, momentum and second-moment content.
    """
    s3, s4 = lat.h3_supported, lat.h4_supported
    w3 = lat.triple_mult[s3] / (6.0 * lat.cs6)
    w4 = lat.quad_mult[s4] / (24.0 * lat.cs8)
    contrib = (
        np.einsum("qt,t,t...->q...", lat.h3_reg_cols[:, s3], w3, a3_cols[s3])
        + np.einsum("qt,t,t...->q...", lat.h4_reg_cols[:, s4], w4, a4_cols[s4])
    )
    return lat.w.reshape((-1,) + (1,) * (a3_cols.ndim - 1)) * contrib


def regularize_projective(lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
    """Replace ``f`` by its projectively-regularized counterpart.

    ``f_reg = f_eq + w/(2 cs4) H2 : Pi_neq`` — the pre-collision
    regularization of Latt & Chopard. Applying this twice gives the same
    result as applying it once (the operation is a projection); this
    property is exercised by the test suite.
    """
    from .moments import macroscopic  # local import to avoid cycle at module load

    rho, u = macroscopic(lat, f)
    feq = equilibrium(lat, rho, u)
    pi_neq = pi_neq_cols_from_f(lat, f, rho, u)
    return feq + hermite_delta_second_order(lat, pi_neq)


__all__.append("regularize_projective")
