"""Collision operators in distribution space and moment space.

Three collision models from the paper:

* :class:`BGKCollision` — the standard single-relaxation-time operator
  (Eq. 6), used by the ST propagation pattern.
* :class:`ProjectiveRegularizedCollision` — Eq. 9: the non-equilibrium part
  is projected onto its second-order Hermite moment before relaxation.
* :class:`RecursiveRegularizedCollision` — Eq. 14: third- and fourth-order
  non-equilibrium Hermite coefficients are reconstructed recursively from
  ``Pi_neq`` and included in the relaxation and reconstruction.

Each regularized operator also has a *moment-space* form (Eqs. 10-14)
operating on M-vector fields, used by the moment-representation solvers:
``collide_moments_projective`` returns collided moments (the reconstruction
Eq. 11 is a separate linear map), while ``collide_moments_recursive``
returns the post-collision distribution directly, since the higher-order
moments only exist transiently.

The distribution-space and moment-space forms are algebraically identical;
the test suite checks them to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lattice import LatticeDescriptor
from .equilibrium import a3_equilibrium_cols, a4_equilibrium_cols, equilibrium
from .moments import f_from_moments, macroscopic, split_moments
from .regularization import (
    hermite_delta_higher_order,
    hermite_delta_second_order,
    pi_neq_cols_from_f,
    recursive_a3_neq_cols,
    recursive_a4_neq_cols,
)

__all__ = [
    "CollisionOperator",
    "BGKCollision",
    "TRTCollision",
    "ProjectiveRegularizedCollision",
    "RecursiveRegularizedCollision",
    "collide_moments_projective",
    "collide_moments_recursive",
]


def _check_tau(tau: float) -> float:
    tau = float(tau)
    if tau <= 0.5:
        raise ValueError(
            f"relaxation time tau={tau} must exceed 1/2 (non-negative viscosity)"
        )
    return tau


@dataclass(frozen=True)
class CollisionOperator:
    """Base class: a collision maps a pre-collision distribution field to a
    post-collision one, locally at every lattice node."""

    tau: float

    def __post_init__(self) -> None:
        _check_tau(self.tau)

    @property
    def omega(self) -> float:
        """Relaxation frequency ``1/tau``."""
        return 1.0 / self.tau

    def __call__(self, lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def viscosity(self, lat: LatticeDescriptor) -> float:
        return lat.viscosity(self.tau)


@dataclass(frozen=True)
class BGKCollision(CollisionOperator):
    """Single-relaxation-time BGK collision (paper Eq. 6)."""

    def __call__(self, lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        return feq + (1.0 - self.omega) * (f - feq)


@dataclass(frozen=True)
class ProjectiveRegularizedCollision(CollisionOperator):
    """Projective regularization (paper Eq. 9).

    ``f* = f_eq + (1 - 1/tau) w/(2 cs4) H2 : Pi_neq``.

    With ``tau_bulk`` set, the trace of ``Pi_neq`` relaxes at its own rate
    (two-relaxation split in moment space): the deviatoric part keeps the
    shear viscosity ``cs2 (tau - 1/2)`` while the trace sets the bulk
    viscosity — a free knob the moment representation exposes naturally,
    commonly used to damp acoustics.
    """

    tau_bulk: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.tau_bulk is not None:
            _check_tau(self.tau_bulk)

    def __call__(self, lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        pi_neq = pi_neq_cols_from_f(lat, f, rho, u)
        if self.tau_bulk is None:
            relaxed = (1.0 - self.omega) * pi_neq
        else:
            dev, trace_cols = _split_trace(lat, pi_neq)
            relaxed = ((1.0 - self.omega) * dev
                       + (1.0 - 1.0 / self.tau_bulk) * trace_cols)
        return feq + hermite_delta_second_order(lat, relaxed)


@dataclass(frozen=True)
class RecursiveRegularizedCollision(CollisionOperator):
    """Recursive regularization (paper Eqs. 12-14).

    Beyond the projective scheme, the third- and fourth-order Hermite
    coefficients are approximated as ``a_eq + (1 - 1/tau) a_neq`` with the
    non-equilibrium parts recursively derived from ``Pi_neq`` and ``u``.
    """

    def __call__(self, lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        pi_neq = pi_neq_cols_from_f(lat, f, rho, u)
        keep = 1.0 - self.omega

        a3 = a3_equilibrium_cols(lat, rho, u) + keep * recursive_a3_neq_cols(lat, u, pi_neq)
        a4 = a4_equilibrium_cols(lat, rho, u) + keep * recursive_a4_neq_cols(lat, u, pi_neq)

        return (
            feq
            + keep * hermite_delta_second_order(lat, pi_neq)
            + hermite_delta_higher_order(lat, a3, a4)
        )


@dataclass(frozen=True)
class TRTCollision(CollisionOperator):
    """Two-relaxation-time collision (Ginzburg).

    Even and odd population halves ``f± = (f_i ± f_ibar)/2`` relax at
    independent rates; ``tau`` (the even rate) sets the shear viscosity as
    usual, while the odd rate follows from the *magic parameter*
    ``Lambda = (tau_plus - 1/2)(tau_minus - 1/2)``. ``Lambda = 3/16``
    pins the half-way bounce-back wall exactly onto the mid-link position
    for parabolic flows, removing BGK's tau-dependent slip — which is why
    TRT is the standard baseline for wall-bounded benchmarks.
    """

    magic: float = 3.0 / 16.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.magic <= 0:
            raise ValueError(f"magic parameter must be positive, got {self.magic}")

    @property
    def tau_minus(self) -> float:
        return 0.5 + self.magic / (self.tau - 0.5)

    @property
    def omega_minus(self) -> float:
        return 1.0 / self.tau_minus

    def __call__(self, lat: LatticeDescriptor, f: np.ndarray) -> np.ndarray:
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        opp = lat.opposite
        neq = f - feq
        neq_plus = 0.5 * (neq + neq[opp])
        neq_minus = 0.5 * (neq - neq[opp])
        return f - self.omega * neq_plus - self.omega_minus * neq_minus


def _split_trace(lat: LatticeDescriptor, pi_cols: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Split distinct second-moment columns into deviatoric + trace parts.

    Returns ``(dev_cols, trace_cols)`` with
    ``pi_cols = dev_cols + trace_cols`` and ``trace_cols`` the isotropic
    ``(tr Pi / D) delta_ab`` expressed in the distinct-column layout.
    """
    d = lat.d
    diag = [lat.pair_index(a, a) for a in range(d)]
    trace = sum(pi_cols[k] for k in diag) / d
    trace_cols = np.zeros_like(pi_cols)
    for k in diag:
        trace_cols[k] = trace
    return pi_cols - trace_cols, trace_cols


def collide_moments_projective(lat: LatticeDescriptor, m: np.ndarray,
                               tau: float,
                               force: np.ndarray | None = None,
                               tau_bulk: float | None = None) -> np.ndarray:
    """Moment-space projective collision (paper Eq. 10).

    Conserved moments pass through; the second-order block relaxes toward
    ``Pi_eq = rho u u``. Returns the collided M-vector field; map it to a
    distribution with :func:`repro.core.moments.f_from_moments` (Eq. 11).

    With ``force`` (a ``(D, *grid)`` body-force field), the projected Guo
    coupling is applied: equilibria are evaluated at the half-force-shifted
    velocity and the source moments are added (see
    :mod:`repro.core.forcing`).
    """
    _check_tau(tau)
    if tau_bulk is not None:
        _check_tau(tau_bulk)
    rho, j, pi_cols = split_moments(lat, m)
    if force is None:
        u = j / rho
    else:
        from .forcing import half_force_velocity

        u = half_force_velocity(lat, rho, j, force)
    pi_eq_cols = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples],
                          axis=0)
    pi_neq = pi_cols - pi_eq_cols
    if tau_bulk is None:
        relaxed = (1.0 - 1.0 / tau) * pi_neq
    else:
        dev, trace_cols = _split_trace(lat, pi_neq)
        relaxed = ((1.0 - 1.0 / tau) * dev
                   + (1.0 - 1.0 / tau_bulk) * trace_cols)
    m_star = m.copy()
    m_star[1 + lat.d:] = pi_eq_cols + relaxed
    if force is not None:
        from .forcing import apply_moment_space_force

        apply_moment_space_force(lat, m_star, u, force, tau)
    return m_star


def collide_moments_recursive(lat: LatticeDescriptor, m: np.ndarray,
                              tau: float,
                              force: np.ndarray | None = None) -> np.ndarray:
    """Moment-space recursive collision + reconstruction (Eqs. 10, 12-14).

    Returns the post-collision *distribution* field directly: the collided
    ``rho, j, Pi*`` are mapped through Eq. 11 and the collided higher-order
    coefficients add the Eq. 14 extension terms. Optional body force as in
    :func:`collide_moments_projective`; the higher-order terms use the
    half-force-shifted velocity (source content beyond the second moment
    is projected away, consistent with the regularization).
    """
    _check_tau(tau)
    keep = 1.0 - 1.0 / tau
    rho, j, pi_cols = split_moments(lat, m)
    if force is None:
        u = j / rho
    else:
        from .forcing import half_force_velocity

        u = half_force_velocity(lat, rho, j, force)

    m_star = collide_moments_projective(lat, m, tau, force=force)
    f_star = f_from_moments(lat, m_star)

    pi_eq = np.stack([rho * u[a] * u[b] for a, b in lat.pair_tuples], axis=0)
    pi_neq = pi_cols - pi_eq
    a3 = a3_equilibrium_cols(lat, rho, u) + keep * recursive_a3_neq_cols(lat, u, pi_neq)
    a4 = a4_equilibrium_cols(lat, rho, u) + keep * recursive_a4_neq_cols(lat, u, pi_neq)
    return f_star + hermite_delta_higher_order(lat, a3, a4)


def collision_from_name(name: str, tau: float) -> CollisionOperator:
    """Factory mapping the paper's scheme names to collision operators.

    ``"bgk"``/``"st"`` -> BGK, ``"projective"``/``"mr-p"`` -> projective
    regularization, ``"recursive"``/``"mr-r"`` -> recursive regularization.
    """
    key = name.lower().replace("_", "-")
    if key in ("bgk", "st", "standard"):
        return BGKCollision(tau)
    if key == "trt":
        return TRTCollision(tau)
    if key in ("projective", "mr-p", "mrp", "regularized"):
        return ProjectiveRegularizedCollision(tau)
    if key in ("recursive", "mr-r", "mrr"):
        return RecursiveRegularizedCollision(tau)
    raise ValueError(f"unknown collision scheme {name!r}")


__all__.append("collision_from_name")
