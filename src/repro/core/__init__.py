"""Core LBM numerics: moments, equilibria, collisions, streaming."""

from .collision import (
    BGKCollision,
    CollisionOperator,
    ProjectiveRegularizedCollision,
    TRTCollision,
    RecursiveRegularizedCollision,
    collide_moments_projective,
    collide_moments_recursive,
    collision_from_name,
)
from .equilibrium import (
    a3_equilibrium_cols,
    a4_equilibrium_cols,
    equilibrium,
    equilibrium_extended,
    equilibrium_moments,
)
from .moments import (
    f_from_moments,
    macroscopic,
    moments_from_f,
    pack_moments,
    pi_cols_from_tensor,
    pi_tensor_from_cols,
    second_moment_cols,
    split_moments,
    velocity_from_moments,
)
from .regularization import (
    hermite_delta_higher_order,
    hermite_delta_second_order,
    pi_neq_cols_from_f,
    recursive_a3_neq_cols,
    recursive_a4_neq_cols,
    regularize_projective,
)
from .forcing import (
    apply_moment_space_force,
    guo_source,
    half_force_velocity,
    normalize_force,
)
from .streaming import pull_gather, stream_pull, stream_push, streaming_offsets

__all__ = [
    "BGKCollision",
    "TRTCollision",
    "CollisionOperator",
    "ProjectiveRegularizedCollision",
    "RecursiveRegularizedCollision",
    "collide_moments_projective",
    "collide_moments_recursive",
    "collision_from_name",
    "equilibrium",
    "equilibrium_extended",
    "equilibrium_moments",
    "a3_equilibrium_cols",
    "a4_equilibrium_cols",
    "macroscopic",
    "moments_from_f",
    "f_from_moments",
    "split_moments",
    "pack_moments",
    "velocity_from_moments",
    "pi_cols_from_tensor",
    "pi_tensor_from_cols",
    "second_moment_cols",
    "pi_neq_cols_from_f",
    "recursive_a3_neq_cols",
    "recursive_a4_neq_cols",
    "regularize_projective",
    "hermite_delta_second_order",
    "hermite_delta_higher_order",
    "stream_push",
    "stream_pull",
    "pull_gather",
    "streaming_offsets",
    "normalize_force",
    "half_force_velocity",
    "guo_source",
    "apply_moment_space_force",
]
