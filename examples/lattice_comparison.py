"""Survey of the lattice zoo: where the moment representation pays most.

Prints, for every built-in lattice, the distribution vs moment state
sizes, the B/F of both propagation patterns, the roofline speedup ceiling
on the V100, and the supported recursive-regularization basis — ending
with the paper's future-work cases (D3Q27 and the multi-speed D3Q39),
where the MR advantage is largest.

Run:  python examples/lattice_comparison.py
"""

from repro.gpu import V100
from repro.lattice import available_lattices, get_lattice
from repro.perf import bytes_per_flup, memory_reduction, roofline_mflups


def main() -> None:
    header = (f"{'lattice':8s} {'Q':>3s} {'M':>3s} {'cs2':>5s} "
              f"{'B/F ST':>7s} {'B/F MR':>7s} {'saving':>7s} "
              f"{'roofline x':>10s} {'RR basis (a3+a4)':>16s}")
    print(header)
    print("-" * len(header))
    for name in available_lattices():
        lat = get_lattice(name)
        st = bytes_per_flup(lat, "ST")
        mr = bytes_per_flup(lat, "MR")
        ceiling = roofline_mflups(V100, lat, "MR") / roofline_mflups(V100, lat, "ST")
        basis = f"{len(lat.h3_supported)}+{len(lat.h4_supported)}"
        print(f"{lat.name:8s} {lat.q:3d} {lat.n_moments:3d} "
              f"{lat.cs2:5.3f} {st:7d} {mr:7d} "
              f"{memory_reduction(lat):6.1%} {ceiling:9.2f}x {basis:>16s}")

    print(
        "\nThe moment space M = 1 + D + D(D+1)/2 depends only on the\n"
        "dimension, so the MR saving grows with Q: 1/3 for D2Q9, 47% for\n"
        "D3Q19 (the paper's headline numbers), 63% for single-speed D3Q27\n"
        "and 74% for the multi-speed D3Q39 — precisely the lattices whose\n"
        '"increased runtime is often cited as a reason for not using\n'
        'them" (Section 5).'
    )


if __name__ == "__main__":
    main()
