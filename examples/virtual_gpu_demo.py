"""Drive the virtual-GPU kernels directly and inspect traffic + occupancy.

Runs the paper's Algorithm 1 (ST) and Algorithm 2 (MR-P) kernels on the
channel proxy app, verifies they compute identical physics to the
reference NumPy solvers, and prints the profiler-style measurements that
feed the performance model: DRAM bytes per node, launch geometry, shared-
memory footprint, occupancy, and predicted MFLUPS on the V100 and MI100.

Run:  python examples/virtual_gpu_demo.py
"""

import numpy as np

from repro.gpu import KernelProblem, MemoryTracker, MRKernel, STKernel, V100, MI100, occupancy
from repro.lattice import get_lattice
from repro.perf import PerformanceModel
from repro.solver import channel_problem
from repro.solver.presets import channel_inlet_profile


def main() -> None:
    lat = get_lattice("D2Q9")
    shape = (96, 64)   # window extent must be divisible by the tile height
    tau = 0.9
    u_max = 0.04
    steps = 10

    u_in = channel_inlet_profile(lat, shape, u_max)
    u0 = np.zeros((2, *shape))
    u0[:] = u_in[:, None, :]
    problem = KernelProblem(lat, shape, tau, mode="channel", u_inlet=u_in,
                            outlet_tangential="zero")

    # Reference solver (same configuration, NEBB boundaries).
    ref = channel_problem("MR-P", lat, shape, tau=tau, u_max=u_max,
                          bc_method="nebb", outlet_tangential="zero")

    tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
    kernel = MRKernel(problem, V100, scheme="MR-P", tile_cross=(16,), w_t=8,
                      tracker=tracker, u0=u0)
    for _ in range(steps):
        ref.step()
        stats = kernel.step()

    diff = np.abs(kernel.moment_field() - ref.m).max()
    print(f"MR-P kernel vs reference after {steps} steps: max diff = {diff:.2e}")
    assert diff < 1e-12

    cfg = stats.config
    occ = occupancy(V100, cfg)
    print(f"\nMR-P launch: {cfg.blocks} column blocks x "
          f"{cfg.threads_per_block} threads, "
          f"{cfg.shared_bytes_per_block / 1024:.1f} KB shared/block")
    print(f"occupancy on V100: {occ.blocks_per_sm} blocks/SM "
          f"(limited by {occ.limited_by}; 2-block rule met: "
          f"{occ.meets_two_block_rule})")
    print(f"DRAM traffic: {stats.traffic.sector_bytes_total / stats.n_nodes:.1f} "
          f"B/node (ideal 2M*8 = {2 * lat.n_moments * 8})")

    # ST kernel for comparison.
    tracker2 = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
    st = STKernel(problem, V100, tracker=tracker2, u0=u0)
    st.step()
    st_stats = st.step()
    print(f"ST DRAM traffic: "
          f"{st_stats.traffic.sector_bytes_total / st_stats.n_nodes:.1f} "
          f"B/node (ideal 2Q*8 = {2 * lat.q * 8})")

    # Feed the measured traffic into the calibrated performance model.
    print("\nPredicted throughput at a saturated 4096x4096 channel:")
    for dev in (V100, MI100):
        pm = PerformanceModel(dev)
        for scheme, traffic in (("ST", st_stats), ("MR-P", stats)):
            pred = pm.predict_shape(
                lat, scheme, (4096, 4096),
                tile_cross=(16,) if scheme != "ST" else None, w_t=8,
                bytes_per_node=traffic.traffic.sector_bytes_total / traffic.n_nodes,
            )
            print(f"  {dev.name:6s} {scheme:5s} {pred.mflups:8,.0f} MFLUPS "
                  f"({pred.bound}-bound, "
                  f"{pred.effective_bandwidth_gbs:.0f} GB/s sustained)")


if __name__ == "__main__":
    main()
