"""Flow past a circular cylinder in a 2D channel.

Exercises the obstacle-mask geometry with link-wise bounce-back on a
curved (staircased) boundary, driven by the regularized inlet/outlet
boundaries — a more demanding workload than the plain channel. At the
chosen Reynolds number (~20) the wake is steady; the example reports the
recirculation length behind the cylinder and verifies mass conservation
through the domain.

Run:  python examples/cylinder_flow.py
"""

import numpy as np

from repro.analysis import drag_lift_coefficients
from repro.boundary import HalfwayBounceBack, Plane, PressureOutlet, VelocityInlet
from repro.geometry import cylinder_in_channel
from repro.lattice import get_lattice
from repro.solver import ForceMonitor, make_solver
from repro.validation import poiseuille_profile


def main() -> None:
    nx, ny = 240, 62
    radius = 6.0
    cx, cy = nx / 4.0, ny / 2.0 + 0.5   # slight offset breaks symmetry faster
    u_max = 0.06
    tau = 0.62                          # Re = 2 r u_mean / nu ~ 20

    lat = get_lattice("D2Q9")
    domain = cylinder_in_channel(nx, ny, cx, cy, radius)

    profile = poiseuille_profile(ny, u_max)
    u_in = np.zeros((2, ny))
    u_in[0] = profile
    boundaries = [
        HalfwayBounceBack(),
        VelocityInlet(Plane(0, 0), u_in, method="regularized-fd"),
        PressureOutlet(Plane(0, -1), rho_out=1.0, method="regularized-fd"),
    ]
    u0 = np.zeros((2, nx, ny))
    u0[:] = u_in[:, None, :]
    u0[:, domain.solid_mask] = 0.0
    solver = make_solver("MR-P", lat, domain, tau, boundaries=boundaries, u0=u0)

    print(f"cylinder (r={radius}) in {nx}x{ny} channel, "
          f"{domain.n_fluid:,} fluid nodes, Re ~ 20")
    # Momentum-exchange force on the cylinder only (not the channel walls).
    body = np.array(domain.solid_mask)
    body[:, 0] = False
    body[:, -1] = False
    drag = ForceMonitor(solver, body_mask=body, every=200)

    mass0 = solver.diagnostics.mass()
    solver.run(6000, callback=drag)
    mass1 = solver.diagnostics.mass()
    print(f"mass drift over 6000 steps: {abs(mass1 - mass0) / mass0:.2e}")

    u_mean = 2.0 / 3.0 * u_max
    cd, cl = drag_lift_coefficients(drag.values[-1], 1.0, u_mean, 2 * radius)
    print(f"momentum-exchange force: Cd = {cd:.2f}, Cl = {cl:+.3f} "
          f"(confined cylinder, blockage {2 * radius / (ny - 2):.0%})")
    assert cd > 1.0, "drag must point downstream"
    assert abs(cl) < 0.5 * cd, "near-symmetric steady wake"

    # Recirculation length: extent of u_x < 0 along the wake centreline.
    ux = solver.velocity()[0]
    centreline = ux[:, int(cy)]
    behind = np.arange(nx) > cx + radius
    wake = behind & (centreline < 0)
    if wake.any():
        length = (wake.nonzero()[0].max() - (cx + radius)) / (2 * radius)
        print(f"recirculation length: {length:.2f} diameters")
        assert 0.2 < length < 3.0, "steady twin-vortex wake expected at Re~20"
    else:
        raise AssertionError("expected a recirculating wake behind the cylinder")

    assert solver.diagnostics.max_speed() < 0.3, "flow must remain subsonic"
    print("steady wake confirmed")


if __name__ == "__main__":
    main()
