"""Taylor-Green vortex decay: physics agreement of ST, MR-P and MR-R.

The 2D Taylor-Green vortex has a closed-form solution whose kinetic energy
decays at rate ``2 nu (kx^2 + ky^2)``. This example runs all three of the
paper's schemes on the same initial condition and reports (a) the velocity-
field error against the analytic solution and (b) the measured viscous
decay rate — demonstrating that the moment representation is a *lossless*
reformulation, not an approximation.

Run:  python examples/taylor_green.py
"""

import numpy as np

from repro.solver import periodic_problem
from repro.validation import (
    kinetic_energy,
    relative_l2_error,
    taylor_green_decay_rate,
    taylor_green_fields,
)


def main() -> None:
    shape = (96, 96)
    tau = 0.8
    nu = (tau - 0.5) / 3.0
    u0 = 0.03
    steps = 400

    rho_init, u_init = taylor_green_fields(shape, 0.0, nu, u0)
    rho_ref, u_ref = taylor_green_fields(shape, float(steps), nu, u0)
    expected_rate = taylor_green_decay_rate(shape, nu)

    print(f"Taylor-Green on {shape}, nu = {nu:.4f}, {steps} steps")
    print(f"analytic kinetic-energy decay rate: {expected_rate:.3e}\n")

    for scheme in ("ST", "MR-P", "MR-R"):
        solver = periodic_problem(scheme, "D2Q9", shape, tau,
                                  rho0=rho_init, u0=u_init)
        e0 = kinetic_energy(*solver.macroscopic())
        solver.run(steps)
        rho, u = solver.macroscopic()
        e1 = kinetic_energy(rho, u)
        rate = -np.log(e1 / e0) / steps
        err = relative_l2_error(u, u_ref)
        print(f"  {scheme:5s}  velocity error {err:.3e}   "
              f"decay rate {rate:.3e} ({rate / expected_rate:.4f}x analytic)")
        assert err < 5e-3
        assert abs(rate / expected_rate - 1) < 0.02


if __name__ == "__main__":
    main()
