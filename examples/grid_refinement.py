"""Two-level grid refinement in moment space.

Grid refinement is the research line behind three of the paper's
self-references ([17]-[19]); this example shows the moment
representation's natural fit for it: transferring the state between grid
levels needs only a copy of ``(rho, u)`` and a scalar rescale of
``Pi_neq`` — no population machinery at all.

A Taylor-Green vortex runs on a coarse 48x48 grid with a band
x in [16, 32] refined 2x in space and time (node-aligned ghost columns,
cubic interface interpolation after Lagrava et al.); the refined solution
must track the analytic decay exactly as well as the unrefined one, and a
uniform flow must cross the refinement interfaces bit-exactly.

Run:  python examples/grid_refinement.py   (~1 min)
"""

import numpy as np

from repro.refinement import RefinedSimulation2D, RefinedTaylorGreen2D, fine_tau
from repro.solver import periodic_problem
from repro.validation import relative_l2_error, taylor_green_fields


def main() -> None:
    # 1. Interface exactness on a uniform flow.
    shape, band = (32, 16), (10, 20)
    u0 = np.zeros((2, *shape))
    u0[0] = 0.04
    r = RefinedSimulation2D(shape, band, tau=0.8, u0=u0)
    r.run(20)
    dev = np.abs(r.coarse_macroscopic()[1][0] - 0.04).max()
    print(f"uniform flow through the interface: max deviation {dev:.1e}")
    assert dev < 1e-13

    # 2. Taylor-Green: refined vs unrefined vs analytic.
    shape, band, tau, amp = (48, 48), (16, 32), 0.8, 0.03
    nu = (tau - 0.5) / 3.0
    print(f"\nTaylor-Green {shape}, band {band} refined 2x "
          f"(tau_c={tau}, tau_f={fine_tau(tau)}):\n")
    tg = RefinedTaylorGreen2D(shape=shape, band=band, tau=tau, u0=amp)
    rho_i, u_i = taylor_green_fields(shape, 0.0, nu, amp)
    plain = periodic_problem("MR-P", "D2Q9", shape, tau, rho0=rho_i, u0=u_i)

    print(f"{'step':>6s} {'refined err':>12s} {'unrefined err':>14s}")
    for _ in range(4):
        tg.run(100)
        plain.run(100)
        _, u_ana = taylor_green_fields(shape, float(tg.time), nu, amp)
        err_ref = relative_l2_error(tg.coarse_macroscopic()[1], u_ana)
        err_pln = relative_l2_error(plain.velocity(), u_ana)
        print(f"{tg.time:6d} {err_ref:12.3e} {err_pln:14.3e}")
        assert err_ref < 1.5 * err_pln + 5e-4

    print("\nno interface drift: the moment-space coupling (copy rho,u; "
          "rescale Pi_neq)\nwith cubic ghost interpolation preserves the "
          "unrefined accuracy.")


if __name__ == "__main__":
    main()
