"""Why regularize? Measuring the stability margin of each scheme.

The paper's Section 2 motivates regularization with numerical stability.
This example quantifies it: for relaxation times approaching the inviscid
limit tau -> 1/2, it bisects the largest initial vortex amplitude each
collision scheme can integrate on a deliberately under-resolved
Taylor-Green vortex. Recursive regularization (MR-R) consistently shows
the widest margin — the property that justifies its extra arithmetic
(whose performance cost the paper then quantifies on GPUs).

Run:  python examples/stability_margins.py     (~30 s)
"""

from repro.analysis import max_stable_amplitude


def main() -> None:
    taus = (0.51, 0.55, 0.6)
    schemes = ("ST", "MR-P", "MR-R")

    print("max stable Taylor-Green amplitude (24x24 grid, 400 steps)\n")
    print(f"{'tau':>6s}" + "".join(f"{s:>8s}" for s in schemes))
    margins = {}
    for tau in taus:
        row = f"{tau:6.2f}"
        for scheme in schemes:
            m = max_stable_amplitude(scheme, tau, iters=6)
            margins[(scheme, tau)] = m
            row += f"{m:8.3f}"
        print(row)

    for tau in taus:
        assert margins[("MR-R", tau)] >= margins[("ST", tau)] - 0.02

    print(
        "\nMR-R survives the largest amplitudes at every tau — the "
        "stability\nheadroom that regularization buys. Note MR-P can trail "
        "plain BGK at\nvery low tau: projecting the ghost modes without the "
        "higher-order\nreconstruction is not uniformly stabilizing, which "
        "is exactly why the\nrecursive variant exists (Malaspinas 2015)."
    )


if __name__ == "__main__":
    main()
