"""Lid-driven cavity with a moving-wall bounce-back boundary.

A classic LBM benchmark beyond the paper's channel proxy: a closed square
cavity whose top wall slides at constant speed. Demonstrates the
moving-wall half-way bounce-back boundary and compares the centreline
velocity profiles of ST and MR-P (they agree closely: the moment
representation changes the collision model, not the resolved physics).

Run:  python examples/lid_driven_cavity.py
"""

import numpy as np

from repro.boundary import HalfwayBounceBack
from repro.geometry import lid_driven_cavity
from repro.lattice import get_lattice
from repro.solver import make_solver


def build_cavity(scheme: str, n: int, u_lid: float, tau: float):
    lat = get_lattice("D2Q9")
    domain = lid_driven_cavity(n)
    # Moving wall: only the top (y = n-1) plane carries the lid velocity.
    wall_u = np.zeros((2, n, n))
    wall_u[0, :, -1] = u_lid
    bb = HalfwayBounceBack(wall_velocity=wall_u)
    return make_solver(scheme, lat, domain, tau, boundaries=[bb])


def main() -> None:
    n = 65
    u_lid = 0.05
    tau = 0.65                     # Re = u L / nu = 0.05*63/0.05 = 63
    steps = 8000

    profiles = {}
    for scheme in ("ST", "MR-P"):
        solver = build_cavity(scheme, n, u_lid, tau)
        solver.run(steps)
        u = solver.velocity()
        profiles[scheme] = u[0][n // 2, :]        # u_x along vertical centreline
        vort_max = np.abs(np.gradient(u[1], axis=0)
                          - np.gradient(u[0], axis=1)).max()
        print(f"{scheme:5s}: max |u| = {solver.diagnostics.max_speed():.4f}, "
              f"max |vorticity| = {vort_max:.4f}")

    diff = np.abs(profiles["ST"] - profiles["MR-P"]).max() / u_lid
    print(f"\nST vs MR-P centreline difference: {diff:.2e} (relative to lid speed)")
    assert diff < 0.05, "schemes should produce closely matching cavity flow"

    # Primary-vortex sanity: u_x changes sign along the centreline.
    prof = profiles["MR-P"]
    assert prof[-2] > 0.5 * u_lid * 0.5, "near-lid velocity should follow the lid"
    assert prof[1:-1].min() < -0.01, "return flow below the vortex core"
    print("primary vortex structure confirmed")


if __name__ == "__main__":
    main()
