"""3D rectangular-duct flow on D3Q19 with recursive regularization (MR-R).

The 3D analogue of the paper's proxy app: a duct with bounce-back walls on
the y/z faces, a regularized finite-difference velocity inlet carrying the
exact laminar duct profile, and a pressure outlet. Compares the steady
mid-duct cross-section against the analytic Fourier-series solution and
writes a VTK snapshot for visualization.

Run:  python examples/channel_3d.py
"""

import numpy as np

from repro.io import write_vtk
from repro.solver import channel_problem
from repro.validation import duct_profile, relative_l2_error


def main() -> None:
    shape = (40, 18, 18)
    u_max = 0.04
    solver = channel_problem("MR-R", "D3Q19", shape, tau=0.9, u_max=u_max)
    print(f"MR-R / D3Q19 duct {shape}, {solver.domain.n_fluid:,} fluid nodes")

    steps = solver.run_to_steady_state(tol=1e-8, check_interval=200)
    print(f"steady state after {steps} steps")

    ux = solver.velocity()[0]
    mid = ux[shape[0] // 2]                       # (ny, nz) cross-section
    analytic = duct_profile(shape[1], shape[2], u_max)
    interior = np.s_[1:-1, 1:-1]
    err = relative_l2_error(mid[interior], analytic[interior])
    print(f"relative L2 error vs duct solution: {err:.2e}")
    assert err < 2e-2, "cross-section should match the duct profile"

    rho, u = solver.macroscopic()
    out = write_vtk("channel_3d.vtk", rho, u, title="MR-R D3Q19 duct flow")
    print(f"wrote {out} (load in ParaView: density + velocity fields)")


if __name__ == "__main__":
    main()
