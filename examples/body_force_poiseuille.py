"""Body-force-driven Poiseuille flow — Guo forcing in moment space.

Instead of the paper's inlet/outlet boundaries, this example drives the
channel with a uniform body force (streamwise-periodic), using the
classical Guo coupling for ST and its moment-space projection for the MR
schemes. The steady profile must match the same parabola either way; the
regularized schemes are essentially exact for this flow (the BGK/ST curve
carries the well-known tau-dependent bounce-back slip).

Run:  python examples/body_force_poiseuille.py
"""

import numpy as np

from repro.solver import forced_channel_problem
from repro.validation import poiseuille_profile


def main() -> None:
    shape = (16, 34)
    u_max = 0.04
    tau = 0.9
    analytic = poiseuille_profile(shape[1], u_max)

    print(f"body-force-driven channel {shape}, tau = {tau}, "
          f"target peak velocity {u_max}")
    for scheme in ("ST", "MR-P", "MR-R"):
        solver = forced_channel_problem(scheme, "D2Q9", shape, tau=tau,
                                        u_max=u_max)
        solver.run_to_steady_state(tol=1e-10, check_interval=200)
        ux = solver.velocity()[0]
        err = np.abs(ux[8, 1:-1] - analytic[1:-1]).max() / u_max
        print(f"  {scheme:5s} peak u = {ux.max():.5f}, "
              f"max relative profile error = {err:.2e}")
        assert err < 5e-3

    # The momentum budget is exact: total momentum grows by N*F per step.
    solver = forced_channel_problem("MR-P", "D2Q9", shape, tau=tau,
                                    u_max=u_max)
    fx = solver.force[0].max()
    p0 = solver.diagnostics.momentum()[0]
    solver.run(100)
    p1 = solver.diagnostics.momentum()[0]
    drag_free_gain = solver.domain.n_fluid * fx * 100
    print(f"\nmomentum gained over 100 startup steps: {p1 - p0:.4e} "
          f"(force input {drag_free_gain:.4e}; the difference is wall drag)")


if __name__ == "__main__":
    main()
