"""Distributed channel flow: both parallel backends, one halo protocol.

Splits the paper's channel proxy app into streamwise slabs and runs it
on BOTH parallel backends (see docs/PARALLEL.md):

* ``emulated`` — every rank stepped sequentially in one process;
* ``process`` — every rank a real OS process, slabs and halo faces in
  ``multiprocessing.shared_memory``, barrier-synchronized steps.

Verifies that both reproduce the single-domain solver to machine
precision and that they account identical exchange volumes, prints the
merged per-rank telemetry of the process run, and compares the
communication volume of the standard representation (crossing or full
populations) against the moment representation (M moments per face
node, reconstructed on the receiving rank) from actual runs.

Run:  python examples/distributed_channel.py
"""

import numpy as np

from repro.parallel import (
    RunSpec,
    distributed_channel_problem,
    distributed_periodic_problem,
    run_process,
)
from repro.solver import channel_problem


def main() -> None:
    shape = (64, 22)
    n_ranks = 4
    steps = 400

    ref = channel_problem("MR-P", "D2Q9", shape, tau=0.9, u_max=0.04,
                          bc_method="nebb", outlet_tangential="zero")
    ref.run(steps)
    _, ur = ref.macroscopic()
    print(f"channel {shape} on {n_ranks} ranks, {steps} steps")

    # Backend 1: sequential in-process emulation.
    emu = distributed_channel_problem("MR-P", "D2Q9", shape, n_ranks,
                                      tau=0.9, u_max=0.04)
    emu.run(steps)
    _, ue = emu.gather_macroscopic()
    print(f"  emulated backend vs single-domain: "
          f"max diff {np.abs(ue - ur).max():.2e}")

    # Backend 2: real worker processes over shared memory.
    spec = RunSpec("channel", "MR-P", "D2Q9", shape, n_ranks, tau=0.9,
                   options={"u_max": 0.04})
    result = run_process(spec, steps)
    print(f"  process  backend vs single-domain: "
          f"max diff {np.abs(result.u - ur).max():.2e}")
    assert np.abs(ue - ur).max() < 1e-12
    assert np.abs(result.u - ur).max() < 1e-12
    assert result.comm.bytes_sent == emu.comm.bytes_sent

    print("\nmerged telemetry of the process run:")
    for entry in result.report["mlups_per_rank"]:
        print(f"  rank {entry['rank']}: {entry['n_fluid']:,} fluid nodes, "
              f"{entry['mlups']:.2f} MLUPS")
    print(f"  cohort: {result.report['mlups']:.2f} MLUPS; "
          f"exchange {result.comm.bytes_per_step():,.0f} B/step "
          f"({result.comm.messages} messages)")
    phases = result.report["phases"]
    for path in ("step/pack", "step/barrier", "step/unpack", "step/compute"):
        print(f"  {path:14s} {phases[path]['total_s']:.3f} s across ranks")

    # Communication-volume comparison from real D3Q19 runs: the MR wire
    # payload is M = 10 moments per face node vs 19 (naive full ST) or
    # 5 (crossing-only ST) populations.
    shape3, steps3 = (24, 10, 10), 10
    print(f"\nD3Q19 halo volume, {shape3} on 2 ranks, {steps3} steps:")
    for name, scheme, kwargs in (
        ("MR (moments, M=10)", "MR-P", {}),
        ("ST crossing (q=5)", "ST", {}),
        ("ST full (Q=19)", "ST", {"st_exchange": "full"}),
    ):
        d = distributed_periodic_problem(scheme, "D3Q19", shape3, 2, 0.8,
                                         **kwargs)
        d.run(steps3)
        print(f"  {name:22s} {d.communication_values_per_face():6d} "
              f"doubles/face  {d.comm.bytes_per_step():10,.0f} B/step")
    print("MR halves the naive-full payload; crossing-only ST is leaner\n"
          "still, at the cost of component-wise packing on every face.")


if __name__ == "__main__":
    main()
