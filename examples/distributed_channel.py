"""Distributed channel flow: slab decomposition with halo exchange.

Splits the paper's channel proxy app across 4 emulated ranks (slabs along
the streamwise axis), runs it, and verifies the result is identical to the
single-domain solver. Also prints the halo-exchange payload comparison:
an MR rank ships M moments per face node and reconstructs the crossing
populations locally, vs the crossing populations (or naively all Q) for
the standard representation.

Run:  python examples/distributed_channel.py
"""

import numpy as np

from repro.parallel import (
    distributed_channel_problem,
    distributed_periodic_problem,
)
from repro.solver import channel_problem


def main() -> None:
    shape = (64, 22)
    n_ranks = 4
    steps = 400

    dist = distributed_channel_problem("MR-P", "D2Q9", shape, n_ranks,
                                       tau=0.9, u_max=0.04)
    ref = channel_problem("MR-P", "D2Q9", shape, tau=0.9, u_max=0.04,
                          bc_method="nebb", outlet_tangential="zero")
    print(f"channel {shape} on {n_ranks} ranks, {steps} steps")
    dist.run(steps)
    ref.run(steps)

    rg, ug = dist.gather_macroscopic()
    rr, ur = ref.macroscopic()
    diff = np.abs(ug - ur).max()
    print(f"distributed vs single-domain max velocity diff: {diff:.2e}")
    assert diff < 1e-12

    print(f"halo exchange: {dist.comm.bytes_per_step():,.0f} B/step "
          f"({dist.comm.messages} messages total)")

    # Payload comparison per cut face (both directions), D3Q19 example.
    shape3 = (24, 10, 10)
    variants = {
        "MR (moments, M=10)": distributed_periodic_problem(
            "MR-P", "D3Q19", shape3, 2, 0.8),
        "ST crossing (q=5)": distributed_periodic_problem(
            "ST", "D3Q19", shape3, 2, 0.8),
        "ST full (Q=19)": distributed_periodic_problem(
            "ST", "D3Q19", shape3, 2, 0.8, st_exchange="full"),
    }
    print("\nD3Q19 halo payload per cut face (doubles, both directions):")
    for name, solver in variants.items():
        print(f"  {name:22s} {solver.communication_values_per_face():6d}")
    print("MR halves the naive-full payload; crossing-only ST is leaner\n"
          "still, at the cost of component-wise packing on every face.")


if __name__ == "__main__":
    main()
