"""Non-Newtonian channel flow: power-law rheology from moment data.

Generalized Newtonian fluids need the local shear rate at every node and
step to set the apparent viscosity. With the moment representation that
information is already in the stored state — ``S = -Pi_neq/(2 rho cs2
tau)`` — so the adaptive relaxation costs no gradients and no extra
memory traffic. This example runs force-driven channel flows for a
shear-thinning (n = 0.7), Newtonian (n = 1) and shear-thickening
(n = 1.5) fluid and compares the steady profiles against the analytic
Ostwald-de Waele solutions.

Run:  python examples/power_law_rheology.py   (~2 min)
"""

import numpy as np

from repro.boundary import HalfwayBounceBack
from repro.geometry import channel_2d
from repro.lattice import get_lattice
from repro.solver.non_newtonian import (
    PowerLawMRPSolver,
    power_law_force,
    power_law_poiseuille_profile,
)


def main() -> None:
    lat = get_lattice("D2Q9")
    shape = (8, 26)
    cases = [
        ("shear-thinning", 0.7, 0.05, 0.02),
        ("Newtonian     ", 1.0, 0.05, 0.02),
        ("shear-thickening", 1.5, 0.36, 0.05),
    ]
    print(f"power-law channel {shape}: u(y) = u_max (1 - |2y/H|^((n+1)/n))\n")
    print(f"{'fluid':>18s} {'n':>5s} {'steps':>7s} {'max rel err':>12s} "
          f"{'nu wall/centre':>15s}")
    for label, n, K, u_max in cases:
        force = power_law_force(u_max, shape[1] - 2, K, n)
        solver = PowerLawMRPSolver(
            lat, channel_2d(*shape, with_io=False), tau=0.6,
            boundaries=[HalfwayBounceBack()],
            force=np.array([force, 0.0]),
            consistency=K, exponent=n,
        )
        steps = solver.run_to_steady_state(tol=1e-11, check_interval=500,
                                           max_steps=120_000)
        ux = solver.velocity()[0][4]
        ana = power_law_poiseuille_profile(shape[1], u_max, n)
        err = np.abs(ux[1:-1] - ana[1:-1]).max() / u_max
        nu = solver.apparent_viscosity()[4]
        ratio = nu[1] / nu[shape[1] // 2]
        print(f"{label:>18s} {n:5.1f} {steps:7d} {err:12.2e} {ratio:15.2f}")
        assert err < 6e-3

    print(
        "\nviscosity ratios < 1 mean the fluid is thinner at the wall\n"
        "(shear-thinning) and > 1 thicker (shear-thickening) — the "
        "rheology\nemerges from the moment state alone."
    )


if __name__ == "__main__":
    main()
