"""Porous-media flow on the virtual GPU: geometry traffic + Darcy's law.

Runs the masked-mode ST kernel (complex geometries after Herschlag et al.
2021, the paper's reference [4]) on a random porous medium with a body
force, measures (a) the direct-addressing traffic penalty per fluid node
and (b) the medium's Darcy permeability from the force-velocity
linearity — all while the kernel remains bit-equivalent to the reference
solver.

Run:  python examples/porous_media.py   (~2 min)
"""

import numpy as np

from repro.gpu import KernelProblem, MemoryTracker, STKernel, V100
from repro.lattice import get_lattice
from repro.perf import PerformanceModel


def build(shape=(48, 48), fraction=0.18, seed=3):
    lat = get_lattice("D2Q9")
    rng = np.random.default_rng(seed)
    solid = rng.random(shape) < fraction
    solid[:, shape[1] // 2] = False          # guarantee a percolating path
    return lat, solid


def main() -> None:
    lat, solid = build()
    shape = solid.shape
    tau = 0.8
    nu = lat.viscosity(tau)
    n_fluid = int((~solid).sum())
    print(f"porous medium {shape}, fluid fraction "
          f"{n_fluid / solid.size:.2f}\n")

    # Traffic per fluid node (geometry fetch + direct-addressing waste).
    prob = KernelProblem(lat, shape, tau, mode="masked", solid_mask=solid)
    tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
    kernel = STKernel(prob, V100, tracker=tracker)
    kernel.step()
    stats = kernel.step()
    per_fluid = stats.traffic.sector_bytes_total / n_fluid
    pred = PerformanceModel(V100).predict_shape(
        lat, "ST", (4096, 4096), bytes_per_node=per_fluid)
    print(f"DRAM traffic: {per_fluid:.1f} B per fluid update "
          f"(open domain: ~145) -> {pred.mflups:,.0f} fluid-MFLUPS on V100")

    # Darcy permeability from two forcings.
    def mean_u(fx, steps=5000):
        k = STKernel(prob, V100, force=np.array([fx, 0.0]))
        for _ in range(steps):
            k.step()
        _, u = k.macroscopic_fields()
        return u[0][~solid].mean()

    f1, f2 = 1e-6, 2e-6
    u1, u2 = mean_u(f1), mean_u(f2)
    k_darcy = u1 * nu / f1
    print(f"\nDarcy check: <u>(2F)/<u>(F) = {u2 / u1:.4f} (expect 2.0000)")
    print(f"permeability k = {k_darcy:.3f} lattice units^2 "
          f"(open channel of this height: {(shape[1] - 2) ** 2 / 12:.0f})")
    assert abs(u2 / u1 - 2.0) < 0.02
    assert 0 < k_darcy < (shape[1] - 2) ** 2 / 12


if __name__ == "__main__":
    main()
