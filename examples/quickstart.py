"""Quickstart: 2D channel flow with the moment representation.

Runs the paper's 2D proxy application — rectangular channel, bounce-back
walls, finite-difference (regularized) velocity inlet and pressure outlet —
with the MR-P scheme, then checks the steady profile against the plane-
Poiseuille analytic solution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.solver import channel_problem
from repro.validation import linf_error, poiseuille_profile


def main() -> None:
    # Channel of 120 x 42 nodes (including the two wall rows), peak inlet
    # velocity 0.04 (lattice units), relaxation time tau = 0.9.
    shape = (120, 42)
    u_max = 0.04
    solver = channel_problem("MR-P", "D2Q9", shape, tau=0.9, u_max=u_max)

    print(f"MR-P / D2Q9 channel {shape}, {solver.domain.n_fluid:,} fluid nodes")
    steps = solver.run_to_steady_state(tol=1e-9, check_interval=200)
    print(f"steady state after {steps} steps")

    # Mid-channel velocity profile vs analytic Poiseuille parabola.
    ux = solver.velocity()[0]
    mid = ux[shape[0] // 2]
    analytic = poiseuille_profile(shape[1], u_max)
    err = linf_error(mid[1:-1], analytic[1:-1]) / u_max
    print(f"max relative error vs Poiseuille: {err:.2e}")
    assert err < 5e-3, "profile should match the analytic solution"

    # The moment representation stores 6 values per node instead of 2x9.
    print(f"state doubles per node: MR = {solver.state_values_per_node} "
          f"(ST would use {2 * solver.lat.q})")


if __name__ == "__main__":
    main()
