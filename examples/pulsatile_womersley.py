"""Pulsatile channel flow: the Womersley benchmark.

Drives a streamwise-periodic channel with an oscillating body force
(equivalent to a pulsatile pressure gradient) using
:meth:`Solver.set_force`, and compares the simulated velocity profiles at
several phases of the cycle against the analytic oscillatory-channel
solution. At Womersley number alpha ~ 2.8 the profile is no longer a
quasi-steady parabola: the core lags the force and near-wall annular
overshoot appears — the regime that matters for the hemodynamics
applications (HARVEY) behind the paper's moment representation.

Run:  python examples/pulsatile_womersley.py   (~1 min)
"""

import numpy as np

from repro.solver import forced_channel_problem
from repro.validation import womersley_number, womersley_profile


def main() -> None:
    shape = (10, 30)
    tau = 0.8
    nu = (tau - 0.5) / 3.0
    period = 1500
    omega = 2 * np.pi / period
    amplitude = 1e-5
    alpha = womersley_number(shape[1], omega, nu)
    print(f"channel {shape}, period {period} steps, "
          f"Womersley number alpha = {alpha:.2f}\n")

    solver = forced_channel_problem("MR-P", "D2Q9", shape, tau=tau,
                                    u_max=0.01)
    # Three warm-up cycles, then sample the fourth.
    sample_at = {0: None, period // 4: None, period // 2: None,
                 3 * period // 4: None}
    for t in range(4 * period):
        solver.set_force([amplitude * np.cos(omega * (solver.time + 0.5)),
                          0.0])
        solver.run(1)
        phase = t - 3 * period
        if phase in sample_at:
            sample_at[phase] = (solver.time,
                                solver.velocity()[0][shape[0] // 2].copy())

    peak = max(
        np.abs(womersley_profile(shape[1], t, amplitude, omega, nu)).max()
        for t in range(0, period, period // 16)
    )
    print(f"{'phase':>8s} {'sim centre':>12s} {'analytic':>12s} {'max err':>9s}")
    worst = 0.0
    for phase, (t_abs, profile) in sorted(sample_at.items()):
        ana = womersley_profile(shape[1], t_abs, amplitude, omega, nu)
        err = np.abs(profile[1:-1] - ana[1:-1]).max() / peak
        worst = max(worst, err)
        mid = shape[1] // 2
        print(f"{phase / period:8.2f} {profile[mid]:12.3e} "
              f"{ana[mid]:12.3e} {err:8.2%}")
    assert worst < 0.02
    print(f"\nall phases within {worst:.2%} of the analytic solution")


if __name__ == "__main__":
    main()
