"""Property-based tests (hypothesis) for the core moment/collision algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    BGKCollision,
    ProjectiveRegularizedCollision,
    RecursiveRegularizedCollision,
    collide_moments_projective,
    collide_moments_recursive,
    equilibrium,
    f_from_moments,
    macroscopic,
    moments_from_f,
    regularize_projective,
    stream_push,
)
from repro.lattice import get_lattice

LATTICES = ["D1Q3", "D2Q9", "D3Q19"]


def state_strategy(lattice_name: str):
    """Random positive near-equilibrium distribution states."""
    lat = get_lattice(lattice_name)
    grid = {1: (6,), 2: (4, 3), 3: (3, 3, 2)}[lat.d]
    rho_s = hnp.arrays(np.float64, grid,
                       elements=st.floats(0.7, 1.4))
    u_s = hnp.arrays(np.float64, (lat.d, *grid),
                     elements=st.floats(-0.08, 0.08))
    noise_s = hnp.arrays(np.float64, (lat.q, *grid),
                         elements=st.floats(-0.03, 0.03))

    @st.composite
    def build(draw):
        rho = draw(rho_s)
        u = draw(u_s)
        noise = draw(noise_s)
        f = equilibrium(lat, rho, u) * (1.0 + noise)
        return lat, f

    return build()


@st.composite
def any_state(draw):
    name = draw(st.sampled_from(LATTICES))
    return draw(state_strategy(name))


class TestConservationProperties:
    @given(any_state(), st.floats(0.55, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_collisions_conserve_mass_momentum(self, state, tau):
        lat, f = state
        for op in (BGKCollision(tau), ProjectiveRegularizedCollision(tau),
                   RecursiveRegularizedCollision(tau)):
            f_star = op(lat, f)
            r0, u0 = macroscopic(lat, f)
            r1, u1 = macroscopic(lat, f_star)
            np.testing.assert_allclose(r1, r0, rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(r1 * u1, r0 * u0, rtol=1e-8, atol=1e-12)

    @given(any_state())
    @settings(max_examples=30, deadline=None)
    def test_streaming_permutes_values(self, state):
        """Streaming is a pure permutation: sorted values are invariant."""
        lat, f = state
        out = stream_push(lat, f)
        for i in range(lat.q):
            np.testing.assert_array_equal(
                np.sort(out[i], axis=None), np.sort(f[i], axis=None)
            )


class TestMomentSpaceProperties:
    @given(any_state())
    @settings(max_examples=30, deadline=None)
    def test_projection_reconstruction_identity(self, state):
        """M . R = identity on moment space, for arbitrary states."""
        lat, f = state
        m = moments_from_f(lat, f)
        m2 = moments_from_f(lat, f_from_moments(lat, m))
        np.testing.assert_allclose(m2, m, rtol=1e-9, atol=1e-12)

    @given(any_state(), st.floats(0.55, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_mr_losslessness_projective(self, state, tau):
        """Moment-space MR-P == distribution-space projective collision."""
        lat, f = state
        fd = ProjectiveRegularizedCollision(tau)(lat, f)
        fm = f_from_moments(
            lat, collide_moments_projective(lat, moments_from_f(lat, f), tau)
        )
        np.testing.assert_allclose(fm, fd, rtol=1e-9, atol=1e-13)

    @given(any_state(), st.floats(0.55, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_mr_losslessness_recursive(self, state, tau):
        lat, f = state
        fd = RecursiveRegularizedCollision(tau)(lat, f)
        fm = collide_moments_recursive(lat, moments_from_f(lat, f), tau)
        np.testing.assert_allclose(fm, fd, rtol=1e-9, atol=1e-13)

    @given(any_state())
    @settings(max_examples=30, deadline=None)
    def test_regularization_idempotent(self, state):
        lat, f = state
        f1 = regularize_projective(lat, f)
        f2 = regularize_projective(lat, f1)
        np.testing.assert_allclose(f2, f1, rtol=1e-9, atol=1e-13)


class TestEquilibriumProperties:
    @given(any_state())
    @settings(max_examples=30, deadline=None)
    def test_equilibrium_positive_at_moderate_mach(self, state):
        lat, f = state
        rho, u = macroscopic(lat, f)
        u = np.clip(u, -0.1, 0.1)
        assert (equilibrium(lat, rho, u) > 0).all()

    @given(any_state(), st.floats(0.51, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_collision_is_contraction_toward_equilibrium(self, state, tau):
        """|f* - feq| <= |f - feq| componentwise for BGK (tau >= 1/2...)."""
        lat, f = state
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        f_star = BGKCollision(tau)(lat, f)
        lhs = np.abs(f_star - feq)
        rhs = np.abs(f - feq) * abs(1 - 1 / tau) + 1e-12
        assert (lhs <= rhs + 1e-12).all()
