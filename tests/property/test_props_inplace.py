"""Property-based tests for the single-lattice ``"aa"`` backend.

Two invariants that must hold for *any* periodic state and *any* stop
step — in particular at odd steps, where the persistent lattice is
stored in the component-shifted AA layout:

* a checkpoint/resume round trip is bit-exact (checkpoints are written
  in natural layout, so the parity of the stop step must not matter);
* the macroscopic fields agree with the reference in-place solver
  :class:`repro.solver.aa.AASolver` — the array-level backend and the
  reference AA pattern are the same physics, step for step.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import periodic_box
from repro.io.checkpoint import restore_checkpoint, save_checkpoint
from repro.lattice import get_lattice
from repro.solver import AASolver, periodic_problem


def random_state(shape, seed, d=2):
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.04 * rng.standard_normal(shape)
    u0 = 0.04 * rng.standard_normal((d, *shape))
    return rho0, u0


class TestInplaceProperties:
    @given(seed=st.integers(0, 2 ** 31 - 1), steps=st.integers(1, 7))
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_round_trip_any_parity(self, tmp_path_factory, seed,
                                              steps):
        """Save/restore at any step (odd included) is bit-exact."""
        shape = (12, 10)
        lat = get_lattice("D2Q9")
        rho0, u0 = random_state(shape, seed)

        def build():
            return periodic_problem("ST", lat, shape, 0.8, rho0=rho0, u0=u0,
                                    backend="aa")

        solver = build()
        solver.run(steps)
        path = tmp_path_factory.mktemp("ck") / "state.npz"
        save_checkpoint(path, solver)
        resumed = build()
        restore_checkpoint(path, resumed)
        assert resumed.time == steps
        assert np.array_equal(resumed.f, solver.f)
        solver.run(3)
        resumed.run(3)
        assert np.array_equal(resumed.f, solver.f)

    @given(seed=st.integers(0, 2 ** 31 - 1), steps=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_matches_reference_aa_solver(self, seed, steps):
        """aa-backend macroscopics == reference AASolver at any parity."""
        shape = (14, 12)
        lat = get_lattice("D2Q9")
        rho0, u0 = random_state(shape, seed)
        ref = AASolver(lat, periodic_box(shape), 0.8, rho0=rho0, u0=u0)
        fast = periodic_problem("ST", lat, shape, 0.8, rho0=rho0, u0=u0,
                                backend="aa")
        ref.run(steps)
        fast.run(steps)
        rho_r, u_r = ref.macroscopic()
        rho_f, u_f = fast.macroscopic()
        np.testing.assert_allclose(rho_f, rho_r, atol=1e-12)
        np.testing.assert_allclose(u_f, u_r, atol=1e-12)
