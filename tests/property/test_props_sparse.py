"""Property-based tests (hypothesis) for the sparse-geometry backend.

Three invariant families pin the compact-state machinery of
:mod:`repro.accel.sparse` on randomized solid masks:

* **compaction round trips** — dense -> compact -> dense is the identity
  on fluid columns and never touches solid columns;
* **table identities** — the masked neighbor table is a valid indexed
  permutation whose folded links realize half-way bounce-back exactly;
* **backend parity** — the sparse solver trajectory matches the fused
  backend to machine precision on random masked problems (the headline
  guarantee of docs/PERFORMANCE.md).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.accel import MaskedNeighborTable
from repro.boundary import HalfwayBounceBack
from repro.core.streaming import stream_push
from repro.geometry import Domain
from repro.lattice import get_lattice

LATTICES = ["D2Q9", "D3Q19"]
GRIDS = {"D2Q9": (6, 5), "D3Q19": (4, 3, 3)}


@st.composite
def masked_lattice(draw, lattices=tuple(LATTICES)):
    """A lattice plus a seeded random solid mask with >=1 fluid node."""
    name = draw(st.sampled_from(list(lattices)))
    lat = get_lattice(name)
    grid = GRIDS[name]
    fraction = draw(st.floats(0.0, 0.8))
    seed = draw(st.integers(0, 2**31 - 1))
    solid = np.random.default_rng(seed).random(grid) < fraction
    if solid.all():
        solid.flat[0] = False
    return lat, solid


def random_field(lat, shape, seed, components=None):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((components or lat.q, *shape))


class TestCompactionRoundTrip:
    @given(masked_lattice(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_compact_is_fluid_column_slice(self, ml, seed):
        """``compact`` equals the C-order fluid-column slice of the field."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        f = random_field(lat, solid.shape, seed)
        fc = table.compact(f, np.empty((lat.q, table.n_fluid)))
        assert np.array_equal(fc, f.reshape(lat.q, -1)[:, table.fluid_flat])

    @given(masked_lattice(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_scatter_restores_fluid_and_skips_solid(self, ml, seed):
        """scatter(compact(f)) is the identity on fluid columns and leaves
        the target's solid columns bit-untouched."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        f = random_field(lat, solid.shape, seed)
        fc = table.compact(f, np.empty((lat.q, table.n_fluid)))
        target = random_field(lat, solid.shape, seed + 1)
        before_solid = target[:, solid].copy()
        table.scatter(fc, target)
        assert np.array_equal(target[:, ~solid], f[:, ~solid])
        assert np.array_equal(target[:, solid], before_solid)

    @given(masked_lattice())
    @settings(max_examples=40, deadline=None)
    def test_dense_to_compact_is_inverse_of_fluid_flat(self, ml):
        """The compact index map is the (partial) inverse permutation of
        the fluid-node list, and -1 exactly on solid nodes."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        n = table.n_fluid
        assert n == int((~solid).sum())
        assert np.array_equal(table.dense_to_compact[table.fluid_flat],
                              np.arange(n))
        inv = np.full(solid.size, -1, dtype=table.dense_to_compact.dtype)
        inv[table.fluid_flat] = np.arange(n)
        assert np.array_equal(table.dense_to_compact, inv)
        assert (table.dense_to_compact[solid.ravel()] == -1).all()


class TestTableIdentities:
    @given(masked_lattice(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_gather_compact_matches_fancy_indexing(self, ml, seed):
        """The flat one-take gather equals naive (component, node) fancy
        indexing through the table."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        fc = random_field(lat, (table.n_fluid,), seed)
        out = table.gather_compact(fc, np.empty_like(fc))
        assert np.array_equal(out, fc[table.src_comp, table.src])

    @given(masked_lattice(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_folded_links_realize_halfway_bounce_back(self, ml, seed):
        """``gather_dense`` equals the dense pull everywhere a link's
        source is fluid, and equals the half-way reflection (opposite
        component, same node) everywhere the source is solid."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        f = random_field(lat, solid.shape, seed)
        got = table.gather_dense(f, np.empty((lat.q, table.n_fluid)))
        pulled = table.compact(stream_push(lat, f),
                               np.empty((lat.q, table.n_fluid)))
        flat = f.reshape(lat.q, -1)
        for q in range(lat.q):
            links = table.solid_links[q]
            fluid_src = np.setdiff1d(np.arange(table.n_fluid), links,
                                     assume_unique=False)
            assert np.array_equal(got[q, fluid_src], pulled[q, fluid_src])
            if links.size:
                reflected = flat[lat.opposite[q], table.fluid_flat[links]]
                assert np.array_equal(got[q, links], reflected)

    @given(masked_lattice())
    @settings(max_examples=40, deadline=None)
    def test_sources_stay_in_range(self, ml):
        """Every table index addresses a valid (component, fluid node)."""
        lat, solid = ml
        table = MaskedNeighborTable(lat, solid)
        assert table.src.shape == (lat.q, table.n_fluid)
        assert (0 <= table.src).all() and (table.src < table.n_fluid).all()
        assert (0 <= table.src_comp).all() and (table.src_comp < lat.q).all()


class TestSparseFusedParity:
    @given(masked_lattice(), st.sampled_from(["ST", "MR-P", "MR-R"]),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_mask_trajectories_match(self, ml, scheme, seed):
        """Sparse and fused runs agree to machine precision on a random
        masked periodic box with bounce-back obstacles."""
        from repro.solver import make_solver

        lat, solid = ml
        nt = np.zeros(solid.shape, dtype=np.int8)
        nt[solid] = 1
        domain = Domain(nt)
        boundaries = [HalfwayBounceBack()] if solid.any() else []

        states = []
        for backend in ("fused", "sparse"):
            rng = np.random.default_rng(seed)
            rho0 = 1.0 + 0.02 * rng.standard_normal(solid.shape)
            u0 = 0.03 * rng.standard_normal((lat.d, *solid.shape))
            s = make_solver(scheme, lat, domain, 0.8,
                            boundaries=list(boundaries), rho0=rho0, u0=u0,
                            backend=backend)
            s.run(3)
            rho, u = s.macroscopic()
            states.append(np.concatenate([rho[None], u]))
        fluid = ~solid
        diff = np.abs(states[0][:, fluid] - states[1][:, fluid]).max()
        assert diff < 1e-13, diff
