"""Property-based tests: all propagation patterns agree on the physics.

The propagation pattern (two-lattice pull, in-place AA, moment
representation) is an implementation choice; for any random smooth
periodic state, every pattern must produce the same macroscopic
trajectory (to collision-model equivalence classes: ST==AA exactly,
MR-P==MR-R==projected dynamics).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import periodic_box
from repro.gpu import AAKernel, KernelProblem, STKernel, STPushKernel, V100
from repro.lattice import get_lattice
from repro.solver import AASolver, periodic_problem


def random_state(shape, seed, d=2):
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.04 * rng.standard_normal(shape)
    u0 = 0.04 * rng.standard_normal((d, *shape))
    return rho0, u0


class TestPatternAgreement:
    @given(seed=st.integers(0, 2 ** 31 - 1), steps=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_aa_equals_st_trajectory(self, seed, steps):
        shape = (14, 12)
        lat = get_lattice("D2Q9")
        rho0, u0 = random_state(shape, seed)
        aa = AASolver(lat, periodic_box(shape), 0.8, rho0=rho0, u0=u0)
        stv = periodic_problem("ST", lat, shape, 0.8, rho0=rho0, u0=u0)
        aa.run(steps)
        stv.run(steps)
        ra, ua = aa.macroscopic()
        rs, us = stv.macroscopic()
        np.testing.assert_allclose(ra, rs, atol=1e-12)
        np.testing.assert_allclose(ua, us, atol=1e-12)

    @given(seed=st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_three_st_kernels_agree(self, seed):
        """Pull, push and AA kernels produce the same density evolution."""
        shape = (12, 10)
        lat = get_lattice("D2Q9")
        rho0, u0 = random_state(shape, seed)
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")
        kernels = [STKernel(prob, V100, rho0=rho0, u0=u0),
                   STPushKernel(prob, V100, rho0=rho0, u0=u0),
                   AAKernel(prob, V100, rho0=rho0, u0=u0)]
        for _ in range(4):
            fields = []
            for k in kernels:
                k.step()
                fields.append(k.macroscopic_fields()[0])
            pull, push, aa = fields
            # Pull reports the post-collision state and AA the pre-collision
            # state of the same time level: identical densities. Push's
            # convention is one streaming ahead, so only global invariants
            # match pointwise comparisons there.
            np.testing.assert_allclose(pull, aa, atol=1e-12)
            assert push.sum() == pytest.approx(pull.sum(), rel=1e-12)

    @given(seed=st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_aa_pairwise_identity_at_rest(self, seed):
        """A uniform state is a fixed point of both AA flavours."""
        rng = np.random.default_rng(seed)
        shape = (10, 8)
        lat = get_lattice("D2Q9")
        u0 = np.zeros((2, *shape))
        u0[0] = float(rng.uniform(-0.05, 0.05))
        aa = AASolver(lat, periodic_box(shape), 0.8, u0=u0)
        aa.run(5)
        _, u = aa.macroscopic()
        np.testing.assert_allclose(u[0], u0[0], atol=1e-13)
