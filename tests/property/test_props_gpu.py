"""Property-based tests for the virtual-GPU substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    KernelProblem,
    LaunchConfig,
    MemoryTracker,
    MRKernel,
    V100,
    occupancy,
)
from repro.gpu.memory import ITEM_BYTES, SECTOR_BYTES, GlobalArray
from repro.lattice import get_lattice


class TestMemoryProperties:
    @given(st.lists(st.integers(0, 999), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_sector_count_bounds(self, indices):
        """unique sectors <= unique elements; bytes = 8 * accesses."""
        tr = MemoryTracker()
        a = GlobalArray("x", 1000, tr)
        idx = np.array(indices)
        a.read(idx)
        r = tr.report
        assert r.bytes_read == idx.size * ITEM_BYTES
        n_unique = np.unique(idx).size
        assert 1 <= r.read_transactions <= n_unique
        # Sector bytes always cover the logical unique bytes.
        assert r.read_transactions * SECTOR_BYTES >= n_unique * ITEM_BYTES / 4

    @given(st.lists(st.integers(0, 499), min_size=1, max_size=100),
           st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_write_read_roundtrip_with_base(self, indices, base):
        tr = MemoryTracker()
        a = GlobalArray("x", 500, tr)
        idx = np.unique(np.array(indices))
        vals = np.arange(idx.size, dtype=float)
        a.write(idx, vals, base=base)
        np.testing.assert_array_equal(a.read(idx, base=base), vals)

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_l2_second_access_free(self, indices):
        tr = MemoryTracker(l2_bytes=64 * 1024)
        a = GlobalArray("x", 100, tr)
        idx = np.array(indices)
        a.read(idx)
        first = tr.report.read_transactions
        a.read(idx)
        assert tr.report.read_transactions == first


class TestOccupancyProperties:
    @given(st.integers(1, 5000), st.integers(32, 1024),
           st.integers(0, 96 * 1024))
    @settings(max_examples=80, deadline=None)
    def test_occupancy_invariants(self, blocks, threads, shared):
        cfg = LaunchConfig(blocks, threads, shared)
        try:
            occ = occupancy(V100, cfg)
        except ValueError:
            return                         # kernel cannot run at all
        assert occ.blocks_per_sm >= 1
        assert occ.active_blocks <= blocks
        assert occ.active_blocks <= occ.blocks_per_sm * V100.sm_count
        assert 0 < occ.tail_utilization <= 1
        assert occ.waves >= 1
        # Resources actually fit.
        if shared:
            assert occ.blocks_per_sm * shared <= V100.shared_mem_per_sm_bytes
        assert occ.blocks_per_sm * threads <= max(
            V100.max_threads_per_sm, threads
        )


class TestKernelStateProperties:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_st_mr_agree_on_random_periodic_states(self, seed):
        """For any random smooth initial state, the ST kernel (with BGK)
        and reference stay finite and mass-conserving; the MR kernel agrees
        with its reference bit-tightly."""
        lat = get_lattice("D2Q9")
        shape = (12, 10)
        rng = np.random.default_rng(seed)
        rho0 = 1 + 0.05 * rng.standard_normal(shape)
        u0 = 0.04 * rng.standard_normal((2, *shape))
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")

        from repro.solver import periodic_problem

        ref = periodic_problem("MR-P", lat, shape, 0.8, rho0=rho0, u0=u0)
        kern = MRKernel(prob, V100, scheme="MR-P", tile_cross=(6,),
                        rho0=rho0, u0=u0)
        for _ in range(3):
            ref.step()
            kern.step()
        assert np.abs(kern.moment_field() - ref.m).max() < 1e-12

    @given(st.sampled_from([(4,), (6,), (12,)]), st.sampled_from([1, 2, 5]))
    @settings(max_examples=12, deadline=None)
    def test_mr_tiling_invariance(self, tile, w_t):
        """Physics must be invariant under every legal tiling choice."""
        lat = get_lattice("D2Q9")
        shape = (12, 10)
        rng = np.random.default_rng(3)
        rho0 = 1 + 0.05 * rng.standard_normal(shape)
        u0 = 0.04 * rng.standard_normal((2, *shape))
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")
        base = MRKernel(prob, V100, scheme="MR-P", tile_cross=(12,), w_t=1,
                        rho0=rho0, u0=u0)
        other = MRKernel(prob, V100, scheme="MR-P", tile_cross=tile, w_t=w_t,
                         rho0=rho0, u0=u0)
        for _ in range(3):
            base.step()
            other.step()
        assert np.abs(base.moment_field() - other.moment_field()).max() < 1e-13
