"""Property-based tests: distributed decomposition and body forcing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    collide_moments_projective,
    equilibrium,
    guo_source,
    moments_from_f,
)
from repro.lattice import get_lattice
from repro.parallel import distributed_periodic_problem
from repro.solver import periodic_problem


class TestDistributedProperties:
    @given(
        n_ranks=st.integers(1, 4),
        nx=st.integers(12, 30),
        ny=st.integers(6, 14),
        seed=st.integers(0, 2 ** 31 - 1),
        scheme=st.sampled_from(["ST", "MR-P", "MR-R"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_decomposition_matches_reference(self, n_ranks, nx, ny,
                                                 seed, scheme):
        """For any slab count and any random smooth state, distributed ==
        single-domain to machine precision."""
        shape = (nx, ny)
        rng = np.random.default_rng(seed)
        rho0 = 1 + 0.04 * rng.standard_normal(shape)
        u0 = 0.04 * rng.standard_normal((2, *shape))
        ref = periodic_problem(scheme, "D2Q9", shape, 0.8, rho0=rho0, u0=u0)
        dist = distributed_periodic_problem(scheme, "D2Q9", shape, n_ranks,
                                            0.8, rho0=rho0, u0=u0)
        ref.run(3)
        dist.run(3)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        np.testing.assert_allclose(rg, rr, atol=1e-13)
        np.testing.assert_allclose(ug, ur, atol=1e-13)

    @given(n_ranks=st.integers(1, 5), steps=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_communication_accounting_scales(self, n_ranks, steps):
        """bytes_sent = ranks x 2 faces x payload x steps, exactly."""
        shape = (30, 8)
        d = distributed_periodic_problem("MR-P", "D2Q9", shape, n_ranks, 0.8)
        d.run(steps)
        per_face_per_dir = 6 * 8                 # M doubles x 8 B
        expected = n_ranks * 2 * per_face_per_dir * shape[1] * steps
        assert d.comm.bytes_sent == expected


class TestForcingProperties:
    @given(
        fx=st.floats(-5e-4, 5e-4),
        fy=st.floats(-5e-4, 5e-4),
        tau=st.floats(0.6, 2.0),
        steps=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_momentum_budget_exact(self, fx, fy, tau, steps):
        """Periodic fluid under any constant force gains exactly
        N F (steps + 1/2) of physical momentum (half-force convention)."""
        lat = get_lattice("D2Q9")
        from repro.solver import make_solver
        from repro.geometry import periodic_box

        s = make_solver("MR-P", lat, periodic_box((6, 6)), tau,
                        force=np.array([fx, fy]))
        s.run(steps)
        rho, u = s.macroscopic()
        p = np.array([(rho * u[0]).sum(), (rho * u[1]).sum()])
        expected = 36 * np.array([fx, fy]) * (steps + 0.5)
        np.testing.assert_allclose(p, expected, atol=1e-12)

    @given(
        seed=st.integers(0, 2 ** 31 - 1),
        tau=st.floats(0.55, 2.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_guo_source_moment_identities(self, seed, tau):
        """Mass moment vanishes and momentum moment equals (1-1/2tau) F
        for random velocity/force fields, on both paper lattices."""
        rng = np.random.default_rng(seed)
        for name in ("D2Q9", "D3Q19"):
            lat = get_lattice(name)
            grid = (3,) * lat.d
            u = 0.06 * rng.standard_normal((lat.d, *grid))
            force = 1e-3 * rng.standard_normal((lat.d, *grid))
            s = guo_source(lat, u, force, tau)
            np.testing.assert_allclose(s.sum(axis=0), 0, atol=1e-14)
            mom = np.einsum("qa,q...->a...", lat.c.astype(float), s)
            np.testing.assert_allclose(mom, (1 - 0.5 / tau) * force,
                                       atol=1e-13)

    @given(seed=st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_forced_collision_reduces_to_unforced(self, seed):
        """force=0 and force=None give identical collided moments."""
        lat = get_lattice("D3Q19")
        rng = np.random.default_rng(seed)
        grid = (3, 3, 3)
        rho = 1 + 0.04 * rng.standard_normal(grid)
        u = 0.04 * rng.standard_normal((3, *grid))
        m = moments_from_f(lat, equilibrium(lat, rho, u))
        a = collide_moments_projective(lat, m, 0.8)
        b = collide_moments_projective(lat, m, 0.8,
                                       force=np.zeros((3, *grid)))
        np.testing.assert_allclose(a, b, atol=1e-15)
