"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice import get_lattice

ALL_LATTICES = ["D1Q3", "D2Q9", "D3Q15", "D3Q19", "D3Q27", "D3Q39"]
MAIN_LATTICES = ["D2Q9", "D3Q19"]          # the paper's evaluation lattices


@pytest.fixture(params=ALL_LATTICES)
def lattice(request):
    """Every built-in lattice descriptor."""
    return get_lattice(request.param)


@pytest.fixture(params=MAIN_LATTICES)
def paper_lattice(request):
    """The two lattices evaluated in the paper."""
    return get_lattice(request.param)


@pytest.fixture
def rng():
    return np.random.default_rng(20230613)


def small_grid(lat) -> tuple[int, ...]:
    """A small grid shape matching a lattice's dimension."""
    return {1: (7,), 2: (6, 5), 3: (5, 4, 3)}[lat.d]


@pytest.fixture
def random_state(lattice, rng):
    """A perturbed near-equilibrium state (rho, u, f) on a small grid."""
    from repro.core import equilibrium

    grid = small_grid(lattice)
    rho = 1.0 + 0.05 * rng.standard_normal(grid)
    u = 0.04 * rng.standard_normal((lattice.d, *grid))
    feq = equilibrium(lattice, rho, u)
    f = feq * (1.0 + 0.02 * rng.standard_normal((lattice.q, *grid)))
    return rho, u, f
