"""Unit tests for launch validation and occupancy (Section 3.2 tuning)."""

import pytest

from repro.gpu import MI100, V100, LaunchConfig, occupancy, validate_launch
from repro.perf import mr_launch_config, st_launch_config
from repro.lattice import get_lattice


class TestLaunchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(blocks=0, threads_per_block=64)
        with pytest.raises(ValueError):
            LaunchConfig(blocks=1, threads_per_block=64, shared_bytes_per_block=-1)

    def test_st_config(self):
        cfg = st_launch_config(1000, block_size=256)
        assert cfg.blocks == 4
        assert cfg.threads_per_block == 256
        assert cfg.shared_bytes_per_block == 0

    def test_mr_config_2d(self):
        """Threads = (x_t+2)*y_t; shared = x_t*(y_t+2)*Q*8 (Section 3.2)."""
        lat = get_lattice("D2Q9")
        cfg = mr_launch_config(lat, (4096, 4096), (32,), w_t=8)
        assert cfg.blocks == 128
        assert cfg.threads_per_block == (32 + 2) * 8
        assert cfg.shared_bytes_per_block == 32 * (8 + 2) * 9 * 8

    def test_mr_config_3d(self):
        """Threads = (x_t+2)(y_t+2)*z_t; shared = x_t*y_t*(z_t+2)*Q*8."""
        lat = get_lattice("D3Q19")
        cfg = mr_launch_config(lat, (256, 256, 256), (8, 8), w_t=1)
        assert cfg.blocks == 32 * 32
        assert cfg.threads_per_block == 10 * 10 * 1
        assert cfg.shared_bytes_per_block == 8 * 8 * 3 * 19 * 8


class TestValidateLaunch:
    def test_too_many_threads(self):
        with pytest.raises(ValueError, match="threads/block"):
            validate_launch(V100, LaunchConfig(1, 2048))

    def test_too_much_shared(self):
        with pytest.raises(ValueError, match="shared memory"):
            validate_launch(MI100, LaunchConfig(1, 64, 80 * 1024))

    def test_v100_allows_96kb(self):
        validate_launch(V100, LaunchConfig(1, 64, 96 * 1024))


class TestOccupancy:
    def test_shared_memory_limited(self):
        cfg = LaunchConfig(1000, 100, shared_bytes_per_block=30 * 1024)
        occ = occupancy(V100, cfg)
        assert occ.blocks_per_sm == 3          # 96 KB / 30 KB
        assert occ.limited_by == "shared_memory"
        assert occ.meets_two_block_rule

    def test_thread_limited(self):
        cfg = LaunchConfig(1000, 1024, shared_bytes_per_block=1024)
        occ = occupancy(V100, cfg)
        assert occ.blocks_per_sm == 2          # 2048 / 1024
        assert occ.limited_by == "threads"

    def test_paper_mr_3d_two_block_rule(self):
        """The 8x8x1 D3Q19 column kernel satisfies the 2-blocks/SM rule on
        both devices — V100 via 96 KB, MI100 via 64 KB vs 28.5 KB."""
        lat = get_lattice("D3Q19")
        cfg = mr_launch_config(lat, (256, 256, 256), (8, 8))
        assert occupancy(V100, cfg).meets_two_block_rule
        assert occupancy(MI100, cfg).meets_two_block_rule

    def test_d3q27_occupancy_cliff_on_mi100(self):
        """Future-work lattice: the Q27 column kernel no longer fits two
        blocks per CU on MI100's 64 KB LDS (motivates Section 5)."""
        lat = get_lattice("D3Q27")
        cfg = mr_launch_config(lat, (256, 256, 256), (8, 8))
        assert occupancy(V100, cfg).blocks_per_sm == 2
        assert occupancy(MI100, cfg).blocks_per_sm == 1
        assert not occupancy(MI100, cfg).meets_two_block_rule

    def test_impossible_kernel(self):
        cfg = LaunchConfig(10, 64, shared_bytes_per_block=200 * 1024)
        with pytest.raises(ValueError, match="cannot run"):
            occupancy(V100, cfg)

    def test_active_blocks_and_waves(self):
        cfg = LaunchConfig(100, 256, shared_bytes_per_block=48 * 1024)
        occ = occupancy(V100, cfg)              # 2 blocks/SM, capacity 160
        assert occ.active_blocks == 100
        assert occ.waves == 1
        assert occ.tail_utilization == pytest.approx(100 / 160)

    def test_multi_wave(self):
        cfg = LaunchConfig(400, 256, shared_bytes_per_block=48 * 1024)
        occ = occupancy(V100, cfg)
        assert occ.waves == 3
        assert occ.tail_utilization == pytest.approx(400 / 480)
