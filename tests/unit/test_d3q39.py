"""Unit tests for the multi-speed D3Q39 lattice (Section 5 future work)."""

import numpy as np
import pytest

from repro.core import (
    RecursiveRegularizedCollision,
    collide_moments_recursive,
    equilibrium,
    macroscopic,
    moments_from_f,
    stream_push,
)
from repro.geometry import channel_3d
from repro.lattice import get_lattice
from repro.solver import make_solver, periodic_problem


@pytest.fixture
def q39():
    return get_lattice("D3Q39")


class TestConstruction:
    def test_shell_census(self, q39):
        speeds = (q39.c ** 2).sum(axis=1)
        census = {int(s): int((speeds == s).sum()) for s in np.unique(speeds)}
        assert census == {0: 1, 1: 6, 3: 8, 4: 6, 8: 12, 9: 6}

    def test_cs2_two_thirds(self, q39):
        assert q39.cs2 == pytest.approx(2 / 3)

    def test_full_fourth_order_isotropy(self, q39):
        """The raison d'etre of multi-speed lattices."""
        c = q39.c.astype(float)
        m4 = np.einsum("q,qa,qb,qc,qd->abcd", q39.w, c, c, c, c)
        eye = np.eye(3)
        iso = q39.cs4 * (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        assert np.allclose(m4, iso)

    def test_sixth_order_diagonal(self, q39):
        c = q39.c.astype(float)
        m6 = np.einsum("q,qa,qb,qc->abc", q39.w, c ** 2, c ** 2, c ** 2)
        assert m6[0, 1, 2] == pytest.approx(q39.cs6, rel=1e-12)

    def test_complete_hermite_basis(self, q39):
        """All 10 third-order and all 15 fourth-order components supported."""
        assert len(q39.h3_supported) == 10
        assert len(q39.h4_supported) == 15

    def test_moment_space_unchanged(self, q39):
        assert q39.n_moments == 10             # M depends only on D


class TestPhysics:
    def test_equilibrium_moments(self, q39, rng):
        grid = (4, 3, 3)
        rho = 1 + 0.03 * rng.standard_normal(grid)
        u = 0.03 * rng.standard_normal((3, *grid))
        feq = equilibrium(q39, rho, u)
        r2, u2 = macroscopic(q39, feq)
        assert np.allclose(r2, rho)
        assert np.allclose(u2, u)

    def test_mr_losslessness(self, q39, rng):
        grid = (3, 3, 3)
        rho = 1 + 0.03 * rng.standard_normal(grid)
        u = 0.03 * rng.standard_normal((3, *grid))
        f = equilibrium(q39, rho, u) * (1 + 0.01 * rng.standard_normal((39, *grid)))
        fr = RecursiveRegularizedCollision(0.8)(q39, f)
        fr2 = collide_moments_recursive(q39, moments_from_f(q39, f), 0.8)
        assert np.allclose(fr, fr2, atol=1e-13)

    def test_multispeed_streaming(self, q39, rng):
        """Speed-3 components advance three nodes per step."""
        grid = (7, 7, 7)
        f = rng.random((39, *grid))
        out = stream_push(q39, f)
        i3 = np.where((q39.c == (3, 0, 0)).all(axis=1))[0][0]
        assert out[i3][(4, 2, 2)] == f[i3][(1, 2, 2)]

    def test_solver_runs_and_conserves(self, q39, rng):
        shape = (6, 6, 6)
        u0 = 0.02 * rng.standard_normal((3, *shape))
        s = periodic_problem("MR-R", q39, shape, 0.8, u0=u0)
        m0 = s.diagnostics.mass()
        p0 = s.diagnostics.momentum()
        s.run(10)
        assert s.diagnostics.mass() == pytest.approx(m0, rel=1e-12)
        assert np.allclose(s.diagnostics.momentum(), p0, atol=1e-12)

    def test_walls_rejected(self, q39):
        """One-node walls cannot confine speed-3 populations."""
        with pytest.raises(ValueError, match="multi-speed"):
            make_solver("ST", q39, channel_3d(8, 6, 6), 0.8)

    def test_uniform_flow_invariant(self, q39):
        shape = (5, 5, 5)
        u0 = np.zeros((3, *shape))
        u0[0] = 0.04
        s = periodic_problem("MR-P", q39, shape, 0.7, u0=u0)
        s.run(5)
        rho, u = s.macroscopic()
        assert np.allclose(rho, 1.0, atol=1e-13)
        assert np.allclose(u[0], 0.04, atol=1e-13)


class TestPerformanceImplications:
    def test_bf_reduction(self, q39):
        """The Section 5 motivation: MR slashes the multi-speed B/F."""
        from repro.perf import bytes_per_flup, memory_reduction

        assert bytes_per_flup(q39, "ST") == 2 * 39 * 8    # 624
        assert bytes_per_flup(q39, "MR") == 160
        assert memory_reduction(q39) == pytest.approx(1 - 10 / 39)

    def test_roofline_projection(self, q39):
        from repro.gpu import V100
        from repro.perf import roofline_mflups

        st = roofline_mflups(V100, q39, "ST")
        mr = roofline_mflups(V100, q39, "MR")
        assert mr / st == pytest.approx(39 / 10)
