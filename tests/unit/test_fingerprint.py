"""Injectivity of RunSpec.fingerprint() and checkpoint version handling.

The v1 encoding concatenated ``key + repr(value)`` for every option
without any delimiting, so ``{"x1": 2}`` and ``{"x": 12}`` fed the hash
the same byte stream and collided (the fingerprint gates checkpoint
resume and job-server dedup, so a collision silently serves the wrong
physics). v2 length-prefixes every field; these tests pin the fix.
"""

import warnings

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.io.checkpoint import validate_checkpoint_manifest
from repro.parallel.runtime import FINGERPRINT_VERSION, RunSpec


def spec_with(options):
    """A fixed-problem RunSpec differing only in its options dict."""
    return RunSpec("periodic", "MR-P", "D2Q9", (16, 16), 2, tau=0.8,
                   options=options)


class TestInjectivity:
    """Distinct specs must produce distinct digests."""

    def test_regression_pair(self):
        """The original collision: {"x1": 2} vs {"x": 12}."""
        a = spec_with({"x1": 2}).fingerprint()
        b = spec_with({"x": 12}).fingerprint()
        assert a != b

    def test_key_value_boundary(self):
        """Moving characters across the key/value boundary changes it."""
        assert (spec_with({"ab": "c"}).fingerprint()
                != spec_with({"a": "bc"}).fingerprint())

    def test_adjacent_options_boundary(self):
        """Moving content between adjacent options changes it."""
        assert (spec_with({"a": "xy", "b": ""}).fingerprint()
                != spec_with({"a": "x", "b": "y"}).fingerprint())

    def test_scalar_type_disambiguated(self):
        """1 (int) and "1" (str) hash differently."""
        assert (spec_with({"n": 1}).fingerprint()
                != spec_with({"n": "1"}).fingerprint())

    def test_array_shape_disambiguated(self):
        """Same bytes, different shape -> different digest."""
        flat = np.arange(6, dtype=np.float64)
        assert (spec_with({"u0": flat.reshape(2, 3)}).fingerprint()
                != spec_with({"u0": flat.reshape(3, 2)}).fingerprint())

    def test_array_dtype_disambiguated(self):
        """Same values, different dtype -> different digest."""
        assert (spec_with({"u0": np.zeros(4, np.float64)}).fingerprint()
                != spec_with({"u0": np.zeros(4, np.float32)}).fingerprint())

    def test_array_vs_scalar_repr(self):
        """An ndarray option never collides with a lookalike string."""
        arr = np.array([1.0, 2.0])
        assert (spec_with({"u0": arr}).fingerprint()
                != spec_with({"u0": repr(arr)}).fingerprint())

    def test_stable_across_pickle(self):
        """The digest is a pure function of the spec's field values."""
        import pickle

        spec = spec_with({"u_max": 0.05})
        assert pickle.loads(pickle.dumps(spec)).fingerprint() \
            == spec.fingerprint()

    def test_problem_fields_matter(self):
        """kind/scheme/lattice/shape/tau all feed the digest."""
        base = spec_with({}).fingerprint()
        assert RunSpec("periodic", "MR-R", "D2Q9", (16, 16), 2,
                       tau=0.8).fingerprint() != base
        assert RunSpec("periodic", "MR-P", "D2Q9", (16, 16), 2,
                       tau=0.9).fingerprint() != base
        assert RunSpec("periodic", "MR-P", "D2Q9", (16, 8), 2,
                       tau=0.8).fingerprint() != base


option_values = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
)
option_dicts = st.dictionaries(
    st.text(st.characters(codec="ascii", categories=["L", "N"]),
            min_size=1, max_size=6),
    option_values, max_size=4)


@settings(max_examples=200, deadline=None)
@given(d1=option_dicts, d2=option_dicts)
def test_distinct_options_distinct_fingerprints(d1, d2):
    """Property: unequal option dicts never share a fingerprint."""
    assume(d1 != d2)
    assert spec_with(d1).fingerprint() != spec_with(d2).fingerprint()


def manifest_with(fingerprint, version=None):
    """A minimal checkpoint manifest with an ``extra`` fingerprint block."""
    extra = {"fingerprint": fingerprint}
    if version is not None:
        extra["fingerprint_version"] = version
    return {"scheme": "MR-P", "lattice": "D2Q9", "shape": [16, 16],
            "tau": 0.8, "extra": extra}


class TestVersionedResume:
    """Cross-version checkpoints warn instead of failing spuriously."""

    def test_same_version_match_passes(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            validate_checkpoint_manifest(
                manifest_with("abc", FINGERPRINT_VERSION),
                scheme="MR-P", lattice="D2Q9", shape=(16, 16), tau=0.8,
                fingerprint="abc",
                fingerprint_version=FINGERPRINT_VERSION)

    def test_same_version_mismatch_raises(self):
        with pytest.raises(ValueError, match="fingerprint differs"):
            validate_checkpoint_manifest(
                manifest_with("abc", FINGERPRINT_VERSION),
                scheme="MR-P", lattice="D2Q9", shape=(16, 16), tau=0.8,
                fingerprint="def",
                fingerprint_version=FINGERPRINT_VERSION)

    def test_old_version_mismatch_warns_not_raises(self):
        """A v1 checkpoint resumes under v2 with a warning, not an error."""
        with pytest.warns(UserWarning, match="fingerprint encoding"):
            validate_checkpoint_manifest(
                manifest_with("abc"),        # no version = v1 (pre-fix)
                scheme="MR-P", lattice="D2Q9", shape=(16, 16), tau=0.8,
                fingerprint="def",
                fingerprint_version=FINGERPRINT_VERSION)

    def test_old_version_still_checks_fields(self):
        """Version skew only skips the digest check, not the field checks."""
        with pytest.warns(UserWarning, match="fingerprint encoding"), \
                pytest.raises(ValueError, match="shape"):
            validate_checkpoint_manifest(
                manifest_with("abc"),
                scheme="MR-P", lattice="D2Q9", shape=(32, 16), tau=0.8,
                fingerprint="def",
                fingerprint_version=FINGERPRINT_VERSION)
