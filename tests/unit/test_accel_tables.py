"""Unit tests for the precomputed neighbor-index streaming tables."""

import numpy as np
import pytest

from repro.accel import (NeighborTable, clear_cache, neighbor_table,
                         stream_gather)
from repro.core.streaming import stream_push
from repro.lattice import get_lattice


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def random_field(lat, shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((lat.q, *shape))


class TestGatherEquivalence:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (7, 5)),
        ("D2Q9", (1, 6)),
        ("D3Q19", (5, 4, 3)),
        ("D3Q27", (4, 3, 5)),
    ])
    def test_matches_stream_push(self, lattice_name, shape):
        """One np.take gather equals the Q-pass roll streaming, bit for bit."""
        lat = get_lattice(lattice_name)
        f = random_field(lat, shape)
        expected = stream_push(lat, f)
        got = neighbor_table(lat, shape).gather(f)
        assert np.array_equal(got, expected)

    def test_stream_gather_convenience(self):
        lat = get_lattice("D2Q9")
        f = random_field(lat, (6, 4), seed=1)
        assert np.array_equal(stream_gather(lat, f), stream_push(lat, f))

    def test_gather_into_preallocated_out(self):
        lat = get_lattice("D2Q9")
        f = random_field(lat, (5, 5), seed=2)
        out = np.empty_like(f)
        result = neighbor_table(lat, (5, 5)).gather(f, out=out)
        assert result is out
        assert np.array_equal(out, stream_push(lat, f))

    def test_gather_is_a_permutation(self):
        """Every (component, node) slot is read exactly once."""
        lat = get_lattice("D2Q9")
        table = neighbor_table(lat, (4, 3))
        assert sorted(table.flat.tolist()) == list(range(lat.q * 12))


class TestAliasingGuard:
    def test_gather_rejects_out_is_f(self):
        lat = get_lattice("D2Q9")
        f = random_field(lat, (4, 4))
        with pytest.raises(ValueError, match="alias"):
            neighbor_table(lat, (4, 4)).gather(f, out=f)

    def test_gather_rejects_overlapping_view(self):
        lat = get_lattice("D2Q9")
        buf = np.zeros((2 * lat.q, 4, 4))
        f = buf[: lat.q]
        overlapping = buf[lat.q - 1: 2 * lat.q - 1]
        with pytest.raises(ValueError, match="alias"):
            neighbor_table(lat, (4, 4)).gather(f, out=overlapping)


class TestCacheAndValidation:
    def test_cache_returns_same_object(self):
        lat = get_lattice("D2Q9")
        assert neighbor_table(lat, (6, 6)) is neighbor_table(lat, (6, 6))

    def test_cache_keyed_by_lattice_and_shape(self):
        d2q9 = get_lattice("D2Q9")
        a = neighbor_table(d2q9, (6, 6))
        assert neighbor_table(d2q9, (6, 7)) is not a
        clear_cache()
        assert neighbor_table(d2q9, (6, 6)) is not a

    def test_shape_dimension_mismatch_raises(self):
        lat = get_lattice("D3Q19")
        with pytest.raises(ValueError, match="dimension"):
            NeighborTable(lat, (6, 6))


class TestOwnedBufferReuse:
    """Regression: gather(out=None) must not allocate a fresh field per
    call — the table owns a two-deep per-dtype buffer ring."""

    def test_ping_pong_stabilizes_at_two_buffers(self):
        lat = get_lattice("D2Q9")
        table = neighbor_table(lat, (8, 6))
        f = random_field(lat, (8, 6), seed=3)
        ids = set()
        g = table.gather(f)
        for _ in range(12):
            g = table.gather(g)
            ids.add(id(g))
        assert len(ids) <= 2

    def test_reused_buffer_stays_correct(self):
        """Repeated owned-buffer gathers equal repeated stream_push."""
        lat = get_lattice("D2Q9")
        table = neighbor_table(lat, (7, 5))
        f = random_field(lat, (7, 5), seed=4)
        expected, got = f, f
        for _ in range(5):
            expected = stream_push(lat, expected)
            got = table.gather(got)
        assert np.array_equal(got, expected)

    def test_owned_buffer_never_aliases_input(self):
        lat = get_lattice("D2Q9")
        table = neighbor_table(lat, (6, 6))
        f = random_field(lat, (6, 6), seed=5)
        g = table.gather(f)
        assert not np.shares_memory(g, f)
        h = table.gather(g)
        assert not np.shares_memory(h, g)

    def test_buffers_keyed_by_dtype(self):
        lat = get_lattice("D2Q9")
        table = neighbor_table(lat, (6, 4))
        f64 = random_field(lat, (6, 4), seed=6)
        f32 = f64.astype(np.float32)
        assert table.gather(f64).dtype == np.float64
        assert table.gather(f32).dtype == np.float32

    def test_steady_state_gather_allocates_nothing(self):
        """tracemalloc pin: warm ping-pong gathers allocate no fields."""
        import tracemalloc

        lat = get_lattice("D2Q9")
        shape = (48, 32)
        table = neighbor_table(lat, shape)
        g = table.gather(random_field(lat, shape, seed=7))
        g = table.gather(g)                 # warm both ring buffers
        tracemalloc.start()
        try:
            for _ in range(10):
                g = table.gather(g)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < g.nbytes // 4
        assert current < 16 * 1024
