"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "MR-P"
        assert args.lattice == "D2Q9"
        assert args.problem == "channel"

    def test_invalid_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "MRT"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "MI100" in out
        assert "900.0 GB/s" in out

    def test_run_channel_small(self, capsys, tmp_path):
        out_file = tmp_path / "final.npz"
        rc = main([
            "run", "--scheme", "ST", "--shape", "24,10", "--steps", "20",
            "--report-interval", "10", "--output", str(out_file),
        ])
        assert rc == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "ST / D2Q9" in out
        assert "step" in out

    def test_run_taylor_green(self, capsys):
        rc = main([
            "run", "--problem", "taylor-green", "--scheme", "MR-R",
            "--shape", "16,16", "--steps", "10", "--report-interval", "5",
        ])
        assert rc == 0
        assert "MR-R" in capsys.readouterr().out

    def test_run_taylor_green_needs_2d(self, capsys):
        rc = main(["run", "--problem", "taylor-green", "--shape", "8,8,8",
                   "--lattice", "D3Q19", "--steps", "1"])
        assert rc == 2
        assert "2D" in capsys.readouterr().err

    def test_run_distributed_emulated(self, capsys):
        rc = main(["run", "--scheme", "ST", "--shape", "24,10",
                   "--steps", "4", "--ranks", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend = emulated" in out
        assert "halo payload per cut face" in out

    def test_run_distributed_process(self, capsys, tmp_path):
        out_file = tmp_path / "fields.npz"
        metrics = tmp_path / "m.jsonl"
        rc = main(["run", "--scheme", "MR-P", "--shape", "24,10",
                   "--steps", "4", "--ranks", "2", "--backend", "process",
                   "--output", str(out_file), "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend = process" in out
        assert "cohort:" in out
        assert out_file.exists() and metrics.exists()

    def test_run_distributed_taylor_green(self, capsys):
        rc = main(["run", "--problem", "taylor-green", "--scheme", "MR-R",
                   "--shape", "24,24", "--steps", "4", "--ranks", "2",
                   "--backend", "emulated"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_run_forced_channel(self, capsys):
        rc = main(["run", "--problem", "forced-channel", "--scheme", "MR-P",
                   "--shape", "20,12", "--steps", "8", "--accel", "fused",
                   "--report-interval", "4"])
        assert rc == 0
        assert "MR-P" in capsys.readouterr().out

    def test_run_forced_channel_distributed(self, capsys):
        rc = main(["run", "--problem", "forced-channel", "--scheme", "ST",
                   "--shape", "24,12", "--steps", "4", "--ranks", "2"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_run_forced_channel_sparse(self, capsys):
        """The sparse fluid-node-list backend is selectable from the CLI."""
        rc = main(["run", "--problem", "forced-channel", "--scheme", "MR-P",
                   "--shape", "24,12", "--steps", "4", "--accel", "sparse"])
        assert rc == 0
        assert "accel = sparse" in capsys.readouterr().out

    def test_unsupported_accel_exits_2(self, capsys):
        """Backend rejections surface as a clean exit-2 error, no traceback."""
        rc = main(["run", "--problem", "channel", "--scheme", "ST",
                   "--shape", "24,10", "--steps", "4", "--accel", "numba"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("ERROR:")

    def test_unsupported_accel_distributed_exits_2(self, capsys):
        rc = main(["run", "--scheme", "ST", "--shape", "24,10", "--steps", "4",
                   "--ranks", "2", "--accel", "numba"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("ERROR:")

    def test_run_vtk_output(self, tmp_path):
        out_file = tmp_path / "final.vtk"
        main(["run", "--scheme", "ST", "--shape", "16,8", "--steps", "5",
              "--output", str(out_file)])
        assert "DATASET STRUCTURED_POINTS" in out_file.read_text()

    def test_tune(self, capsys):
        rc = main(["tune", "--lattice", "D3Q19", "--device", "V100",
                   "--shape", "64,64,64", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legal configurations" in out
        assert "MFLUPS" in out
        # Three ranked rows after the header lines.
        assert len([l for l in out.splitlines() if l.strip().startswith("(")]) == 3

    def test_tune_mi100_q27_avoids_cliff(self, capsys):
        main(["tune", "--lattice", "D3Q27", "--device", "MI100",
              "--shape", "64,64,64", "--top", "1"])
        out = capsys.readouterr().out
        top_row = [l for l in out.splitlines() if l.strip().startswith("(")][0]
        # blocks/SM column must satisfy the 2-block rule.
        assert int(top_row.split()[-3]) >= 2


class TestBenchCommand:
    """`mrlbm bench`: measure, append to the trajectory, judge regressions."""

    def _patch_suite(self, monkeypatch):
        from repro.obs import BenchCell

        cell = BenchCell("ST", "D2Q9", "fused", "periodic", (16, 16),
                         steps=2, repeats=1)
        monkeypatch.setattr("repro.obs.default_suite",
                            lambda quick=False: [cell])
        return cell

    def test_quick_bench_writes_valid_trajectory(self, capsys, tmp_path,
                                                 monkeypatch):
        from repro.obs import load_trajectory

        self._patch_suite(monkeypatch)
        out = tmp_path / "BENCH_ci.json"
        rc = main(["bench", "--quick", "--suite", "ci", "--out", str(out)])
        assert rc == 0
        doc = load_trajectory(out)             # validates schema + records
        assert doc["suite"] == "ci" and len(doc["records"]) == 1
        stdout = capsys.readouterr().out
        assert "MLUPS" in stdout and "no regressions" in stdout

    def test_injected_slowdown_trips_then_report_only_passes(
            self, capsys, tmp_path, monkeypatch):
        import time as _time

        from repro.obs import append_records, run_cell

        cell = self._patch_suite(monkeypatch)
        out = tmp_path / "BENCH_ci.json"
        # Baseline: a real measurement of the same cell, inflated so any
        # rerun regresses far beyond the noise-widened band.
        baseline = run_cell(cell, suite="ci", host_gbs=10.0).to_dict()
        baseline["mlups"] *= 1e3
        baseline["timestamp"] = _time.time()
        append_records(out, [baseline])

        rc = main(["bench", "--quick", "--suite", "ci", "--out", str(out),
                   "--no-append"])
        assert rc == 1
        assert "regression" in capsys.readouterr().out

        rc = main(["bench", "--quick", "--suite", "ci", "--out", str(out),
                   "--no-append", "--report-only"])
        assert rc == 0                         # CI smoke mode: warn, pass

    def test_json_dump_carries_records_and_verdicts(self, tmp_path,
                                                    monkeypatch):
        import json

        self._patch_suite(monkeypatch)
        dump = tmp_path / "bench.json"
        rc = main(["bench", "--quick", "--out",
                   str(tmp_path / "BENCH_default.json"), "--json", str(dump)])
        assert rc == 0
        doc = json.loads(dump.read_text())
        assert doc["records"][0]["scheme"] == "ST"
        assert doc["comparison"]["verdicts"][0]["status"] == "new"


class TestWatchCommand:
    """`mrlbm watch`: tail / summarize per-rank event streams."""

    def test_missing_run_dir_exits_2(self, capsys, tmp_path):
        rc = main(["watch", str(tmp_path / "nowhere")])
        assert rc == 2
        assert "no events-rank" in capsys.readouterr().err

    def test_summarizes_finished_run(self, capsys, tmp_path):
        from repro.obs import EventStream, RunEventEmitter

        for rank in range(2):
            emitter = RunEventEmitter(EventStream(tmp_path, rank=rank),
                                      every=5, n_steps=10, n_fluid=100)
            emitter.start(pid=1)
            emitter.maybe(10)
            emitter.end(10)
        rc = main(["watch", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 rank(s), all done" in out
        assert "done" in out

    def test_error_rank_exits_nonzero(self, capsys, tmp_path):
        from repro.obs import EventStream

        stream = EventStream(tmp_path, rank=0)
        stream.emit("start", step=0, n_steps=4)
        stream.emit("error", step=2, exc_type="ValueError", message="boom")
        rc = main(["watch", str(tmp_path)])
        assert rc == 1
        assert "ValueError: boom" in capsys.readouterr().out

    def test_follow_drains_finished_run(self, capsys, tmp_path):
        from repro.obs import EventStream

        stream = EventStream(tmp_path, rank=0)
        stream.emit("start", step=0, n_steps=4)
        stream.emit("end", step=4, mlups=1.0, wall_s=0.5)
        rc = main(["watch", str(tmp_path), "--follow", "--timeout", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "start" in out and "all done" in out

    def test_run_with_events_then_watch(self, capsys, tmp_path):
        """Single-domain --events run round-trips through watch."""
        run_dir = tmp_path / "ev"
        rc = main(["run", "--scheme", "ST", "--shape", "16,8", "--steps",
                   "6", "--report-interval", "3", "--events", str(run_dir),
                   "--events-every", "2"])
        assert rc == 0
        assert "tail with 'mrlbm watch" in capsys.readouterr().out
        rc = main(["watch", str(run_dir)])
        assert rc == 0
        assert "1 rank(s), all done" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_runs_batched_grid(self, capsys, tmp_path):
        rc = main(["sweep", "--problem", "taylor-green", "--scheme", "MR-P",
                   "--lattice", "D2Q9", "--shape", "16,16",
                   "--tau", "0.7,0.9,1.1", "--steps", "4",
                   "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 members in 1 batch(es)" in out
        assert "MLUPS aggregate" in out
        assert (tmp_path / "sweep_summary.json").exists()
        assert len(list(tmp_path.glob("member-*.json"))) == 3

    def test_sweep_multiple_groups_and_json(self, capsys, tmp_path):
        """Two shapes cannot share a batch; summary JSON is dumped."""
        import json

        out_json = tmp_path / "sweep.json"
        rc = main(["sweep", "--problem", "taylor-green", "--scheme", "MR-P",
                   "--lattice", "D2Q9", "--shape", "12,12;16,16",
                   "--tau", "0.8,1.0", "--steps", "3",
                   "--json", str(out_json)])
        assert rc == 0
        summary = json.loads(out_json.read_text())
        assert summary["n_members"] == 4
        assert summary["n_batches"] == 2
        assert summary["duplicates_dropped"] == 0

    def test_sweep_dedupes_fingerprints(self, capsys):
        rc = main(["sweep", "--problem", "taylor-green",
                   "--shape", "12,12", "--tau", "0.8,0.8", "--steps", "2"])
        assert rc == 0
        assert "(1 duplicates dropped)" in capsys.readouterr().out

    def test_sweep_bad_grid_exits_2(self, capsys):
        """taylor-green on a 3D lattice is a clean error, not a traceback."""
        rc = main(["sweep", "--problem", "taylor-green",
                   "--lattice", "D3Q19", "--shape", "8,8,8",
                   "--steps", "2"])
        assert rc == 2
        assert "ERROR:" in capsys.readouterr().err

    def test_sweep_forced_channel(self, capsys):
        rc = main(["sweep", "--problem", "forced-channel", "--scheme", "ST",
                   "--shape", "16,10", "--tau", "0.8,1.0",
                   "--u-max", "0.04", "--steps", "3"])
        assert rc == 0
        assert "ST" in capsys.readouterr().out
