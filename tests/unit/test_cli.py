"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "MR-P"
        assert args.lattice == "D2Q9"
        assert args.problem == "channel"

    def test_invalid_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "MRT"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "MI100" in out
        assert "900.0 GB/s" in out

    def test_run_channel_small(self, capsys, tmp_path):
        out_file = tmp_path / "final.npz"
        rc = main([
            "run", "--scheme", "ST", "--shape", "24,10", "--steps", "20",
            "--report-interval", "10", "--output", str(out_file),
        ])
        assert rc == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "ST / D2Q9" in out
        assert "step" in out

    def test_run_taylor_green(self, capsys):
        rc = main([
            "run", "--problem", "taylor-green", "--scheme", "MR-R",
            "--shape", "16,16", "--steps", "10", "--report-interval", "5",
        ])
        assert rc == 0
        assert "MR-R" in capsys.readouterr().out

    def test_run_taylor_green_needs_2d(self):
        with pytest.raises(SystemExit):
            main(["run", "--problem", "taylor-green", "--shape", "8,8,8",
                  "--lattice", "D3Q19", "--steps", "1"])

    def test_run_distributed_emulated(self, capsys):
        rc = main(["run", "--scheme", "ST", "--shape", "24,10",
                   "--steps", "4", "--ranks", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend = emulated" in out
        assert "halo payload per cut face" in out

    def test_run_distributed_process(self, capsys, tmp_path):
        out_file = tmp_path / "fields.npz"
        metrics = tmp_path / "m.jsonl"
        rc = main(["run", "--scheme", "MR-P", "--shape", "24,10",
                   "--steps", "4", "--ranks", "2", "--backend", "process",
                   "--output", str(out_file), "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend = process" in out
        assert "cohort:" in out
        assert out_file.exists() and metrics.exists()

    def test_run_distributed_taylor_green(self, capsys):
        rc = main(["run", "--problem", "taylor-green", "--scheme", "MR-R",
                   "--shape", "24,24", "--steps", "4", "--ranks", "2",
                   "--backend", "emulated"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_run_forced_channel(self, capsys):
        rc = main(["run", "--problem", "forced-channel", "--scheme", "MR-P",
                   "--shape", "20,12", "--steps", "8", "--accel", "fused",
                   "--report-interval", "4"])
        assert rc == 0
        assert "MR-P" in capsys.readouterr().out

    def test_run_forced_channel_distributed(self, capsys):
        rc = main(["run", "--problem", "forced-channel", "--scheme", "ST",
                   "--shape", "24,12", "--steps", "4", "--ranks", "2"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_unsupported_accel_exits_2(self, capsys):
        """Backend rejections surface as a clean exit-2 error, no traceback."""
        rc = main(["run", "--problem", "channel", "--scheme", "ST",
                   "--shape", "24,10", "--steps", "4", "--accel", "numba"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("ERROR:")

    def test_unsupported_accel_distributed_exits_2(self, capsys):
        rc = main(["run", "--scheme", "ST", "--shape", "24,10", "--steps", "4",
                   "--ranks", "2", "--accel", "numba"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("ERROR:")

    def test_run_vtk_output(self, tmp_path):
        out_file = tmp_path / "final.vtk"
        main(["run", "--scheme", "ST", "--shape", "16,8", "--steps", "5",
              "--output", str(out_file)])
        assert "DATASET STRUCTURED_POINTS" in out_file.read_text()

    def test_tune(self, capsys):
        rc = main(["tune", "--lattice", "D3Q19", "--device", "V100",
                   "--shape", "64,64,64", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legal configurations" in out
        assert "MFLUPS" in out
        # Three ranked rows after the header lines.
        assert len([l for l in out.splitlines() if l.strip().startswith("(")]) == 3

    def test_tune_mi100_q27_avoids_cliff(self, capsys):
        main(["tune", "--lattice", "D3Q27", "--device", "MI100",
              "--shape", "64,64,64", "--top", "1"])
        out = capsys.readouterr().out
        top_row = [l for l in out.splitlines() if l.strip().startswith("(")][0]
        # blocks/SM column must satisfy the 2-block rule.
        assert int(top_row.split()[-3]) >= 2
