"""Unit tests for the markdown reproduction report.

Uses the persistent traffic cache, so after the benchmark suite has run
once these are fast; on a cold cache the measurements run for real.
"""

import pytest

from repro.bench import build_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return build_report(include_figures=False)


class TestReportContent:
    def test_sections_present(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Table 1 — device features",
            "## Table 2 — bytes per fluid lattice update",
            "## Table 3 — roofline MFLUPS",
            "## Table 4 — sustained bandwidth",
            "## Memory footprint at 15M fluid nodes",
            "## Headline speedups",
            "## Recursive-regularization cost",
        ):
            assert heading in report_text, heading

    def test_key_numbers_present(self, report_text):
        # Table 2 B/F values.
        for token in ("144", "304", "160"):
            assert token in report_text
        # Paper speedups.
        for token in ("1.32x", "1.38x", "1.46x", "1.14x"):
            assert token in report_text
        # Device identities.
        assert "V100" in report_text and "MI100" in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for k, line in enumerate(lines):
            if line.startswith("|---"):
                header = lines[k - 1]
                assert header.count("|") == line.count("|"), header

    def test_figures_toggle(self):
        with_figs = build_report(include_figures=True)
        assert "## Figure 2" in with_figs
        assert "## Figure 3" in with_figs


class TestWriteReport:
    def test_writes_files(self, tmp_path):
        out = write_report(tmp_path / "r.md", svg_dir=tmp_path / "figs")
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
        assert (tmp_path / "figs" / "figure2_d2q9.svg").exists()
        assert (tmp_path / "figs" / "figure3_d3q19.svg").exists()
