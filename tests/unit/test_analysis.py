"""Unit tests for the analysis package (observables + convergence)."""

import numpy as np
import pytest

from repro.analysis import (
    deviatoric_stress_from_moments,
    enstrophy,
    fit_convergence_order,
    mach_number,
    reynolds_number,
    strain_rate_fd,
    strain_rate_from_moments,
    velocity_gradient,
    vorticity,
)
from repro.lattice import get_lattice
from repro.solver import periodic_problem
from repro.validation import taylor_green_fields


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


def shear_field(n=32, amp=0.02):
    """u_x = amp sin(2 pi y / n): known gradient field."""
    u = np.zeros((2, n, n))
    y = np.arange(n)
    k = 2 * np.pi / n
    u[0] = amp * np.sin(k * y)[None, :]
    return u, amp, k


class TestGradientsAndVorticity:
    def test_velocity_gradient_shear(self):
        u, amp, k = shear_field()
        g = velocity_gradient(u)
        y = np.arange(32)
        # d_y u_x = amp k cos(k y) (central difference of a sine is exact
        # up to the sinc factor sin(k)/k).
        expected = amp * np.sin(k) / 1.0 * np.cos(k * y) / 1.0
        assert np.allclose(g[1, 0][0], expected, atol=1e-12)
        assert np.allclose(g[0, 0], 0)

    def test_vorticity_2d_shear(self):
        u, amp, k = shear_field()
        w = vorticity(u)
        # omega = d_x u_y - d_y u_x = -d_y u_x.
        g = velocity_gradient(u)
        assert np.allclose(w, -g[1, 0])

    def test_vorticity_3d_solid_rotation(self):
        n = 16
        x = np.arange(n) - n / 2 + 0.5
        u = np.zeros((3, n, n, n))
        # Solid-body rotation around z: u = Omega x r.
        omega_z = 1e-3
        u[0] = -omega_z * x[None, :, None]
        u[1] = omega_z * x[:, None, None]
        w = vorticity(u, periodic=False)
        interior = np.s_[2:-2, 2:-2, 2:-2]
        assert np.allclose(w[2][interior], 2 * omega_z, atol=1e-10)
        assert np.allclose(w[0][interior], 0, atol=1e-10)

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            velocity_gradient(np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            vorticity(np.zeros((1, 5)))

    def test_enstrophy_positive(self):
        u, *_ = shear_field()
        assert enstrophy(u) > 0
        assert enstrophy(np.zeros_like(u)) == 0


class TestStrainFromMoments:
    def test_matches_fd_on_taylor_green(self, d2q9):
        """The gradient-free MR strain rate agrees with finite differences."""
        shape, tau = (48, 48), 0.8
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, 0.03)
        s = periodic_problem("MR-P", "D2Q9", shape, tau, rho0=rho_i, u0=u_i)
        s.run(60)
        s_mom = strain_rate_from_moments(d2q9, s.m, tau)
        s_fd = strain_rate_fd(d2q9, s.velocity())
        scale = np.abs(s_fd).max()
        assert scale > 0
        assert np.abs(s_mom - s_fd).max() / scale < 0.05

    def test_zero_for_uniform_flow(self, d2q9):
        s = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8,
                             u0=np.full((2, 8, 8), 0.03))
        s.run(3)
        strain = strain_rate_from_moments(d2q9, s.m, 0.8)
        assert np.abs(strain).max() < 1e-12

    def test_deviatoric_stress_scaling(self, d2q9):
        """sigma = 2 rho nu S componentwise."""
        shape, tau = (32, 32), 0.9
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, 0.02)
        s = periodic_problem("MR-P", "D2Q9", shape, tau, rho0=rho_i, u0=u_i)
        s.run(20)
        strain = strain_rate_from_moments(d2q9, s.m, tau)
        stress = deviatoric_stress_from_moments(d2q9, s.m, tau)
        assert np.allclose(stress, 2 * nu * s.m[0] * strain, atol=1e-15)


class TestDimensionlessNumbers:
    def test_mach(self, d2q9):
        u = np.zeros((2, 4, 4))
        u[0] = 0.1
        ma = mach_number(d2q9, u)
        assert np.allclose(ma, 0.1 / np.sqrt(1 / 3))

    def test_reynolds(self, d2q9):
        assert reynolds_number(d2q9, 0.05, 60, 0.8) == pytest.approx(
            0.05 * 60 / 0.1
        )


class TestConvergenceFit:
    def test_exact_power_law(self):
        res = [8, 16, 32]
        errors = [1.0 / r ** 2 for r in res]
        assert fit_convergence_order(res, errors) == pytest.approx(2.0)

    def test_first_order(self):
        res = [10, 20, 40]
        errors = [0.3 / r for r in res]
        assert fit_convergence_order(res, errors) == pytest.approx(1.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_convergence_order([8], [0.1])
        with pytest.raises(ValueError):
            fit_convergence_order([8, 16], [0.1, -0.1])


@pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
def test_taylor_green_second_order(scheme):
    from repro.analysis import taylor_green_convergence

    errors, order = taylor_green_convergence(scheme, resolutions=(16, 24, 32))
    assert errors[0] > errors[-1]
    assert order > 1.6, (scheme, errors, order)
