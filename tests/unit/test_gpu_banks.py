"""Unit tests for the shared-memory bank-conflict estimator."""

import numpy as np
import pytest

from repro.gpu import V100, MI100, conflict_degree, mr_ring_conflicts, warp_conflict_profile


class TestConflictDegree:
    def test_contiguous_doubles_conflict_free(self):
        # 16 consecutive doubles span all 32 banks exactly once.
        addr = np.arange(16) * 8
        assert conflict_degree(addr) == 1

    def test_stride_two_doubles(self):
        # Stride-2 doubles: each half-warp phase covers 8 of 16 bank pairs
        # twice -> 2-way conflict.
        addr = np.arange(32) * 16
        assert conflict_degree(addr) == 2

    def test_same_bank_stride(self):
        # Stride of 16 doubles (= 32 words): every lane lands on the same
        # bank pair; each half-warp phase serializes its 4 lanes.
        addr = np.arange(8) * 16 * 8
        assert conflict_degree(addr) == 4
        # With a full warp the per-phase degree grows accordingly.
        assert conflict_degree(np.arange(32) * 16 * 8) == 16

    def test_broadcast_is_free(self):
        addr = np.zeros(32, dtype=int)
        assert conflict_degree(addr) == 1

    def test_empty(self):
        assert conflict_degree(np.array([], dtype=int)) == 1


class TestWarpProfile:
    def test_splits_by_warp(self):
        # First warp conflict-free, second warp stride-16 (degree 8 with
        # 8 distinct words... use 32 lanes of stride 16).
        free = np.arange(32) * 8
        bad = np.arange(32) * 16 * 8
        profile = warp_conflict_profile(np.concatenate([free, bad]))
        assert profile[0] == 1
        assert profile[1] > 4

    def test_warp_size_64(self):
        addr = np.arange(64) * 8
        profile = warp_conflict_profile(addr, warp_size=64)
        assert len(profile) == 1
        # 64 consecutive doubles: each 32-lane phase revisits the 16 bank
        # pairs twice.
        assert profile[0] == 2


class TestMRRingLayout:
    @pytest.mark.parametrize("q", [9, 19, 27])
    def test_component_scatter_profile(self, q):
        """The x-stride of the component-fastest ring is (w+2)*Q doubles;
        odd Q keeps the bank walk well distributed."""
        profile = mr_ring_conflicts((16,), w_t=1, q=q, component=0,
                                    device=V100)
        assert all(1 <= c <= 8 for c in profile)
        # Odd stride (3 * odd Q) is coprime with 16 bank pairs: conflict-free.
        if ((1 + 2) * q) % 2 == 1:
            assert max(profile) == 1

    def test_even_q_lattice_wraps_worse(self):
        """An (hypothetical) even-Q layout would collide more — the kind of
        check this analysis exists for."""
        odd = mr_ring_conflicts((16,), 1, 19, 0, V100)
        even = mr_ring_conflicts((16,), 1, 20, 0, V100)
        assert max(even) >= max(odd)

    def test_mi100_wavefront(self):
        profile = mr_ring_conflicts((8, 8), 1, 19, 5, MI100)
        assert len(profile) >= 1
        assert all(c >= 1 for c in profile)
