"""Unit tests for analytic solutions and error norms."""

import numpy as np
import pytest

from repro.validation import (
    duct_profile,
    kinetic_energy,
    l2_error,
    linf_error,
    poiseuille_pressure_gradient,
    poiseuille_profile,
    relative_l2_error,
    taylor_green_decay_rate,
    taylor_green_fields,
)


class TestPoiseuille:
    def test_peak_at_centre(self):
        prof = poiseuille_profile(33, 0.1)
        assert prof.max() == pytest.approx(0.1, rel=1e-3)
        assert np.argmax(prof) == 16

    def test_walls_zero(self):
        prof = poiseuille_profile(20, 0.1)
        assert prof[0] == 0 and prof[-1] == 0

    def test_symmetry(self):
        prof = poiseuille_profile(24, 0.05)
        assert np.allclose(prof, prof[::-1])

    def test_nonnegative(self):
        assert (poiseuille_profile(11, 0.03) >= 0).all()

    def test_pressure_gradient_sign(self):
        assert poiseuille_pressure_gradient(0.05, 20, 0.1) < 0


class TestDuct:
    def test_peak_normalized(self):
        prof = duct_profile(21, 21, 0.07)
        assert prof.max() == pytest.approx(0.07)

    def test_rim_zero(self):
        prof = duct_profile(15, 13, 0.05)
        assert np.allclose(prof[0], 0) and np.allclose(prof[-1], 0)
        assert np.allclose(prof[:, 0], 0) and np.allclose(prof[:, -1], 0)

    def test_square_duct_symmetry(self):
        prof = duct_profile(17, 17, 0.05)
        # Exact mirror symmetry along the series axis; transpose symmetry
        # only up to the Fourier truncation.
        assert np.allclose(prof, prof[::-1, :], atol=1e-12)
        assert np.allclose(prof, prof.T, atol=1e-4)

    def test_wide_duct_approaches_poiseuille(self):
        """A very wide duct's central column tends to plane Poiseuille."""
        ny, nz = 18, 130
        prof = duct_profile(ny, nz, 0.04)
        centre = prof[:, nz // 2]
        plane = poiseuille_profile(ny, 0.04)
        assert np.allclose(centre[1:-1], plane[1:-1], rtol=0.02)


class TestTaylorGreen:
    def test_incompressible_initial_field(self):
        _, u = taylor_green_fields((32, 32), 0.0, 0.01, 0.05)
        div = np.gradient(u[0], axis=0) + np.gradient(u[1], axis=1)
        assert np.abs(div).max() < 1e-3

    def test_decay(self):
        nu, shape = 0.02, (32, 32)
        _, u0 = taylor_green_fields(shape, 0.0, nu, 0.05)
        _, u1 = taylor_green_fields(shape, 100.0, nu, 0.05)
        expected = np.exp(-nu * 2 * (2 * np.pi / 32) ** 2 * 100)
        assert np.abs(u1).max() / np.abs(u0).max() == pytest.approx(expected, rel=1e-6)

    def test_decay_rate_helper(self):
        rate = taylor_green_decay_rate((32, 64), 0.01)
        kx, ky = 2 * np.pi / 32, 2 * np.pi / 64
        assert rate == pytest.approx(2 * 0.01 * (kx ** 2 + ky ** 2))

    def test_mean_density_preserved(self):
        rho, _ = taylor_green_fields((48, 48), 0.0, 0.01, 0.05, rho0=1.2)
        assert rho.mean() == pytest.approx(1.2, abs=1e-6)


class TestNorms:
    def test_l2(self, rng):
        a = rng.standard_normal((5, 5))
        assert l2_error(a, a) == 0
        assert l2_error(a, a + 1) == pytest.approx(1.0)

    def test_linf(self):
        a = np.zeros(4)
        b = np.array([0, -3, 2, 0.5])
        assert linf_error(a, b) == 3

    def test_masked(self):
        a = np.zeros((3, 3))
        b = np.zeros((3, 3))
        b[0, 0] = 5
        mask = np.ones((3, 3), bool)
        mask[0, 0] = False
        assert linf_error(a, b, mask) == 0
        assert linf_error(a, b) == 5

    def test_relative_l2(self):
        ref = np.full(10, 2.0)
        assert relative_l2_error(1.9 * np.ones(10) + 0.1, ref) == pytest.approx(0.0)
        assert relative_l2_error(np.zeros(10), ref) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            relative_l2_error(ref, np.zeros(10))

    def test_kinetic_energy(self):
        rho = np.full((2, 2), 2.0)
        u = np.ones((2, 2, 2))
        assert kinetic_energy(rho, u) == pytest.approx(0.5 * 2 * 2 * 4)

    def test_vector_field_masking(self, rng):
        rho = np.ones((4, 4))
        u = rng.standard_normal((2, 4, 4))
        mask = np.zeros((4, 4), bool)
        mask[1:3, 1:3] = True
        full = kinetic_energy(rho, u)
        partial = kinetic_energy(rho, u, mask)
        assert partial < full
