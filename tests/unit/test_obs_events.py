"""Unit: the per-rank JSONL event bus behind ``mrlbm watch``.

Covers the append-only writer (one flushed JSON line per event), the
cadence emitter the runtime workers drive, incremental tailing with
torn-line handling (a reader never sees a half-written event), the
follow loop's termination rule and the per-rank summary/table rendering.
"""

import json

from repro.obs import (
    EventStream,
    RunEventEmitter,
    Telemetry,
    event_files,
    follow_events,
    format_watch,
    read_events,
    summarize_events,
)
from repro.obs.events import EVENT_KINDS, iter_events


class FakeClock:
    """Deterministic, strictly increasing timestamps."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestEventStream:
    def test_emit_writes_one_json_line_per_event(self, tmp_path):
        with EventStream(tmp_path, rank=3, attempt=1,
                         clock=FakeClock()) as stream:
            stream.emit("start", step=0, n_steps=10)
            stream.emit("heartbeat", step=5, mlups=1.5)
        lines = stream.path.read_text().splitlines()
        assert stream.path.name == "events-rank0003.jsonl"
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"ts": 1.0, "rank": 3, "attempt": 1,
                         "kind": "start", "step": 0, "n_steps": 10}

    def test_restarted_attempt_appends_to_same_file(self, tmp_path):
        EventStream(tmp_path, rank=0).emit("start", step=0)
        EventStream(tmp_path, rank=0, attempt=1).emit("start", step=0)
        assert len(event_files(tmp_path)) == 1
        events = read_events(tmp_path)
        assert [e["attempt"] for e in events] == [0, 1]

    def test_read_events_merges_ranks_by_timestamp(self, tmp_path):
        clock = FakeClock()
        s0 = EventStream(tmp_path, rank=0, clock=clock)
        s1 = EventStream(tmp_path, rank=1, clock=clock)
        s0.emit("start", step=0)           # ts 1
        s1.emit("start", step=0)           # ts 2
        s0.emit("end", step=4)             # ts 3
        assert [e["rank"] for e in read_events(tmp_path)] == [0, 1, 0]


class TestIncrementalTail:
    def test_offsets_skip_already_seen_events(self, tmp_path):
        stream = EventStream(tmp_path, rank=0)
        stream.emit("start", step=0)
        offsets = {}
        assert len(list(iter_events(tmp_path, offsets))) == 1
        assert list(iter_events(tmp_path, offsets)) == []
        stream.emit("heartbeat", step=1)
        fresh = list(iter_events(tmp_path, offsets))
        assert [e["kind"] for e in fresh] == ["heartbeat"]

    def test_torn_trailing_line_deferred_to_next_poll(self, tmp_path):
        stream = EventStream(tmp_path, rank=0)
        stream.emit("start", step=0)
        # Simulate a writer caught mid-append: no trailing newline yet.
        with open(stream.path, "a", encoding="utf-8") as fh:
            fh.write('{"ts": 2.0, "rank": 0, "kind": "hea')
        offsets = {}
        assert [e["kind"] for e in iter_events(tmp_path, offsets)] == ["start"]
        with open(stream.path, "a", encoding="utf-8") as fh:
            fh.write('rtbeat"}\n')
        assert [e["kind"] for e in iter_events(tmp_path, offsets)] \
            == ["heartbeat"]

    def test_new_rank_file_picked_up_mid_tail(self, tmp_path):
        EventStream(tmp_path, rank=0).emit("start", step=0)
        offsets = {}
        list(iter_events(tmp_path, offsets))
        EventStream(tmp_path, rank=1).emit("start", step=0)
        assert [e["rank"] for e in iter_events(tmp_path, offsets)] == [1]

    def test_follow_stops_when_every_started_rank_ends(self, tmp_path):
        for rank, last in ((0, "end"), (1, "error")):
            stream = EventStream(tmp_path, rank=rank)
            stream.emit("start", step=0)
            stream.emit(last, step=9)
        events = list(follow_events(tmp_path, poll_s=0.01, timeout_s=5.0))
        assert len(events) == 4

    def test_follow_times_out_on_a_hung_run(self, tmp_path):
        EventStream(tmp_path, rank=0).emit("start", step=0)  # never ends
        events = list(follow_events(tmp_path, poll_s=0.01, timeout_s=0.05))
        assert [e["kind"] for e in events] == ["start"]


class TestRunEventEmitter:
    def _emitter(self, tmp_path, every=5, n_steps=12, telemetry=None):
        return RunEventEmitter(EventStream(tmp_path, rank=0), every=every,
                               n_steps=n_steps, telemetry=telemetry,
                               n_fluid=100)

    def test_cadence_and_final_step(self, tmp_path):
        emitter = self._emitter(tmp_path)
        emitter.start(pid=1)
        for step in range(1, 13):
            emitter.maybe(step)
        emitter.end(12)
        heartbeats = [e["step"] for e in read_events(tmp_path)
                      if e["kind"] == "heartbeat"]
        assert heartbeats == [5, 10, 12]       # cadence + forced final step
        kinds = {e["kind"] for e in read_events(tmp_path)}
        assert kinds == {"start", "heartbeat", "progress", "end"}

    def test_progress_fraction_and_phase_snapshot(self, tmp_path):
        tel = Telemetry()
        with tel.phase("step"):
            with tel.phase("barrier"):
                pass
        emitter = self._emitter(tmp_path, telemetry=tel)
        emitter.maybe(5)
        events = {e["kind"]: e for e in read_events(tmp_path)}
        assert events["progress"]["fraction"] == 5 / 12
        assert "step/barrier" in events["phase"]["totals_s"]

    def test_checkpoint_watchdog_and_error_kinds(self, tmp_path):
        emitter = self._emitter(tmp_path)
        emitter.checkpoint(10, "/tmp/ckpt")
        emitter.watchdog(10, ok=True)
        emitter.error(11, "ValueError", "boom")
        kinds = [e["kind"] for e in read_events(tmp_path)]
        assert kinds == ["checkpoint", "watchdog", "error"]
        assert all(k in EVENT_KINDS for k in kinds)

    def test_error_after_close_never_raises(self, tmp_path):
        emitter = self._emitter(tmp_path)
        emitter.stream.close()
        emitter.error(1, "RuntimeError", "late failure")   # must not raise


class TestSummarize:
    def _run(self, tmp_path, rank, last_kind="end"):
        clock = FakeClock()
        stream = EventStream(tmp_path, rank=rank, clock=clock)
        emitter = RunEventEmitter(stream, every=5, n_steps=10, n_fluid=10)
        emitter.start(pid=1)
        emitter.maybe(5)
        emitter.checkpoint(5, "ckpt")
        emitter.watchdog(5)
        if last_kind == "end":
            emitter.maybe(10)
            emitter.end(10, steps=10)
        else:
            emitter.error(7, "ValueError", "injected")

    def test_per_rank_state(self, tmp_path):
        self._run(tmp_path, 0, "end")
        self._run(tmp_path, 1, "error")
        summary = summarize_events(read_events(tmp_path))
        assert summary["n_ranks"] == 2 and summary["all_done"]
        done, failed = summary["ranks"][0], summary["ranks"][1]
        assert done["status"] == "done" and done["step"] == 10
        assert done["fraction"] == 1.0
        assert done["checkpoints"] == 1 and done["watchdog_checks"] == 1
        assert failed["status"] == "error"
        assert failed["error"] == "ValueError: injected"

    def test_running_rank_keeps_cohort_open(self, tmp_path):
        self._run(tmp_path, 0, "end")
        EventStream(tmp_path, rank=1).emit("start", step=0, n_steps=10)
        summary = summarize_events(read_events(tmp_path))
        assert not summary["all_done"]
        assert summary["ranks"][1]["status"] == "running"

    def test_format_watch_renders_table(self, tmp_path):
        self._run(tmp_path, 0, "end")
        self._run(tmp_path, 1, "error")
        text = format_watch(summarize_events(read_events(tmp_path)))
        assert "done" in text and "error" in text
        assert "ValueError: injected" in text

    def test_last_checkpoint_step_surfaces(self, tmp_path):
        """The most recent checkpoint's step is summarized and rendered.

        Regression: checkpoint events always carried their step, but the
        summary only counted them — a watcher could not tell *where* a
        crashed rank would resume from.
        """
        self._run(tmp_path, 0, "end")
        summary = summarize_events(read_events(tmp_path))
        assert summary["ranks"][0]["last_checkpoint_step"] == 5
        text = format_watch(summary)
        assert "ckpt" in text.splitlines()[0]
        row = text.splitlines()[1]
        assert row.split()[-1] == "5"

    def test_ckpt_column_dash_without_checkpoints(self, tmp_path):
        stream = EventStream(tmp_path, rank=0, clock=FakeClock())
        emitter = RunEventEmitter(stream, every=5, n_steps=10, n_fluid=10)
        emitter.start(pid=1)
        emitter.maybe(10)
        emitter.end(10, steps=10)
        summary = summarize_events(read_events(tmp_path))
        assert summary["ranks"][0]["last_checkpoint_step"] is None
        row = format_watch(summary).splitlines()[1]
        assert row.split()[-1] == "-"

    def test_empty_directory_summarizes_empty(self, tmp_path):
        summary = summarize_events(read_events(tmp_path))
        assert summary == {"ranks": {}, "n_ranks": 0, "all_done": False}
