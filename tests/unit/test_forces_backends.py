"""Momentum-exchange forces are backend-invariant (reference/fused/aa/sparse)."""

import numpy as np
import pytest

from repro.analysis import MomentumExchangeForce
from repro.boundary import HalfwayBounceBack
from repro.geometry import Domain, cylinder_in_channel, lid_driven_cavity
from repro.lattice import get_lattice
from repro.solver import make_solver

BACKENDS = ("reference", "fused", "aa", "sparse")


def cylinder_setup():
    """Force-driven channel with a staircase cylinder + its body mask."""
    nx, ny, cx, cy, r = 26, 16, 7.0, 7.5, 3.2
    domain = cylinder_in_channel(nx, ny, cx, cy, r, with_io=False)
    x, y = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    mask = (x - cx) ** 2 + (y - cy) ** 2 <= r ** 2
    force = np.zeros(2)
    force[0] = 5e-6
    return domain, mask, force


def drag_series(scheme, backend, steps=12):
    lat = get_lattice("D2Q9")
    domain, mask, force = cylinder_setup()
    s = make_solver(scheme, lat, domain, 0.8,
                    boundaries=[HalfwayBounceBack()], force=force,
                    backend=backend)
    meter = MomentumExchangeForce(s, body_mask=mask)
    s.run(steps)
    return meter.force()


class TestForceBackendParity:
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_cylinder_drag_identical_across_backends(self, scheme):
        """Drag on a masked cylinder agrees across every backend — the ST
        distribution read and the MR post-collision reconstruction both
        see backend-identical states."""
        ref = drag_series(scheme, "reference")
        assert np.abs(ref).max() > 0          # flow actually pushes
        for backend in BACKENDS[1:]:
            got = drag_series(scheme, backend)
            assert np.abs(got - ref).max() < 1e-13, (backend, got, ref)

    def test_moving_wall_force_with_wall_velocity(self):
        """The wall-velocity momentum correction survives every backend:
        the lid of a driven cavity feels a nonzero backend-invariant
        force through the moving-wall branch of the meter."""
        lat = get_lattice("D2Q9")
        n = 14
        domain = lid_driven_cavity(n)
        lid_mask = np.zeros((n, n), bool)
        lid_mask[:, -1] = True
        wall_u = np.zeros((2, n, n))
        wall_u[0, :, -1] = 0.08

        def lid_force(backend):
            s = make_solver("MR-R", lat, domain, 0.8,
                            boundaries=[HalfwayBounceBack(
                                wall_velocity=wall_u)],
                            backend=backend)
            meter = MomentumExchangeForce(s, body_mask=lid_mask,
                                          wall_velocity=wall_u)
            s.run(10)
            return meter.force()

        ref = lid_force("reference")
        assert abs(ref[0]) > 0                # lid drags the fluid
        for backend in BACKENDS[1:]:
            assert np.abs(lid_force(backend) - ref).max() < 1e-13, backend

    def test_random_porous_mask_force_parity(self):
        """A multi-body random mask keeps parity (many disjoint surfaces)."""
        rng = np.random.default_rng(9)
        nt = np.zeros((18, 12), dtype=np.int8)
        nt[rng.random((18, 12)) < 0.3] = 1
        nt.flat[0] = 0
        domain = Domain(nt)
        lat = get_lattice("D2Q9")
        force = np.zeros(2)
        force[0] = 1e-5
        results = {}
        for backend in BACKENDS:
            s = make_solver("ST", lat, domain, 0.9,
                            boundaries=[HalfwayBounceBack()], force=force,
                            backend=backend)
            meter = MomentumExchangeForce(s, body_mask=domain.solid_mask)
            s.run(8)
            results[backend] = meter.force()
        ref = results["reference"]
        for backend in BACKENDS[1:]:
            assert np.abs(results[backend] - ref).max() < 1e-13
